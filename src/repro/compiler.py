"""The PolyMG optimizing compiler driver (paper Figure 4).

``compile_pipeline`` runs the phase sequence of the paper's code
generator as an explicit **pass pipeline** (see
:mod:`repro.passes.manager`): a :class:`CompilationContext` threads the
evolving artifact set — DAG, grouping, schedule, storage plan, backend
object — through an ordered list of passes, each declaring what it
requires and produces:

1. ``build-dag``: polyhedral representation (DAG + access summaries),
2. ``grouping`` (*automerge*): greedy fusion under the grouping limit
   and overlap threshold,
3. ``scheduling``: total order of groups and of stages within groups,
4. overlapped-tile geometry is derived lazily from the access relations
   inside the groups (no standalone pass),
5. ``storage``: intra-group scratchpad reuse, inter-group full array
   reuse, pooled allocation plumbing,
6. ``backend``: the numpy interpreter
   (:class:`~repro.backend.executor.CompiledPipeline`); the C/OpenMP
   emitter consumes the same compiled object.

When ``PolyMgConfig.verify_level`` is not ``"off"``, the independent
verifiers (:mod:`repro.verify.invariants`) run as ordinary interleaved
passes: ``verify-schedule`` after scheduling, ``verify-storage`` after
the storage pass, ``verify-tiling`` after backend construction.

Every compile is instrumented: ``compiled.report`` is a
:class:`~repro.passes.manager.CompileReport` with per-pass wall times
and artifact summaries (``compiled.report.to_json()`` dumps it for the
bench harness).

Compiles are memoized in a content-addressed cache
(:mod:`repro.cache`): a second call with an identical (spec, params,
config) fingerprint skips all passes and returns a fresh executor over
the cached artifacts.  Pass ``cache=False`` to force a cold compile.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .backend.executor import CompiledPipeline
from .cache import cache_enabled, compile_cache, compile_fingerprint
from .config import PolyMgConfig
from .lang.function import Function
from .passes.manager import CompilationContext, PassManager, default_passes

__all__ = ["compile_pipeline"]


def compile_pipeline(
    outputs: Sequence[Function] | Function,
    params: Mapping[str, int],
    config: PolyMgConfig | None = None,
    name: str = "pipeline",
    *,
    cache: bool = True,
    snapshot_ir: bool = False,
) -> CompiledPipeline:
    """Compile a DSL pipeline into an executable schedule.

    Parameters
    ----------
    outputs:
        The live-out function(s) of the pipeline (e.g. the post-smoothed
        solution grid of a multigrid cycle).
    params:
        Bindings for every :class:`~repro.lang.parameters.Parameter`
        used in domain bounds (e.g. ``{"N": 4094}``).
    config:
        Optimization switches; defaults to the full ``polymg-opt+``
        configuration.
    cache:
        Route the compile through the content-addressed cache
        (:mod:`repro.cache`).  ``False`` forces a cold compile and
        leaves the cache untouched.
    snapshot_ir:
        Record a human-readable IR snapshot after each pass into the
        :class:`~repro.passes.manager.CompileReport`.  Snapshot
        compiles bypass the cache (they are debugging runs).
    """
    if isinstance(outputs, Function):
        outputs = [outputs]
    outputs = list(outputs)
    config = config or PolyMgConfig()

    use_cache = cache and cache_enabled() and not snapshot_ir
    key = compile_fingerprint(outputs, dict(params), config, name)
    if use_cache:
        hit = compile_cache().lookup(key)
        if hit is not None:
            return hit

    ctx = CompilationContext(
        outputs=tuple(outputs),
        params=dict(params),
        config=config,
        name=name,
    )
    manager = PassManager(default_passes(config), snapshot_ir=snapshot_ir)
    report = manager.run(ctx)
    report.fingerprint = key
    compiled: CompiledPipeline = ctx.compiled
    compiled.report = report
    # build the ahead-of-time kernel plan now so it is stored (and
    # served) alongside the compile artifacts: clones inherit the plan,
    # and invalidation rides the content address for free
    compiled.plan()
    # backend="native": start the out-of-process JIT build eagerly on a
    # daemon thread — the toolchain overlaps the first numpy-executed
    # cycles, and a warm artifact store resolves almost immediately
    compiled.start_native_build()
    if use_cache:
        compile_cache().store(key, compiled)
    return compiled
