"""The PolyMG optimizing compiler driver (paper Figure 4).

``compile_pipeline`` runs the phase sequence of the paper's code
generator on a DSL specification:

1. build the polyhedral representation (DAG + access summaries),
2. *automerge*: greedy grouping for fusion under the grouping limit and
   overlap threshold,
3. scheduling: total order of groups and of stages within groups,
4. overlapped-tile geometry (inside the groups; shapes are derived
   lazily from the access relations),
5. storage allocation: intra-group scratchpad reuse, inter-group full
   array reuse, pooled allocation plumbing,
6. backend construction — here the numpy interpreter
   (:class:`~repro.backend.executor.CompiledPipeline`); the C/OpenMP
   emitter consumes the same compiled object.

When ``PolyMgConfig.verify_level`` is not ``"off"``, each phase is
followed by its independent verifier (:mod:`repro.verify.invariants`):
schedule legality after scheduling, storage soundness after the
storage passes, tile-coverage after backend construction.  ``"cheap"``
runs the algebraic cross-checks; ``"full"`` additionally proves exact
tile coverage of every live-out.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .backend.executor import CompiledPipeline
from .config import PolyMgConfig
from .ir.dag import PipelineDAG
from .lang.function import Function
from .passes.grouping import auto_group
from .passes.schedule import PipelineSchedule
from .passes.storage import plan_storage

__all__ = ["compile_pipeline"]


def compile_pipeline(
    outputs: Sequence[Function] | Function,
    params: Mapping[str, int],
    config: PolyMgConfig | None = None,
    name: str = "pipeline",
) -> CompiledPipeline:
    """Compile a DSL pipeline into an executable schedule.

    Parameters
    ----------
    outputs:
        The live-out function(s) of the pipeline (e.g. the post-smoothed
        solution grid of a multigrid cycle).
    params:
        Bindings for every :class:`~repro.lang.parameters.Parameter`
        used in domain bounds (e.g. ``{"N": 4094}``).
    config:
        Optimization switches; defaults to the full ``polymg-opt+``
        configuration.
    """
    if isinstance(outputs, Function):
        outputs = [outputs]
    config = config or PolyMgConfig()
    verify = config.verify_level != "off"
    dag = PipelineDAG(outputs, params=params, name=name)
    grouping = auto_group(dag, config)
    schedule = PipelineSchedule(grouping)
    if verify:
        from .verify.invariants import verify_schedule

        verify_schedule(grouping, schedule, pipeline=name)
    storage = plan_storage(grouping, schedule, config)
    if verify:
        from .verify.invariants import verify_storage

        verify_storage(grouping, schedule, storage, config, pipeline=name)
    compiled = CompiledPipeline(dag, config, grouping, schedule, storage)
    if verify:
        from .verify.invariants import verify_tiling

        verify_tiling(
            grouping,
            config,
            level=config.verify_level,
            skip_groups=compiled._diamond_groups,
            pipeline=name,
        )
    return compiled
