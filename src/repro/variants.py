"""The evaluation variants of paper section 4.1.

Each PolyMG variant is a :class:`~repro.config.PolyMgConfig` preset:

* ``polymg-naive`` — straightforward parallel code: no fusion, no
  tiling, no storage optimization (one full array per stage, fresh
  allocation each cycle); OpenMP on the outermost loop of each stage.
* ``polymg-opt`` — the stock PolyMage optimizer adapted to multigrid:
  grouping/fusion + overlapped tiling with per-stage scratchpads, but
  one-to-one buffer allocation (no scratch reuse, no array reuse, no
  pooling).
* ``polymg-opt+`` — this paper: all of the above plus intra-group
  scratchpad reuse, inter-group full-array reuse, pooled allocation.
* ``polymg-dtile-opt+`` — ``opt+`` with pre-/post-smoothing chains
  diamond-tiled via the libPluto-style backend (with its
  conservative-copy implementation issue modeled for real).

``handopt`` and ``handopt+pluto`` (the Ghysels & Vanroose reference
codes) are separate hand-written implementations in
:mod:`repro.baselines`.

Presets are plain value objects: two calls to the same factory produce
configs with identical
:meth:`~repro.config.PolyMgConfig.fingerprint` values, so compiles of
the same specification under the same variant share one entry in the
content-addressed compile cache (:mod:`repro.cache`) no matter where
the config object was constructed.
"""

from __future__ import annotations

from .backend.registry import TIERS as _TIERS
from .config import PolyMgConfig

__all__ = [
    "POLYMG_VARIANTS",
    "LADDER_ORDER",
    "polymg_naive",
    "polymg_native",
    "polymg_driver",
    "polymg_opt",
    "polymg_opt_plus",
    "polymg_dtile_opt_plus",
    "handopt_model",
    "handopt_pluto_model",
    "variant_config",
]


def polymg_naive(**overrides) -> PolyMgConfig:
    base = dict(
        fuse=False,
        tile=False,
        intra_group_reuse=False,
        inter_group_reuse=False,
        pooled_allocation=False,
    )
    base.update(overrides)
    return PolyMgConfig(**base)


def polymg_opt(**overrides) -> PolyMgConfig:
    base = dict(
        fuse=True,
        tile=True,
        intra_group_reuse=False,
        inter_group_reuse=False,
        pooled_allocation=False,
    )
    base.update(overrides)
    return PolyMgConfig(**base)


def polymg_opt_plus(**overrides) -> PolyMgConfig:
    base = dict(
        fuse=True,
        tile=True,
        intra_group_reuse=True,
        inter_group_reuse=True,
        pooled_allocation=True,
    )
    base.update(overrides)
    return PolyMgConfig(**base)


def polymg_dtile_opt_plus(**overrides) -> PolyMgConfig:
    base = dict(diamond_smoothing=True)
    base.update(overrides)
    return polymg_opt_plus(**base)


def polymg_native(**overrides) -> PolyMgConfig:
    """``polymg-native`` — ``opt+`` executed through the C/OpenMP JIT
    backend (:mod:`repro.backend.native`): the emitted Figure-8 code is
    compiled out-of-process into a shared object and invoked zero-copy
    on the numpy buffers.  Degrades automatically to the planned numpy
    execution of ``opt+`` when no toolchain is available or the build
    fails, so the rung is always safe to stand on."""
    base = dict(backend="native")
    base.update(overrides)
    return polymg_opt_plus(**base)


def polymg_driver(**overrides) -> PolyMgConfig:
    """``polymg-driver`` — ``opt+`` through the whole-solve native
    driver (:class:`~repro.backend.registry.DriverBackend`): the
    multigrid cycle loop, residual-norm convergence test, and iterate
    ping-pong all run inside one ``polymg_drive`` call with persistent
    OpenMP threads, returning to the supervisor hook every
    ``driver_hook_cycles`` cycles.  Shares the per-cycle native tier's
    shared object and degrades to it (then onward down the ladder)
    whenever the driver cannot serve."""
    base = dict(backend="native-driver")
    base.update(overrides)
    return polymg_opt_plus(**base)


def handopt_model(**overrides) -> PolyMgConfig:
    """``handopt`` expressed as a compiler configuration for the machine
    cost model: straightforward per-stage loops (no fusion/tiling) with
    modulo-buffer-style array reuse and pooled allocation.  Wall-clock
    execution uses the real hand-written
    :class:`repro.baselines.HandOptSolver` instead."""
    base = dict(
        fuse=False,
        tile=False,
        intra_group_reuse=False,
        inter_group_reuse=True,
        pooled_allocation=True,
    )
    base.update(overrides)
    return PolyMgConfig(**base)


def handopt_pluto_model(**overrides) -> PolyMgConfig:
    """``handopt+pluto``: handopt with the pre/post-smoothing chains
    diamond-tiled (and nothing else fused)."""
    base = dict(
        fuse=True,
        tile=False,
        intra_group_reuse=False,
        inter_group_reuse=True,
        pooled_allocation=True,
        diamond_smoothing=True,
        dtile_conservative_copies=False,
        fuse_smoother_chains_only=True,
        group_size_limit=99,
        overlap_threshold=99.0,
    )
    base.update(overrides)
    return PolyMgConfig(**base)


#: Canonical graded-degradation order, fastest first, ending at the
#: trusted reference execution path.  The resilience subsystem
#: (:mod:`repro.resilience`) demotes along this ladder on faults and
#: re-promotes as circuits heal; each rung is one of the compiled
#: variants below, so every ladder move routes through the
#: content-addressed compile cache and costs no recompile.
#:
#: Source of truth: each registered execution tier declares its rungs
#: and the :class:`~repro.backend.registry.TierRegistry` concatenates
#: them in tier order — this name is a re-export for compatibility.
LADDER_ORDER = _TIERS.ladder_order()

POLYMG_VARIANTS = {
    "polymg-naive": polymg_naive,
    "polymg-native": polymg_native,
    "polymg-driver": polymg_driver,
    "polymg-opt": polymg_opt,
    "polymg-opt+": polymg_opt_plus,
    "polymg-dtile-opt+": polymg_dtile_opt_plus,
    "handopt": handopt_model,
    "handopt+pluto": handopt_pluto_model,
}


def variant_config(name: str, **overrides) -> PolyMgConfig:
    try:
        factory = POLYMG_VARIANTS[name]
    except KeyError:
        raise KeyError(
            f"unknown variant {name!r}; known: {sorted(POLYMG_VARIANTS)}"
        ) from None
    return factory(**overrides)
