"""Ladder-driven fault-tolerant execution of a multigrid pipeline.

:class:`ResilientPipeline` generalizes
:class:`~repro.backend.guards.GuardedPipeline`'s binary fallback into
graded degradation over a :class:`~repro.resilience.ladder.DegradationLadder`:
each invocation is served by the highest healthy ladder rung, every
rung's compile routes through the content-addressed compile cache (a
ladder move costs no recompile), and every fault is recorded as a
structured incident — on the shared
:class:`~repro.resilience.incidents.IncidentLog` *and* on the involved
compiled pipeline's :class:`~repro.passes.manager.CompileReport`.

Fault handling per attempt:

* **verify failure** (the compiled artifact is statically bad): the
  verdict is memoized — the rung trips, its cached compile entry is
  evicted, and the memoized executor is dropped, so the half-open
  probe after cooldown compiles the variant *fresh* instead of
  re-serving the corrupt artifact.
* **runtime fault** (``ReproError`` during execution): the rung trips
  and its allocator pool is trimmed (a demoted variant must not keep
  its high-water backing resident through the cooldown), but the
  executor is kept — a persistent executor-level fault will re-fire on
  the probe and escalate the cooldown, while a transient one heals.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..backend.registry import BATCHED, FallbackPolicy
from ..cache import cache_enabled, compile_cache, compile_fingerprint
from ..errors import ReproError
from ..variants import variant_config
from .incidents import IncidentLog
from .ladder import DegradationLadder

if TYPE_CHECKING:  # pragma: no cover
    from ..backend.executor import CompiledPipeline
    from ..multigrid.cycles import MultigridPipeline

__all__ = ["ResilientPipeline", "CycleBurst"]


class CycleBurst:
    """What one :meth:`ResilientPipeline.attempt_cycles` attempt
    retired: the outputs after the last accepted cycle, the per-cycle
    residual norms when the whole-solve driver computed them in-kernel
    (``None`` means the caller must compute the single cycle's norm
    itself), the number of cycles, and whether the driver served."""

    __slots__ = ("outputs", "norms", "cycles", "driven")

    def __init__(self, outputs, norms, cycles, driven):
        self.outputs = outputs
        self.norms = norms
        self.cycles = cycles
        self.driven = driven


class ResilientPipeline:
    """Fault-tolerant, gradedly-degrading executor over ladder variants.

    Parameters
    ----------
    pipeline:
        The :class:`~repro.multigrid.cycles.MultigridPipeline`
        specification (anything with ``compile``/``output``/``params``).
    ladder:
        The shared :class:`DegradationLadder` (a default one over
        :data:`repro.variants.LADDER_ORDER` is built if omitted).
    verify_level:
        ``verify_compiled`` level run once per compiled variant before
        its first execution (verdict memoized, pass or fail).
    config_overrides:
        Extra :class:`~repro.config.PolyMgConfig` fields applied to
        every rung's variant preset (e.g. small ``tile_sizes`` in
        tests, a ``pool_byte_budget``).
    log:
        Incident log; defaults to the ladder's.
    rung_ceiling:
        Restrict ladder selection to rungs at or below this variant
        (the solve service's graded overload response forces
        ``polymg-naive`` for low-priority tenants by setting it);
        ``None`` serves from the top.
    """

    def __init__(
        self,
        pipeline: "MultigridPipeline",
        ladder: DegradationLadder | None = None,
        *,
        verify_level: str = "cheap",
        config_overrides: dict | None = None,
        log: IncidentLog | None = None,
        rung_ceiling: str | None = None,
    ) -> None:
        self.pipeline = pipeline
        self.ladder = ladder if ladder is not None else DegradationLadder()
        self.log = log if log is not None else self.ladder.log
        self.verify_level = verify_level
        self.config_overrides = dict(config_overrides or {})
        self.rung_ceiling = rung_ceiling
        self.invocations = 0
        #: the single registry-level fallback-and-count path: every
        #: fault is recorded on the shared log and signalled to the
        #: ladder's circuit breakers through here
        self.policy = FallbackPolicy(log=self.log, breaker=self.ladder)
        self._compiled: dict[str, "CompiledPipeline"] = {}
        #: memoized verification verdict per rung: absent = not yet
        #: verified, None = passed, ReproError = failed
        self._verdict: dict[str, ReproError | None] = {}

    # -- compilation -----------------------------------------------------
    def variant_configuration(self, name: str):
        return variant_config(name, **self.config_overrides).with_(
            runtime_guards=True
        )

    def compiled_for(self, name: str) -> "CompiledPipeline":
        """The rung's executor, compiled lazily through the compile
        cache (so ladder moves and probes cost no recompile)."""
        if name not in self._compiled:
            self._compiled[name] = self.pipeline.compile(
                self.variant_configuration(name)
            )
        return self._compiled[name]

    def _evict_compile(self, name: str) -> None:
        """Drop the rung's executor and its cache entry (verify-failure
        path: never re-serve a statically bad artifact)."""
        self._compiled.pop(name, None)
        self._verdict.pop(name, None)
        if cache_enabled():
            key = compile_fingerprint(
                [self.pipeline.output],
                self.pipeline.params,
                self.variant_configuration(name),
                self.pipeline.name,
            )
            compile_cache().evict(key)

    # -- incident plumbing ----------------------------------------------
    def _report_of(self, name: str):
        compiled = self._compiled.get(name)
        return compiled.report if compiled is not None else None

    def report_failure(self, name: str, error: ReproError) -> None:
        """Register an externally-detected fault (e.g. the supervisor's
        residual monitor fired *after* a cycle executed cleanly) with
        the same demotion/trim semantics as an in-attempt fault."""
        self.policy.fault(
            error,
            variant=name,
            invocation=self.invocations,
            report=self._report_of(name),
        )
        self._trim_pool(name)

    def _trim_pool(self, name: str) -> None:
        compiled = self._compiled.get(name)
        if compiled is not None:
            compiled.allocator.trim()

    # -- execution -------------------------------------------------------
    def attempt(
        self, inputs: dict[str, np.ndarray]
    ) -> tuple[str, dict[str, np.ndarray] | None, ReproError | None]:
        """One invocation attempt on the currently-selected rung.

        Returns ``(variant, outputs, None)`` on success or
        ``(variant, None, error)`` on a fault — after recording the
        incident and demoting the rung.  Callers that want transparent
        retry use :meth:`execute`; the solve supervisor calls this
        directly so it can restore its checkpoint between attempts.
        """
        return self._attempt(lambda compiled: compiled.execute(inputs))

    def attempt_cycles(
        self,
        inputs: dict[str, np.ndarray],
        *,
        max_cycles: int,
        tol: float | None = None,
        spec=None,
    ) -> tuple[str, "CycleBurst | None", ReproError | None]:
        """One *burst* attempt on the currently-selected rung.

        When the rung's tier is whole-solve capable (and ``spec`` is
        given), up to ``min(driver_hook_cycles, max_cycles)`` multigrid
        cycles run inside one native driver call — convergence test
        included — and the burst comes back with its in-kernel
        per-cycle norms.  Any reason the driver cannot serve (tier not
        capable, build pending, fault injector, latched fallback)
        degrades to exactly one per-cycle execution *within the same
        attempt*, so ladder selection, the probe lease, and breaker
        accounting happen once either way.  Fault semantics match
        :meth:`attempt`."""

        def run(compiled) -> CycleBurst:
            if spec is not None:
                burst = min(
                    max(
                        1,
                        getattr(compiled.config, "driver_hook_cycles", 1),
                    ),
                    max_cycles,
                )
                drive = getattr(compiled, "drive", None)
                served = (
                    drive(
                        inputs,
                        max_cycles=burst,
                        tol=tol if tol is not None else 0.0,
                        spec=spec,
                    )
                    if drive is not None
                    else None
                )
                if served is not None and served.cycles > 0:
                    return CycleBurst(
                        served.outputs,
                        list(served.norms),
                        served.cycles,
                        True,
                    )
            out = compiled.execute(inputs)
            return CycleBurst(out, None, 1, False)

        return self._attempt(run)

    def attempt_batch(
        self, inputs_list: list[dict[str, np.ndarray]]
    ) -> tuple[str, list[dict[str, np.ndarray]] | None, ReproError | None]:
        """Like :meth:`attempt`, but serve many same-spec right-hand
        sides in one invocation through the registry's batched tier
        (bitwise identical to per-request executes of the selected
        rung).  One fault demotes the rung exactly as a per-request
        fault would.

        Selection is ceilinged at the highest non-JIT rung: batched
        execution walks the planned kernel tapes, so serving it from a
        ``jit_build`` rung would misattribute invocations (and breaker
        health) to a code path the batch never runs."""
        return self._attempt(
            lambda compiled: BATCHED.execute_batch(compiled, inputs_list),
            ceiling=self._batch_ceiling(),
        )

    def _batch_ceiling(self) -> str | None:
        if self.rung_ceiling is not None:
            return self.rung_ceiling
        from ..backend.registry import TIERS

        for rung in self.ladder.variants:
            tier = TIERS.tier_of_rung(rung)
            if tier is None or not tier.jit_build:
                return rung
        return None

    def _attempt(self, run, ceiling: str | None = None):
        self.invocations += 1
        name = self.ladder.select(
            ceiling=ceiling if ceiling is not None else self.rung_ceiling
        )
        try:
            compiled = self.compiled_for(name)
        except ReproError as error:
            self.policy.fault(
                error,
                variant=name,
                invocation=self.invocations,
                action="compile-failed",
            )
            self._evict_compile(name)
            return name, None, error

        if name not in self._verdict:
            from ..verify import verify_compiled

            try:
                verify_compiled(compiled, self.verify_level)
                self._verdict[name] = None
            except ReproError as error:
                self.policy.fault(
                    error,
                    variant=name,
                    invocation=self.invocations,
                    action="verify-failed",
                    report=self._report_of(name),
                )
                self._evict_compile(name)
                return name, None, error

        try:
            out = run(compiled)
        except ReproError as error:
            self.policy.fault(
                error,
                variant=name,
                invocation=self.invocations,
                report=self._report_of(name),
            )
            self._trim_pool(name)
            return name, None, error

        # the sandbox converts a native kernel crash into a *successful*
        # fallback-served execute — correct output, but the rung's
        # breaker must still hear about the crash so repeat offenders
        # demote instead of crashing a worker per invocation
        native_fault = getattr(
            compiled, "consume_native_fault", lambda: None
        )()
        if native_fault is not None:
            self.policy.fault(
                native_fault,
                variant=name,
                invocation=self.invocations,
                action="crash-isolated",
                report=self._report_of(name),
            )
            self._trim_pool(name)
            return name, out, None

        self.ladder.record_success(name)
        return name, out, None

    def execute(self, inputs: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Run one invocation, stepping down the ladder on faults until
        a rung succeeds.  Raises the last fault only when every rung
        (including the degradation floor) failed."""
        last_error: ReproError | None = None
        for _ in range(len(self.ladder.variants) + 1):
            name, out, error = self.attempt(inputs)
            if out is not None:
                return out
            last_error = error
        assert last_error is not None
        raise last_error

    # -- reporting -------------------------------------------------------
    @property
    def faulted(self) -> bool:
        return self.log.count("fault") > 0

    def health_snapshot(self) -> dict:
        return self.ladder.snapshot()
