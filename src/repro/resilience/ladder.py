"""Graded degradation ladder with per-variant circuit breakers.

PR 1's :class:`~repro.backend.guards.GuardedPipeline` is binary: any
fault drops straight from the optimized variant to ``polymg-naive`` and
every later invocation pays the slow path.  The ladder replaces that
with *graded* degradation over the ordered rung list contributed by
the registered execution tiers (``TIERS.ladder_order()``, re-exported
as :data:`repro.variants.LADDER_ORDER`):

``polymg-native`` -> ``polymg-opt+`` -> ``polymg-opt`` ->
``polymg-dtile-opt+`` -> ``polymg-naive``

Each rung carries a :class:`VariantHealth` record — sliding-window
error rate, consecutive-failure count — and a circuit breaker with the
classic three states:

* **closed** — healthy, serves traffic;
* **open** — tripped after ``failure_threshold`` consecutive failures;
  skipped by :meth:`DegradationLadder.select` until its exponential
  cooldown expires (``base_cooldown * cooldown_factor**(trips-1)``,
  capped at ``max_cooldown``);
* **half-open** — cooldown expired; the rung is *probed* with live
  traffic.  ``promote_after`` consecutive probe successes close the
  circuit again (automatic re-promotion); a single probe failure
  re-trips it with an escalated cooldown.

Selection always walks the ladder top-down, so a re-closed fast rung
is preferred again immediately — one transient fault no longer pins a
pipeline to the slow path.  The last rung is the degradation floor: if
every circuit is open, it serves anyway (loud, recorded, but alive).

The ladder is purely a control-plane object: it never compiles or
executes anything itself (see
:class:`~repro.resilience.pipeline.ResilientPipeline`), so it is
trivially testable with a fake clock.

**Concurrency.**  One ladder is shared by every worker of the
multi-tenant solve service, so all state transitions run under an
internal re-entrant lock, and the half-open *probe slot* is explicitly
accounted: the transition open -> half-open hands exactly one caller
the probe (``VariantHealth.probe_in_flight``); concurrent selectors
skip a rung whose probe is already in flight and serve the next rung
down instead, so one faulty variant is never probed by the whole fleet
at once (a stampede would multiply the fault, not heal it).  Recording
the probe's outcome — success or failure — releases the slot.  The
slot is a *lease*, not a lock: if the prober dies without recording an
outcome (e.g. a non-``ReproError`` escaped the attempt entirely), the
claim expires after ``probe_timeout`` seconds and :meth:`select` hands
the probe to the next caller instead of leaving the rung stuck
half-open forever.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from ..backend.registry import TIERS
from .incidents import IncidentLog

__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "VariantHealth",
    "DegradationLadder",
]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass
class VariantHealth:
    """Health record of one ladder rung."""

    name: str
    state: str = CLOSED
    window: deque = field(default_factory=lambda: deque(maxlen=16))
    consecutive_failures: int = 0
    invocations: int = 0
    failures: int = 0
    trips: int = 0
    cooldown: float = 0.0
    open_until: float = 0.0
    half_open_successes: int = 0
    #: a half-open rung serves exactly one in-flight probe at a time;
    #: set when :meth:`DegradationLadder.select` hands the probe to a
    #: caller, cleared when its outcome is recorded
    probe_in_flight: bool = False
    #: clock stamp of the current probe claim — the lease start; a
    #: claim older than the ladder's ``probe_timeout`` is reclaimable
    probe_claimed_at: float = 0.0

    def error_rate(self) -> float:
        """Failure fraction over the sliding window (0.0 when empty)."""
        if not self.window:
            return 0.0
        return sum(1 for ok in self.window if not ok) / len(self.window)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "state": self.state,
            "error_rate": round(self.error_rate(), 4),
            "consecutive_failures": self.consecutive_failures,
            "invocations": self.invocations,
            "failures": self.failures,
            "trips": self.trips,
            "cooldown": self.cooldown,
        }


class DegradationLadder:
    """Ordered variants with circuit-breaker demotion and re-promotion.

    Parameters
    ----------
    variants:
        Rung names, fastest first (default: the registry ladder,
        ``TIERS.ladder_order()`` — see
        :class:`~repro.backend.registry.TierRegistry`).
    window:
        Sliding-window length of each rung's error-rate record.
    failure_threshold:
        Consecutive failures that trip a closed circuit (1 = demote on
        the first fault, the right default for mid-solve recovery).
    base_cooldown / cooldown_factor / max_cooldown:
        Exponential cooldown schedule (seconds) between trips.
    promote_after:
        Consecutive half-open probe successes required to re-close.
    probe_timeout:
        Lease duration (seconds) of the single half-open probe slot.
        A prober that dies without recording an outcome would
        otherwise leave its rung half-open-with-slot-taken forever —
        skipped by every worker with no recovery path; after this long
        :meth:`select` reclaims the slot and re-probes.
    clock:
        Monotonic time source (injectable for tests).
    log:
        Shared :class:`~repro.resilience.incidents.IncidentLog`; ladder
        moves (``demote``/``probe``/``promote``) are recorded there.
    """

    def __init__(
        self,
        variants: tuple[str, ...] | None = None,
        *,
        window: int = 16,
        failure_threshold: int = 1,
        base_cooldown: float = 2.0,
        cooldown_factor: float = 2.0,
        max_cooldown: float = 300.0,
        promote_after: int = 2,
        probe_timeout: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
        log: IncidentLog | None = None,
    ) -> None:
        if variants is None:
            variants = TIERS.ladder_order()
        if len(variants) < 2:
            raise ValueError("a ladder needs at least two rungs")
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        if promote_after < 1:
            raise ValueError("promote_after must be positive")
        if probe_timeout <= 0:
            raise ValueError("probe_timeout must be positive")
        self.variants = tuple(variants)
        self.probe_timeout = probe_timeout
        self.failure_threshold = failure_threshold
        self.base_cooldown = base_cooldown
        self.cooldown_factor = cooldown_factor
        self.max_cooldown = max_cooldown
        self.promote_after = promote_after
        self.clock = clock
        self.log = log if log is not None else IncidentLog()
        self.health: dict[str, VariantHealth] = {
            name: VariantHealth(name, window=deque(maxlen=window))
            for name in self.variants
        }
        #: guards every state transition — the ladder is shared by all
        #: solve-service workers (re-entrant: ``record_failure`` calls
        #: ``trip`` with the lock held)
        self._lock = threading.RLock()

    def _start_index(self, ceiling: str | None) -> int:
        if ceiling is None:
            return 0
        try:
            return self.variants.index(ceiling)
        except ValueError:
            raise KeyError(
                f"unknown ladder rung {ceiling!r}; known: {self.variants}"
            ) from None

    # -- selection ------------------------------------------------------
    def select(self, *, ceiling: str | None = None) -> str:
        """The rung to serve the next invocation: the highest variant
        whose circuit admits traffic.  An open circuit whose cooldown
        has expired transitions to half-open (a probe) here; the caller
        that receives the transition owns the single probe slot, and
        concurrent callers skip the rung until the probe's outcome is
        recorded.

        ``ceiling`` restricts selection to rungs at or below the named
        variant — the solve service forces ``polymg-naive`` for
        low-priority tenants under overload by passing it here.
        """
        with self._lock:
            now = self.clock()
            for name in self.variants[self._start_index(ceiling):]:
                h = self.health[name]
                if h.state == CLOSED:
                    return name
                if h.state == OPEN and now >= h.open_until:
                    h.state = HALF_OPEN
                    h.half_open_successes = 0
                    h.probe_in_flight = True
                    h.probe_claimed_at = now
                    self.log.record(
                        "probe",
                        variant=name,
                        details={"after_cooldown": h.cooldown},
                    )
                    return name
                if h.state == HALF_OPEN and not h.probe_in_flight:
                    h.probe_in_flight = True
                    h.probe_claimed_at = now
                    return name
                if (
                    h.state == HALF_OPEN
                    and now - h.probe_claimed_at >= self.probe_timeout
                ):
                    # the probe lease expired: its holder died without
                    # ever recording an outcome; hand the slot to this
                    # caller so the rung is not skipped forever
                    h.probe_claimed_at = now
                    self.log.record(
                        "probe",
                        variant=name,
                        action="lease-reclaimed",
                        details={"probe_timeout": self.probe_timeout},
                    )
                    return name
                # OPEN still cooling, or HALF_OPEN with its probe slot
                # leased to another worker: try the next rung down
            # every circuit is open or probing: the last rung is the
            # degradation floor — it serves regardless
            return self.variants[-1]

    def active(self, *, ceiling: str | None = None) -> str:
        """Like :meth:`select` but side-effect free (no probe
        transition, no slot claim): the rung :meth:`select` would
        *currently* return if every open cooldown were still running."""
        with self._lock:
            for name in self.variants[self._start_index(ceiling):]:
                h = self.health[name]
                if h.state in (CLOSED, HALF_OPEN):
                    return name
            return self.variants[-1]

    # -- outcome recording ----------------------------------------------
    def record_success(self, name: str) -> None:
        with self._lock:
            h = self.health[name]
            h.invocations += 1
            h.window.append(True)
            if h.state == HALF_OPEN:
                h.probe_in_flight = False
                h.probe_claimed_at = 0.0
                h.half_open_successes += 1
                if h.half_open_successes >= self.promote_after:
                    h.state = CLOSED
                    h.consecutive_failures = 0
                    h.cooldown = 0.0
                    self.log.record(
                        "promote",
                        variant=name,
                        details={
                            "probe_successes": h.half_open_successes
                        },
                    )
            else:
                h.consecutive_failures = 0

    def record_failure(
        self, name: str, error: Exception | None = None
    ) -> None:
        with self._lock:
            h = self.health[name]
            h.invocations += 1
            h.failures += 1
            h.window.append(False)
            h.consecutive_failures += 1
            if h.state == HALF_OPEN:
                h.probe_in_flight = False
                h.probe_claimed_at = 0.0
            if h.state == HALF_OPEN or (
                h.state == CLOSED
                and h.consecutive_failures >= self.failure_threshold
            ):
                self.trip(name, error=error)

    def trip(self, name: str, *, error: Exception | None = None,
             reason: str | None = None) -> None:
        """Open ``name``'s circuit (demotion) with exponential cooldown.
        Also callable directly, e.g. by the supervisor's stagnation
        remediation."""
        with self._lock:
            h = self.health[name]
            h.trips += 1
            if h.cooldown <= 0.0:
                h.cooldown = self.base_cooldown
            else:
                h.cooldown = min(
                    h.cooldown * self.cooldown_factor, self.max_cooldown
                )
            h.open_until = self.clock() + h.cooldown
            h.state = OPEN
            h.half_open_successes = 0
            h.probe_in_flight = False
            h.probe_claimed_at = 0.0
            self.log.record(
                "demote",
                variant=name,
                error=(
                    f"{type(error).__name__}: {error}"
                    if error is not None
                    else None
                ),
                action=reason or "circuit-open",
                details={"cooldown": h.cooldown, "trips": h.trips},
            )

    # -- reporting ------------------------------------------------------
    def snapshot(self) -> dict:
        """Health of every rung, for structured reports."""
        with self._lock:
            return {
                name: self.health[name].to_dict()
                for name in self.variants
            }
