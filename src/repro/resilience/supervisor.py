"""Supervised multigrid solving: deadlines, checkpoints, remediation.

:class:`SolveSupervisor` wraps the cycle iteration of
:func:`repro.multigrid.cycles.solve_compiled` with the production
concerns that a bare solve loop lacks:

* **wall-clock deadline and cycle budget** — a solve that cannot finish
  in time stops cleanly with its best-so-far iterate and a structured
  ``deadline`` incident instead of running forever;
* **checkpoint/restart** — after every accepted cycle the last-known-
  good iterate and residual history are snapshotted
  (:class:`SolveCheckpoint`); a mid-solve fault restores the checkpoint
  and retries the *same* cycle on the demoted ladder rung, so converged
  work is never discarded;
* **stagnation detection** — divergence is already caught by
  :class:`~repro.backend.guards.ResidualMonitor`; the supervisor
  additionally watches the residual *reduction factor* over a sliding
  window and, when its geometric mean rises above
  ``stagnation_floor`` (the solver is no longer making progress),
  applies the remediation ladder in order: bump the smoothing steps,
  switch the cycle type V->W, then demote the serving variant;
* **resource hygiene** — every rung's allocator is leak-checked at
  solve end (outstanding-buffer accounting -> ``leak`` incidents) and
  pools are trimmed on demotion (see
  :class:`~repro.resilience.pipeline.ResilientPipeline`).

Every event lands in one :class:`~repro.resilience.incidents.IncidentLog`
— returned on the :class:`SupervisedSolveResult`, mirrored onto the
involved compiled pipelines' :class:`~repro.passes.manager.CompileReport`
— together with the final per-rung health snapshot.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from ..backend.guards import ResidualMonitor
from ..errors import NumericalDivergenceError, ReproError, SolveAbortedError
from .incidents import IncidentLog
from .ladder import DegradationLadder
from .pipeline import ResilientPipeline

__all__ = [
    "SolveCheckpoint",
    "SupervisorPolicy",
    "SupervisedSolveResult",
    "SolveSupervisor",
]

REMEDIATION_ORDER = ("bump-smoothing", "switch-cycle", "demote")


@dataclass
class SolveCheckpoint:
    """Last-known-good solve state, snapshotted after every accepted
    cycle.  ``u`` is a private copy: a faulting invocation can never
    corrupt it."""

    u: np.ndarray
    cycle: int
    residual_norms: list[float]
    variant: str | None

    def to_dict(self) -> dict:
        return {
            "cycle": self.cycle,
            "norm": self.residual_norms[-1],
            "variant": self.variant,
            "shape": list(self.u.shape),
        }

    # -- persistence -----------------------------------------------------
    # A checkpoint round-trips through a single ``.npz`` file so a solve
    # can resume in a *different process*: the service's drain/crash
    # recovery serializes unfinished solves here and a fresh worker (or
    # a fresh interpreter) reloads and resumes them.  ``f`` (the rhs,
    # required to resume) and arbitrary request metadata ride along.

    def save(
        self,
        path: str | os.PathLike,
        *,
        f: np.ndarray | None = None,
        meta: dict | None = None,
    ) -> Path:
        """Serialize to ``path`` (atomic write via a temp file)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "u": self.u,
            "residual_norms": np.asarray(
                self.residual_norms, dtype=np.float64
            ),
            "meta": np.frombuffer(
                json.dumps(
                    {
                        "cycle": self.cycle,
                        "variant": self.variant,
                        **(meta or {}),
                    }
                ).encode(),
                dtype=np.uint8,
            ),
        }
        if f is not None:
            payload["f"] = f
        tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
        with open(tmp, "wb") as fh:
            np.savez(fh, **payload)
        os.replace(tmp, path)
        return path

    @classmethod
    def load(
        cls, path: str | os.PathLike
    ) -> tuple["SolveCheckpoint", np.ndarray | None, dict]:
        """Deserialize ``(checkpoint, f, meta)`` from :meth:`save`'s
        format.  ``f`` is ``None`` when the writer did not include the
        rhs."""
        with np.load(Path(path)) as data:
            meta = json.loads(bytes(data["meta"]).decode())
            cycle = int(meta.pop("cycle"))
            variant = meta.pop("variant")
            ckpt = cls(
                u=np.array(data["u"], copy=True),
                cycle=cycle,
                residual_norms=[
                    float(x) for x in data["residual_norms"]
                ],
                variant=variant,
            )
            f = (
                np.array(data["f"], copy=True)
                if "f" in data.files
                else None
            )
        return ckpt, f, meta


@dataclass
class SupervisorPolicy:
    """Budgets and thresholds of one supervised solve."""

    max_cycles: int = 30
    deadline: float | None = None  # seconds of wall clock
    tol: float | None = None
    growth_factor: float = 100.0  # ResidualMonitor divergence threshold
    stagnation_window: int = 4
    stagnation_floor: float = 0.95  # geo-mean reduction factor above
    #                                 this over the window = stagnation
    max_restores: int = 8  # checkpoint-restore budget per solve
    smoothing_bump: int = 1  # extra pre/post steps per remediation
    remediation_order: tuple[str, ...] = REMEDIATION_ORDER


@dataclass
class SupervisedSolveResult:
    """Outcome of one supervised solve, with its full audit trail."""

    u: np.ndarray
    residual_norms: list[float]
    cycles: int
    status: str  # "converged" | "cycle-budget" | "deadline" | "preempted"
    variant_trail: list[str] = field(default_factory=list)
    restores: int = 0
    remediations: list[str] = field(default_factory=list)
    incidents: IncidentLog = field(default_factory=IncidentLog)
    health: dict = field(default_factory=dict)
    #: the final last-known-good checkpoint — a ``"preempted"`` solve
    #: resumes from exactly this state (possibly in another process,
    #: via :meth:`SolveCheckpoint.save`)
    checkpoint: "SolveCheckpoint | None" = None

    @property
    def converged(self) -> bool:
        return self.status == "converged"

    def convergence_factors(self) -> list[float]:
        return [
            b / a if a > 0 else 0.0
            for a, b in zip(self.residual_norms, self.residual_norms[1:])
        ]

    def report(self) -> dict:
        """The structured report: outcome, incident trail, health."""
        return {
            "status": self.status,
            "cycles": self.cycles,
            "restores": self.restores,
            "residual_norms": list(self.residual_norms),
            "variant_trail": list(self.variant_trail),
            "remediations": list(self.remediations),
            "incidents": self.incidents.to_dicts(),
            "health": dict(self.health),
        }


class SolveSupervisor:
    """Runs supervised multigrid solves over a degradation ladder.

    The supervisor owns a :class:`ResilientPipeline` (variant
    compilation, verification, graded demotion) and drives it one cycle
    at a time so it can checkpoint between cycles and restore on
    faults.  It is reusable: ladder health persists across
    :meth:`solve` calls, so a variant demoted in one solve is still in
    cooldown for the next — service semantics, not per-call amnesia.
    """

    def __init__(
        self,
        pipeline,
        policy: SupervisorPolicy | None = None,
        ladder: DegradationLadder | None = None,
        *,
        verify_level: str = "cheap",
        config_overrides: dict | None = None,
        rung_ceiling: str | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy or SupervisorPolicy()
        self.clock = clock
        self.ladder = ladder if ladder is not None else DegradationLadder()
        self.log = self.ladder.log
        self.resilient = ResilientPipeline(
            pipeline,
            self.ladder,
            verify_level=verify_level,
            config_overrides=config_overrides,
            log=self.log,
            rung_ceiling=rung_ceiling,
        )

    @property
    def pipeline(self):
        return self.resilient.pipeline

    # -- stagnation ------------------------------------------------------
    def _stagnating(self, norms: list[float], since: int) -> bool:
        """Geometric-mean reduction factor over the last
        ``stagnation_window`` accepted cycles (ignoring cycles before
        ``since``, i.e. before the previous remediation) at or above
        the floor."""
        w = self.policy.stagnation_window
        usable = norms[since:]
        if len(usable) < w + 1:
            return False
        tail = usable[-(w + 1):]
        if tail[-1] == 0.0:
            return False  # exactly converged
        factors = [
            b / a for a, b in zip(tail, tail[1:]) if a > 0
        ]
        if len(factors) < w:
            return False
        geo = math.exp(sum(math.log(f) for f in factors if f > 0) / w)
        return geo >= self.policy.stagnation_floor

    def _remediate(self, step: int, variant: str, cycle: int) -> str:
        """Apply the next remediation in order; returns the action."""
        order = self.policy.remediation_order
        action = order[step] if step < len(order) else "demote"
        pipeline = self.resilient.pipeline
        opts = getattr(pipeline, "opts", None)

        # both cycle-structure forms (flat MultigridOptions and the
        # per-level CycleSpec) expose the same remediation hooks:
        # bumped() adds smoothing, widened() returns the next-wider
        # branching schedule or None when not applicable
        wide = None
        if action == "switch-cycle" and opts is not None:
            wide = opts.widened()
        if action == "bump-smoothing" and opts is not None:
            self._rebuild(opts.bumped(self.policy.smoothing_bump))
        elif wide is not None:
            self._rebuild(wide)
        else:
            action = "demote"
            self.ladder.trip(variant, reason="stagnation")
            self.resilient._trim_pool(variant)

        self.log.record(
            "stagnation",
            variant=variant,
            cycle=cycle,
            action=action,
            details={
                "window": self.policy.stagnation_window,
                "floor": self.policy.stagnation_floor,
            },
        )
        return action

    def _rebuild(self, new_opts) -> None:
        """Swap in a rebuilt cycle specification (changed smoothing or
        cycle type).  The compiled-variant memo is dropped — the new
        spec has a new fingerprint — but ladder health survives."""
        from ..multigrid.cycles import build_poisson_cycle

        old = self.resilient.pipeline
        rebuilt = build_poisson_cycle(old.ndim, old.N, new_opts)
        self.resilient.pipeline = rebuilt
        self.resilient._compiled.clear()
        self.resilient._verdict.clear()

    # -- the solve loop --------------------------------------------------
    def solve(
        self,
        f: np.ndarray,
        *,
        u0: np.ndarray | None = None,
        resume_from: SolveCheckpoint | None = None,
        should_stop: Callable[[], bool] | None = None,
    ) -> SupervisedSolveResult:
        """Iterate supervised multigrid cycles on ``A_h u = f``.

        Raises :class:`~repro.errors.SolveAbortedError` only when the
        checkpoint-restore budget is exhausted (every ladder rung kept
        faulting); deadline and cycle-budget exhaustion return the
        best-so-far iterate with the corresponding ``status``.

        ``resume_from`` continues a previous solve from its
        last-known-good :class:`SolveCheckpoint` (same ``f``!) — cycle
        numbering, residual history, and the cycle budget all carry
        over, so a resumed solve is indistinguishable from one that was
        never interrupted.  ``should_stop`` is polled at every cycle
        boundary; when it returns true the solve stops cleanly with
        status ``"preempted"`` and its checkpoint on the result — the
        service's drain and worker-kill paths use this to hand a
        running solve to another worker without losing converged work.
        """
        from ..multigrid.kernels import norm_residual

        policy = self.policy
        pipeline = self.resilient.pipeline
        h = 1.0 / (pipeline.N + 1)

        monitor = ResidualMonitor(
            policy.growth_factor, pipeline=pipeline.name
        )
        if resume_from is not None:
            u = resume_from.u.copy()
            norms = list(resume_from.residual_norms)
            # replay the residual history so divergence is still judged
            # against the best norm the *whole* solve ever saw
            for norm in norms:
                monitor.observe(norm)
            checkpoint = SolveCheckpoint(
                u.copy(),
                resume_from.cycle,
                list(norms),
                resume_from.variant,
            )
        else:
            u = np.zeros_like(f) if u0 is None else u0.copy()
            norms = [float(norm_residual(u, f, h))]
            monitor.observe(norms[0])
            checkpoint = SolveCheckpoint(u.copy(), 0, list(norms), None)

        trail: list[str] = []
        remediations: list[str] = []
        restores = 0
        remediation_step = 0
        stagnation_since = 0
        status = "cycle-budget"
        start = self.clock()
        last_error: ReproError | None = None

        while checkpoint.cycle < policy.max_cycles:
            if should_stop is not None and should_stop():
                self.log.record(
                    "preempt",
                    cycle=checkpoint.cycle,
                    details=checkpoint.to_dict(),
                )
                status = "preempted"
                break
            if (
                policy.deadline is not None
                and self.clock() - start >= policy.deadline
            ):
                self.log.record(
                    "deadline",
                    cycle=checkpoint.cycle,
                    details={
                        "deadline": policy.deadline,
                        "norm": norms[-1],
                    },
                )
                status = "deadline"
                break

            pipeline = self.resilient.pipeline  # may have been rebuilt
            inputs = pipeline.make_inputs(checkpoint.u, f)
            # one attempt = one burst: on a whole-solve-capable rung up
            # to ``driver_hook_cycles`` cycles run inside a single
            # native call (so deadline/preemption/stagnation checks
            # happen at k-cycle hook boundaries); every other rung
            # serves exactly one cycle per attempt as before
            variant, burst, error = self.resilient.attempt_cycles(
                inputs,
                max_cycles=policy.max_cycles - checkpoint.cycle,
                tol=policy.tol,
                spec=(
                    pipeline.drive_spec()
                    if hasattr(pipeline, "drive_spec")
                    else None
                ),
            )

            if error is not None:
                last_error = error
                restores += 1
                self.log.record(
                    "checkpoint-restore",
                    variant=variant,
                    cycle=checkpoint.cycle,
                    error=f"{type(error).__name__}: {error}",
                    details=checkpoint.to_dict(),
                )
                if restores > policy.max_restores:
                    raise SolveAbortedError(
                        "checkpoint-restore budget exhausted",
                        pipeline=pipeline.name,
                        restores=restores,
                        cycle=checkpoint.cycle,
                        last_error=(
                            f"{type(error).__name__}: {error}"
                        ),
                    ) from error
                continue  # retry the same cycle from the checkpoint

            u_new = np.array(burst.outputs[pipeline.output.name], copy=True)
            if burst.norms is not None:
                cycle_norms = burst.norms
            else:
                cycle_norms = [float(norm_residual(u_new, f, h))]
            try:
                for norm in cycle_norms:
                    monitor.observe(norm)
            except NumericalDivergenceError as error:
                # executed cleanly but the residual blew up: demote the
                # serving variant and restore the checkpoint.  A driver
                # burst is transactional — divergence anywhere in it
                # discards the whole burst back to the pre-burst
                # checkpoint (the k-cycle hook granularity caveat)
                last_error = error
                self.resilient.report_failure(variant, error)
                restores += 1
                self.log.record(
                    "checkpoint-restore",
                    variant=variant,
                    cycle=checkpoint.cycle,
                    error=f"{type(error).__name__}: {error}",
                    details=checkpoint.to_dict(),
                )
                if restores > policy.max_restores:
                    raise SolveAbortedError(
                        "checkpoint-restore budget exhausted",
                        pipeline=pipeline.name,
                        restores=restores,
                        cycle=checkpoint.cycle,
                        last_error=(
                            f"{type(error).__name__}: {error}"
                        ),
                    ) from error
                continue

            # accepted: advance the checkpoint (one trail entry per
            # accepted cycle, so ``cycles == len(variant_trail)`` holds
            # for driver bursts too)
            cycle = checkpoint.cycle + len(cycle_norms)
            trail.extend([variant] * len(cycle_norms))
            norms.extend(cycle_norms)
            checkpoint = SolveCheckpoint(u_new, cycle, list(norms), variant)

            if policy.tol is not None and norms[-1] < policy.tol:
                status = "converged"
                break

            if self._stagnating(norms, stagnation_since):
                action = self._remediate(remediation_step, variant, cycle)
                remediations.append(action)
                remediation_step += 1
                stagnation_since = len(norms) - 1

        self._check_leaks()
        return SupervisedSolveResult(
            u=checkpoint.u,
            residual_norms=norms,
            cycles=checkpoint.cycle,
            status=status,
            variant_trail=trail,
            restores=restores,
            remediations=remediations,
            incidents=self.log,
            health=self.ladder.snapshot(),
            checkpoint=checkpoint,
        )

    # -- batched solving -------------------------------------------------
    def solve_batch(
        self,
        fs: list[np.ndarray],
        policies: "list[SupervisorPolicy] | None" = None,
        *,
        should_stop: Callable[[], bool] | None = None,
    ) -> list[SupervisedSolveResult]:
        """Solve several same-specification systems in lockstep.

        Coalesces ``len(fs)`` fresh solves into one supervised loop
        that executes each multigrid cycle for *all* of them with a
        single batched invocation
        (:meth:`~repro.resilience.pipeline.ResilientPipeline.attempt_batch`):
        one ladder selection, one compiled artifact, one kernel-tape
        walk over a stacked batch axis.  Each solve keeps its own
        policy (cycle budget, tolerance, deadline), residual monitor,
        residual history, and checkpoint, so the iterates are bitwise
        identical to running :meth:`solve` once per rhs; a solve that
        converges or exhausts its budget drops out of the batch while
        the rest continue.

        Fault handling is deliberately simpler than :meth:`solve`'s:
        an execution fault preempts every still-active solve, and a
        single solve's residual divergence preempts just that solve —
        both return status ``"preempted"`` with the last-known-good
        checkpoint instead of retrying inside the batch, and callers
        resume the preempted solves individually where the full
        restore/remediation machinery applies.  Stagnation remediation
        is likewise left to the per-solve path (a spec rebuild would
        change the pipeline under the whole batch).
        """
        from ..multigrid.kernels import norm_residual

        if policies is None:
            policies = [self.policy] * len(fs)
        if len(policies) != len(fs):
            raise ValueError("one policy per rhs required")
        pipeline = self.resilient.pipeline
        h = 1.0 / (pipeline.N + 1)

        monitors: list[ResidualMonitor] = []
        norms_per: list[list[float]] = []
        checkpoints: list[SolveCheckpoint] = []
        trails: list[list[str]] = []
        statuses: list[str | None] = []
        for f, pol in zip(fs, policies):
            u = np.zeros_like(f)
            norms = [float(norm_residual(u, f, h))]
            monitor = ResidualMonitor(
                pol.growth_factor, pipeline=pipeline.name
            )
            monitor.observe(norms[0])
            monitors.append(monitor)
            norms_per.append(norms)
            checkpoints.append(
                SolveCheckpoint(u.copy(), 0, list(norms), None)
            )
            trails.append([])
            statuses.append(None)

        start = self.clock()
        active = list(range(len(fs)))
        while active:
            if should_stop is not None and should_stop():
                for i in active:
                    statuses[i] = "preempted"
                    self.log.record(
                        "preempt",
                        cycle=checkpoints[i].cycle,
                        details=checkpoints[i].to_dict(),
                    )
                break

            still: list[int] = []
            for i in active:
                pol = policies[i]
                if checkpoints[i].cycle >= pol.max_cycles:
                    statuses[i] = "cycle-budget"
                elif (
                    pol.deadline is not None
                    and self.clock() - start >= pol.deadline
                ):
                    self.log.record(
                        "deadline",
                        cycle=checkpoints[i].cycle,
                        details={
                            "deadline": pol.deadline,
                            "norm": norms_per[i][-1],
                        },
                    )
                    statuses[i] = "deadline"
                else:
                    still.append(i)
            active = still
            if not active:
                break

            inputs_list = [
                pipeline.make_inputs(checkpoints[i].u, fs[i])
                for i in active
            ]
            variant, outs, error = self.resilient.attempt_batch(
                inputs_list
            )
            if error is not None:
                # no in-batch retry: hand every active solve back with
                # its checkpoint; resumed solves get the full per-solve
                # restore machinery
                self.log.record(
                    "batch-fault",
                    variant=variant,
                    error=f"{type(error).__name__}: {error}",
                    details={"batch": len(active)},
                )
                for i in active:
                    statuses[i] = "preempted"
                break

            still = []
            for i, out in zip(active, outs):
                u_new = np.array(out[pipeline.output.name], copy=True)
                norm = float(norm_residual(u_new, fs[i], h))
                try:
                    monitors[i].observe(norm)
                except NumericalDivergenceError as err:
                    self.resilient.report_failure(variant, err)
                    self.log.record(
                        "checkpoint-restore",
                        variant=variant,
                        cycle=checkpoints[i].cycle,
                        error=f"{type(err).__name__}: {err}",
                        details=checkpoints[i].to_dict(),
                    )
                    statuses[i] = "preempted"
                    continue
                cycle = checkpoints[i].cycle + 1
                trails[i].append(variant)
                norms_per[i].append(norm)
                checkpoints[i] = SolveCheckpoint(
                    u_new, cycle, list(norms_per[i]), variant
                )
                pol = policies[i]
                if pol.tol is not None and norm < pol.tol:
                    statuses[i] = "converged"
                else:
                    still.append(i)
            active = still

        self._check_leaks()
        return [
            SupervisedSolveResult(
                u=checkpoints[i].u,
                residual_norms=norms_per[i],
                cycles=checkpoints[i].cycle,
                status=statuses[i] or "cycle-budget",
                variant_trail=trails[i],
                incidents=self.log,
                health=self.ladder.snapshot(),
                checkpoint=checkpoints[i],
            )
            for i in range(len(fs))
        ]

    # -- resource hygiene ------------------------------------------------
    def _check_leaks(self) -> None:
        """Outstanding-buffer accounting at solve end: any rung whose
        allocator still holds lent buffers is a leak incident."""
        for name, compiled in self.resilient._compiled.items():
            alloc = compiled.allocator
            if alloc.outstanding:
                self.log.record(
                    "leak",
                    variant=name,
                    details={
                        "outstanding": alloc.outstanding,
                        "outstanding_bytes": alloc.outstanding_bytes,
                    },
                )
