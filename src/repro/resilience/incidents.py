"""Structured incident records shared by the resilience subsystem.

Every noteworthy runtime event — a fault, a circuit-breaker demotion, a
half-open probe, a re-promotion, a checkpoint restore, a stagnation
remediation, a deadline abort, a leak detection — is appended to an
:class:`IncidentLog` as an :class:`IncidentRecord`.  The log is the
single audit trail of a supervised solve: the supervisor returns it on
the solve result, mirrors each record onto the involved compiled
pipeline's :class:`~repro.passes.manager.CompileReport`, and the bench
report helpers (:func:`repro.bench.report.print_incident_log` /
``dump_incident_log``) render or persist it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["IncidentRecord", "IncidentLog"]


@dataclass
class IncidentRecord:
    """One resilience event.

    ``kind`` is the event class (``fault``, ``demote``, ``probe``,
    ``promote``, ``checkpoint-restore``, ``stagnation``, ``deadline``,
    ``leak``, ...); ``variant`` the ladder rung involved; ``cycle`` the
    multigrid cycle index (supervisor events) and ``invocation`` the
    pipeline invocation count; ``action`` the remediation taken;
    ``error`` the stringified fault, when one triggered the event.
    """

    seq: int
    kind: str
    variant: str | None = None
    cycle: int | None = None
    invocation: int | None = None
    action: str | None = None
    error: str | None = None
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        d: dict = {"seq": self.seq, "kind": self.kind}
        for key in ("variant", "cycle", "invocation", "action", "error"):
            value = getattr(self, key)
            if value is not None:
                d[key] = value
        if self.details:
            d["details"] = dict(self.details)
        return d

    def __str__(self) -> str:
        parts = [f"#{self.seq} {self.kind}"]
        if self.variant is not None:
            parts.append(f"variant={self.variant}")
        if self.cycle is not None:
            parts.append(f"cycle={self.cycle}")
        if self.action is not None:
            parts.append(f"action={self.action}")
        if self.error is not None:
            parts.append(f"error={self.error}")
        return " ".join(parts)


class IncidentLog:
    """Append-only, order-preserving record of resilience events."""

    def __init__(self) -> None:
        self.records: list[IncidentRecord] = []

    def record(self, kind: str, **fields) -> IncidentRecord:
        rec = IncidentRecord(seq=len(self.records), kind=kind, **fields)
        self.records.append(rec)
        return rec

    def kinds(self) -> list[str]:
        return [r.kind for r in self.records]

    def count(self, kind: str) -> int:
        return sum(1 for r in self.records if r.kind == kind)

    def of_kind(self, kind: str) -> list[IncidentRecord]:
        return [r for r in self.records if r.kind == kind]

    def to_dicts(self) -> list[dict]:
        return [r.to_dict() for r in self.records]

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dicts(), indent=indent)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[IncidentRecord]:
        return iter(self.records)

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self.records)
