"""Structured incident records shared by the resilience subsystem.

Every noteworthy runtime event — a fault, a circuit-breaker demotion, a
half-open probe, a re-promotion, a checkpoint restore, a stagnation
remediation, a deadline abort, a leak detection, an admission rejection
or overload transition in the solve service — is appended to an
:class:`IncidentLog` as an :class:`IncidentRecord`.  The log is the
single audit trail of a supervised solve: the supervisor returns it on
the solve result, mirrors each record onto the involved compiled
pipeline's :class:`~repro.passes.manager.CompileReport`, and the bench
report helpers (:func:`repro.bench.report.print_incident_log` /
``dump_incident_log``) render or persist it.

The log is thread-safe (the multi-tenant solve service appends from
every worker thread) and optionally **capacity-bounded**: constructed
with ``capacity=n`` it becomes a ring buffer that retains the most
recent ``n`` records and counts what it dropped (plus the wall-clock
timestamps of the first and last drop), so a long-running service
cannot grow its audit trail without bound while still reporting,
loudly, that truncation happened.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["IncidentRecord", "IncidentLog"]


@dataclass
class IncidentRecord:
    """One resilience event.

    ``kind`` is the event class (``fault``, ``demote``, ``probe``,
    ``promote``, ``checkpoint-restore``, ``stagnation``, ``deadline``,
    ``leak``, ``admission-reject``, ``overload``, ...); ``variant`` the
    ladder rung involved; ``cycle`` the multigrid cycle index
    (supervisor events) and ``invocation`` the pipeline invocation
    count; ``action`` the remediation taken; ``error`` the stringified
    fault, when one triggered the event.
    """

    seq: int
    kind: str
    variant: str | None = None
    cycle: int | None = None
    invocation: int | None = None
    action: str | None = None
    error: str | None = None
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        d: dict = {"seq": self.seq, "kind": self.kind}
        for key in ("variant", "cycle", "invocation", "action", "error"):
            value = getattr(self, key)
            if value is not None:
                d[key] = value
        if self.details:
            d["details"] = dict(self.details)
        return d

    def __str__(self) -> str:
        parts = [f"#{self.seq} {self.kind}"]
        if self.variant is not None:
            parts.append(f"variant={self.variant}")
        if self.cycle is not None:
            parts.append(f"cycle={self.cycle}")
        if self.action is not None:
            parts.append(f"action={self.action}")
        if self.error is not None:
            parts.append(f"error={self.error}")
        return " ".join(parts)


class IncidentLog:
    """Append-only, order-preserving record of resilience events.

    Parameters
    ----------
    capacity:
        ``None`` (default) keeps every record — the right choice for a
        single supervised solve.  A positive integer turns the log into
        a ring buffer holding the most recent ``capacity`` records;
        older records are dropped (counted in :attr:`dropped`, with the
        wall-clock time of the first and last drop retained) so a
        service running for days keeps bounded memory.  Sequence
        numbers keep counting monotonically across drops, so a gap in
        ``seq`` is visible evidence of truncation.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive or None")
        self.capacity = capacity
        self._records: deque[IncidentRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self.dropped = 0
        self.first_drop_ts: float | None = None
        self.last_drop_ts: float | None = None

    @property
    def records(self) -> list[IncidentRecord]:
        """Snapshot of the retained records, oldest first."""
        with self._lock:
            return list(self._records)

    def record(self, kind: str, **fields) -> IncidentRecord:
        with self._lock:
            rec = IncidentRecord(seq=self._seq, kind=kind, **fields)
            self._seq += 1
            if (
                self.capacity is not None
                and len(self._records) == self.capacity
            ):
                now = time.time()
                self.dropped += 1
                if self.first_drop_ts is None:
                    self.first_drop_ts = now
                self.last_drop_ts = now
            self._records.append(rec)
            return rec

    def ring_stats(self) -> dict:
        """Ring-buffer accounting: capacity, retained count, drop
        counter, and first/last drop timestamps (``None`` when nothing
        was ever dropped)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "retained": len(self._records),
                "total_recorded": self._seq,
                "dropped": self.dropped,
                "first_drop_ts": self.first_drop_ts,
                "last_drop_ts": self.last_drop_ts,
            }

    def kinds(self) -> list[str]:
        return [r.kind for r in self.records]

    def count(self, kind: str) -> int:
        return sum(1 for r in self.records if r.kind == kind)

    def of_kind(self, kind: str) -> list[IncidentRecord]:
        return [r for r in self.records if r.kind == kind]

    def to_dicts(self) -> list[dict]:
        return [r.to_dict() for r in self.records]

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dicts(), indent=indent)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[IncidentRecord]:
        return iter(self.records)

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self.records)
