"""Resilience subsystem: graded degradation, supervision, checkpoints.

Production multigrid serving (ROADMAP north star) cannot treat every
fault as fatal, nor pin a pipeline to the slow path forever after one
transient fault — auto-generated multigrid configurations routinely
fail to converge (Schmitt et al., PAPERS.md), so runtime convergence
supervision with automatic remediation is a first-class subsystem:

* :class:`~repro.resilience.ladder.DegradationLadder` — ordered variant
  ladder (``polymg-opt+`` -> ``polymg-opt`` -> ``polymg-dtile-opt+`` ->
  ``polymg-naive``) with per-variant health records and circuit
  breakers (closed/open/half-open), exponential cooldown, and automatic
  re-promotion;
* :class:`~repro.resilience.pipeline.ResilientPipeline` — ladder-driven
  fault-tolerant execution; every rung compiles through the
  content-addressed compile cache;
* :class:`~repro.resilience.supervisor.SolveSupervisor` — per-solve
  deadlines and cycle budgets, residual stagnation detection with a
  remediation ladder (bump smoothing -> switch V->W -> demote), and
  checkpoint/restart of the last-known-good iterate;
* :class:`~repro.resilience.incidents.IncidentLog` — the structured
  audit trail, mirrored onto compiled pipelines' compile reports and
  renderable via :func:`repro.bench.report.print_incident_log`.
"""

from .incidents import IncidentLog, IncidentRecord
from .ladder import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    DegradationLadder,
    VariantHealth,
)
from .pipeline import ResilientPipeline
from .supervisor import (
    SolveCheckpoint,
    SolveSupervisor,
    SupervisedSolveResult,
    SupervisorPolicy,
)

__all__ = [
    "IncidentLog",
    "IncidentRecord",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "DegradationLadder",
    "VariantHealth",
    "ResilientPipeline",
    "SolveCheckpoint",
    "SolveSupervisor",
    "SupervisedSolveResult",
    "SupervisorPolicy",
]
