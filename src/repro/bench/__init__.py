"""Benchmark harness: Table-2 workload definitions, the shared
model/measured runners, and table printers used by benchmarks/."""

from .report import (
    banner,
    print_execution_stats,
    print_series,
    print_table,
)
from .workloads import (
    NAS_WORKLOADS,
    POISSON_WORKLOADS,
    SMALL_TILES,
    VARIANT_ORDER,
    Workload,
    cached_speedups,
    geomean,
    model_speedups,
    workload,
)

__all__ = [
    "banner",
    "print_execution_stats",
    "print_series",
    "print_table",
    "NAS_WORKLOADS",
    "POISSON_WORKLOADS",
    "SMALL_TILES",
    "VARIANT_ORDER",
    "Workload",
    "cached_speedups",
    "geomean",
    "model_speedups",
    "workload",
]
