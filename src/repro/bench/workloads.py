"""Benchmark workload definitions (paper Table 2) and the shared runner.

Defines the paper's benchmark matrix — V/W-cycle x 2-D/3-D x 4-4-4 /
10-0-0 smoothing, classes B and C, plus NAS MG — and the machinery the
per-figure benchmark files use:

* ``model_speedups``: compile every variant at paper scale, autotune the
  tunable ones over the paper's configuration spaces, and evaluate the
  Table-1 machine model — this regenerates the *paper-shape* numbers;
* ``measured_time``: wall-clock execution of the numpy backend at laptop
  scale (each benchmark file pairs both, per DESIGN.md section 5).

Environment knobs: ``REPRO_FULL_TUNE=0`` shrinks the tuning space for
quick runs (default is the paper's full 80/135-point search);
``REPRO_CLASS_C=0`` skips class C rows.

All compiles route through the content-addressed compile cache
(:mod:`repro.cache`), so figures sharing workload rows pay the
compiler passes once per distinct (spec, params, config) fingerprint.
:func:`variant_compile_report` exposes the per-pass
:class:`~repro.passes.manager.CompileReport` of one (workload, class,
variant) cell for the harness to print or dump as JSON.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from functools import lru_cache

from ..model import PAPER_MACHINE, PipelineCostModel
from ..multigrid.cycles import build_poisson_cycle
from ..multigrid.reference import MultigridOptions
from ..tuning import autotune_model
from ..variants import (
    POLYMG_VARIANTS,
    handopt_model,
    handopt_pluto_model,
    polymg_dtile_opt_plus,
    polymg_naive,
    polymg_opt,
    polymg_opt_plus,
)

__all__ = [
    "Workload",
    "POISSON_WORKLOADS",
    "NAS_WORKLOADS",
    "VARIANT_ORDER",
    "SMALL_TILES",
    "laptop_size",
    "model_speedups",
    "variant_compile_report",
    "geomean",
    "full_tuning",
]

#: laptop-scale tile sizes for wall-clock runs
SMALL_TILES = {1: (64,), 2: (16, 64), 3: (8, 8, 16)}

VARIANT_ORDER = (
    "handopt",
    "handopt+pluto",
    "polymg-opt",
    "polymg-opt+",
    "polymg-dtile-opt+",
)


@dataclass(frozen=True)
class Workload:
    """One benchmark row of Table 2."""

    name: str  # e.g. "V-2D-4-4-4"
    ndim: int
    cycle: str
    smoothing: tuple[int, int, int]
    levels: int
    size: dict[str, int]  # class -> N
    iters: dict[str, int]  # class -> cycle iterations

    def options(self) -> MultigridOptions:
        n1, n2, n3 = self.smoothing
        return MultigridOptions(
            cycle=self.cycle, n1=n1, n2=n2, n3=n3, levels=self.levels
        )

    def pipeline(self, cls: str):
        return build_poisson_cycle(
            self.ndim, self.size[cls], self.options()
        )

    def label(self, cls: str) -> str:
        return f"{self.name} class {cls}"


def _poisson(name, ndim, cycle, smoothing) -> Workload:
    # Table 2: 2-D B=8192^2 x10, C=16384^2 x10; 3-D B=256^3 x25,
    # C=512^3 x10 (paper levels: 4, per the Table 3 stage counts)
    if ndim == 2:
        size = {"B": 8192, "C": 16384, "laptop": 256}
        iters = {"B": 10, "C": 10, "laptop": 3}
    else:
        size = {"B": 256, "C": 512, "laptop": 32}
        iters = {"B": 25, "C": 10, "laptop": 3}
    return Workload(name, ndim, cycle, smoothing, 4, size, iters)


POISSON_WORKLOADS: tuple[Workload, ...] = (
    _poisson("V-2D-4-4-4", 2, "V", (4, 4, 4)),
    _poisson("V-2D-10-0-0", 2, "V", (10, 0, 0)),
    _poisson("W-2D-4-4-4", 2, "W", (4, 4, 4)),
    _poisson("W-2D-10-0-0", 2, "W", (10, 0, 0)),
    _poisson("V-3D-4-4-4", 3, "V", (4, 4, 4)),
    _poisson("V-3D-10-0-0", 3, "V", (10, 0, 0)),
    _poisson("W-3D-4-4-4", 3, "W", (4, 4, 4)),
    _poisson("W-3D-10-0-0", 3, "W", (10, 0, 0)),
)

#: NAS MG rows: class -> (N, iterations, levels)
NAS_WORKLOADS = {
    "B": (256, 20, 7),
    "C": (512, 20, 8),
    "laptop": (32, 4, 4),
}


def laptop_size(workload: Workload) -> int:
    return workload.size["laptop"]


def full_tuning() -> bool:
    return os.environ.get("REPRO_FULL_TUNE", "1") != "0"


def include_class_c() -> bool:
    return os.environ.get("REPRO_CLASS_C", "1") != "0"


def _tuned_time(pipe, base_cfg, threads, cycles) -> tuple[float, object]:
    if full_tuning():
        res = autotune_model(
            pipe, base_cfg, PAPER_MACHINE, threads=threads, cycles=cycles
        )
        return res.best.score, res
    # quick mode: a small representative sub-space
    best = math.inf
    ndim = pipe.ndim
    tiles2 = [(16, 256), (32, 256), (64, 128)]
    tiles3 = [(8, 16, 128), (16, 16, 64), (8, 32, 256)]
    for tiles in tiles2 if ndim == 2 else tiles3:
        for limit in (4, 8):
            cfg = base_cfg.with_(
                tile_sizes={**base_cfg.tile_sizes, ndim: tiles},
                group_size_limit=limit,
            )
            compiled = pipe.compile(cfg)
            t = PipelineCostModel(compiled, PAPER_MACHINE).run_time(
                threads, cycles
            )
            best = min(best, t)
    return best, None


def model_speedups(
    workload: Workload,
    cls: str,
    threads: int = 24,
    variants: tuple[str, ...] = VARIANT_ORDER,
) -> dict[str, float]:
    """Speedups over ``polymg-naive`` at paper scale under the machine
    model; tunable variants are autotuned like the paper's section
    3.2.4."""
    pipe = workload.pipeline(cls)
    cycles = workload.iters[cls]
    times: dict[str, float] = {}
    times["polymg-naive"] = PipelineCostModel(
        pipe.compile(polymg_naive()), PAPER_MACHINE
    ).run_time(threads, cycles)
    fixed = {
        "handopt": handopt_model,
        "handopt+pluto": handopt_pluto_model,
    }
    tunable = {
        "polymg-opt": polymg_opt,
        "polymg-opt+": polymg_opt_plus,
        "polymg-dtile-opt+": polymg_dtile_opt_plus,
    }
    for name in variants:
        if name in fixed:
            times[name] = PipelineCostModel(
                pipe.compile(fixed[name]()), PAPER_MACHINE
            ).run_time(threads, cycles)
        elif name in tunable:
            times[name], _ = _tuned_time(
                pipe, tunable[name](), threads, cycles
            )
        else:
            raise KeyError(name)
    base = times["polymg-naive"]
    return {
        name: base / t for name, t in times.items() if name != "polymg-naive"
    } | {"polymg-naive-time": base}


def variant_compile_report(
    workload: Workload, cls: str, variant: str = "polymg-opt+"
):
    """Compile one (workload, class, variant) cell and return its
    per-pass :class:`~repro.passes.manager.CompileReport` — repeated
    calls are compile-cache hits sharing one report."""
    pipe = workload.pipeline(cls)
    compiled = pipe.compile(POLYMG_VARIANTS[variant]())
    return compiled.report


def geomean(values) -> float:
    values = list(values)
    return math.exp(sum(math.log(v) for v in values) / len(values))


_BY_NAME = {w.name: w for w in POISSON_WORKLOADS}


def workload(name: str) -> Workload:
    return _BY_NAME[name]


@lru_cache(maxsize=None)
def cached_speedups(
    name: str, cls: str, threads: int = 24
) -> dict[str, float]:
    """Memoized :func:`model_speedups` (several figures share rows)."""
    return model_speedups(_BY_NAME[name], cls, threads)
