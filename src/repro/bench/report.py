"""Table/series printers shared by the benchmark files.

Every ``benchmarks/bench_*.py`` regenerates one of the paper's tables or
figures and prints the rows/series in the same layout the paper reports,
with the paper's published value alongside ours where the paper states
one.

:func:`print_compile_report` and :func:`dump_compile_report` render a
:class:`~repro.passes.manager.CompileReport` — the per-pass
instrumentation attached to every compiled pipeline — as a table or a
JSON file for offline analysis.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

__all__ = [
    "print_table",
    "print_series",
    "banner",
    "print_compile_report",
    "dump_compile_report",
    "print_execution_stats",
    "print_incident_log",
    "dump_incident_log",
]


def banner(title: str) -> None:
    line = "=" * max(60, len(title) + 4)
    print(f"\n{line}\n  {title}\n{line}")


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    floatfmt: str = "{:.2f}",
) -> None:
    rendered = []
    for row in rows:
        rendered.append(
            [
                floatfmt.format(v) if isinstance(v, float) else str(v)
                for v in row
            ]
        )
    widths = [
        max(len(h), *(len(r[i]) for r in rendered)) if rendered else len(h)
        for i, h in enumerate(headers)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rendered:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def print_series(name: str, xs: Sequence, ys: Sequence[float]) -> None:
    print(f"{name}:")
    for x, y in zip(xs, ys):
        bar = "#" * max(1, int(round(y * 8)))
        print(f"  {str(x):>10s}  {y:7.3f}  {bar}")


def print_compile_report(report) -> None:
    """Render a :class:`~repro.passes.manager.CompileReport` as a
    per-pass timing table."""
    banner(
        f"compile report: {report.pipeline} "
        f"({report.total_wall_time * 1e3:.2f} ms, "
        f"{report.cache_hits} cache hits)"
    )
    rows = []
    for record in report.passes:
        produced = ", ".join(
            record.outputs.get(key, key) for key in record.produces
        )
        rows.append(
            [record.name, record.wall_time * 1e3, produced]
        )
    print_table(["pass", "ms", "produces"], rows, floatfmt="{:.3f}")
    if getattr(report, "native_compile_time_s", 0.0):
        print(
            f"native JIT: {report.native_compile_time_s * 1e3:.1f} ms "
            "cc wall time"
        )


def print_execution_stats(stats, title: str = "execution stats") -> None:
    """Render an :class:`~repro.backend.executor.ExecutionStats`,
    including a per-execution-tier section (executions, fallbacks,
    cache hits, compile/plan wall time, coalesced batch members) for
    every tier the executor touched."""
    banner(title)
    rows = [["executions", stats.executions]]
    for name, tier in sorted(stats.tiers.items()):
        rows.append([f"[{name}] executions", tier.executions])
        rows.append([f"[{name}] fallbacks", tier.fallbacks])
        rows.append([f"[{name}] cache hits", tier.cache_hits])
        if tier.compile_time_s:
            rows.append(
                [f"[{name}] compile (s)", float(tier.compile_time_s)]
            )
        if tier.plan_time_s:
            rows.append([f"[{name}] plan (s)", float(tier.plan_time_s)])
        if tier.coalesced:
            rows.append([f"[{name}] coalesced", tier.coalesced])
    print_table(["counter", "value"], rows, floatfmt="{:.3f}")


def dump_compile_report(report, path) -> None:
    """Write a compile report to ``path`` as JSON (the bench harness's
    machine-readable sidecar)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report.to_dict(), fh, indent=2)
        fh.write("\n")


def _incident_dicts(log) -> list[dict]:
    """Accept an IncidentLog, a SupervisedSolveResult, a CompileReport,
    or a plain list of record dicts."""
    if hasattr(log, "to_dicts"):  # IncidentLog
        return log.to_dicts()
    if hasattr(log, "incidents"):  # SupervisedSolveResult / CompileReport
        inner = log.incidents
        return inner.to_dicts() if hasattr(inner, "to_dicts") else list(inner)
    return list(log)


def _ring_stats(log) -> dict | None:
    """Ring-buffer accounting of a capacity-bounded IncidentLog (also
    reachable through a result/report's ``.incidents``), else None."""
    if hasattr(log, "ring_stats"):
        return log.ring_stats()
    inner = getattr(log, "incidents", None)
    if hasattr(inner, "ring_stats"):
        return inner.ring_stats()
    return None


def print_incident_log(log, title: str = "incident log") -> None:
    """Render a resilience incident trail
    (:class:`~repro.resilience.incidents.IncidentLog`, a supervised
    solve result, or a compile report carrying incidents) as a table.
    A ring-buffered log that dropped records says so up front — a
    truncated audit trail must never read as a complete one."""
    records = _incident_dicts(log)
    ring = _ring_stats(log)
    banner(f"{title} ({len(records)} incidents)")
    if ring and ring["dropped"]:
        span = ring["last_drop_ts"] - ring["first_drop_ts"]
        print(
            f"!! ring buffer dropped {ring['dropped']} older incidents "
            f"({ring['total_recorded']} total recorded, capacity "
            f"{ring['capacity']}, drops spanned {span:.1f}s)"
        )
    if not records:
        print("(clean run)")
        return
    rows = []
    for rec in records:
        rows.append(
            [
                rec.get("seq", ""),
                rec.get("kind", ""),
                rec.get("variant", "") or "",
                rec.get("cycle", "") if rec.get("cycle") is not None else "",
                rec.get("action", "") or "",
                (rec.get("error", "") or "")[:60],
            ]
        )
    print_table(
        ["#", "kind", "variant", "cycle", "action", "error"], rows
    )


def dump_incident_log(log, path) -> None:
    """Write an incident trail to ``path`` as JSON (the chaos-CI
    artifact format: a list of record dicts).  When the log is a ring
    buffer that dropped records, a leading ``ring-stats`` pseudo-record
    carries the drop accounting so the artifact is self-describing."""
    records = _incident_dicts(log)
    ring = _ring_stats(log)
    if ring and ring["dropped"]:
        records = [{"kind": "ring-stats", **ring}] + records
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(records, fh, indent=2)
        fh.write("\n")
