"""Table/series printers shared by the benchmark files.

Every ``benchmarks/bench_*.py`` regenerates one of the paper's tables or
figures and prints the rows/series in the same layout the paper reports,
with the paper's published value alongside ours where the paper states
one.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["print_table", "print_series", "banner"]


def banner(title: str) -> None:
    line = "=" * max(60, len(title) + 4)
    print(f"\n{line}\n  {title}\n{line}")


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    floatfmt: str = "{:.2f}",
) -> None:
    rendered = []
    for row in rows:
        rendered.append(
            [
                floatfmt.format(v) if isinstance(v, float) else str(v)
                for v in row
            ]
        )
    widths = [
        max(len(h), *(len(r[i]) for r in rendered)) if rendered else len(h)
        for i, h in enumerate(headers)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rendered:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def print_series(name: str, xs: Sequence, ys: Sequence[float]) -> None:
    print(f"{name}:")
    for x, y in zip(xs, ys):
        bar = "#" * max(1, int(round(y * 8)))
        print(f"  {str(x):>10s}  {y:7.3f}  {bar}")
