"""Table/series printers shared by the benchmark files.

Every ``benchmarks/bench_*.py`` regenerates one of the paper's tables or
figures and prints the rows/series in the same layout the paper reports,
with the paper's published value alongside ours where the paper states
one.

:func:`print_compile_report` and :func:`dump_compile_report` render a
:class:`~repro.passes.manager.CompileReport` — the per-pass
instrumentation attached to every compiled pipeline — as a table or a
JSON file for offline analysis.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

__all__ = [
    "print_table",
    "print_series",
    "banner",
    "print_compile_report",
    "dump_compile_report",
]


def banner(title: str) -> None:
    line = "=" * max(60, len(title) + 4)
    print(f"\n{line}\n  {title}\n{line}")


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    floatfmt: str = "{:.2f}",
) -> None:
    rendered = []
    for row in rows:
        rendered.append(
            [
                floatfmt.format(v) if isinstance(v, float) else str(v)
                for v in row
            ]
        )
    widths = [
        max(len(h), *(len(r[i]) for r in rendered)) if rendered else len(h)
        for i, h in enumerate(headers)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rendered:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def print_series(name: str, xs: Sequence, ys: Sequence[float]) -> None:
    print(f"{name}:")
    for x, y in zip(xs, ys):
        bar = "#" * max(1, int(round(y * 8)))
        print(f"  {str(x):>10s}  {y:7.3f}  {bar}")


def print_compile_report(report) -> None:
    """Render a :class:`~repro.passes.manager.CompileReport` as a
    per-pass timing table."""
    banner(
        f"compile report: {report.pipeline} "
        f"({report.total_wall_time * 1e3:.2f} ms, "
        f"{report.cache_hits} cache hits)"
    )
    rows = []
    for record in report.passes:
        produced = ", ".join(
            record.outputs.get(key, key) for key in record.produces
        )
        rows.append(
            [record.name, record.wall_time * 1e3, produced]
        )
    print_table(["pass", "ms", "produces"], rows, floatfmt="{:.3f}")


def dump_compile_report(report, path) -> None:
    """Write a compile report to ``path`` as JSON (the bench harness's
    machine-readable sidecar)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report.to_dict(), fh, indent=2)
        fh.write("\n")
