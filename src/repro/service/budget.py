"""Fleet-level resource budgeting with graded overload responses.

:class:`~repro.config.PolyMgConfig.pool_byte_budget` bounds one
executor's pooled allocator; a *service* needs the same discipline one
level up: the sum of outstanding work across every admitted request
must stay inside what the machine can actually deliver, and the
response to approaching the wall must be graded — shedding everything
at 101% load after accepting everything at 99% is a cliff, not a
policy.

:class:`FleetBudget` meters two outstanding quantities across the whole
worker fleet — estimated working-set **bytes** and multigrid
**cycles** — reserved at admission and released at resolution.  The
utilization fraction (the worse of the two meters) maps onto four
graded levels:

``normal``
    everything admitted;
``defer``
    new low-priority admissions are refused with
    :class:`~repro.errors.AdmissionDeferred` (a *retryable* refusal
    with a hint) while queued work keeps running;
``degrade``
    additionally, admitted low-priority solves are forced onto the
    ``polymg-naive`` rung (bounded memory, no optimized-path risk) via
    the ladder's rung ceiling;
``shed``
    only ``high``-priority requests are admitted; everything else gets
    :class:`~repro.errors.ServiceOverloaded`.

Every level transition is recorded in the shared
:class:`~repro.resilience.IncidentLog` (kind ``overload``), so the
audit trail shows exactly when and why the service changed posture.
"""

from __future__ import annotations

import threading
from typing import Callable

from ..resilience import IncidentLog

__all__ = ["OVERLOAD_LEVELS", "FleetBudget"]

#: Graded overload levels, calmest first.
OVERLOAD_LEVELS = ("normal", "defer", "degrade", "shed")
_LEVEL_RANK = {name: i for i, name in enumerate(OVERLOAD_LEVELS)}


class FleetBudget:
    """Meters outstanding bytes/cycles across all service workers.

    Parameters
    ----------
    max_bytes / max_cycles:
        Fleet-wide caps on outstanding estimated working-set bytes and
        outstanding multigrid cycles (``None`` = that meter is
        unbounded and contributes zero utilization).
    defer_at / degrade_at / shed_at:
        Utilization fractions at which the graded levels engage.
    log:
        Shared incident log; level transitions are recorded there.
    """

    def __init__(
        self,
        *,
        max_bytes: int | None = None,
        max_cycles: int | None = None,
        defer_at: float = 0.60,
        degrade_at: float = 0.80,
        shed_at: float = 0.95,
        log: IncidentLog | None = None,
    ) -> None:
        if not 0.0 < defer_at <= degrade_at <= shed_at:
            raise ValueError(
                "need 0 < defer_at <= degrade_at <= shed_at"
            )
        self.max_bytes = max_bytes
        self.max_cycles = max_cycles
        self.defer_at = defer_at
        self.degrade_at = degrade_at
        self.shed_at = shed_at
        self.log = log if log is not None else IncidentLog()
        self.outstanding_bytes = 0
        self.outstanding_cycles = 0
        self.reservations = 0
        self.peak_utilization = 0.0
        self._level = "normal"
        self._lock = threading.Lock()
        #: observers called with ``(old_level, new_level)`` on each
        #: level transition, after the internal lock is released — a
        #: hook may safely call back into ``level()`` / ``snapshot()``
        #: / ``reserve()`` without deadlocking
        self.on_transition: list[Callable[[str, str], None]] = []

    # -- metering --------------------------------------------------------
    def _utilization_locked(self) -> float:
        frac = 0.0
        if self.max_bytes:
            frac = max(frac, self.outstanding_bytes / self.max_bytes)
        if self.max_cycles:
            frac = max(frac, self.outstanding_cycles / self.max_cycles)
        return frac

    def _level_for(self, frac: float) -> str:
        if frac >= self.shed_at:
            return "shed"
        if frac >= self.degrade_at:
            return "degrade"
        if frac >= self.defer_at:
            return "defer"
        return "normal"

    def _retransition_locked(self) -> tuple[str, str] | None:
        """Recompute the level; returns the ``(old, new)`` transition
        for the caller to fire hooks on *after* releasing the lock, or
        ``None`` when the level did not change."""
        frac = self._utilization_locked()
        self.peak_utilization = max(self.peak_utilization, frac)
        new = self._level_for(frac)
        old = self._level
        if new == old:
            return None
        self._level = new
        direction = (
            "escalate" if _LEVEL_RANK[new] > _LEVEL_RANK[old] else "relax"
        )
        self.log.record(
            "overload",
            action=f"{old}->{new}",
            details={
                "direction": direction,
                "utilization": round(frac, 4),
                "outstanding_bytes": self.outstanding_bytes,
                "outstanding_cycles": self.outstanding_cycles,
            },
        )
        return (old, new)

    def _fire_hooks(self, transition: tuple[str, str] | None) -> None:
        if transition is None:
            return
        for hook in self.on_transition:
            hook(*transition)

    def utilization(self) -> float:
        with self._lock:
            return self._utilization_locked()

    def level(self) -> str:
        with self._lock:
            return self._level

    def reserve(self, bytes_: int, cycles: int) -> str:
        """Account an admitted request's working set; returns the
        (possibly newly escalated) overload level.  Reservation never
        *refuses* — refusal is admission policy, applied by the
        controller using the level this returns — so the meters always
        reflect what was actually admitted."""
        with self._lock:
            self.outstanding_bytes += bytes_
            self.outstanding_cycles += cycles
            self.reservations += 1
            transition = self._retransition_locked()
            level = self._level
        self._fire_hooks(transition)
        return level

    def release(self, bytes_: int, cycles: int) -> str:
        with self._lock:
            self.outstanding_bytes = max(
                0, self.outstanding_bytes - bytes_
            )
            self.outstanding_cycles = max(
                0, self.outstanding_cycles - cycles
            )
            self.reservations = max(0, self.reservations - 1)
            transition = self._retransition_locked()
            level = self._level
        self._fire_hooks(transition)
        return level

    # -- reporting -------------------------------------------------------
    def snapshot(self) -> dict:
        with self._lock:
            return {
                "level": self._level,
                "utilization": round(self._utilization_locked(), 4),
                "peak_utilization": round(self.peak_utilization, 4),
                "outstanding_bytes": self.outstanding_bytes,
                "outstanding_cycles": self.outstanding_cycles,
                "reservations": self.reservations,
                "max_bytes": self.max_bytes,
                "max_cycles": self.max_cycles,
            }
