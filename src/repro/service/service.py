"""The multi-tenant solve service: a fault-tolerant request broker.

:class:`SolveService` multiplexes concurrent
:class:`~repro.service.requests.SolveRequest`s from many tenants onto a
bounded fleet of worker threads, all sharing one warm compile cache,
one on-disk :class:`~repro.cache.NativeArtifactStore`, one
:class:`~repro.resilience.DegradationLadder` (per-variant circuit
breakers are *fleet* state: a variant that hurt one tenant is cooling
for all of them), and one ring-buffered
:class:`~repro.resilience.IncidentLog`.

The headline property is **graceful degradation**: under overload the
service defers, degrades, and sheds by priority class — every refusal
a typed error, every transition an incident — instead of falling over.
The request path is plain threads and condition variables; there is no
asyncio dependency anywhere near the hot path.

Per-request robustness:

* the request's wall-clock ``deadline`` (measured from admission)
  propagates into :class:`~repro.resilience.SupervisorPolicy`, so
  queue wait eats into the solve budget — a request that waited too
  long returns ``status="deadline"`` quickly instead of burning a
  worker;
* transient faults (the PR-1 taxonomy's retryable classes) are retried
  with exponential backoff under :class:`RetryPolicy`; fatal faults
  (compile errors, shape mismatches) fail fast;
* request IDs are idempotency keys — a resubmitted id returns the
  original ticket, so client retries never double-execute;
* a killed worker preempts its solve at the next cycle boundary and
  requeues it *with its checkpoint*, so another worker resumes from
  the last-known-good iterate — converged work survives worker loss.

Shutdown is :meth:`drain`: stop admitting, let in-flight solves finish
inside a timeout, then preempt the rest at cycle boundaries and persist
their checkpoints to ``checkpoint_dir`` — each unfinished ticket
resolves with a typed :class:`~repro.errors.SolvePreempted` carrying
its checkpoint path, and a fresh service instance (same or next
process) resumes them via :meth:`recover`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..errors import (
    CompileError,
    InputShapeError,
    MissingInputError,
    NativeBackendError,
    NumericalDivergenceError,
    PoolExhaustedError,
    QueueSaturated,
    ReproError,
    ServiceDraining,
    SolveAbortedError,
    SolvePreempted,
)
from ..multigrid.reference import MultigridOptions
from ..resilience import (
    DegradationLadder,
    IncidentLog,
    SolveCheckpoint,
    SolveSupervisor,
    SupervisorPolicy,
)
from ..backend.registry import TIERS
from .admission import AdmissionController, BoundedRequestQueue, TenantPolicy
from .budget import FleetBudget
from .requests import QUEUED, SolveRequest, SolveTicket

__all__ = [
    "RetryPolicy",
    "ServiceConfig",
    "SolveService",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Service-level retry-with-backoff for transient solve faults.

    The PR-1 fault taxonomy distinguishes what is worth retrying:
    numerical divergence, pool exhaustion, native-backend failures, and
    an exhausted checkpoint-restore budget
    (:class:`~repro.errors.SolveAbortedError` — the breakers may have
    cooled by the next attempt) are transient; compile and input-shape
    errors are deterministic and fail fast.  Unknown faults are treated
    as fatal — retrying the unknown is how overload amplifies."""

    max_attempts: int = 3
    base_backoff: float = 0.05
    backoff_factor: float = 2.0
    max_backoff: float = 2.0
    retryable: tuple = (
        NumericalDivergenceError,
        PoolExhaustedError,
        NativeBackendError,
        SolveAbortedError,
    )
    fatal: tuple = (CompileError, InputShapeError, MissingInputError)

    def backoff(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        return min(
            self.max_backoff,
            self.base_backoff * self.backoff_factor ** (attempt - 1),
        )

    def classify(self, error: Exception) -> str:
        """``"retryable"`` or ``"fatal"`` — fatal wins on overlap."""
        if isinstance(error, self.fatal):
            return "fatal"
        if isinstance(error, self.retryable):
            return "retryable"
        return "fatal"


@dataclass
class ServiceConfig:
    """Everything tunable about a :class:`SolveService`."""

    workers: int = 2
    queue_capacity: int = 16
    #: ring-buffer capacity of the shared incident log (``None`` =
    #: unbounded — fine for tests, wrong for a long-running service)
    incident_capacity: int | None = 4096
    default_tenant_policy: TenantPolicy = field(
        default_factory=TenantPolicy
    )
    tenant_policies: dict[str, TenantPolicy] = field(
        default_factory=dict
    )
    #: fleet-wide outstanding working-set / cycle caps (the graded
    #: overload levels key off utilization of these)
    max_fleet_bytes: int | None = None
    max_fleet_cycles: int | None = None
    defer_at: float = 0.60
    degrade_at: float = 0.80
    shed_at: float = 0.95
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: where drain/crash checkpoints land (``None`` disables
    #: persistence — preempted tickets then carry no checkpoint path)
    checkpoint_dir: str | None = None
    verify_level: str = "cheap"
    #: extra :class:`~repro.config.PolyMgConfig` fields for every
    #: rung's preset (small tile sizes in tests, pool byte budgets)
    config_overrides: dict = field(default_factory=dict)
    #: graded-degradation rungs, fastest first; defaults to the tier
    #: registry's concatenation of every registered tier's rungs
    ladder_variants: tuple[str, ...] = field(
        default_factory=TIERS.ladder_order
    )
    #: the rung forced onto low-priority solves at ``degrade`` level;
    #: defaults to the registry's last-resort rung
    degrade_ceiling: str = field(
        default_factory=TIERS.degradation_floor
    )
    #: same-spec request coalescing: a worker that pops a fresh request
    #: also claims up to ``batch_max - 1`` queued requests with the
    #: same :meth:`~repro.service.requests.SolveRequest.spec_key` and
    #: solves them in lockstep through the batched execution tier (one
    #: plan, many right-hand sides).  ``1`` disables coalescing.
    batch_max: int = 4
    #: worker queue-poll interval: the upper bound on how stale a
    #: shutdown/kill flag can get while a worker idles
    poll_interval: float = 0.02
    #: chaos/testing hook, called with ``(supervisor, request)`` right
    #: before each solve attempt — the soak harness injects the PR-1
    #: fault injectors through this
    fault_hook: Callable | None = None
    #: how the native tier invokes compiled kernels while serving:
    #: ``"sandbox"`` (default — a crashing machine-generated kernel
    #: kills a disposable executor subprocess, never the service) or
    #: ``"none"`` (in-process ctypes, the library default).  Applied as
    #: a config override on every rung; ``REPRO_NATIVE_ISOLATION``
    #: still overrides both.
    native_isolation: str = "sandbox"


@dataclass
class _WorkItem:
    """One admitted request travelling through the queue/worker fleet."""

    ticket: SolveTicket
    resume_from: SolveCheckpoint | None = None
    #: on-disk checkpoint this item was recovered from (deleted when
    #: the solve finally completes)
    checkpoint_path: Path | None = None


class SolveService:
    """Thread-based multi-tenant front-end over the solve supervisor."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        ladder: DegradationLadder | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or ServiceConfig()
        cfg = self.config
        # serving default: native kernels run sandboxed unless the
        # caller explicitly overrode the knob per-rung
        cfg.config_overrides.setdefault(
            "native_isolation", cfg.native_isolation
        )
        self.clock = clock
        self.log = IncidentLog(capacity=cfg.incident_capacity)
        self.ladder = (
            ladder
            if ladder is not None
            else DegradationLadder(cfg.ladder_variants, log=self.log)
        )
        self.budget = FleetBudget(
            max_bytes=cfg.max_fleet_bytes,
            max_cycles=cfg.max_fleet_cycles,
            defer_at=cfg.defer_at,
            degrade_at=cfg.degrade_at,
            shed_at=cfg.shed_at,
            log=self.log,
        )
        self.admission = AdmissionController(
            budget=self.budget,
            default_policy=cfg.default_tenant_policy,
            tenant_policies=cfg.tenant_policies,
            log=self.log,
            clock=clock,
        )
        self._queue = BoundedRequestQueue(cfg.queue_capacity)
        self._tickets: dict[str, SolveTicket] = {}
        self._pipelines: dict[tuple, object] = {}
        self._pipeline_lock = threading.Lock()
        self._submit_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._idle_cv = threading.Condition(self._state_lock)
        self._in_flight: dict[str, _WorkItem] = {}
        self._draining = False
        self._drained = False
        self._shutdown = threading.Event()
        self._preempt_all = threading.Event()
        self._kill_flags: list[bool] = [False] * cfg.workers
        self._current: list[_WorkItem | None] = [None] * cfg.workers
        self._workers: list[threading.Thread] = []
        self.completed = 0
        self.failed = 0
        self.shed = 0
        self.preempted = 0
        #: requests executed through a coalesced same-spec batch
        self.coalesced = 0
        for idx in range(cfg.workers):
            self._workers.append(self._spawn(idx))

    # -- worker fleet ----------------------------------------------------
    def _spawn(self, idx: int) -> threading.Thread:
        t = threading.Thread(
            target=self._worker_loop,
            args=(idx,),
            name=f"solve-worker-{idx}",
            daemon=True,
        )
        t.start()
        return t

    def _worker_loop(self, idx: int) -> None:
        while not self._shutdown.is_set():
            item = self._queue.pop(timeout=self.config.poll_interval)
            if item is None:
                if self._kill_flags[idx]:
                    break
                continue
            self._execute(item, idx)
            if self._kill_flags[idx]:
                break
        # a killed worker (not a shutdown) leaves a replacement behind:
        # the fleet never shrinks below its configured size
        if self._kill_flags[idx] and not self._shutdown.is_set():
            self._kill_flags[idx] = False
            self.log.record(
                "worker-respawn", details={"worker": idx}
            )
            self._workers[idx] = self._spawn(idx)

    def kill_worker(self, idx: int | None = None) -> int:
        """Chaos hook: ask one worker thread to die.  A busy worker
        preempts its solve at the next cycle boundary, requeues it with
        its checkpoint (another worker resumes it — no lost request),
        then exits and is replaced.  Returns the victim index."""
        if idx is None:
            busy = [
                i for i, cur in enumerate(self._current) if cur is not None
            ]
            idx = busy[0] if busy else 0
        self._kill_flags[idx] = True
        self.log.record(
            "worker-kill",
            action="requested",
            details={
                "worker": idx,
                "sandbox": self._sandbox_state(),
            },
        )
        return idx

    # -- submission ------------------------------------------------------
    def submit(self, request: SolveRequest) -> SolveTicket:
        """Admit ``request`` or raise a typed
        :class:`~repro.errors.AdmissionRejected` subclass.  Never
        blocks beyond brief internal locking; the returned ticket
        resolves exactly once."""
        with self._submit_lock:
            with self._state_lock:
                if self._draining:
                    self.log.record(
                        "admission-reject",
                        action="draining",
                        details={"request_id": request.request_id},
                    )
                    raise ServiceDraining(
                        "service is draining; no new admissions",
                        tenant=request.tenant,
                        request_id=request.request_id,
                    )
                existing = self._tickets.get(request.request_id)
            if existing is not None:
                # idempotency: same id, same ticket, no re-execution
                return existing

            self.admission.admit(request)  # typed refusals propagate
            ticket = SolveTicket(request)
            ticket.admitted_at = self.clock()
            item = _WorkItem(ticket)
            with self._state_lock:
                self._tickets[request.request_id] = ticket
            try:
                victim = self._queue.push(item, request.priority_rank)
            except QueueSaturated:
                self.admission.release(request, outcome="shed")
                with self._state_lock:
                    self._tickets.pop(request.request_id, None)
                raise
            if victim is not None:
                self._shed_item(victim)
            return ticket

    def _shed_item(self, item: _WorkItem) -> None:
        """Resolve a queue-evicted victim with a typed error."""
        req = item.ticket.request
        self.log.record(
            "shed",
            action="queue-evict",
            details={
                "request_id": req.request_id,
                "tenant": req.tenant,
                "priority": req.priority,
            },
        )
        self._resolve_failure(
            item,
            QueueSaturated(
                "shed from the request queue by a higher-priority "
                "arrival",
                tenant=req.tenant,
                request_id=req.request_id,
                reason="shed",
            ),
            outcome="shed",
        )
        self.shed += 1

    # -- execution -------------------------------------------------------
    def _pipeline_for(self, request: SolveRequest):
        """One built pipeline spec per (geometry, cycle options) —
        shared by every tenant requesting that spec; compiled variants
        are shared further down via the content-addressed compile
        cache and the native artifact store."""
        key = request.spec_key()
        with self._pipeline_lock:
            pipe = self._pipelines.get(key)
        if pipe is None:
            from ..multigrid.cycles import build_poisson_cycle

            pipe = build_poisson_cycle(
                request.ndim, request.N, request.opts
            )
            with self._pipeline_lock:
                self._pipelines.setdefault(key, pipe)
        return pipe

    def _needs_ceiling(self, request: SolveRequest) -> bool:
        """Whether the graded overload response forces a rung ceiling
        onto this request right now (no logging — also used as a
        batch-eligibility probe)."""
        return request.priority == "low" and self.budget.level() in (
            "degrade",
            "shed",
        )

    def _rung_ceiling_for(self, request: SolveRequest) -> str | None:
        """The graded overload response's degrade step: low-priority
        solves run on the naive rung while the fleet is hot."""
        if self._needs_ceiling(request):
            self.log.record(
                "degraded",
                action="force-" + self.config.degrade_ceiling,
                details={
                    "request_id": request.request_id,
                    "tenant": request.tenant,
                },
            )
            return self.config.degrade_ceiling
        return None

    def _execute(self, item: _WorkItem, idx: int) -> None:
        items = [item] + self._claim_batch_peers(item)
        now = self.clock()
        with self._state_lock:
            for it in items:
                self._in_flight[it.ticket.request.request_id] = it
        self._current[idx] = item
        for it in items:
            it.ticket._mark_running(now)
        try:
            if len(items) > 1:
                self._run_batch(items, idx)
            else:
                self._run(item, idx)
        except BaseException as error:  # the worker loop must survive
            for it in items:
                # skip tickets already resolved — and batch peers the
                # batch path handed back to the queue (state QUEUED)
                if it.ticket.done() or it.ticket.state == QUEUED:
                    continue
                rid = it.ticket.request.request_id
                self.log.record(
                    "worker-crash",
                    error=f"{type(error).__name__}: {error}",
                    details={"worker": idx, "request_id": rid},
                )
                self._resolve_failure(
                    it,
                    SolvePreempted(
                        "worker crashed while executing the request",
                        request_id=rid,
                        cause=f"{type(error).__name__}: {error}",
                    ),
                    outcome="failed",
                )
        finally:
            self._current[idx] = None
            with self._state_lock:
                for it in items:
                    self._in_flight.pop(
                        it.ticket.request.request_id, None
                    )
                self._idle_cv.notify_all()

    def _claim_batch_peers(self, item: _WorkItem) -> list[_WorkItem]:
        """Same-spec coalescing: claim queued requests this worker can
        solve in lockstep with ``item`` through the batched tier.

        Only *fresh* solves coalesce — no checkpoint resumes (their
        cycle numbering differs), no overload-ceilinged requests (they
        run on a forced rung), and not when a chaos ``fault_hook`` is
        installed (it is a per-supervisor, per-attempt contract)."""
        cfg = self.config
        if cfg.batch_max < 2 or cfg.fault_hook is not None:
            return []
        req = item.ticket.request
        if item.resume_from is not None or self._needs_ceiling(req):
            return []
        key = req.spec_key()

        def eligible(peer: _WorkItem) -> bool:
            preq = peer.ticket.request
            return (
                peer.resume_from is None
                and preq.spec_key() == key
                and not self._needs_ceiling(preq)
            )

        return self._queue.pop_matching(eligible, cfg.batch_max - 1)

    def _run(self, item: _WorkItem, idx: int) -> None:
        cfg = self.config
        req = item.ticket.request

        def remaining_deadline() -> float | None:
            """The request's unspent wall-clock budget, measured from
            admission: queue wait, retries, and backoff all eat into
            it — a request with deadline ``D`` never consumes more
            than ~``D`` of solve time no matter how often it retries."""
            if req.deadline is None:
                return None
            elapsed = self.clock() - (item.ticket.admitted_at or 0.0)
            return max(0.0, req.deadline - elapsed)

        try:
            pipeline = self._pipeline_for(req)
        except (ReproError, ValueError) as error:
            # ValueError covers geometry the builder itself rejects
            # (e.g. N not divisible by the coarsening chain)
            self.log.record(
                "request-fault",
                action="fatal",
                error=f"{type(error).__name__}: {error}",
                details={"request_id": req.request_id},
            )
            self._resolve_failure(item, error, outcome="failed")
            return

        supervisor = SolveSupervisor(
            pipeline,
            SupervisorPolicy(
                max_cycles=req.max_cycles,
                tol=req.tol,
                deadline=remaining_deadline(),
            ),
            ladder=self.ladder,
            verify_level=cfg.verify_level,
            config_overrides=cfg.config_overrides,
            rung_ceiling=self._rung_ceiling_for(req),
            clock=self.clock,
        )

        def should_stop() -> bool:
            return self._preempt_all.is_set() or self._kill_flags[idx]

        while True:
            item.ticket.attempts += 1
            # the deadline is absolute on the service clock: each
            # attempt gets what is left of the original budget, not a
            # fresh one (supervisor.solve restarts its own stopwatch
            # per call).  An exhausted budget makes the next solve
            # return status="deadline" before its first cycle.
            supervisor.policy.deadline = remaining_deadline()
            try:
                # the chaos hook runs inside the guarded region so an
                # injected (or buggy) hook fault is classified and
                # retried like any other solve fault
                if cfg.fault_hook is not None:
                    cfg.fault_hook(supervisor, req)
                result = supervisor.solve(
                    req.f,
                    resume_from=item.resume_from,
                    should_stop=should_stop,
                )
            except ReproError as error:
                kind = cfg.retry.classify(error)
                self.log.record(
                    "request-fault",
                    action=kind,
                    error=f"{type(error).__name__}: {error}",
                    details={
                        "request_id": req.request_id,
                        "tenant": req.tenant,
                        "attempt": item.ticket.attempts,
                    },
                )
                if (
                    kind == "retryable"
                    and item.ticket.attempts < cfg.retry.max_attempts
                    and not should_stop()
                ):
                    self.log.record(
                        "retry",
                        action=f"attempt-{item.ticket.attempts + 1}",
                        details={"request_id": req.request_id},
                    )
                    # interruptible backoff: drain preemption cuts the
                    # wait short instead of sleeping through it
                    self._preempt_all.wait(
                        cfg.retry.backoff(item.ticket.attempts)
                    )
                    continue
                self._resolve_failure(item, error, outcome="failed")
                return

            if result.status == "preempted":
                self._handle_preemption(item, result)
                return

            # unlink any recovered on-disk checkpoint *before*
            # resolving the ticket, so observers that wake on
            # resolution see the durable state already consistent;
            # the ticket stays in the idempotency map (a resubmitted
            # id returns this resolved ticket without re-executing)
            self._cleanup_checkpoint(item)
            item.ticket._finish(result, self.clock())
            self.admission.release(req, outcome="completed")
            self.completed += 1
            return

    def _run_batch(self, items: list[_WorkItem], idx: int) -> None:
        """Solve a claimed batch of same-spec requests in lockstep.

        One supervisor drives every request through
        :meth:`~repro.resilience.SolveSupervisor.solve_batch`; each
        keeps its own tolerance, cycle budget, and (admission-measured)
        deadline, and the iterates are bitwise identical to solving the
        requests one at a time.  Faults do not retry inside the batch:
        a preempted member is requeued with its checkpoint and resumes
        through the full per-request retry/restore path on another
        pop."""
        cfg = self.config
        leader = items[0].ticket.request
        try:
            pipeline = self._pipeline_for(leader)
        except (ReproError, ValueError) as error:
            for it in items:
                self.log.record(
                    "request-fault",
                    action="fatal",
                    error=f"{type(error).__name__}: {error}",
                    details={
                        "request_id": it.ticket.request.request_id
                    },
                )
                self._resolve_failure(it, error, outcome="failed")
            return

        def remaining_deadline(it: _WorkItem) -> float | None:
            req = it.ticket.request
            if req.deadline is None:
                return None
            elapsed = self.clock() - (it.ticket.admitted_at or 0.0)
            return max(0.0, req.deadline - elapsed)

        supervisor = SolveSupervisor(
            pipeline,
            ladder=self.ladder,
            verify_level=cfg.verify_level,
            config_overrides=cfg.config_overrides,
            clock=self.clock,
        )
        policies = [
            SupervisorPolicy(
                max_cycles=it.ticket.request.max_cycles,
                tol=it.ticket.request.tol,
                deadline=remaining_deadline(it),
            )
            for it in items
        ]
        for it in items:
            it.ticket.attempts += 1
        self.log.record(
            "batch",
            action="coalesced",
            details={
                "worker": idx,
                "batch": len(items),
                "request_ids": [
                    it.ticket.request.request_id for it in items
                ],
            },
        )
        self.coalesced += len(items)

        def should_stop() -> bool:
            return self._preempt_all.is_set() or self._kill_flags[idx]

        results = supervisor.solve_batch(
            [it.ticket.request.f for it in items],
            policies,
            should_stop=should_stop,
        )
        for it, result in zip(items, results):
            req = it.ticket.request
            if result.status == "preempted":
                if self._preempt_all.is_set():
                    self._persist_and_fail(it, result.checkpoint)
                    continue
                # hand the solve back to the fleet with its checkpoint;
                # a resumed item never re-enters a batch
                it.resume_from = result.checkpoint
                it.ticket.state = QUEUED
                self.log.record(
                    "batch",
                    action="requeued",
                    cycle=(
                        result.checkpoint.cycle
                        if result.checkpoint
                        else None
                    ),
                    details={"request_id": req.request_id},
                )
                self._queue.push(it, req.priority_rank, force=True)
                continue
            self._cleanup_checkpoint(it)
            it.ticket._finish(result, self.clock())
            self.admission.release(req, outcome="completed")
            self.completed += 1

    def _handle_preemption(self, item: _WorkItem, result) -> None:
        """A solve stopped at a cycle boundary: drain persists it,
        a worker kill requeues it for another worker."""
        req = item.ticket.request
        checkpoint = result.checkpoint
        if self._preempt_all.is_set():
            self._persist_and_fail(item, checkpoint)
            return
        # worker kill: hand the solve to the rest of the fleet
        item.resume_from = checkpoint
        item.ticket.state = QUEUED
        self.log.record(
            "worker-kill",
            action="requeued",
            cycle=checkpoint.cycle if checkpoint else None,
            details={"request_id": req.request_id},
        )
        self._queue.push(item, req.priority_rank, force=True)

    # -- resolution helpers ----------------------------------------------
    def _resolve_failure(
        self, item: _WorkItem, error: Exception, outcome: str
    ) -> None:
        req = item.ticket.request
        item.ticket._fail(error, self.clock())
        self.admission.release(req, outcome=outcome)
        if outcome == "failed":
            self.failed += 1
        # failed ids leave the idempotency map: a client retry with the
        # same id is a fresh admission, not a cached refusal
        with self._state_lock:
            self._tickets.pop(req.request_id, None)

    def _checkpoint_path(self, request: SolveRequest) -> Path | None:
        if self.config.checkpoint_dir is None:
            return None
        return (
            Path(self.config.checkpoint_dir)
            / f"{request.request_id}.ckpt.npz"
        )

    def _persist_and_fail(
        self, item: _WorkItem, checkpoint: SolveCheckpoint | None
    ) -> None:
        """Drain/shutdown path: persist the last-known-good state and
        resolve the ticket with a typed, recoverable error."""
        req = item.ticket.request
        path = self._checkpoint_path(req)
        saved: Path | None = None
        if checkpoint is None:
            # never started: checkpoint the initial state so recovery
            # is uniform (cycle 0, zero iterate)
            checkpoint = self._initial_checkpoint(req)
        if path is not None:
            o = req.opts
            checkpoint.save(
                path,
                f=req.f,
                meta={
                    "request_id": req.request_id,
                    "tenant": req.tenant,
                    "ndim": req.ndim,
                    "N": req.N,
                    "priority": req.priority,
                    "max_cycles": req.max_cycles,
                    "tol": req.tol,
                    "opts": {
                        "cycle": o.cycle,
                        "n1": o.n1,
                        "n2": o.n2,
                        "n3": o.n3,
                        "levels": o.levels,
                        "omega": o.omega,
                    },
                },
            )
            saved = path
        self.log.record(
            "preempt",
            action="persisted" if saved else "unpersisted",
            cycle=checkpoint.cycle,
            details={
                "request_id": req.request_id,
                "checkpoint_path": str(saved) if saved else None,
            },
        )
        self.preempted += 1
        self._resolve_failure(
            item,
            SolvePreempted(
                "solve preempted by drain; checkpoint persisted"
                if saved
                else "solve preempted by drain (no checkpoint dir)",
                request_id=req.request_id,
                tenant=req.tenant,
                cycle=checkpoint.cycle,
                checkpoint_path=str(saved) if saved else None,
            ),
            outcome="failed",
        )

    @staticmethod
    def _initial_checkpoint(req: SolveRequest) -> SolveCheckpoint:
        import numpy as np

        from ..multigrid.kernels import norm_residual

        u = np.zeros_like(req.f)
        h = 1.0 / (req.N + 1)
        norm = float(norm_residual(u, req.f, h))
        return SolveCheckpoint(u, 0, [norm], None)

    def _cleanup_checkpoint(self, item: _WorkItem) -> None:
        if item.checkpoint_path is not None:
            try:
                item.checkpoint_path.unlink()
            except OSError:
                pass
            item.checkpoint_path = None

    # -- health ----------------------------------------------------------
    def healthz(self) -> dict:
        """Structured liveness/observability snapshot: queue depth,
        worker fleet, budget posture, per-variant breaker states,
        per-execution-tier health (from the tier registry), per-tenant
        usage, incident-ring accounting."""
        with self._state_lock:
            status = (
                "drained"
                if self._drained
                else "draining"
                if self._draining
                else "serving"
            )
            in_flight = len(self._in_flight)
        return {
            "status": status,
            "queue_depth": len(self._queue),
            "in_flight": in_flight,
            "workers": {
                "configured": self.config.workers,
                "alive": sum(1 for t in self._workers if t.is_alive()),
            },
            "counters": {
                "completed": self.completed,
                "failed": self.failed,
                "shed": self.shed,
                "preempted": self.preempted,
                "coalesced": self.coalesced,
            },
            "budget": self.budget.snapshot(),
            "breakers": self.ladder.snapshot(),
            "tiers": TIERS.tier_health(self.ladder),
            "sandbox": self._sandbox_state(),
            "tenants": self.admission.tenant_usage(),
            "incidents": self.log.ring_stats(),
        }

    @staticmethod
    def _sandbox_state() -> dict:
        """Native-sandbox pool state (``enabled=False`` until a native
        execute has actually spun the pool up — reporting must not pay
        worker spawns)."""
        from ..backend.sandbox import sandbox_state

        return sandbox_state()

    # -- drain / recovery ------------------------------------------------
    def drain(self, timeout: float = 30.0) -> dict:
        """Graceful shutdown: stop admitting, give in-flight work
        ``timeout`` seconds to finish, then preempt the rest at cycle
        boundaries, persist their checkpoints, and stop the workers.
        Idempotent.  Returns a summary; after it, every ticket ever
        admitted has resolved."""
        with self._state_lock:
            if self._drained:
                return {"status": "drained", "already": True}
            self._draining = True
        self.log.record(
            "drain",
            action="begin",
            details={
                "queued": len(self._queue),
                "in_flight": len(self._in_flight),
            },
        )

        deadline = self.clock() + timeout
        with self._idle_cv:
            while self._in_flight or len(self._queue):
                left = deadline - self.clock()
                if left <= 0:
                    break
                self._idle_cv.wait(min(0.05, left))

        # whatever is still running stops at its next cycle boundary
        self._preempt_all.set()
        self._shutdown.set()
        for t in self._workers:
            t.join(timeout=max(5.0, timeout))
        # anything never picked up is persisted straight from the queue
        for item in self._queue.drain_items():
            self._persist_and_fail(item, item.resume_from)

        self._drained = True
        summary = {
            "status": "drained",
            "completed": self.completed,
            "failed": self.failed,
            "shed": self.shed,
            "preempted": self.preempted,
            "incidents": self.log.ring_stats(),
        }
        self.log.record("drain", action="complete", details=summary)
        return summary

    def recover(self) -> list[SolveTicket]:
        """Resume checkpointed solves left behind by a drained (or
        crashed) earlier service instance sharing this
        ``checkpoint_dir``.  Recovered requests bypass the rate/
        overload gates (their resources were already paid for once)
        but still respect concurrency caps, budget metering, and queue
        capacity; anything that cannot be re-admitted right now stays
        on disk for the next call."""
        if self.config.checkpoint_dir is None:
            return []
        root = Path(self.config.checkpoint_dir)
        if not root.is_dir():
            return []
        tickets: list[SolveTicket] = []
        for path in sorted(root.glob("*.ckpt.npz")):
            try:
                checkpoint, f, meta = SolveCheckpoint.load(path)
            except (OSError, KeyError, ValueError) as error:
                self.log.record(
                    "recover",
                    action="unreadable",
                    error=f"{type(error).__name__}: {error}",
                    details={"path": str(path)},
                )
                continue
            if f is None:
                self.log.record(
                    "recover",
                    action="no-rhs",
                    details={"path": str(path)},
                )
                continue
            request = SolveRequest(
                tenant=meta["tenant"],
                ndim=int(meta["ndim"]),
                N=int(meta["N"]),
                f=f,
                opts=MultigridOptions(**meta["opts"]),
                request_id=meta["request_id"],
                priority=meta.get("priority", "normal"),
                max_cycles=int(meta.get("max_cycles", 20)),
                tol=meta.get("tol"),
            )
            ticket = self._submit_recovered(request, checkpoint, path)
            if ticket is not None:
                tickets.append(ticket)
        if tickets:
            self.log.record(
                "recover",
                action="resumed",
                details={"count": len(tickets)},
            )
        return tickets

    def _submit_recovered(
        self,
        request: SolveRequest,
        checkpoint: SolveCheckpoint,
        path: Path,
    ) -> SolveTicket | None:
        with self._submit_lock:
            with self._state_lock:
                if self._draining:
                    return None
                if request.request_id in self._tickets:
                    return self._tickets[request.request_id]
            # recovered work re-reserves budget + a tenant slot but
            # skips rate limiting (it is old work, not new demand)
            if not self.admission.admit_recovered(request):
                return None
            ticket = SolveTicket(request)
            ticket.admitted_at = self.clock()
            item = _WorkItem(
                ticket, resume_from=checkpoint, checkpoint_path=path
            )
            with self._state_lock:
                self._tickets[request.request_id] = ticket
            try:
                victim = self._queue.push(item, request.priority_rank)
            except QueueSaturated:
                self.admission.release(request, outcome="shed")
                with self._state_lock:
                    self._tickets.pop(request.request_id, None)
                return None
            if victim is not None:
                self._shed_item(victim)
            return ticket

    # -- context manager -------------------------------------------------
    def __enter__(self) -> "SolveService":
        return self

    def __exit__(self, *exc) -> None:
        self.drain()
