"""Admission control: rate limits, concurrency caps, bounded queueing.

The service's first robustness property is decided at the door: a
request is either *admitted* — meaning the service has reserved the
resources to eventually resolve it — or refused **synchronously with a
typed error**.  There is no third state; nothing ever blocks
indefinitely in ``submit`` and nothing admitted is ever silently
forgotten.

Three independent gates, in order:

1. **graded overload posture** — the :class:`~repro.service.budget.
   FleetBudget` level refuses whole priority classes
   (:class:`~repro.errors.AdmissionDeferred` /
   :class:`~repro.errors.ServiceOverloaded`) before any per-tenant
   state is touched;
2. **per-tenant token bucket** (sustained rate + burst) and
   **concurrent-solve cap** — one misbehaving tenant exhausts its own
   allowance, not the fleet
   (:class:`~repro.errors.TenantRateLimited` /
   :class:`~repro.errors.TenantConcurrencyExceeded`);
3. **bounded request queue** with load-shedding by priority class —
   when the queue is full, an incoming request may evict ("shed") the
   worst-ranked queued request *of a strictly lower priority class*;
   the victim's ticket resolves with
   :class:`~repro.errors.QueueSaturated`, and an incoming request that
   outranks nothing is refused with the same error.

Every refusal and shed is recorded in the shared incident log, so the
overload benchmark can prove the zero-silent-drops property by
accounting: submitted = resolved + typed-refused, exactly.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import (
    AdmissionDeferred,
    QueueSaturated,
    ServiceOverloaded,
    TenantConcurrencyExceeded,
    TenantRateLimited,
)
from ..resilience import IncidentLog
from .budget import FleetBudget
from .requests import SolveRequest

__all__ = [
    "TokenBucket",
    "TenantPolicy",
    "TenantState",
    "BoundedRequestQueue",
    "AdmissionController",
]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` deep.

    ``try_acquire`` returns ``0.0`` on success or the seconds until a
    token will be available (never blocks).  ``rate=None`` disables
    limiting."""

    def __init__(
        self,
        rate: float | None,
        burst: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive or None")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = float(burst)
        self.clock = clock
        self.tokens = float(burst)
        self._last = clock()

    def _refill(self, now: float) -> None:
        if self.rate is None:
            return
        self.tokens = min(
            self.burst, self.tokens + (now - self._last) * self.rate
        )
        self._last = now

    def try_acquire(self) -> float:
        if self.rate is None:
            return 0.0
        now = self.clock()
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant admission limits."""

    #: sustained requests/second (``None`` = unlimited)
    rate: float | None = None
    #: token-bucket depth (momentary burst allowance)
    burst: float = 8.0
    #: maximum solves admitted at once (queued + running)
    max_concurrent: int = 4


class TenantState:
    """Runtime accounting of one tenant (guarded by the controller)."""

    def __init__(
        self, policy: TenantPolicy, clock: Callable[[], float]
    ) -> None:
        self.policy = policy
        self.bucket = TokenBucket(
            policy.rate, policy.burst, clock=clock
        )
        self.in_flight = 0
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.shed = 0

    def to_dict(self) -> dict:
        return {
            "in_flight": self.in_flight,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "shed": self.shed,
            "max_concurrent": self.policy.max_concurrent,
            "rate": self.policy.rate,
        }


class BoundedRequestQueue:
    """Bounded priority queue with shed-by-priority-class semantics.

    Items dequeue best-priority-first, FIFO within a class.  A push
    onto a full queue either evicts the worst queued item of a strictly
    lower priority class (returned to the caller so its ticket can be
    resolved) or raises :class:`~repro.errors.QueueSaturated`.
    ``pop`` blocks at most ``timeout`` seconds and returns ``None`` on
    expiry — workers use short timeouts so shutdown flags are observed
    promptly, never a hang.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._heap: list[tuple[int, int, Any]] = []
        self._seq = 0
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def push(
        self, item: Any, rank: int, *, force: bool = False
    ) -> Any | None:
        """Enqueue ``item`` at priority ``rank`` (lower = better).
        Returns the shed victim when one was evicted to make room,
        ``None`` otherwise; raises :class:`QueueSaturated` when full
        with no lower-priority victim.  ``force=True`` ignores the
        capacity bound — reserved for *requeueing* already-admitted
        work (worker-kill preemption), which must never fail."""
        with self._not_empty:
            victim = None
            if not force and len(self._heap) >= self.capacity:
                worst = max(self._heap)
                if worst[0] <= rank:
                    raise QueueSaturated(
                        "request queue full and no lower-priority "
                        "victim to shed",
                        capacity=self.capacity,
                        rank=rank,
                    )
                self._heap.remove(worst)
                heapq.heapify(self._heap)
                victim = worst[2]
            heapq.heappush(self._heap, (rank, self._seq, item))
            self._seq += 1
            self._not_empty.notify()
            return victim

    def pop(self, timeout: float | None = None) -> Any | None:
        with self._not_empty:
            if not self._heap:
                self._not_empty.wait(timeout)
            if not self._heap:
                return None
            return heapq.heappop(self._heap)[2]

    def pop_matching(
        self, predicate: Callable[[Any], bool], limit: int
    ) -> list[Any]:
        """Remove and return up to ``limit`` queued items satisfying
        ``predicate``, best-priority-first (FIFO within a class).
        Non-blocking; returns ``[]`` when nothing matches.  The worker
        fleet uses this to coalesce same-specification requests into
        one batched solve."""
        if limit < 1:
            return []
        with self._lock:
            taken = []
            for entry in sorted(self._heap):
                if len(taken) >= limit:
                    break
                if predicate(entry[2]):
                    taken.append(entry)
            if taken:
                for entry in taken:
                    self._heap.remove(entry)
                heapq.heapify(self._heap)
            return [entry[2] for entry in taken]

    def drain_items(self) -> list[Any]:
        """Remove and return everything queued (drain/shutdown path)."""
        with self._lock:
            items = [entry[2] for entry in sorted(self._heap)]
            self._heap.clear()
            return items


class AdmissionController:
    """Applies the admission gates and keeps per-tenant accounting.

    The controller is pure policy + bookkeeping: it owns no threads
    and executes nothing.  :meth:`admit` either returns (with the
    request's budget reservation and tenant slot taken) or raises a
    typed refusal; :meth:`release` returns the reservation when the
    request resolves, whatever the outcome.
    """

    def __init__(
        self,
        *,
        budget: FleetBudget,
        default_policy: TenantPolicy | None = None,
        tenant_policies: dict[str, TenantPolicy] | None = None,
        log: IncidentLog | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.budget = budget
        self.default_policy = default_policy or TenantPolicy()
        self.tenant_policies = dict(tenant_policies or {})
        self.log = log if log is not None else budget.log
        self.clock = clock
        self._tenants: dict[str, TenantState] = {}
        self._lock = threading.Lock()
        self.admitted = 0
        self.rejections: dict[str, int] = {}

    def _tenant(self, name: str) -> TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = TenantState(
                self.tenant_policies.get(name, self.default_policy),
                self.clock,
            )
            self._tenants[name] = state
        return state

    def _refuse(
        self, request: SolveRequest, reason: str, exc_type, message: str,
        **context,
    ):
        with self._lock:
            tenant = self._tenant(request.tenant)
            tenant.rejected += 1
            self.rejections[reason] = self.rejections.get(reason, 0) + 1
        self.log.record(
            "admission-reject",
            action=reason,
            details={
                "tenant": request.tenant,
                "request_id": request.request_id,
                "priority": request.priority,
            },
        )
        raise exc_type(
            message,
            tenant=request.tenant,
            request_id=request.request_id,
            reason=reason,
            **context,
        )

    # -- the gates -------------------------------------------------------
    def admit(self, request: SolveRequest) -> None:
        """Apply every admission gate; on return the request is
        admitted (budget reserved, tenant slot held).  Raises an
        :class:`~repro.errors.AdmissionRejected` subclass otherwise."""
        with self._lock:
            self._tenant(request.tenant).submitted += 1

        # gate 1: fleet overload posture (graded by priority class)
        level = self.budget.level()
        if level == "shed" and request.priority != "high":
            self._refuse(
                request,
                "overload-shed",
                ServiceOverloaded,
                "fleet budget at shed level; only high-priority "
                "requests are admitted",
                level=level,
            )
        if level in ("defer", "degrade") and request.priority == "low":
            self._refuse(
                request,
                "overload-defer",
                AdmissionDeferred,
                "fleet budget overloaded; low-priority admission "
                "deferred",
                level=level,
                retry_after=1.0,
            )

        # gates 2a/2b: per-tenant sustained rate, then concurrency cap
        refusal = None
        with self._lock:
            tenant = self._tenant(request.tenant)
            wait = tenant.bucket.try_acquire()
            if wait > 0.0:
                refusal = (
                    "tenant-rate",
                    TenantRateLimited,
                    "tenant rate limit exceeded",
                    {"retry_after": round(wait, 4)},
                )
            elif tenant.in_flight >= tenant.policy.max_concurrent:
                refusal = (
                    "tenant-concurrency",
                    TenantConcurrencyExceeded,
                    "tenant concurrent-solve cap reached",
                    {
                        "in_flight": tenant.in_flight,
                        "max_concurrent": tenant.policy.max_concurrent,
                    },
                )
            else:
                tenant.in_flight += 1
        if refusal is not None:
            reason, exc_type, message, context = refusal
            self._refuse(request, reason, exc_type, message, **context)

        # gate 3: fleet budget reservation (meters what was admitted;
        # the *next* request sees the escalated level)
        self.budget.reserve(
            request.estimated_bytes(), request.max_cycles
        )
        with self._lock:
            self.admitted += 1

    def admit_recovered(self, request: SolveRequest) -> bool:
        """Admission for checkpoint-recovered work: skips the rate and
        overload gates (the work was admitted — and paid for — once
        already) but still claims a tenant concurrency slot and a fleet
        budget reservation, all tenant mutation under the controller
        lock.  Returns ``False`` with nothing claimed when the tenant
        is at its concurrency cap — the caller leaves the checkpoint on
        disk for a later attempt."""
        with self._lock:
            tenant = self._tenant(request.tenant)
            if tenant.in_flight >= tenant.policy.max_concurrent:
                return False
            tenant.in_flight += 1
        self.budget.reserve(
            request.estimated_bytes(), request.max_cycles
        )
        return True

    def release(
        self, request: SolveRequest, outcome: str = "completed"
    ) -> None:
        """Return the request's reservation when it resolves.
        ``outcome`` is ``"completed"`` / ``"failed"`` / ``"shed"`` for
        tenant accounting."""
        self.budget.release(
            request.estimated_bytes(), request.max_cycles
        )
        with self._lock:
            tenant = self._tenant(request.tenant)
            tenant.in_flight = max(0, tenant.in_flight - 1)
            if outcome == "completed":
                tenant.completed += 1
            elif outcome == "shed":
                tenant.shed += 1
            else:
                tenant.failed += 1

    # -- reporting -------------------------------------------------------
    def tenant_usage(self) -> dict:
        with self._lock:
            return {
                name: state.to_dict()
                for name, state in sorted(self._tenants.items())
            }
