"""Request and ticket types of the multi-tenant solve service.

A tenant describes one solve as a :class:`SolveRequest` — problem
geometry, cycle options, rhs, priority class, deadline — and submits it
to :class:`~repro.service.service.SolveService`.  Admission is
synchronous and typed: :meth:`~repro.service.service.SolveService.submit`
either returns a :class:`SolveTicket` (the request is in the system and
*will* resolve) or raises an
:class:`~repro.errors.AdmissionRejected` subclass.  A ticket is a
thread-safe future: it resolves exactly once, to a
:class:`~repro.resilience.SupervisedSolveResult` or to a typed error,
and :meth:`SolveTicket.result` never blocks past its timeout.

Request IDs are **idempotency keys**: resubmitting an id the service
has already seen returns the original ticket without executing the
solve again, so client-side retry (after a timeout, a dropped
connection, a crashed caller) can never double-execute.
"""

from __future__ import annotations

import threading
import uuid
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ServiceError
from ..multigrid.reference import MultigridOptions

if TYPE_CHECKING:  # pragma: no cover
    from ..resilience import SupervisedSolveResult

__all__ = [
    "PRIORITIES",
    "SolveRequest",
    "SolveTicket",
    "estimate_request_bytes",
]

#: Priority classes, best-served first.  Admission, queue ordering,
#: shedding, and the graded overload responses all key off this order.
PRIORITIES = ("high", "normal", "low")
_PRIORITY_RANK = {name: i for i, name in enumerate(PRIORITIES)}


def estimate_request_bytes(ndim: int, n: int) -> int:
    """Working-set estimate of one solve, for fleet byte budgeting.

    A V-/W-cycle holds a handful of full-resolution arrays (iterate,
    rhs, residual, correction) plus the geometrically-shrinking
    coarse-level hierarchy, whose total is bounded by the fine level
    times ``1/(1 - 2^-ndim)``.  Six fine-grid-equivalents of float64 is
    a deliberately conservative envelope — budget enforcement wants to
    overestimate, not OOM."""
    grid = 8 * (n + 2) ** ndim
    return 6 * grid


@dataclass
class SolveRequest:
    """One tenant's solve: problem, rhs, and service-level contract."""

    tenant: str
    ndim: int
    N: int
    f: np.ndarray
    opts: MultigridOptions = field(default_factory=MultigridOptions)
    request_id: str = field(
        default_factory=lambda: uuid.uuid4().hex
    )
    priority: str = "normal"
    #: wall-clock budget in seconds, measured from admission; the
    #: remaining share at execution time propagates into
    #: :attr:`~repro.resilience.SupervisorPolicy.deadline`
    deadline: float | None = None
    max_cycles: int = 20
    tol: float | None = None

    def __post_init__(self) -> None:
        if self.priority not in PRIORITIES:
            raise ServiceError(
                f"unknown priority {self.priority!r}",
                expected=PRIORITIES,
            )
        if self.max_cycles < 1:
            raise ServiceError(
                "max_cycles must be positive", request_id=self.request_id
            )
        expected = (self.N + 2,) * self.ndim
        if tuple(self.f.shape) != expected:
            raise ServiceError(
                "rhs shape does not match the requested grid",
                request_id=self.request_id,
                shape=tuple(self.f.shape),
                expected=expected,
            )

    @property
    def priority_rank(self) -> int:
        return _PRIORITY_RANK[self.priority]

    def estimated_bytes(self) -> int:
        return estimate_request_bytes(self.ndim, self.N)

    def spec_key(self) -> tuple:
        """Cache key of the underlying pipeline build — requests with
        equal keys share one built (and, via the compile cache, one
        compiled) pipeline specification."""
        o = self.opts
        return (
            self.ndim,
            self.N,
            o.cycle,
            o.n1,
            o.n2,
            o.n3,
            o.levels,
            o.omega,
        )


# ticket states
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


class SolveTicket:
    """Thread-safe one-shot future for an admitted request.

    The service resolves every ticket exactly once — with a solve
    result (:attr:`state` ``"done"``) or a typed error (``"failed"``).
    Latency bookkeeping (admitted/started/finished stamps on the
    service clock) rides on the ticket for the benchmark harness.
    """

    def __init__(self, request: SolveRequest) -> None:
        self.request = request
        self.state = QUEUED
        self._result: "SupervisedSolveResult | None" = None
        self._error: Exception | None = None
        self._event = threading.Event()
        self.admitted_at: float | None = None
        self.started_at: float | None = None
        self.finished_at: float | None = None
        #: execution attempts consumed (retry-with-backoff accounting)
        self.attempts = 0

    # -- caller side -----------------------------------------------------
    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        return self._event.wait(timeout)

    def result(
        self, timeout: float | None = None
    ) -> "SupervisedSolveResult":
        """Block until resolution (bounded by ``timeout``); return the
        solve result or raise the typed error the ticket failed with.
        A timeout raises :class:`TimeoutError` — the ticket stays
        valid and can be waited on again."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request.request_id} not resolved "
                f"within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    @property
    def error(self) -> Exception | None:
        return self._error

    def latency(self) -> float | None:
        """Admission-to-resolution wall time (service clock)."""
        if self.admitted_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.admitted_at

    # -- service side ----------------------------------------------------
    def _mark_running(self, now: float) -> None:
        self.state = RUNNING
        if self.started_at is None:
            self.started_at = now

    def _finish(self, result, now: float) -> None:
        if self._event.is_set():  # pragma: no cover - resolve-once guard
            return
        self._result = result
        self.state = DONE
        self.finished_at = now
        self._event.set()

    def _fail(self, error: Exception, now: float) -> None:
        if self._event.is_set():  # pragma: no cover - resolve-once guard
            return
        self._error = error
        self.state = FAILED
        self.finished_at = now
        self._event.set()
