"""Fault-tolerant multi-tenant solve service.

The service layer turns the single-solve resilience stack
(:mod:`repro.resilience`) into a shared, always-on facility: many
tenants submit :class:`SolveRequest`s concurrently, a bounded worker
fleet executes them over one shared compile cache / native artifact
store / degradation ladder / incident log, and overload is met with a
*graded* response — defer, degrade, shed — instead of a collapse.
Every refusal is a typed :class:`~repro.errors.AdmissionRejected`
subclass, every unfinished solve drains to a recoverable checkpoint:
no caller ever hangs, no admitted work is ever lost silently.

Layering (each importable on its own):

* :mod:`~repro.service.requests` — :class:`SolveRequest` (problem +
  priority + deadline + idempotency key) and :class:`SolveTicket`
  (thread-safe one-shot future);
* :mod:`~repro.service.budget` — :class:`FleetBudget`, fleet-wide
  outstanding bytes/cycles metering with the graded
  :data:`OVERLOAD_LEVELS`;
* :mod:`~repro.service.admission` — :class:`AdmissionController`
  (token buckets, concurrency caps, overload posture) and
  :class:`BoundedRequestQueue` (priority queue with
  shed-by-priority-class);
* :mod:`~repro.service.service` — :class:`SolveService` itself:
  worker fleet, retry-with-backoff over the PR-1 fault taxonomy,
  worker-kill survival, ``healthz``/``drain``/``recover``.
"""

from .admission import (
    AdmissionController,
    BoundedRequestQueue,
    TenantPolicy,
    TenantState,
    TokenBucket,
)
from .budget import OVERLOAD_LEVELS, FleetBudget
from .requests import (
    PRIORITIES,
    SolveRequest,
    SolveTicket,
    estimate_request_bytes,
)
from .service import RetryPolicy, ServiceConfig, SolveService

__all__ = [
    "AdmissionController",
    "BoundedRequestQueue",
    "TenantPolicy",
    "TenantState",
    "TokenBucket",
    "OVERLOAD_LEVELS",
    "FleetBudget",
    "PRIORITIES",
    "SolveRequest",
    "SolveTicket",
    "estimate_request_bytes",
    "RetryPolicy",
    "ServiceConfig",
    "SolveService",
]
