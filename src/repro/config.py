"""Compiler configuration for PolyMG.

A :class:`PolyMgConfig` selects which of the paper's optimizations are
applied; the named variants of section 4.1 (``polymg-naive``,
``polymg-opt``, ``polymg-opt+``, ``polymg-dtile-opt+``) are presets over
this structure (see :mod:`repro.variants`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

__all__ = [
    "PolyMgConfig",
    "DEFAULT_TILE_SIZES",
    "VERIFY_LEVELS",
    "BACKENDS",
    "ISOLATION_MODES",
    "NATIVE_FAULTS",
    "AFFINITY_MODES",
]


def __getattr__(name: str):
    # ``BACKENDS`` — the execution backends selectable via
    # :attr:`PolyMgConfig.backend` — is owned by the tier registry
    # (:data:`repro.backend.registry.TIERS`); resolved lazily here to
    # keep this module import-order independent of the backend package.
    if name == "BACKENDS":
        from .backend.registry import TIERS

        return TIERS.selectable_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: Self-verification levels (see :mod:`repro.verify.invariants`):
#: ``off`` — no checking; ``cheap`` — algebraic invariants after each
#: compile phase (schedule legality, storage liveness cross-check);
#: ``full`` — additionally prove tile coverage of every live-out by
#: exact region enumeration.
VERIFY_LEVELS = ("off", "cheap", "full")

#: Native-tier invocation isolation (see :mod:`repro.backend.sandbox`):
#: ``none`` — in-process ctypes call; ``sandbox`` — persistent
#: out-of-process executor pool with a heartbeat watchdog.
ISOLATION_MODES = ("none", "sandbox")

#: Test-only native crash injection values (``None`` = disabled).
NATIVE_FAULTS = (None, "segfault", "spin", "abort")

#: Thread-affinity policies for the native tiers (see
#: :mod:`repro.backend.codegen_c`): ``none`` leaves placement to the
#: OpenMP runtime, ``compact`` binds close (``proc_bind(close)``),
#: ``scatter`` spreads across places (``proc_bind(spread)``).
AFFINITY_MODES = ("none", "compact", "scatter")

# Paper section 3.2.4 default mid-range tile sizes: 2-D outermost 8:64,
# innermost 64:512; 3-D two outermost 8:32, innermost 64:256.
DEFAULT_TILE_SIZES: dict[int, tuple[int, ...]] = {
    1: (256,),
    2: (32, 256),
    3: (8, 16, 128),
}


@dataclass(frozen=True)
class PolyMgConfig:
    """Optimization switches of the PolyMG code generator.

    Attributes
    ----------
    fuse:
        Enable auto-grouping of stages (fusion).  Off = every stage is
        its own group (``polymg-naive``).
    tile:
        Enable overlapped tiling of multi-stage groups.
    tile_sizes:
        Per-dimensionality tile edge lengths, outermost first.
    group_size_limit:
        Maximum number of stages per fused group (the paper's "grouping
        limit" auto-tuning knob).
    overlap_threshold:
        Maximum tolerated fraction of redundant computation added by
        overlapped tiling within a group.
    intra_group_reuse:
        Scratchpad remapping inside a group (paper 3.2.1, Algorithms
        2-3).
    inter_group_reuse:
        Full-array remapping across groups (paper 3.2.2).
    pooled_allocation:
        Pooled allocator serving full-array requests across (and within)
        multigrid cycle invocations (paper 3.2.3).
    pool_byte_budget:
        Optional cap (bytes) on the pooled allocator's total backing
        memory.  A fresh allocation that would breach it raises the
        typed :class:`~repro.errors.PoolExhaustedError`, surfacing
        memory pressure as a catchable runtime fault instead of an OOM
        kill (``None`` = unbounded).
    scratch_class_slack:
        The "small +/- constant threshold" relaxing scratchpad storage
        class size equality (paper 3.2.1), in elements per dimension.
    diamond_smoothing:
        Execute pre/post-smoothing TStencil chains with diamond tiling
        instead of overlapped tiling (``polymg-dtile-opt+``).
    dtile_conservative_copies:
        Model the paper-reported implementation issue of
        ``polymg-dtile-opt+``: conservative input/output array reuse
        assumptions force extra memory copies around diamond-tiled
        segments (section 4.2, up to 60% penalty in 3-D).
    fuse_smoother_chains_only:
        Restrict grouping to same-``TStencil`` smoother chains (no
        cross-operator fusion).  Used to express the ``handopt+pluto``
        baseline — which time-tiles smoothers but fuses nothing else —
        as a compiler configuration for the machine cost model.
    num_threads:
        Threads used by the interpreter backend when executing tiles.
    kernel_plan:
        Lower each (group, stage) into ahead-of-time
        :class:`~repro.backend.kernels.StageKernel` op tapes after
        parameter binding (precomputed Case/Interp target boxes, reader
        hulls and strides, hoisted tile grids, zero-realloc temp
        arenas).  The planned executor produces bitwise-identical
        outputs to the unplanned interpreter; disable to force the
        tree-walking fallback.
    temp_arena_limit:
        Optional cap (bytes) on the per-thread temporary-buffer arena
        sized at plan time.  A plan whose arena requirement exceeds the
        cap is abandoned and execution falls back to the unplanned
        interpreter (``None`` = unbounded).
    verify_level:
        Self-verification level: selects which verifier passes are
        interleaved into the compile pipeline (see
        :func:`repro.passes.manager.default_passes`): ``"off"``
        (default, zero overhead), ``"cheap"`` (schedule legality +
        storage-soundness cross-checks), or ``"full"`` (additionally
        exact tile-coverage proofs).
    runtime_guards:
        Enable the runtime numerical sentinels: NaN/Inf scans over each
        group's live-outs during execution (raises
        :class:`~repro.errors.NumericalDivergenceError`).
    backend:
        Execution backend (see :data:`BACKENDS`): ``"planned"``
        (default), ``"interpreted"``, or ``"native"`` — the JIT path
        that compiles the emitted C/OpenMP code out-of-process and
        invokes it via ``ctypes``; unavailable constructs or a missing
        toolchain degrade to ``planned`` with a structured incident.
    native_cflags:
        Override the native backend's compiler flags (a tuple of
        argv tokens replacing the default
        ``-O3 -march=native -fopenmp -fPIC -shared``).  ``None`` keeps
        the defaults.  Part of the compile fingerprint and the on-disk
        artifact key.
    native_isolation:
        How the native tier invokes a compiled shared object:
        ``"none"`` (default) loads it in-process via ``ctypes``;
        ``"sandbox"`` runs it in a persistent out-of-process executor
        pool (:mod:`repro.backend.sandbox`) over shared memory, so a
        crashing or hanging kernel cannot take the host process down.
        The solve service defaults to ``"sandbox"``; the
        ``REPRO_NATIVE_ISOLATION`` environment variable overrides both.
    native_fault:
        Test-only crash injection: compile a deliberate fault into the
        emitted native entry point — ``"segfault"`` (wild store),
        ``"spin"`` (infinite loop), or ``"abort"`` — so the sandbox's
        crash/hang/abort handling can be exercised with real native
        faults.  ``None`` (default) emits nothing.  Part of the
        fingerprint, so a faulted artifact never shadows a healthy one.
    driver_hook_cycles:
        Supervisor hook granularity of the whole-solve native driver
        (``polymg_drive``): the in-kernel cycle loop returns to Python
        every this many cycles so checkpointing, deadline, and
        stagnation policy still govern the solve.  Larger values
        amortize dispatch further but coarsen deadline/preemption
        response to ``k``-cycle boundaries.
    native_threads:
        Thread-count override for native-tier invocations (both
        per-cycle ``polymg_run`` and the whole-solve driver).  ``None``
        (default) uses :attr:`num_threads`.
    native_affinity:
        Thread-pinning policy compiled into the emitted OpenMP parallel
        regions (see :data:`AFFINITY_MODES`): ``"compact"`` emits
        ``proc_bind(close)``, ``"scatter"`` emits ``proc_bind(spread)``,
        ``"none"`` (default) emits no binding clause.  Sandbox executor
        workers additionally translate the ``REPRO_NATIVE_AFFINITY``
        environment override into ``OMP_PROC_BIND``/``OMP_PLACES``.
    """

    fuse: bool = True
    tile: bool = True
    tile_sizes: dict[int, tuple[int, ...]] = field(
        default_factory=lambda: dict(DEFAULT_TILE_SIZES)
    )
    group_size_limit: int = 6
    overlap_threshold: float = 0.4
    intra_group_reuse: bool = True
    inter_group_reuse: bool = True
    pooled_allocation: bool = True
    pool_byte_budget: int | None = None
    scratch_class_slack: int = 4
    diamond_smoothing: bool = False
    dtile_conservative_copies: bool = True
    fuse_smoother_chains_only: bool = False
    num_threads: int = 1
    kernel_plan: bool = True
    temp_arena_limit: int | None = None
    verify_level: str = "off"
    runtime_guards: bool = False
    backend: str = "planned"
    native_cflags: tuple[str, ...] | None = None
    native_isolation: str = "none"
    native_fault: str | None = None
    driver_hook_cycles: int = 8
    native_threads: int | None = None
    native_affinity: str = "none"

    def __post_init__(self) -> None:
        if self.verify_level not in VERIFY_LEVELS:
            from .errors import CompileError

            raise CompileError(
                f"unknown verify_level {self.verify_level!r}",
                expected=VERIFY_LEVELS,
            )
        from .backend.registry import TIERS

        selectable = TIERS.selectable_names()
        if self.backend not in selectable:
            from .errors import CompileError

            raise CompileError(
                f"unknown backend {self.backend!r}", expected=selectable
            )
        if self.native_cflags is not None and not isinstance(
            self.native_cflags, tuple
        ):
            # keep the frozen dataclass hashable/fingerprintable
            object.__setattr__(
                self, "native_cflags", tuple(self.native_cflags)
            )
        if self.native_isolation not in ISOLATION_MODES:
            from .errors import CompileError

            raise CompileError(
                f"unknown native_isolation {self.native_isolation!r}",
                expected=ISOLATION_MODES,
            )
        if self.native_fault not in NATIVE_FAULTS:
            from .errors import CompileError

            raise CompileError(
                f"unknown native_fault {self.native_fault!r}",
                expected=NATIVE_FAULTS,
            )
        if self.driver_hook_cycles < 1:
            from .errors import CompileError

            raise CompileError(
                "driver_hook_cycles must be >= 1",
                got=self.driver_hook_cycles,
            )
        if self.native_affinity not in AFFINITY_MODES:
            from .errors import CompileError

            raise CompileError(
                f"unknown native_affinity {self.native_affinity!r}",
                expected=AFFINITY_MODES,
            )

    def tile_shape(self, ndim: int) -> tuple[int, ...]:
        if ndim in self.tile_sizes:
            return tuple(self.tile_sizes[ndim])
        if ndim > 3:
            # higher-dimensional grids: reuse the innermost 3-D choices
            base = self.tile_sizes.get(3, DEFAULT_TILE_SIZES[3])
            return tuple([base[0]] * (ndim - len(base)) + list(base))
        raise ValueError(f"no tile sizes configured for rank {ndim}")

    def with_(self, **kwargs) -> "PolyMgConfig":
        """Functional update (frozen dataclass convenience)."""
        return replace(self, **kwargs)

    def fingerprint(self) -> str:
        """Stable, canonical serialization of every field — the
        configuration component of the compile-cache key (see
        :mod:`repro.cache`).  Two configs built independently with equal
        field values fingerprint identically; changing *any* field
        changes the fingerprint."""
        parts = []
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, dict):
                value = sorted(value.items())
            parts.append(f"{f.name}={value!r}")
        return ";".join(parts)
