"""Expression AST of the PolyMG DSL.

Function definitions are trees of :class:`Expr` nodes; reads of other
functions are :class:`Ref` nodes whose subscripts are :class:`IndexExpr`
— affine expressions over the stage's dimension variables.  Boundary
handling uses :class:`Condition`/:class:`Case` piecewise definitions, as
in PolyMage's ``Case`` construct.
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from ..ir.affine import Affine, aff
from .parameters import Parameter, Variable

if TYPE_CHECKING:  # pragma: no cover
    from .function import Function

__all__ = [
    "Expr",
    "Const",
    "IndexExpr",
    "VarExpr",
    "Ref",
    "BinOp",
    "UnOp",
    "Call",
    "Select",
    "Minimum",
    "Maximum",
    "Condition",
    "Case",
    "wrap_expr",
    "walk",
    "collect_refs",
    "map_refs",
    "count_flops",
]


# ---------------------------------------------------------------------------
# index expressions
# ---------------------------------------------------------------------------


class IndexExpr:
    """Affine subscript over dimension variables: ``sum(c_v * v) + const``.

    Coefficients are exact rationals; the constant part may reference
    parameters (rare, but e.g. mirrored boundary reads use ``N - x``).
    Only integer-coefficient index expressions can be executed; rational
    coefficients appear transiently inside the ``Interp`` construct and
    are eliminated by parity expansion.
    """

    __slots__ = ("coeffs", "const")

    def __init__(
        self,
        coeffs: dict[Variable, Fraction] | None = None,
        const: Affine | int = 0,
    ) -> None:
        self.coeffs: dict[Variable, Fraction] = {
            v: Fraction(c) for v, c in (coeffs or {}).items() if c != 0
        }
        self.const: Affine = aff(const)

    @classmethod
    def of_var(cls, var: Variable) -> "IndexExpr":
        return cls({var: Fraction(1)})

    @classmethod
    def wrap(cls, value) -> "IndexExpr":
        if isinstance(value, IndexExpr):
            return value
        if isinstance(value, Variable):
            return cls.of_var(value)
        if isinstance(value, Parameter):
            return cls({}, value.affine)
        if isinstance(value, (int, Affine)):
            return cls({}, value)
        raise TypeError(f"cannot use {value!r} as an index expression")

    # -- algebra --------------------------------------------------------
    def __add__(self, other) -> "IndexExpr":
        o = IndexExpr.wrap(other)
        coeffs = dict(self.coeffs)
        for v, c in o.coeffs.items():
            coeffs[v] = coeffs.get(v, Fraction(0)) + c
        return IndexExpr(coeffs, self.const + o.const)

    __radd__ = __add__

    def __neg__(self) -> "IndexExpr":
        return IndexExpr({v: -c for v, c in self.coeffs.items()}, -self.const)

    def __sub__(self, other) -> "IndexExpr":
        return self + (-IndexExpr.wrap(other))

    def __rsub__(self, other) -> "IndexExpr":
        return IndexExpr.wrap(other) + (-self)

    def __mul__(self, factor) -> "IndexExpr":
        f = Fraction(factor)
        return IndexExpr(
            {v: c * f for v, c in self.coeffs.items()}, self.const * f
        )

    __rmul__ = __mul__

    # -- conditions ------------------------------------------------------
    def __le__(self, other) -> "Condition":
        return Condition.atom(self, "<=", other)

    def __lt__(self, other) -> "Condition":
        return Condition.atom(self, "<", other)

    def __ge__(self, other) -> "Condition":
        return Condition.atom(self, ">=", other)

    def __gt__(self, other) -> "Condition":
        return Condition.atom(self, ">", other)

    def equals(self, other) -> "Condition":
        return Condition.atom(self, "==", other)

    # -- queries ---------------------------------------------------------
    def variables(self) -> tuple[Variable, ...]:
        return tuple(self.coeffs)

    def single_variable(self) -> Variable | None:
        """The unique variable, if this index uses exactly one."""
        if len(self.coeffs) == 1:
            return next(iter(self.coeffs))
        return None

    def coeff_of(self, var: Variable) -> Fraction:
        return self.coeffs.get(var, Fraction(0))

    def is_constant(self) -> bool:
        return not self.coeffs

    def is_integral(self) -> bool:
        return all(c.denominator == 1 for c in self.coeffs.values())

    def substitute(self, mapping: dict[Variable, "IndexExpr"]) -> "IndexExpr":
        out = IndexExpr({}, self.const)
        for v, c in self.coeffs.items():
            if v in mapping:
                out = out + mapping[v] * c
            else:
                out = out + IndexExpr({v: c})
        return out

    def __repr__(self) -> str:
        parts = []
        for v, c in self.coeffs.items():
            if c == 1:
                parts.append(v.name)
            elif c == -1:
                parts.append(f"-{v.name}")
            else:
                parts.append(f"{c}*{v.name}")
        if not parts or self.const != Affine(0):
            parts.append(repr(self.const))
        return " + ".join(parts).replace("+ -", "- ")


# ---------------------------------------------------------------------------
# scalar expressions
# ---------------------------------------------------------------------------


def wrap_expr(value) -> "Expr":
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Const(value)
    if isinstance(value, (Variable, IndexExpr)):
        return VarExpr(IndexExpr.wrap(value))
    raise TypeError(f"cannot use {value!r} as a DSL expression")


class Expr:
    """Base class of all scalar DSL expressions."""

    __slots__ = ()

    def __add__(self, other):
        return BinOp("+", self, wrap_expr(other))

    def __radd__(self, other):
        return BinOp("+", wrap_expr(other), self)

    def __sub__(self, other):
        return BinOp("-", self, wrap_expr(other))

    def __rsub__(self, other):
        return BinOp("-", wrap_expr(other), self)

    def __mul__(self, other):
        return BinOp("*", self, wrap_expr(other))

    def __rmul__(self, other):
        return BinOp("*", wrap_expr(other), self)

    def __truediv__(self, other):
        return BinOp("/", self, wrap_expr(other))

    def __rtruediv__(self, other):
        return BinOp("/", wrap_expr(other), self)

    def __neg__(self):
        return UnOp("-", self)

    def children(self) -> tuple["Expr", ...]:
        return ()


class Const(Expr):
    """A numeric literal."""

    __slots__ = ("value",)

    def __init__(self, value: float | int) -> None:
        self.value = value

    def __repr__(self) -> str:
        return repr(self.value)


class VarExpr(Expr):
    """An index expression used as a scalar value (e.g. ``x`` in an
    initialization such as ``sin(pi * x * h)``)."""

    __slots__ = ("index",)

    def __init__(self, index: IndexExpr) -> None:
        self.index = index

    def __repr__(self) -> str:
        return repr(self.index)


class Ref(Expr):
    """A read of another function: ``f(ix0, ix1, ...)``."""

    __slots__ = ("func", "indices")

    def __init__(self, func: "Function", indices: Sequence) -> None:
        self.func = func
        self.indices: tuple[IndexExpr, ...] = tuple(
            IndexExpr.wrap(ix) for ix in indices
        )

    def with_func(self, func: "Function") -> "Ref":
        return Ref(func, self.indices)

    def with_indices(self, indices: Sequence[IndexExpr]) -> "Ref":
        return Ref(self.func, indices)

    def __repr__(self) -> str:
        args = ", ".join(repr(ix) for ix in self.indices)
        return f"{self.func.name}({args})"


class BinOp(Expr):
    __slots__ = ("op", "left", "right")

    OPS = ("+", "-", "*", "/")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in self.OPS:
            raise ValueError(f"unsupported operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class UnOp(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr) -> None:
        if op != "-":
            raise ValueError(f"unsupported unary operator {op!r}")
        self.op = op
        self.operand = operand

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"(-{self.operand!r})"


class Call(Expr):
    """Math intrinsic call (``sqrt``, ``exp``, ``sin``, ``cos``, ``abs``,
    ``pow``)."""

    __slots__ = ("fn", "args")

    FNS = ("sqrt", "exp", "sin", "cos", "abs", "pow", "log")

    def __init__(self, fn: str, *args) -> None:
        if fn not in self.FNS:
            raise ValueError(f"unsupported intrinsic {fn!r}")
        self.fn = fn
        self.args = tuple(wrap_expr(a) for a in args)

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def __repr__(self) -> str:
        return f"{self.fn}({', '.join(map(repr, self.args))})"


class Minimum(Expr):
    __slots__ = ("left", "right")

    def __init__(self, left, right) -> None:
        self.left = wrap_expr(left)
        self.right = wrap_expr(right)

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"min({self.left!r}, {self.right!r})"


class Maximum(Expr):
    __slots__ = ("left", "right")

    def __init__(self, left, right) -> None:
        self.left = wrap_expr(left)
        self.right = wrap_expr(right)

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"max({self.left!r}, {self.right!r})"


class Select(Expr):
    """Conditional expression ``cond ? true_expr : false_expr``."""

    __slots__ = ("condition", "true_expr", "false_expr")

    def __init__(self, condition: "Condition", true_expr, false_expr) -> None:
        self.condition = condition
        self.true_expr = wrap_expr(true_expr)
        self.false_expr = wrap_expr(false_expr)

    def children(self) -> tuple[Expr, ...]:
        return (self.true_expr, self.false_expr)

    def __repr__(self) -> str:
        return (
            f"select({self.condition!r}, {self.true_expr!r}, "
            f"{self.false_expr!r})"
        )


# ---------------------------------------------------------------------------
# conditions and piecewise cases
# ---------------------------------------------------------------------------


class Condition:
    """A conjunction of affine comparisons over dimension variables.

    GMG boundary conditions are axis-aligned (``x == 0``, ``y <= N``),
    so conditions lower exactly to boxes; :meth:`constraint_box` performs
    that lowering for the executor and code generator.
    """

    __slots__ = ("atoms",)

    def __init__(self, atoms: Iterable[tuple[IndexExpr, str, IndexExpr]]):
        self.atoms = tuple(atoms)

    @classmethod
    def atom(cls, lhs, op: str, rhs) -> "Condition":
        lhs = IndexExpr.wrap(lhs)
        rhs = IndexExpr.wrap(rhs)
        # normalize strict ops on integers to inclusive ones
        if op == "<":
            return cls([(lhs, "<=", rhs - 1)])
        if op == ">":
            return cls([(lhs, ">=", rhs + 1)])
        if op not in ("<=", ">=", "=="):
            raise ValueError(f"unsupported comparison {op!r}")
        return cls([(lhs, op, rhs)])

    def __and__(self, other: "Condition") -> "Condition":
        return Condition(self.atoms + other.atoms)

    def constraint_bounds(
        self, bindings: dict[str, int]
    ) -> dict[Variable, tuple[float, float]]:
        """Per-variable (lo, hi) bounds implied by the conjunction.

        Raises if any atom is not of the single-variable unit-coefficient
        form (the only form GMG pipelines produce).
        """
        bounds: dict[Variable, tuple[float, float]] = {}

        def narrow(var: Variable, lo: float, hi: float) -> None:
            cur = bounds.get(var, (float("-inf"), float("inf")))
            bounds[var] = (max(cur[0], lo), min(cur[1], hi))

        for lhs, op, rhs in self.atoms:
            diff = lhs - rhs
            var = diff.single_variable()
            if var is None or diff.coeff_of(var) not in (1, -1):
                raise ValueError(
                    f"condition atom {lhs!r} {op} {rhs!r} is not "
                    "box-representable"
                )
            c = diff.coeff_of(var)
            k = -diff.const.value(bindings)  # var * c <= / >= / == k
            k = float(k) / float(c)
            effective = op
            if c < 0 and op in ("<=", ">="):
                effective = ">=" if op == "<=" else "<="
            if effective == "<=":
                narrow(var, float("-inf"), k)
            elif effective == ">=":
                narrow(var, k, float("inf"))
            else:  # ==
                narrow(var, k, k)
        return bounds

    def __repr__(self) -> str:
        return " && ".join(
            f"{lhs!r} {op} {rhs!r}" for lhs, op, rhs in self.atoms
        )


class Case:
    """One branch of a piecewise definition: ``expr`` where ``condition``
    holds.  A definition list is evaluated like an if/elif chain; a plain
    trailing :class:`Expr` acts as the else-branch."""

    __slots__ = ("condition", "expr")

    def __init__(self, condition: Condition, expr) -> None:
        self.condition = condition
        self.expr = wrap_expr(expr)

    def __repr__(self) -> str:
        return f"Case({self.condition!r}, {self.expr!r})"


# ---------------------------------------------------------------------------
# tree utilities
# ---------------------------------------------------------------------------


def walk(expr: Expr) -> Iterator[Expr]:
    """Pre-order traversal of an expression tree."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def collect_refs(expr: Expr) -> list[Ref]:
    return [node for node in walk(expr) if isinstance(node, Ref)]


def map_refs(expr: Expr, fn: Callable[[Ref], Expr]) -> Expr:
    """Rebuild ``expr`` with every :class:`Ref` node replaced by
    ``fn(ref)``."""
    if isinstance(expr, Ref):
        return fn(expr)
    if isinstance(expr, BinOp):
        return BinOp(expr.op, map_refs(expr.left, fn), map_refs(expr.right, fn))
    if isinstance(expr, UnOp):
        return UnOp(expr.op, map_refs(expr.operand, fn))
    if isinstance(expr, Call):
        return Call(expr.fn, *[map_refs(a, fn) for a in expr.args])
    if isinstance(expr, Minimum):
        return Minimum(map_refs(expr.left, fn), map_refs(expr.right, fn))
    if isinstance(expr, Maximum):
        return Maximum(map_refs(expr.left, fn), map_refs(expr.right, fn))
    if isinstance(expr, Select):
        return Select(
            expr.condition,
            map_refs(expr.true_expr, fn),
            map_refs(expr.false_expr, fn),
        )
    return expr


def count_flops(expr: Expr) -> int:
    """Floating-point operation count of one evaluation of ``expr``.

    Used by the machine cost model to derive arithmetic intensity per
    stage.  Intrinsics are charged a conventional weight.
    """
    flops = 0
    for node in walk(expr):
        if isinstance(node, BinOp):
            flops += 1
        elif isinstance(node, UnOp):
            flops += 1
        elif isinstance(node, (Minimum, Maximum)):
            flops += 1
        elif isinstance(node, Call):
            flops += 10  # conventional transcendental cost
        elif isinstance(node, Select):
            flops += 1
    return flops
