"""``Function`` and ``Grid`` — the core PolyMage constructs.

A :class:`Function` is an operation on a structured grid: a value defined
at every point of a parametric hyperrectangular domain, computed by an
expression (possibly piecewise via ``Case``) over reads of other
functions.  A :class:`Grid` is a pipeline input (PolyMage's ``Image``).

Each function exposes its *access summary* — per producer, per producer
dimension, which consumer dimension drives the subscript and through
which scaled-affine window (:class:`~repro.ir.access.AccessRange`).  The
DAG construction, dependence analysis, grouping, and overlapped-tiling
passes are all built on this summary.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..ir.access import AccessRange
from ..ir.domain import Box, Domain
from .expr import Case, Expr, Ref, collect_refs, wrap_expr
from .parameters import Interval, Variable
from .types import DType, dtype_of

__all__ = ["Function", "Grid", "DimAccess", "FunctionAccess"]

_ids = itertools.count()


@dataclass(frozen=True)
class DimAccess:
    """How one producer dimension is subscripted by a consumer.

    ``consumer_dim`` is the index (in the consumer's variable order) of
    the dimension variable driving this subscript, or ``None`` for a
    constant subscript (boundary reads), in which case ``const_lo/hi``
    give the fixed coordinate window.
    """

    consumer_dim: int | None
    rng: AccessRange | None = None
    const_lo: int = 0
    const_hi: int = 0

    def image(self, consumer_box: Box):
        from ..ir.interval import ConcreteInterval

        if self.consumer_dim is None:
            return ConcreteInterval(self.const_lo, self.const_hi)
        assert self.rng is not None
        return self.rng.image(consumer_box.intervals[self.consumer_dim])

    def merge(self, other: "DimAccess") -> "DimAccess":
        if (self.consumer_dim is None) != (other.consumer_dim is None):
            raise ValueError(
                "cannot merge constant and variable accesses on one dim"
            )
        if self.consumer_dim is None:
            return DimAccess(
                None,
                None,
                min(self.const_lo, other.const_lo),
                max(self.const_hi, other.const_hi),
            )
        if self.consumer_dim != other.consumer_dim:
            raise ValueError(
                "producer dimension driven by two different consumer dims"
            )
        assert self.rng is not None and other.rng is not None
        return DimAccess(self.consumer_dim, self.rng.union(other.rng))


@dataclass(frozen=True)
class FunctionAccess:
    """Access summary of one consumer on one producer: a
    :class:`DimAccess` per producer dimension."""

    dims: tuple[DimAccess, ...]

    def footprint(self, consumer_box: Box) -> Box:
        """Producer box needed to evaluate ``consumer_box``."""
        return Box([d.image(consumer_box) for d in self.dims])

    def merge(self, other: "FunctionAccess") -> "FunctionAccess":
        if len(self.dims) != len(other.dims):
            raise ValueError("rank mismatch in access merge")
        return FunctionAccess(
            tuple(a.merge(b) for a, b in zip(self.dims, other.dims))
        )

    def scaling(self) -> tuple[tuple[int, int], ...]:
        return tuple(
            d.rng.scaling() if d.rng is not None else (1, 1)
            for d in self.dims
        )

    def max_halo(self) -> int:
        return max(
            (d.rng.halo() for d in self.dims if d.rng is not None),
            default=0,
        )


class Function:
    """A PolyMage pipeline stage.

    Parameters mirror the paper's usage::

        f = Function(([y, x], [extent, extent]), Double, "residual")
        f.defn = [ ...expression over other functions... ]
    """

    def __init__(
        self,
        varspec: tuple[Sequence[Variable], Sequence[Interval]],
        dtype: DType,
        name: str | None = None,
    ) -> None:
        variables, intervals = varspec
        if len(variables) != len(intervals):
            raise ValueError("variable/interval count mismatch")
        self.uid = next(_ids)
        self.name = name if name is not None else f"_f{self.uid}"
        self.variables: tuple[Variable, ...] = tuple(variables)
        self.intervals: tuple[Interval, ...] = tuple(intervals)
        self.dtype = dtype_of(dtype)
        self._defn: list[Case | Expr] | None = None

    # -- identity ---------------------------------------------------------
    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"

    # -- structure ---------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.variables)

    @property
    def is_input(self) -> bool:
        return False

    @property
    def domain(self) -> Domain:
        return Domain([iv.ir for iv in self.intervals])

    def domain_box(self, bindings: Mapping[str, int]) -> Box:
        return self.domain.bind(dict(bindings))

    # -- definition ----------------------------------------------------------
    @property
    def defn(self) -> list[Case | Expr]:
        if self._defn is None:
            raise ValueError(f"{self.name} has no definition")
        return self._defn

    @defn.setter
    def defn(self, pieces) -> None:
        self._defn = self._normalize_defn(pieces)
        self._validate_defn()

    @property
    def has_defn(self) -> bool:
        return self._defn is not None

    def _normalize_defn(self, pieces) -> list[Case | Expr]:
        if not isinstance(pieces, (list, tuple)):
            pieces = [pieces]
        out: list[Case | Expr] = []
        for piece in pieces:
            if isinstance(piece, Case):
                out.append(piece)
            else:
                out.append(wrap_expr(piece))
        if not out:
            raise ValueError("empty definition")
        return out

    def _validate_defn(self) -> None:
        for ref in self.all_refs():
            if ref.func is self:
                raise ValueError(
                    f"{self.name}: self-reference in definition "
                    "(pipelines are feed-forward; use TStencil for "
                    "time-iterated stencils)"
                )
            if len(ref.indices) != ref.func.ndim:
                raise ValueError(
                    f"{self.name}: reads {ref.func.name} with "
                    f"{len(ref.indices)} subscripts, expected "
                    f"{ref.func.ndim}"
                )

    def defn_exprs(self) -> list[Expr]:
        """The expressions of all pieces (conditions stripped)."""
        return [
            piece.expr if isinstance(piece, Case) else piece
            for piece in self.defn
        ]

    def all_refs(self) -> list[Ref]:
        refs: list[Ref] = []
        if self._defn is None:
            return refs
        for expr in self.defn_exprs():
            refs.extend(collect_refs(expr))
        return refs

    def producers(self) -> list["Function"]:
        seen: dict[int, Function] = {}
        for ref in self.all_refs():
            seen.setdefault(ref.func.uid, ref.func)
        return list(seen.values())

    # -- reads as values ----------------------------------------------------
    def __call__(self, *indices) -> Ref:
        if len(indices) != self.ndim:
            raise ValueError(
                f"{self.name} is {self.ndim}-dimensional, called with "
                f"{len(indices)} subscripts"
            )
        return Ref(self, indices)

    # -- access analysis ------------------------------------------------------
    def _dim_access_of_index(self, index) -> DimAccess:
        var = index.single_variable()
        if var is None:
            if not index.is_constant():
                raise ValueError(
                    f"{self.name}: subscript {index!r} mixes dimension "
                    "variables"
                )
            c = index.const.int_value({})
            return DimAccess(None, None, c, c)
        coeff = index.coeff_of(var)
        if coeff <= 0:
            raise ValueError(
                f"{self.name}: non-positive subscript coefficient in "
                f"{index!r}"
            )
        const = index.const
        if not const.is_constant():
            raise ValueError(
                f"{self.name}: parametric subscript offset in {index!r}"
            )
        off_frac = const.constant_value()
        num, den = coeff.numerator, coeff.denominator
        if den == 1:
            off = off_frac
            if off.denominator != 1:
                raise ValueError(
                    f"{self.name}: fractional offset in {index!r}"
                )
            rng = AccessRange(num, 1, int(off), int(off))
        else:
            # rational subscript (num*x + c*den) / den with floor
            # semantics; exact per-congruence-class handling is done by
            # the sampling constructs themselves.
            scaled = off_frac * den
            if scaled.denominator != 1:
                raise ValueError(
                    f"{self.name}: offset {off_frac} not representable "
                    f"under denominator {den} in {index!r}"
                )
            rng = AccessRange(num, den, int(scaled), int(scaled))
        try:
            cdim = self.variables.index(var)
        except ValueError:
            raise ValueError(
                f"{self.name}: subscript uses foreign variable {var!r}"
            ) from None
        return DimAccess(cdim, rng)

    def accesses(self) -> dict["Function", FunctionAccess]:
        """Merged access summary, keyed by producer function."""
        summary: dict[Function, FunctionAccess] = {}
        for ref in self.all_refs():
            acc = FunctionAccess(
                tuple(self._dim_access_of_index(ix) for ix in ref.indices)
            )
            if ref.func in summary:
                summary[ref.func] = summary[ref.func].merge(acc)
            else:
                summary[ref.func] = acc
        return summary

    # -- metadata used by scheduling/codegen ----------------------------------
    def stage_kind(self) -> str:
        """A human-readable operator kind for reports (Figure 6)."""
        return getattr(self, "kind", "pointwise")


class Grid(Function):
    """A pipeline input (PolyMage's ``Image``); paper usage::

        V = Grid(Double, "V", [N + 2, N + 2])
    """

    def __init__(self, dtype: DType, name: str, sizes: Sequence) -> None:
        variables = [Variable(f"_{name}_d{i}") for i in range(len(sizes))]
        from .types import Int

        intervals = [Interval(Int, 0, size - 1) for size in sizes]
        super().__init__((variables, intervals), dtype, name)

    @property
    def is_input(self) -> bool:
        return True

    @Function.defn.setter
    def defn(self, pieces) -> None:  # pragma: no cover - guard
        raise ValueError(f"input grid {self.name} cannot have a definition")

    def stage_kind(self) -> str:
        return "input"
