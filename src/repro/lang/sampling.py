"""``Restrict`` and ``Interp`` — the sampling constructs of PolyMG.

Paper section 2: these constructs are derived from ``Function`` and carry
default sampling factors (1/2 for ``Restrict``, 2 for ``Interp``).  The
sampling factor decides the grid access index coefficients; the
constructs take over the error-prone modulo/parity index arithmetic the
programmer would otherwise write by hand.

``Restrict``: the output point ``(y, x)`` reads its input around
``(2y, 2x)`` — the construct scales the variable coefficients of every
subscript in the definition by 2.

``Interp``: the output grid is ``2**d`` times larger than the input; the
definition is a nested parity table ``expr[ry][rx]`` (Figure 3's
``interpolate``) giving, for each output-point parity class
``(2q_y + r_y, 2q_x + r_x)``, an expression over the *coarse* index
``q``.  Parity expansion keeps every executed subscript integral.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from ..ir.access import AccessRange
from .expr import Case, Expr, Ref, collect_refs, wrap_expr
from .function import DimAccess, Function, FunctionAccess
from .parameters import Interval, Variable
from .types import DType

__all__ = ["Restrict", "Interp"]


class Restrict(Function):
    """Downsampling stage with implicit factor 1/2 (output is the coarse
    grid; subscripts of the fine input are scaled by 2)."""

    SAMPLING_FACTOR = 2  # consumer index is scaled up by 2 into the input

    @Function.defn.setter
    def defn(self, pieces) -> None:
        normalized = self._normalize_defn(pieces)

        def scale(ref: Ref) -> Expr:
            from fractions import Fraction

            from .expr import IndexExpr

            new_indices = [
                IndexExpr(
                    {
                        v: c * Fraction(self.SAMPLING_FACTOR)
                        for v, c in ix.coeffs.items()
                    },
                    ix.const,
                )
                for ix in ref.indices
            ]
            return ref.with_indices(new_indices)

        from .expr import map_refs

        scaled: list[Case | Expr] = []
        for piece in normalized:
            if isinstance(piece, Case):
                scaled.append(Case(piece.condition, map_refs(piece.expr, scale)))
            else:
                scaled.append(map_refs(piece, scale))
        self._defn = scaled
        self._validate_defn()

    def stage_kind(self) -> str:
        return "restrict"


class Interp(Function):
    """Upsampling stage with implicit factor 2.

    The definition is assigned as ``[parity_table]`` where the table is
    nested dicts/lists indexed by per-dimension parity (0 or 1), each
    entry an expression over *coarse* subscripts — exactly the structure
    built by Figure 3's ``interpolate``.
    """

    SAMPLING_FACTOR = 2

    def __init__(
        self,
        varspec: tuple[Sequence[Variable], Sequence[Interval]],
        dtype: DType,
        name: str | None = None,
    ) -> None:
        super().__init__(varspec, dtype, name)
        self.parity_cases: dict[tuple[int, ...], Expr] = {}

    @Function.defn.setter
    def defn(self, pieces) -> None:
        if isinstance(pieces, (list, tuple)) and len(pieces) == 1:
            table = pieces[0]
        else:
            table = pieces
        cases: dict[tuple[int, ...], Expr] = {}
        for parity in itertools.product((0, 1), repeat=self.ndim):
            node = table
            for p in parity:
                try:
                    node = node[p]
                except (KeyError, IndexError, TypeError):
                    raise ValueError(
                        f"{self.name}: parity table missing entry {parity}"
                    ) from None
            cases[parity] = wrap_expr(node)
        self.parity_cases = cases
        # the generic defn view: all parity expressions (used by flop
        # counting, ref collection, and validation)
        self._defn = list(cases.values())
        self._validate_defn()

    def all_refs(self):
        refs = []
        for expr in self.parity_cases.values():
            refs.extend(collect_refs(expr))
        return refs

    def accesses(self) -> dict[Function, FunctionAccess]:
        """Fine-to-coarse access summary.

        A coarse subscript ``q + o`` used by parity class ``r`` reads,
        for the fine window ``[a, b]``, the coarse points
        ``[floor((a - 1) / 2) + o_min, floor(b / 2) + o_max]``; encoded
        as ``AccessRange(1, 2, 2*o_min - 1, 2*o_max)``.
        """
        summary: dict[Function, FunctionAccess] = {}
        for ref in self.all_refs():
            dims: list[DimAccess] = []
            for ix in ref.indices:
                var = ix.single_variable()
                if var is None:
                    if not ix.is_constant():
                        raise ValueError(
                            f"{self.name}: bad interp subscript {ix!r}"
                        )
                    c = ix.const.int_value({})
                    dims.append(DimAccess(None, None, c, c))
                    continue
                coeff = ix.coeff_of(var)
                if coeff != 1:
                    raise ValueError(
                        f"{self.name}: interp subscripts must have unit "
                        f"coefficient, got {ix!r}"
                    )
                off = ix.const.int_value({})
                cdim = self.variables.index(var)
                rng = AccessRange(1, 2, 2 * off - 1, 2 * off)
                dims.append(DimAccess(cdim, rng))
            acc = FunctionAccess(tuple(dims))
            if ref.func in summary:
                summary[ref.func] = summary[ref.func].merge(acc)
            else:
                summary[ref.func] = acc
        return summary

    def stage_kind(self) -> str:
        return "interp"
