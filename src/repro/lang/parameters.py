"""Core DSL symbols: ``Parameter``, ``Variable``, ``Interval``.

These are the PolyMage/PolyMG front-end constructs retained by the paper
(section 2): parameters are compile-time-bound problem sizes (``N``,
``T``); variables index grid dimensions inside function definitions;
intervals give parametric domain extents.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from ..ir.affine import Affine, aff
from ..ir.interval import Interval as IRInterval
from .types import DType, Int, dtype_of

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .expr import IndexExpr

__all__ = ["Parameter", "Variable", "Interval"]

_counter = itertools.count()


class Parameter:
    """A named compile-time parameter (e.g. problem size ``N``).

    Arithmetic on parameters yields :class:`~repro.ir.affine.Affine`
    expressions usable as interval bounds: ``Interval(Int, 1, N + 1)``.
    """

    __slots__ = ("name", "dtype")

    def __init__(self, dtype: DType = Int, name: str | None = None) -> None:
        self.dtype = dtype_of(dtype)
        self.name = name if name is not None else f"_p{next(_counter)}"

    @property
    def affine(self) -> Affine:
        return aff(self.name)

    def __add__(self, other):
        return self.affine + _coerce(other)

    __radd__ = __add__

    def __sub__(self, other):
        return self.affine - _coerce(other)

    def __rsub__(self, other):
        return _coerce(other) - self.affine

    def __mul__(self, other):
        return self.affine * other

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self.affine / other

    def __neg__(self):
        return -self.affine

    def __repr__(self) -> str:
        return f"Parameter({self.name})"


def _coerce(value) -> Affine:
    if isinstance(value, Parameter):
        return value.affine
    return aff(value)


class Variable:
    """A dimension variable of a DSL function (``x``, ``y``, ``z``).

    Arithmetic produces :class:`~repro.lang.expr.IndexExpr` index
    expressions, e.g. ``x + 1`` or ``2 * y - 1``.
    """

    __slots__ = ("name",)

    def __init__(self, name: str | None = None) -> None:
        self.name = name if name is not None else f"_v{next(_counter)}"

    def _index(self) -> "IndexExpr":
        from .expr import IndexExpr

        return IndexExpr.of_var(self)

    def __add__(self, other):
        return self._index() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self._index() - other

    def __rsub__(self, other):
        return (-self._index()) + other

    def __mul__(self, other):
        return self._index() * other

    __rmul__ = __mul__

    def __neg__(self):
        return -self._index()

    # comparisons build boundary conditions (see expr.Condition)
    def __le__(self, other):
        return self._index() <= other

    def __lt__(self, other):
        return self._index() < other

    def __ge__(self, other):
        return self._index() >= other

    def __gt__(self, other):
        return self._index() > other

    def equals(self, other):
        """Equality condition ``self == other`` (method form, since
        ``__eq__`` is kept as identity for hashing)."""
        return self._index().equals(other)

    def __repr__(self) -> str:
        return self.name


class Interval:
    """DSL interval ``[lb, ub]`` (inclusive) with parametric bounds.

    Matches PolyMage's ``Interval(Int, lb, ub)`` construct; lowers to
    :class:`repro.ir.interval.Interval`.
    """

    __slots__ = ("dtype", "ir")

    def __init__(self, dtype: DType, lb, ub) -> None:
        self.dtype = dtype_of(dtype)
        self.ir = IRInterval(_coerce(lb), _coerce(ub))

    @property
    def lb(self) -> Affine:
        return self.ir.lb

    @property
    def ub(self) -> Affine:
        return self.ir.ub

    def __repr__(self) -> str:
        return f"Interval({self.lb}, {self.ub})"
