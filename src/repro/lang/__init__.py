"""The PolyMG domain-specific language (paper section 2).

Embedded in Python: ``Parameter``/``Variable``/``Interval`` symbols,
``Function`` stages with piecewise ``Case`` definitions, ``Grid`` inputs,
``Stencil`` weight-matrix expansion, the multigrid-specific ``TStencil``
(time-iterated smoother), and the sampling constructs ``Restrict`` and
``Interp``.
"""

from .expr import (
    Case,
    Condition,
    Const,
    Expr,
    Maximum,
    Minimum,
    Ref,
    Select,
    collect_refs,
    count_flops,
)
from .function import Function, Grid
from .parameters import Interval, Parameter, Variable
from .sampling import Interp, Restrict
from .stencil import Stencil, TStencil
from .types import Char, Double, Float, Int, Long, UInt

__all__ = [
    "Case",
    "Condition",
    "Const",
    "Expr",
    "Maximum",
    "Minimum",
    "Ref",
    "Select",
    "collect_refs",
    "count_flops",
    "Function",
    "Grid",
    "Interval",
    "Parameter",
    "Variable",
    "Interp",
    "Restrict",
    "Stencil",
    "TStencil",
    "Char",
    "Double",
    "Float",
    "Int",
    "Long",
    "UInt",
]
