"""``Stencil`` and ``TStencil`` constructs (paper section 2).

``Stencil`` expands a weight matrix (a nested Python list, 1-D to 3-D)
into a sum of weighted reads — the paper's

    Stencil(f, (x, y), [[0, 1], [-1, 2]], 1.0/16)

``TStencil`` is the paper's new construct for time-iterated smoothers: a
single definition applied for ``T`` steps, expanded at compile time into
one pipeline stage per step so that grouping/tiling passes see the full
DAG (the paper counts each smoothing step as a DAG node — e.g. 40 stages
for V-2D-4-4-4).

Deviation note: PolyMG lets ``T`` be initialized at runtime; this
reproduction binds the step count when the pipeline is built (the
compiled schedule is specialized per step count, exactly like the
benchmarks in the paper which fix 4-4-4 / 10-0-0 configurations).
"""

from __future__ import annotations

from typing import Sequence

from .expr import Case, Const, Expr, Ref, map_refs
from .function import Function
from .parameters import Interval, Variable
from .types import DType

__all__ = ["Stencil", "TStencil", "stencil_weights_shape"]


def _nesting_depth(weights) -> int:
    depth = 0
    probe = weights
    while isinstance(probe, (list, tuple)):
        depth += 1
        if len(probe) == 0:
            raise ValueError("empty weight list")
        probe = probe[0]
    return depth


def _check_rectangular(weights) -> None:
    """Ragged weight lists silently shift stencil offsets; reject them."""
    if not isinstance(weights, (list, tuple)):
        return
    shapes = set()
    for row in weights:
        _check_rectangular(row)
        shapes.add(
            len(row) if isinstance(row, (list, tuple)) else None
        )
    if len(shapes) > 1:
        raise ValueError(f"ragged stencil weight list: {weights!r}")


def _normalize_weights(weights, ndim: int):
    """Pad the nested weight list with leading singleton dimensions so its
    nesting depth equals ``ndim`` (the paper's 1-D rows like ``[1, 1]``
    act along the innermost dimension of a 2-D function)."""
    depth = _nesting_depth(weights)
    if depth > ndim:
        raise ValueError(
            f"weight nesting depth {depth} exceeds function rank {ndim}"
        )
    _check_rectangular(weights)
    for _ in range(ndim - depth):
        weights = [weights]
    return weights


def stencil_weights_shape(weights, ndim: int) -> tuple[int, ...]:
    weights = _normalize_weights(weights, ndim)
    shape = []
    probe = weights
    for _ in range(ndim):
        shape.append(len(probe))
        probe = probe[0]
    return tuple(shape)


def _iter_weights(weights, ndim: int):
    """Yield ``(index_tuple, weight)`` for every entry."""

    def rec(node, idx):
        if len(idx) == ndim:
            yield idx, node
            return
        for i, child in enumerate(node):
            yield from rec(child, idx + (i,))

    yield from rec(_normalize_weights(weights, ndim), ())


def Stencil(
    func: Function,
    variables: Sequence[Variable],
    weights,
    factor: float = 1.0,
    origin: Sequence[int] | None = None,
) -> Expr:
    """Expand a weight matrix into a weighted sum of reads of ``func``.

    ``origin`` defaults to the matrix center ``(m//2, ...)`` per the
    paper; pass an explicit origin for off-center stencils (and for
    sampling stencils inside ``Interp`` definitions, which anchor at the
    corner ``(0, ...)``).
    """
    variables = tuple(variables)
    ndim = func.ndim
    if len(variables) != ndim:
        raise ValueError(
            f"stencil on {func.name}: {len(variables)} variables for "
            f"rank {ndim}"
        )
    shape = stencil_weights_shape(weights, ndim)
    if origin is None:
        origin = tuple(s // 2 for s in shape)
    origin = tuple(origin)

    total: Expr | None = None
    for idx, w in _iter_weights(weights, ndim):
        if w == 0:
            continue
        subscripts = [
            variables[d] + (idx[d] - origin[d]) for d in range(ndim)
        ]
        term: Expr = func(*subscripts)
        if w != 1:
            term = Const(w) * term
        total = term if total is None else total + term
    if total is None:
        total = Const(0.0)
    if factor != 1.0:
        total = Const(factor) * total
    return total


class TStencil(Function):
    """Time-iterated stencil: ``T`` applications of one definition.

    The definition is written against the *evolving* input function; at
    expansion each read of the evolving function in step ``t`` is
    redirected to step ``t-1``.  ``W[k]`` returns the function computing
    step ``k`` (``W[0]`` is the evolving input itself)::

        W = TStencil(([y, x], [ext, ext]), Double, steps, evolving=v)
        W.defn = [v(y, x) - w * (Stencil(v, [y, x], L) - f(y, x))]
        final = W[steps]
    """

    def __init__(
        self,
        varspec: tuple[Sequence[Variable], Sequence[Interval]],
        dtype: DType,
        timesteps: int,
        evolving: Function,
        name: str | None = None,
    ) -> None:
        super().__init__(varspec, dtype, name)
        if not isinstance(timesteps, int) or timesteps < 0:
            raise ValueError(
                "TStencil timesteps must be a non-negative int bound at "
                "pipeline-build time"
            )
        self.timesteps = timesteps
        self.evolving = evolving
        self.steps: list[Function] = []

    @Function.defn.setter
    def defn(self, pieces) -> None:
        normalized = self._normalize_defn(pieces)
        self._defn = normalized
        self._validate_defn()
        self._expand()

    def _expand(self) -> None:
        self.steps = []
        prev = self.evolving
        for t in range(1, self.timesteps + 1):
            step = Function(
                (self.variables, self.intervals),
                self.dtype,
                f"{self.name}.t{t}",
            )
            step.kind = "smooth"  # type: ignore[attr-defined]
            step.tstencil = self  # type: ignore[attr-defined]
            step.time_index = t  # type: ignore[attr-defined]

            def redirect(ref: Ref, _prev=prev) -> Expr:
                if ref.func is self.evolving:
                    return ref.with_func(_prev)
                return ref

            pieces: list[Case | Expr] = []
            for piece in self.defn:
                if isinstance(piece, Case):
                    pieces.append(
                        Case(piece.condition, map_refs(piece.expr, redirect))
                    )
                else:
                    pieces.append(map_refs(piece, redirect))
            step.defn = pieces
            prev = step
            self.steps.append(step)

    def __getitem__(self, k: int) -> Function:
        if k == 0:
            return self.evolving
        if 1 <= k <= len(self.steps):
            return self.steps[k - 1]
        raise IndexError(
            f"{self.name}: step {k} outside 0..{len(self.steps)}"
        )

    @property
    def last(self) -> Function:
        """The function computing the final smoothing step."""
        return self[self.timesteps]

    def stage_kind(self) -> str:
        return "smooth"
