"""Scalar element types of the PolyMG DSL.

Mirrors PolyMage's type vocabulary (``Double``, ``Float``, ``Int`` ...);
each type knows its numpy dtype (for the interpreter backend), its C
rendering (for the code emitter), and its size in bytes (for the storage
and cost models).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DType",
    "Double",
    "Float",
    "Int",
    "UInt",
    "Long",
    "Char",
    "dtype_of",
]


@dataclass(frozen=True)
class DType:
    name: str
    np_dtype: np.dtype
    c_name: str

    @property
    def size_bytes(self) -> int:
        return int(self.np_dtype.itemsize)

    def __repr__(self) -> str:
        return self.name


Double = DType("Double", np.dtype(np.float64), "double")
Float = DType("Float", np.dtype(np.float32), "float")
Int = DType("Int", np.dtype(np.int32), "int")
UInt = DType("UInt", np.dtype(np.uint32), "unsigned int")
Long = DType("Long", np.dtype(np.int64), "long long")
Char = DType("Char", np.dtype(np.int8), "char")

_BY_NAME = {t.name: t for t in (Double, Float, Int, UInt, Long, Char)}


def dtype_of(value) -> DType:
    """Coerce a DType or its name to a DType."""
    if isinstance(value, DType):
        return value
    if isinstance(value, str) and value in _BY_NAME:
        return _BY_NAME[value]
    raise TypeError(f"not a DSL type: {value!r}")
