"""``handopt+pluto`` — hand-optimized code with diamond-tiled smoothers.

The paper's strongest baseline: the Ghysels & Vanroose hand-optimized
multigrid further optimized by time-tiling the smoothing steps with
Pluto's diamond tiling.  Here the smoother sweep of
:class:`~repro.baselines.handopt.HandOptSolver` is replaced by a
diamond-tiled traversal (same two modulo buffers, time-parity
addressing) over the :mod:`repro.pluto.diamond` schedule.  Results stay
bit-identical to the straight sweep — tiling only reorders independent
work — which the tests assert.
"""

from __future__ import annotations

import numpy as np

from ..pluto.diamond import diamond_schedule
from ..pluto.executor import diamond_width_for
from .handopt import HandOptSolver, LevelBuffers

__all__ = ["HandOptPlutoSolver", "diamond_jacobi_rows"]


def diamond_jacobi_rows(
    dst: np.ndarray,
    src: np.ndarray,
    f: np.ndarray,
    h: float,
    omega: float,
    lo: int,
    hi: int,
) -> None:
    """One Jacobi step restricted to outer-dimension rows ``[lo, hi]``
    (interior rows relaxed, boundary rows copied), matching
    :func:`repro.multigrid.kernels.jacobi_step` bit-for-bit on those
    rows."""
    n = src.shape[0] - 2
    lo_i = max(lo, 1)
    hi_i = min(hi, n)
    if lo_i <= hi_i:
        from ..multigrid.kernels import jacobi_step

        view_src = src[lo_i - 1 : hi_i + 2]
        view_f = f[lo_i - 1 : hi_i + 2]
        stepped = jacobi_step(view_src, view_f, h, omega)
        dst[lo_i : hi_i + 1] = stepped[1:-1]
    if lo <= 0:
        dst[0] = src[0]
    if hi >= n + 1:
        dst[n + 1] = src[n + 1]


class HandOptPlutoSolver(HandOptSolver):
    """handopt with the smoothing sweeps executed under the diamond-tile
    schedule (time-tiled along the outermost grid dimension)."""

    def __init__(self, *args, diamond_width: int | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.diamond_width = diamond_width

    def _smooth(
        self, lv: LevelBuffers, cur: int, steps: int, h: float
    ) -> int:
        if steps == 0:
            return cur
        extent = lv.u[0].shape[0] - 2  # interior rows
        from ..ir.interval import ConcreteInterval

        rows = ConcreteInterval(0, extent + 1)  # include boundary rows
        width = self.diamond_width or diamond_width_for(extent + 2, steps)
        phases = diamond_schedule(steps, rows, width)
        base = cur
        for phase in phases:
            for tile in phase:
                for t, interval in tile.steps():
                    src = lv.u[(base + t - 1) % 2]
                    dst = lv.u[(base + t) % 2]
                    diamond_jacobi_rows(
                        dst,
                        src,
                        lv.f,
                        h,
                        self.opts.omega,
                        interval.lb,
                        interval.ub,
                    )
        return (base + steps) % 2
