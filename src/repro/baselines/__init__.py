"""Hand-optimized baseline implementations (paper section 4.1):
``handopt`` (Ghysels & Vanroose reference) and ``handopt+pluto``
(diamond-tiled smoothers)."""

from .handopt import HandOptSolver
from .handopt_pluto import HandOptPlutoSolver

__all__ = ["HandOptSolver", "HandOptPlutoSolver"]
