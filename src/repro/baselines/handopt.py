"""``handopt`` — the hand-optimized reference implementation.

Models the Ghysels & Vanroose benchmark codes the paper compares against
(section 4.1): straightforwardly parallelized per-level loop nests with

* **two modulo buffers per level** — smoothing steps ping-pong between
  two preallocated arrays instead of allocating per step,
* **pooled memory allocation** — all level buffers are allocated once at
  solver construction and reused across cycles (no per-cycle malloc).

Numerically this computes exactly the same cycle as
:func:`repro.multigrid.reference.reference_cycle` (the tests assert
bit-equality); what differs is the storage scheme and, for the
``handopt+pluto`` subclass, the smoother execution order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..multigrid.kernels import (
    correct,
    interior,
    interpolate,
    jacobi_step,
    norm_residual,
    residual,
    restrict_full_weighting,
)
from ..multigrid.reference import MultigridOptions

__all__ = ["HandOptSolver", "LevelBuffers"]


@dataclass
class LevelBuffers:
    """The per-level working set of handopt: two modulo smoothing
    buffers plus the level's rhs and residual arrays."""

    u: list[np.ndarray]  # two modulo buffers
    f: np.ndarray
    r: np.ndarray  # interior-only residual


class HandOptSolver:
    """Hand-optimized multigrid solver with preallocated level storage."""

    def __init__(
        self, ndim: int, n: int, opts: MultigridOptions, dtype=np.float64
    ) -> None:
        if n % (1 << (opts.levels - 1)) != 0:
            raise ValueError(
                f"interior size {n} not divisible by 2**(levels-1)"
            )
        self.ndim = ndim
        self.n = n
        self.opts = opts
        self.dtype = np.dtype(dtype)
        # pooled allocation: every buffer for every level, up front
        self.levels: list[LevelBuffers] = []
        for level in range(opts.levels):
            nl = n >> (opts.levels - 1 - level)
            full = (nl + 2,) * ndim
            self.levels.append(
                LevelBuffers(
                    u=[
                        np.zeros(full, dtype=self.dtype),
                        np.zeros(full, dtype=self.dtype),
                    ],
                    f=np.zeros(full, dtype=self.dtype),
                    r=np.zeros((nl,) * ndim, dtype=self.dtype),
                )
            )
        self.allocated_bytes = sum(
            sum(b.nbytes for b in lv.u) + lv.f.nbytes + lv.r.nbytes
            for lv in self.levels
        )

    # -- smoothing with modulo buffers ------------------------------------
    def _smooth(
        self, lv: LevelBuffers, cur: int, steps: int, h: float
    ) -> int:
        """Relax ``steps`` times, ping-ponging between the level's two
        buffers; returns the index holding the result."""
        for _ in range(steps):
            nxt = 1 - cur
            lv.u[nxt][...] = jacobi_step(
                lv.u[cur], lv.f, h, self.opts.omega
            )
            cur = nxt
        return cur

    # -- one cycle -----------------------------------------------------------
    def cycle(self, u: np.ndarray, f: np.ndarray) -> np.ndarray:
        """One V-/W-cycle on the finest grid; returns the updated grid
        (a copy — caller owns its arrays, the solver owns its pool)."""
        top = self.opts.levels - 1
        lv = self.levels[top]
        lv.u[0][...] = u
        lv.f[...] = f
        h = 1.0 / (self.n + 1)
        cur = self._cycle_level(top, 0, h)
        return self.levels[top].u[cur].copy()

    def _cycle_level(self, level: int, cur: int, h: float) -> int:
        opts = self.opts
        lv = self.levels[level]
        if level == 0:
            return self._smooth(lv, cur, opts.n2, h)

        cur = self._smooth(lv, cur, opts.n1, h)
        lv.r[...] = residual(lv.u[cur], lv.f, h)

        child = self.levels[level - 1]
        child.f[...] = 0.0
        child.f[interior(self.ndim)] = restrict_full_weighting(lv.r)
        child.u[0][...] = 0.0
        nc = child.r.shape[0]
        hc = 1.0 / (nc + 1)
        c = self._cycle_level(level - 1, 0, hc)
        if opts.cycle == "W" and level - 1 > 0:
            if c != 0:
                child.u[0][...] = child.u[c]
                c = 0
            c = self._cycle_level(level - 1, 0, hc)

        e = interpolate(
            self.levels[level - 1].u[c][interior(self.ndim)],
            lv.r.shape[0],
        )
        nxt = 1 - cur
        lv.u[nxt][...] = correct(lv.u[cur], e)
        cur = nxt
        return self._smooth(lv, cur, opts.n3, h)

    # -- driver ---------------------------------------------------------------
    def solve(
        self, f: np.ndarray, cycles: int, u0: np.ndarray | None = None
    ):
        from ..multigrid.reference import SolveResult

        h = 1.0 / (self.n + 1)
        u = np.zeros_like(f) if u0 is None else u0.copy()
        result = SolveResult(u)
        result.residual_norms.append(norm_residual(u, f, h))
        for _ in range(cycles):
            u = self.cycle(u, f)
            result.cycles += 1
            result.residual_norms.append(norm_residual(u, f, h))
        result.u = u
        return result
