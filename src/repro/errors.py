"""Typed error taxonomy for the PolyMG compiler and runtime.

Every invariant failure in the compiler passes, the execution backend,
and the tuning loop raises a :class:`ReproError` subclass carrying
*structured context* (pipeline name, group index, stage/buffer names,
measured values), so a failure is diagnosable from the message alone —
no debugger required.  The hierarchy:

``ReproError``
    root of everything this package raises deliberately.
``CompileError``
    a compiler pass produced (or was given) an ill-formed artifact.
    Specialized into ``PassOrderingError`` (a mis-wired pass pipeline:
    requirements not produced by any earlier pass, duplicate artifact
    producers), ``ScheduleLegalityError`` (ordering violations),
    ``StorageSoundnessError`` (illegal scratchpad / full-array
    remapping, mis-sized buffers), and ``TileCoverageError`` (the
    overlapped-tile grid leaves a gap in a live-out's domain).
``ExecutionError``
    a runtime fault.  ``MissingInputError`` / ``InputShapeError`` also
    subclass ``KeyError`` / ``ValueError`` so pre-existing callers keep
    working; ``AllocatorError`` flags pool misuse and
    ``PoolExhaustedError`` (a subclass) a breached pool byte budget or
    a failed backing allocation; ``NumericalDivergenceError`` is raised
    by the runtime sentinels (NaN/Inf live-outs, residual blow-up
    across cycles); ``SolveAbortedError`` is raised by the solve
    supervisor (:mod:`repro.resilience`) when every remediation —
    checkpoint restore, ladder demotion, stagnation remediation — is
    exhausted.
``NativeBackendError``
    the native C/OpenMP JIT backend could not produce or run a shared
    object.  Specialized into ``NativeToolchainError`` (no usable C
    compiler), ``NativeLoweringError`` (the pipeline uses a construct
    the C emitter cannot lower — diamond groups, non-double dtypes),
    ``NativeCompileError`` (the out-of-process compile failed or timed
    out), ``NativeABIError`` (the loaded shared object rejected the
    buffers handed across the ctypes boundary), and
    ``NativeVerificationError`` (the ``verify_level=full`` one-cycle
    cross-check against the numpy backend diverged).  The sandboxed
    out-of-process executor (:mod:`repro.backend.sandbox`) adds the
    crash classes — ``NativeCrashError`` (the worker died on a signal
    or unexpected exit), ``NativeHangError`` (the watchdog hard-killed
    a worker that missed its deadline or stopped heartbeating), and
    ``NativeAbortError`` (the kernel called ``abort()``) — plus
    ``NativeQuarantinedError`` (the artifact's content hash is
    blacklisted on disk after repeated crashes and is never reloaded).
    All of these are recoverable: the executor logs an incident and
    falls back to the planned numpy backend.
``ServiceError``
    the multi-tenant solve service (:mod:`repro.service`) refused or
    interrupted a request — *by design, loudly, and typed*: the
    service never hangs a caller and never drops work silently.
    ``AdmissionRejected`` is the root of every admission-time refusal
    (carrying the tenant, the reason, and — where meaningful — a
    ``retry_after`` hint): ``QueueSaturated`` (bounded request queue
    full and the request did not outrank a queued victim),
    ``TenantRateLimited`` (token bucket empty),
    ``TenantConcurrencyExceeded`` (per-tenant concurrent-solve cap),
    ``AdmissionDeferred`` (fleet overload: graded response deferred
    this priority class), ``ServiceOverloaded`` (fleet at shed level),
    and ``ServiceDraining`` (shutdown in progress).
    ``SolvePreempted`` resolves an admitted-but-unfinished request at
    drain time, carrying the path of its persisted checkpoint so the
    solve is recoverable by a later service instance.
``TrialFailure``
    one autotuning trial failed (compile error, runtime fault, or
    wall-clock timeout); the search quarantines it and continues.

These checks guard production behaviour, so none of them hide behind
``assert`` — they survive ``python -O``.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "CompileError",
    "PassOrderingError",
    "ScheduleLegalityError",
    "StorageSoundnessError",
    "TileCoverageError",
    "ExecutionError",
    "MissingInputError",
    "InputShapeError",
    "AllocatorError",
    "PoolExhaustedError",
    "NumericalDivergenceError",
    "SolveAbortedError",
    "NativeBackendError",
    "NativeToolchainError",
    "NativeLoweringError",
    "NativeCompileError",
    "NativeABIError",
    "NativeVerificationError",
    "NativeCrashError",
    "NativeHangError",
    "NativeAbortError",
    "NativeQuarantinedError",
    "ServiceError",
    "AdmissionRejected",
    "QueueSaturated",
    "TenantRateLimited",
    "TenantConcurrencyExceeded",
    "AdmissionDeferred",
    "ServiceOverloaded",
    "ServiceDraining",
    "SolvePreempted",
    "TrialFailure",
]


class ReproError(Exception):
    """Root error; keyword arguments become structured context.

    ``None``-valued context entries are dropped, the rest are appended
    to the message as a sorted ``[key=value, ...]`` suffix and kept in
    ``self.context`` for programmatic inspection.
    """

    def __init__(self, message: str, **context) -> None:
        self.context = {
            k: v for k, v in context.items() if v is not None
        }
        if self.context:
            suffix = ", ".join(
                f"{k}={v!r}" for k, v in sorted(self.context.items())
            )
            message = f"{message} [{suffix}]"
        super().__init__(message)
        self.message = message


# ---------------------------------------------------------------------------
# compile-time
# ---------------------------------------------------------------------------


class CompileError(ReproError):
    """A compiler pass produced or received an ill-formed artifact."""


class PassOrderingError(CompileError):
    """The pass pipeline is mis-wired: a pass requires an artifact no
    earlier pass produces, two passes claim the same artifact, or an
    artifact was requested before any pass produced it."""


class ScheduleLegalityError(CompileError):
    """Producer/consumer ordering violated at group or stage level."""


class StorageSoundnessError(CompileError):
    """Illegal storage remapping: a slot reassigned while its previous
    tenant is still live, a buffer smaller than a tenant's footprint,
    or a dtype mismatch."""


class TileCoverageError(CompileError):
    """The overlapped-tile decomposition does not cover a live-out's
    domain (a gap would leave uninitialized points in the output)."""


# ---------------------------------------------------------------------------
# runtime
# ---------------------------------------------------------------------------


class ExecutionError(ReproError):
    """A fault while executing a compiled pipeline."""


class MissingInputError(ExecutionError, KeyError):
    """An input grid required by the pipeline was not provided."""

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.message


class InputShapeError(ExecutionError, ValueError):
    """An input array's shape does not match its grid's domain."""


class AllocatorError(ExecutionError, ValueError):
    """Pooled-allocator protocol violation (e.g. foreign deallocate,
    buffers still outstanding at solve end)."""


class PoolExhaustedError(AllocatorError):
    """The pooled allocator cannot serve a request: the configured byte
    budget would be breached, or the backing allocation itself failed
    (``MemoryError``).  Subclasses :class:`AllocatorError` so guarded
    execution treats memory pressure like any other runtime fault."""


class NumericalDivergenceError(ExecutionError):
    """A runtime sentinel detected numerical divergence: non-finite
    values in a group's live-outs, or residual blow-up across cycles."""


class SolveAbortedError(ExecutionError):
    """The solve supervisor gave up: the checkpoint-restore budget was
    exhausted with every degradation-ladder rung faulting, so there is
    no variant left to make progress on."""


# ---------------------------------------------------------------------------
# native JIT backend
# ---------------------------------------------------------------------------


class NativeBackendError(ReproError):
    """The native C/OpenMP JIT backend failed; always recoverable by
    falling back to the planned numpy backend (incident-logged)."""


class NativeToolchainError(NativeBackendError):
    """No usable C compiler was found (``REPRO_CC``, ``cc``, ``gcc``,
    ``clang``), or the discovered one could not produce a probe
    object."""


class NativeLoweringError(NativeBackendError):
    """The pipeline uses a construct the native backend cannot lower:
    diamond-tiled smoother groups, non-double stage dtypes, or an
    attached fault-injection hook."""


class NativeCompileError(NativeBackendError):
    """The out-of-process ``cc`` invocation failed, timed out, or
    produced an unloadable shared object."""


class NativeABIError(NativeBackendError, ValueError):
    """The loaded shared object rejected the buffers handed across the
    ctypes boundary (geometry/stride/dtype mismatch), or the caller
    passed arrays the runner cannot safely normalize."""


class NativeVerificationError(NativeBackendError):
    """The ``verify_level=full`` one-cycle cross-check between the
    native and numpy backends diverged beyond tolerance."""


class NativeCrashError(NativeBackendError):
    """A sandboxed executor worker died while running a native kernel
    (fatal signal or unexpected exit code).  Context carries the
    ``exitcode``/``signal`` and the artifact key so the store can
    quarantine a repeat offender."""


class NativeHangError(NativeBackendError):
    """The sandbox watchdog hard-killed a worker: either the job missed
    its absolute deadline or the worker's heartbeat went stale while a
    native call held the process."""


class NativeAbortError(NativeCrashError):
    """The native kernel terminated the worker via ``abort()``
    (``SIGABRT``) — distinguished from a plain crash because it usually
    marks a deliberate runtime assertion inside the generated C."""


class NativeQuarantinedError(NativeBackendError):
    """The artifact's content hash is quarantined on disk (its verdict
    sidecar records repeated crashes), so the store refuses to hand the
    shared object to any process again."""


# ---------------------------------------------------------------------------
# multi-tenant solve service
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """The solve service refused or interrupted a request.  Every
    refusal is synchronous and typed — the service's contract is that a
    caller is never hung and work is never dropped silently."""


class AdmissionRejected(ServiceError):
    """Root of every admission-time refusal.  Context carries the
    tenant, the structured reason, and — for refusals worth retrying —
    a ``retry_after`` hint in seconds."""

    @property
    def retry_after(self) -> float | None:
        return self.context.get("retry_after")


class QueueSaturated(AdmissionRejected):
    """The bounded request queue is full and the incoming request did
    not outrank any queued victim, so load was shed at the door."""


class TenantRateLimited(AdmissionRejected):
    """The tenant's token bucket is empty; ``retry_after`` says when
    the next token lands."""


class TenantConcurrencyExceeded(AdmissionRejected):
    """The tenant already has its maximum number of solves admitted
    (queued + running)."""


class AdmissionDeferred(AdmissionRejected):
    """The fleet budget entered a graded overload level that defers
    this request's priority class; retry after the hint or escalate
    the priority."""


class ServiceOverloaded(AdmissionRejected):
    """The fleet budget reached the shed level: only the highest
    priority class is being admitted."""


class ServiceDraining(AdmissionRejected):
    """The service is draining (graceful shutdown): no new admissions."""


class SolvePreempted(ServiceError):
    """An admitted solve was preempted by drain or a worker loss and
    could not be finished in time; ``checkpoint_path`` in the context
    locates its persisted :class:`~repro.resilience.SolveCheckpoint`
    for recovery by a later service instance."""

    @property
    def checkpoint_path(self) -> str | None:
        return self.context.get("checkpoint_path")


# ---------------------------------------------------------------------------
# tuning
# ---------------------------------------------------------------------------


class TrialFailure(ReproError):
    """One autotuning trial failed; carries the configuration point and
    the underlying cause so the search can quarantine it."""
