"""Auto-tuning over the paper's tile-size x grouping-limit space, plus
the PR-10 evolutionary cycle-structure search (time-to-solution)."""

from .autotuner import (
    TrialMeasurement,
    TuneMemo,
    TunePoint,
    TuneResult,
    autotune_measured,
    autotune_model,
    config_space,
    group_limit_space,
    tile_space,
)
from .convergence import ConvergenceEstimate, ConvergenceEvaluator, probe_rhs
from .evolve import (
    OMEGA_GRID,
    CycleSearch,
    Evaluation,
    EvolveResult,
    EvolveSettings,
    Genome,
    MeasuredRun,
    baseline_options,
    pareto_front,
)

__all__ = [
    "TrialMeasurement",
    "TuneMemo",
    "TunePoint",
    "TuneResult",
    "autotune_measured",
    "autotune_model",
    "config_space",
    "group_limit_space",
    "tile_space",
    "ConvergenceEstimate",
    "ConvergenceEvaluator",
    "probe_rhs",
    "OMEGA_GRID",
    "CycleSearch",
    "Evaluation",
    "EvolveResult",
    "EvolveSettings",
    "Genome",
    "MeasuredRun",
    "baseline_options",
    "pareto_front",
]
