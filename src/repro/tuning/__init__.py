"""Auto-tuning over the paper's tile-size x grouping-limit space."""

from .autotuner import (
    TrialMeasurement,
    TunePoint,
    TuneResult,
    autotune_measured,
    autotune_model,
    config_space,
    group_limit_space,
    tile_space,
)

__all__ = [
    "TrialMeasurement",
    "TunePoint",
    "TuneResult",
    "autotune_measured",
    "autotune_model",
    "config_space",
    "group_limit_space",
    "tile_space",
]
