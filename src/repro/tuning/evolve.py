"""Evolutionary cycle-structure search: optimize time-to-solution.

Every earlier tuning layer holds the multigrid cycle fixed and searches
code-generation parameters (tile sizes, grouping limits) to minimize
the time of *one cycle*.  But the quantity a user pays for is

    time-to-solution = cycle_time x cycles_until_converged

and the cycle structure itself — per-level pre/post smoothing counts,
relaxation weights, branching schedule (V/W/hybrid), hierarchy depth —
trades those two factors against each other: heavier smoothing costs
more per cycle but contracts the residual faster, W-branches pay extra
coarse work for better convergence, and so on.  This module searches
that joint space with a reproducible-seed evolutionary algorithm.

**Genome.**  A :class:`Genome` is a
:class:`~repro.multigrid.cyclespec.CycleSpec` (the per-level cycle
structure) plus code-generation genes: a tile shape from the paper's
tuning space, a grouping limit, and optionally an execution-tier
backend.  Relaxation weights are drawn from the discrete
:data:`OMEGA_GRID` so recurring structures fingerprint (and therefore
memoize) identically.

**Fitness.**  Predicted time-to-solution:
:class:`~repro.model.costs.PipelineCostModel` supplies the cycle time
of the candidate's compiled pipeline (via the selected tier's
``cost_hint``, so driver-tier candidates are charged their real
dispatch regime), and a :class:`~repro.tuning.convergence
.ConvergenceEvaluator` probe-solve supplies the predicted
cycles-to-converge.  Both halves are deterministic, so a seed replays
to the identical winner.

**Quarantine.**  Candidate evaluation is wrapped in the same
machinery the autotuner (PR 1) and the resilience layer (PR 3) use: a
divergent or otherwise pathological cycle raises
:class:`~repro.errors.TrialFailure`, is recorded on
``EvolveResult.failed`` and in the shared
:class:`~repro.resilience.incidents.IncidentLog`, and its fingerprint
is *latched* in the memo — breaker semantics: a known-bad genome is
never re-evaluated, and the search itself never crashes.

**Measured re-rank.**  Prediction ranks the population; measurement
picks the winner.  The Pareto front over (cycle_time,
cycles_to_converge) yields a small finalist set, and
:meth:`CycleSearch.rerank_measured` re-ranks it by wall-clock
time-to-solution through the real execution tiers, walking a
:class:`~repro.resilience.ladder.DegradationLadder` so a finalist
whose fast tier faults is measured one rung down (recorded, breaker
tripped) instead of aborting the re-rank.  JIT build wall time is
charged to the candidate, ``autotune_measured``-style.
"""

from __future__ import annotations

import hashlib
import math
import random
import time
from dataclasses import dataclass, field, replace

import numpy as np

from ..backend.registry import TIERS
from ..config import PolyMgConfig
from ..errors import ReproError, TrialFailure
from ..model.costs import PipelineCostModel
from ..model.machine import PAPER_MACHINE, MachineSpec
from ..multigrid.cyclespec import CycleSpec, LevelSpec
from ..multigrid.cycles import build_poisson_cycle, solve_compiled
from ..multigrid.kernels import norm_residual
from ..multigrid.reference import MultigridOptions
from ..resilience.incidents import IncidentLog
from ..resilience.ladder import DegradationLadder
from ..variants import polymg_opt_plus, variant_config
from .autotuner import GROUP_LIMITS, tile_space
from .convergence import ConvergenceEvaluator, probe_rhs

__all__ = [
    "OMEGA_GRID",
    "Genome",
    "Evaluation",
    "MeasuredRun",
    "EvolveSettings",
    "EvolveResult",
    "CycleSearch",
    "baseline_options",
    "pareto_front",
]

#: the searchable relaxation weights — discrete so equal-behaviour
#: genomes fingerprint equally and memo hits actually happen
OMEGA_GRID = tuple(round(0.60 + 0.05 * i, 2) for i in range(13))


def baseline_options(levels: int = 4) -> MultigridOptions:
    """The incumbent the search must beat: V(4,4), omega=0.8 — the
    paper's stock cycle."""
    return MultigridOptions(
        cycle="V", n1=4, n2=4, n3=4, levels=levels, omega=0.8
    )


# ---------------------------------------------------------------------------
# genome
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Genome:
    """One candidate: cycle structure + code-generation genes."""

    spec: CycleSpec
    tile_shape: tuple[int, ...]
    group_limit: int
    backend: str | None = None  #: ``None`` = the base config's tier

    def fingerprint(self) -> str:
        return (
            f"{self.spec.fingerprint()}|tiles={self.tile_shape}"
            f"|limit={self.group_limit}|backend={self.backend}"
        )

    def short_hash(self, n: int = 12) -> str:
        return hashlib.sha256(
            self.fingerprint().encode()
        ).hexdigest()[:n]

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "tile_shape": list(self.tile_shape),
            "group_limit": self.group_limit,
            "backend": self.backend,
            "hash": self.short_hash(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Genome":
        return cls(
            spec=CycleSpec.from_dict(data["spec"]),
            tile_shape=tuple(int(v) for v in data["tile_shape"]),
            group_limit=int(data["group_limit"]),
            backend=data.get("backend"),
        )


@dataclass
class Evaluation:
    """Predicted fitness of one genome."""

    genome: Genome
    rho: float  #: probe-estimated residual contraction per cycle
    cycles_to_tol: float  #: predicted cycles to the target reduction
    cycle_time: float  #: modeled seconds per cycle
    predicted_time: float  #: modeled seconds to solution (the fitness)

    def to_dict(self) -> dict:
        return {
            "genome": self.genome.to_dict(),
            "label": self.genome.spec.label(),
            "rho": self.rho,
            "cycles_to_tol": self.cycles_to_tol,
            "cycle_time": self.cycle_time,
            "predicted_time": self.predicted_time,
        }


@dataclass
class MeasuredRun:
    """Wall-clock re-rank entry for one finalist."""

    genome: Genome
    variant: str  #: ladder rung that served the measurement
    time_to_solution: float  #: best-of-repeats solve wall time (s)
    jit_build_time: float  #: compile + tier readiness wall time (s)
    total_time: float  #: build-charged rank key
    cycles: int
    final_residual: float
    predicted_time: float

    def to_dict(self) -> dict:
        return {
            "genome": self.genome.to_dict(),
            "label": self.genome.spec.label(),
            "variant": self.variant,
            "time_to_solution": self.time_to_solution,
            "jit_build_time": self.jit_build_time,
            "total_time": self.total_time,
            "cycles": self.cycles,
            "final_residual": self.final_residual,
            "predicted_time": self.predicted_time,
        }


@dataclass(frozen=True)
class EvolveSettings:
    """Search hyper-parameters (all reproducibility-relevant state)."""

    population: int = 14
    generations: int = 6
    seed: int = 0
    elites: int = 2
    tournament: int = 3
    crossover_rate: float = 0.6
    mutations_per_child: int = 2
    min_levels: int = 2
    max_levels: int = 6
    max_smooth: int = 8
    threads: int = 4
    tol_reduction: float = 1e-8
    probe_cycles: int = 7
    #: predictions beyond this many cycles are pathological — the
    #: candidate is quarantined rather than ranked on noise
    max_predicted_cycles: float = 150.0
    pareto_finalists: int = 4
    backend_choices: tuple[str | None, ...] = (None,)


@dataclass
class EvolveResult:
    """Everything a replay or report needs."""

    best: Evaluation  #: predicted-best over all evaluated genomes
    pareto: list[Evaluation]  #: non-dominated (cycle_time, cycles)
    finalists: list[Evaluation]  #: Pareto head, measured-re-rank input
    history: list[dict]  #: per-generation best/median fitness
    evaluations: int  #: probe+model evaluations actually run
    memo_hits: int  #: population members served from the memo
    failed: list[TrialFailure]  #: quarantined genomes (unique)
    seed: int
    settings: EvolveSettings
    incidents: IncidentLog
    measured: list[MeasuredRun] = field(default_factory=list)
    best_measured: MeasuredRun | None = None

    def winning_genome(self) -> Genome:
        """Measured winner when a re-rank ran, else predicted best."""
        if self.best_measured is not None:
            return self.best_measured.genome
        return self.best.genome

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "best": self.best.to_dict(),
            "winner": self.winning_genome().to_dict(),
            "pareto": [e.to_dict() for e in self.pareto],
            "finalists": [e.to_dict() for e in self.finalists],
            "measured": [m.to_dict() for m in self.measured],
            "best_measured": (
                self.best_measured.to_dict()
                if self.best_measured is not None
                else None
            ),
            "history": self.history,
            "evaluations": self.evaluations,
            "memo_hits": self.memo_hits,
            "failed": [str(f) for f in self.failed],
            "quarantined": len(self.failed),
        }


def pareto_front(evals: list[Evaluation]) -> list[Evaluation]:
    """Non-dominated set over (cycle_time, cycles_to_tol), sorted by
    predicted time then genome fingerprint (stable under ties)."""
    front = [
        e
        for e in evals
        if not any(
            o.cycle_time <= e.cycle_time
            and o.cycles_to_tol <= e.cycles_to_tol
            and (
                o.cycle_time < e.cycle_time
                or o.cycles_to_tol < e.cycles_to_tol
            )
            for o in evals
        )
    ]
    front.sort(
        key=lambda e: (e.predicted_time, e.genome.fingerprint())
    )
    return front


def _max_feasible_levels(N: int, floor: int = 2) -> int:
    """Deepest hierarchy ``N`` supports: interior sizes must halve
    evenly and the coarsest interior must keep >= 2 points."""
    levels = 1
    n = N
    while n % 2 == 0 and n // 2 >= 2:
        n //= 2
        levels += 1
    return max(floor, levels)


# ---------------------------------------------------------------------------
# the search
# ---------------------------------------------------------------------------


class CycleSearch:
    """Reproducible-seed evolutionary search over cycle structures.

    Parameters
    ----------
    ndim, N:
        The production workload the fitness model prices (the probe
        solves run on the evaluator's small proxy grid).
    base_config:
        Code-generation baseline each genome's tile/limit/backend
        genes override (default ``polymg_opt_plus()``).
    machine:
        Cost-model machine (default the paper's Table-1 platform).
    settings:
        :class:`EvolveSettings`; the ``seed`` makes the whole search —
        population, mutations, evaluation order, winner — replayable.
    log:
        Shared incident log; quarantines and generation summaries are
        recorded there (and the measured re-rank's ladder joins it).
    evaluator:
        Injectable :class:`ConvergenceEvaluator` (tests shrink the
        probe; production code leaves the default).
    """

    def __init__(
        self,
        ndim: int,
        N: int,
        *,
        base_config: PolyMgConfig | None = None,
        machine: MachineSpec = PAPER_MACHINE,
        settings: EvolveSettings | None = None,
        log: IncidentLog | None = None,
        evaluator: ConvergenceEvaluator | None = None,
    ) -> None:
        self.ndim = ndim
        self.N = N
        self.base = (
            base_config if base_config is not None else polymg_opt_plus()
        )
        self.machine = machine
        self.settings = settings if settings is not None else EvolveSettings()
        self.log = log if log is not None else IncidentLog()
        self.evaluator = (
            evaluator
            if evaluator is not None
            else ConvergenceEvaluator(
                ndim,
                probe_cycles=self.settings.probe_cycles,
                tol_reduction=self.settings.tol_reduction,
            )
        )
        self.max_levels = min(
            self.settings.max_levels, _max_feasible_levels(N)
        )
        self.tiles = tile_space(ndim)
        self.rng = random.Random(self.settings.seed)
        #: genome fingerprint -> Evaluation | TrialFailure (latched)
        self._memo: dict[str, Evaluation | TrialFailure] = {}
        self.memo_hits = 0
        self.evaluations = 0
        self.failed: list[TrialFailure] = []

    # -- genome constructors --------------------------------------------
    def _config_for(self, genome: Genome) -> PolyMgConfig:
        cfg = self.base.with_(
            tile_sizes={
                **self.base.tile_sizes,
                self.ndim: genome.tile_shape,
            },
            group_size_limit=genome.group_limit,
        )
        if genome.backend is not None:
            cfg = cfg.with_(backend=genome.backend)
        return cfg

    def _default_tiles(self) -> tuple[int, ...]:
        return tuple(self.base.tile_sizes[self.ndim])

    def baseline_genome(self) -> Genome:
        opts = baseline_options(levels=min(4, self.max_levels))
        return Genome(
            spec=CycleSpec.from_options(opts),
            tile_shape=self._default_tiles(),
            group_limit=self.base.group_size_limit,
        )

    def _random_level(self, rng: random.Random, *, coarse: bool) -> LevelSpec:
        s = self.settings
        if coarse:
            return LevelSpec(
                pre=rng.choice((2, 4, 6, 8, 10)),
                post=0,
                omega=rng.choice(OMEGA_GRID),
                branch=1,
            )
        return LevelSpec(
            pre=rng.randint(0, s.max_smooth),
            post=rng.randint(0, s.max_smooth),
            omega=rng.choice(OMEGA_GRID),
            branch=rng.choice((1, 1, 2)),
        )

    def _random_genome(self, rng: random.Random) -> Genome:
        s = self.settings
        levels = rng.randint(s.min_levels, self.max_levels)
        specs = [self._random_level(rng, coarse=True)]
        specs += [
            self._random_level(rng, coarse=False)
            for _ in range(levels - 1)
        ]
        return Genome(
            spec=CycleSpec(tuple(specs)),
            tile_shape=rng.choice(self.tiles),
            group_limit=rng.choice(GROUP_LIMITS),
            backend=rng.choice(s.backend_choices),
        )

    def _seed_population(self) -> list[Genome]:
        """Generation 0: the incumbent, two hand-picked strong
        structures, and random fill — the search can only improve on
        the baseline, never regress below it."""
        s = self.settings
        pop = [self.baseline_genome()]
        base_levels = min(4, self.max_levels)
        # light-smoothing V-cycle: fewer steps per cycle, more cycles
        light = [LevelSpec(pre=4, post=0, omega=0.9, branch=1)]
        light += [
            LevelSpec(pre=1, post=1, omega=0.9, branch=1)
            for _ in range(base_levels - 1)
        ]
        pop.append(
            Genome(
                spec=CycleSpec(tuple(light)),
                tile_shape=self._default_tiles(),
                group_limit=self.base.group_size_limit,
            )
        )
        if self.max_levels >= 3:
            # W below the finest level: convergence-heavy contender
            wspec = [LevelSpec(pre=4, post=0, omega=0.9, branch=1)]
            wspec += [
                LevelSpec(pre=2, post=1, omega=0.9, branch=2)
                for _ in range(base_levels - 2)
            ]
            wspec.append(LevelSpec(pre=2, post=1, omega=0.9, branch=1))
            pop.append(
                Genome(
                    spec=CycleSpec(tuple(wspec)),
                    tile_shape=self._default_tiles(),
                    group_limit=self.base.group_size_limit,
                )
            )
        while len(pop) < s.population:
            pop.append(self._random_genome(self.rng))
        return pop[: s.population]

    # -- variation operators --------------------------------------------
    def _mutate(self, genome: Genome, rng: random.Random) -> Genome:
        s = self.settings
        specs = list(genome.spec.level_specs)
        ops = [
            "smooth",
            "smooth",
            "omega",
            "branch",
            "tiles",
            "limit",
        ]
        if len(specs) < self.max_levels:
            ops.append("add-level")
        if len(specs) > s.min_levels:
            ops.append("drop-level")
        if len(s.backend_choices) > 1:
            ops.append("backend")
        op = rng.choice(ops)
        tile_shape = genome.tile_shape
        group_limit = genome.group_limit
        backend = genome.backend
        if op == "smooth":
            k = rng.randrange(len(specs))
            ls = specs[k]
            delta = rng.choice((-1, 1))
            if k > 0 and rng.random() < 0.5:
                post = min(max(ls.post + delta, 0), s.max_smooth)
                specs[k] = replace(ls, post=post)
            else:
                pre = min(max(ls.pre + delta, 0), s.max_smooth)
                specs[k] = replace(ls, pre=pre)
        elif op == "omega":
            k = rng.randrange(len(specs))
            ls = specs[k]
            idx = min(
                range(len(OMEGA_GRID)),
                key=lambda i: abs(OMEGA_GRID[i] - ls.omega),
            )
            idx = min(
                max(idx + rng.choice((-1, 1)), 0), len(OMEGA_GRID) - 1
            )
            specs[k] = replace(ls, omega=OMEGA_GRID[idx])
        elif op == "branch" and len(specs) > 2:
            k = rng.randrange(2, len(specs))
            ls = specs[k]
            specs[k] = replace(ls, branch=2 if ls.branch == 1 else 1)
        elif op == "add-level":
            specs.append(replace(specs[-1]))
        elif op == "drop-level":
            specs.pop()
        elif op == "tiles":
            tile_shape = rng.choice(self.tiles)
        elif op == "limit":
            group_limit = rng.choice(GROUP_LIMITS)
        elif op == "backend":
            backend = rng.choice(s.backend_choices)
        return Genome(
            spec=CycleSpec(tuple(specs)),
            tile_shape=tile_shape,
            group_limit=group_limit,
            backend=backend,
        )

    def _crossover(
        self, a: Genome, b: Genome, rng: random.Random
    ) -> Genome:
        """Uniform crossover aligned from the coarsest level; depth and
        code-generation genes each come from a random parent."""
        donor_depth = a if rng.random() < 0.5 else b
        levels = donor_depth.spec.levels
        specs = []
        for k in range(levels):
            choices = []
            if k < a.spec.levels:
                choices.append(a.spec.level(k))
            if k < b.spec.levels:
                choices.append(b.spec.level(k))
            specs.append(rng.choice(choices))
        return Genome(
            spec=CycleSpec(tuple(specs)),
            tile_shape=rng.choice((a.tile_shape, b.tile_shape)),
            group_limit=rng.choice((a.group_limit, b.group_limit)),
            backend=rng.choice((a.backend, b.backend)),
        )

    def _tournament(
        self, scored: list[Evaluation], rng: random.Random
    ) -> Genome:
        k = min(self.settings.tournament, len(scored))
        picks = [scored[rng.randrange(len(scored))] for _ in range(k)]
        best = min(
            picks,
            key=lambda e: (e.predicted_time, e.genome.fingerprint()),
        )
        return best.genome

    # -- fitness ---------------------------------------------------------
    def _evaluate(self, genome: Genome) -> Evaluation:
        """Predicted time-to-solution; raises
        :class:`~repro.errors.TrialFailure` on any pathological
        candidate."""
        est = self.evaluator.evaluate(genome.spec)
        if est.diverged:
            raise TrialFailure(
                "cycle diverges on the probe grid",
                genome=genome.short_hash(),
                label=genome.spec.label(),
                rho=round(est.rho, 4) if math.isfinite(est.rho) else est.rho,
            )
        if est.cycles_to_tol > self.settings.max_predicted_cycles:
            raise TrialFailure(
                "pathologically slow convergence",
                genome=genome.short_hash(),
                label=genome.spec.label(),
                rho=round(est.rho, 4),
                cycles_to_tol=round(est.cycles_to_tol, 1),
            )
        pipe = build_poisson_cycle(self.ndim, self.N, genome.spec)
        cfg = self._config_for(genome)
        compiled = pipe.compile(cfg)
        cycles = est.predicted_cycles()
        tier = TIERS.resolve(cfg.backend)
        total = tier.cost_hint(
            compiled, self.machine, threads=self.settings.threads,
            cycles=cycles,
        )
        if total is None:
            total = PipelineCostModel(compiled, self.machine).run_time(
                self.settings.threads, cycles
            )
        cycle_time = total / cycles
        if not (math.isfinite(total) and total > 0.0):
            raise TrialFailure(
                "cost model produced a non-finite or non-positive time",
                genome=genome.short_hash(),
                predicted=total,
            )
        return Evaluation(
            genome=genome,
            rho=est.rho,
            cycles_to_tol=est.cycles_to_tol,
            cycle_time=cycle_time,
            predicted_time=total,
        )

    def _evaluate_quarantined(self, genome: Genome) -> Evaluation | None:
        """Memoized, crash-proof evaluation: failures are latched by
        fingerprint (breaker semantics) and recorded once."""
        key = genome.fingerprint()
        cached = self._memo.get(key)
        if cached is not None:
            self.memo_hits += 1
            return None if isinstance(cached, TrialFailure) else cached
        try:
            self.evaluations += 1
            ev = self._evaluate(genome)
        except TrialFailure as failure:
            self._quarantine(key, genome, failure)
            return None
        except Exception as exc:
            failure = TrialFailure(
                "candidate evaluation raised",
                genome=genome.short_hash(),
                label=genome.spec.label(),
                cause=f"{type(exc).__name__}: {exc}",
            )
            self._quarantine(key, genome, failure)
            return None
        self._memo[key] = ev
        return ev

    def _quarantine(
        self, key: str, genome: Genome, failure: TrialFailure
    ) -> None:
        self._memo[key] = failure
        self.failed.append(failure)
        self.log.record(
            "evolve-quarantine",
            error=str(failure),
            details={"genome": genome.short_hash()},
        )

    # -- the search loop -------------------------------------------------
    def run(self) -> EvolveResult:
        """Run the full search; deterministic for a fixed seed."""
        s = self.settings
        population = self._seed_population()
        history: list[dict] = []
        scored: list[Evaluation] = []
        for gen in range(s.generations):
            scored = []
            for genome in population:
                ev = self._evaluate_quarantined(genome)
                if ev is not None:
                    scored.append(ev)
            if not scored:
                raise TrialFailure(
                    "an entire generation was quarantined",
                    generation=gen,
                    quarantined=len(self.failed),
                )
            scored.sort(
                key=lambda e: (
                    e.predicted_time,
                    e.genome.fingerprint(),
                )
            )
            times = [e.predicted_time for e in scored]
            history.append(
                {
                    "generation": gen,
                    "best": times[0],
                    "median": times[len(times) // 2],
                    "best_genome": scored[0].genome.short_hash(),
                    "scored": len(scored),
                }
            )
            self.log.record(
                "evolve-generation",
                details={
                    "generation": gen,
                    "best": times[0],
                    "best_genome": scored[0].genome.short_hash(),
                },
            )
            if gen == s.generations - 1:
                break
            nxt = [e.genome for e in scored[: s.elites]]
            while len(nxt) < s.population:
                if self.rng.random() < s.crossover_rate and len(scored) > 1:
                    child = self._crossover(
                        self._tournament(scored, self.rng),
                        self._tournament(scored, self.rng),
                        self.rng,
                    )
                else:
                    child = self._tournament(scored, self.rng)
                for _ in range(
                    self.rng.randint(1, s.mutations_per_child)
                ):
                    child = self._mutate(child, self.rng)
                nxt.append(child)
            population = nxt

        successes = [
            v
            for v in self._memo.values()
            if not isinstance(v, TrialFailure)
        ]
        best = min(
            successes,
            key=lambda e: (e.predicted_time, e.genome.fingerprint()),
        )
        front = pareto_front(successes)
        finalists = front[: s.pareto_finalists]
        return EvolveResult(
            best=best,
            pareto=front,
            finalists=finalists,
            history=history,
            evaluations=self.evaluations,
            memo_hits=self.memo_hits,
            failed=list(self.failed),
            seed=s.seed,
            settings=s,
            incidents=self.log,
        )

    # -- measured re-rank ------------------------------------------------
    def rerank_measured(
        self,
        result: EvolveResult,
        *,
        repeats: int = 2,
        ladder: DegradationLadder | None = None,
        max_attempts_per_finalist: int = 4,
    ) -> EvolveResult:
        """Re-rank ``result.finalists`` by wall-clock time-to-solution
        (same tolerance and final residual bound for every candidate).

        Each finalist is measured on the ladder's current best rung;
        a faulting rung is recorded on its breaker and the finalist
        retried one rung down, so one bad tier degrades — it never
        aborts the re-rank.  A finalist no rung can measure is
        quarantined like any other failed candidate.  Results land in
        ``result.measured`` / ``result.best_measured``.
        """
        if ladder is None:
            ladder = DegradationLadder(
                log=self.log, base_cooldown=0.05, probe_timeout=5.0
            )
        f, tol = self._measurement_problem()
        measured: list[MeasuredRun] = []
        for ev in result.finalists:
            try:
                run = self._measure_one(
                    ev, f, tol, repeats, ladder,
                    max_attempts_per_finalist,
                )
            except TrialFailure as failure:
                self._quarantine(
                    f"measured:{ev.genome.fingerprint()}",
                    ev.genome,
                    failure,
                )
                continue
            measured.append(run)
        # rank on solve wall time; the JIT build is charged visibly on
        # the record (autotune_measured reports the same split) but a
        # one-time 10-second cc run must not drown the actual ranking
        measured.sort(
            key=lambda m: (m.time_to_solution, m.genome.fingerprint())
        )
        result.measured = measured
        result.best_measured = measured[0] if measured else None
        result.failed = list(self.failed)
        return result

    def _measurement_problem(self) -> tuple[np.ndarray, float]:
        """The shared measurement problem: every candidate (and the
        baseline) solves the same right-hand side to the same absolute
        residual bound, so measured times are comparable."""
        f = probe_rhs(self.ndim, self.N, self.evaluator.rhs_seed)
        h = 1.0 / (self.N + 1)
        r0 = norm_residual(np.zeros_like(f), f, h)
        return f, self.settings.tol_reduction * r0

    def measure_genome(
        self,
        genome: Genome,
        *,
        repeats: int = 2,
        ladder: DegradationLadder | None = None,
        max_attempts: int = 4,
    ) -> MeasuredRun:
        """Measure one genome under the re-rank protocol (same rhs,
        same residual bound) — how the bench harness times the
        incumbent against the discovered winner.  Raises
        :class:`~repro.errors.TrialFailure` if the genome is
        quarantined or no rung can measure it."""
        ev = self._evaluate_quarantined(genome)
        if ev is None:
            raise TrialFailure(
                "genome is quarantined; nothing to measure",
                genome=genome.short_hash(),
            )
        if ladder is None:
            ladder = DegradationLadder(
                log=self.log, base_cooldown=0.05, probe_timeout=5.0
            )
        f, tol = self._measurement_problem()
        return self._measure_one(
            ev, f, tol, repeats, ladder, max_attempts
        )

    def _measure_one(
        self,
        ev: Evaluation,
        f: np.ndarray,
        tol: float,
        repeats: int,
        ladder: DegradationLadder,
        max_attempts: int,
    ) -> MeasuredRun:
        pipe = build_poisson_cycle(self.ndim, self.N, ev.genome.spec)
        cap = int(
            min(
                math.ceil(ev.cycles_to_tol) * 3 + 5,
                self.settings.max_predicted_cycles * 3,
            )
        )
        last_error: Exception | None = None
        tried: list[str] = []
        for _ in range(max_attempts):
            variant = ladder.select()
            cfg = variant_config(
                variant,
                group_size_limit=ev.genome.group_limit,
            ).with_(
                tile_sizes={
                    **self.base.tile_sizes,
                    self.ndim: ev.genome.tile_shape,
                }
            )
            tried.append(variant)
            try:
                t0 = time.perf_counter()
                compiled = pipe.compile(cfg)
                # charge the JIT: readiness (the native cc build) is
                # part of this candidate's cost, autotune_measured-style
                TIERS.resolve(cfg.backend).ensure_ready(compiled)
                build = time.perf_counter() - t0
                best = math.inf
                res = None
                for _rep in range(repeats):
                    t0 = time.perf_counter()
                    res = solve_compiled(
                        pipe,
                        f,
                        compiled=compiled,
                        cycles=cap,
                        tol=tol,
                        guards=True,
                    )
                    elapsed = time.perf_counter() - t0
                    if res.residual_norms[-1] > tol:
                        raise TrialFailure(
                            "finalist failed to reach the residual "
                            "bound within the cycle cap",
                            genome=ev.genome.short_hash(),
                            cycles=res.cycles,
                            cap=cap,
                            residual=res.residual_norms[-1],
                            tol=tol,
                        )
                    best = min(best, elapsed)
                ladder.record_success(variant)
                return MeasuredRun(
                    genome=ev.genome,
                    variant=variant,
                    time_to_solution=best,
                    jit_build_time=build,
                    total_time=build + best,
                    cycles=res.cycles,
                    final_residual=res.residual_norms[-1],
                    predicted_time=ev.predicted_time,
                )
            except TrialFailure:
                # the genome's fault (missed the residual bound), not
                # the rung's: quarantine the candidate, don't trip the
                # tier's breaker
                raise
            except (ReproError, RuntimeError, OSError) as exc:
                last_error = exc
                ladder.record_failure(variant, exc)
        raise TrialFailure(
            "no execution rung could measure this finalist",
            genome=ev.genome.short_hash(),
            tried=tuple(tried),
            cause=(
                f"{type(last_error).__name__}: {last_error}"
                if last_error is not None
                else None
            ),
        )
