"""Cheap convergence prediction for the cycle-structure search.

The evolutionary search (:mod:`repro.tuning.evolve`) optimizes
*time-to-solution* = (cycle wall time) x (cycles until the residual
drops by the target factor).  The first factor comes from the machine
cost model; this module supplies the second — cheaply enough to sit in
an inner search loop.

A candidate :class:`~repro.multigrid.cyclespec.CycleSpec` is probed
with a short reference-solver run (:func:`repro.multigrid.reference
.solve`, plain numpy, no compilation) on a small *proxy grid*: the
asymptotic residual contraction factor rho of a geometric multigrid
cycle is governed by the smoother/cycle structure and is famously
insensitive to the grid size, so a 32^2 or 16^3 probe predicts the
convergence behaviour of the production grid.  The predicted
cycles-to-converge is then the standard extrapolation

    cycles(rho) = ceil( log(tol_reduction) / log(rho) )

with rho estimated as the geometric mean of the trailing contraction
factors (the early factors are polluted by the initial-error
transient).  Cycles whose probe residuals grow (rho >= 1) or go
non-finite are flagged ``diverged`` — the search quarantines them as
failures instead of crashing or, worse, ranking them.

Estimates are memoized by the spec's canonical fingerprint, so the
search never probes the same cycle structure twice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..multigrid.cyclespec import CycleSpec, as_cycle_spec
from ..multigrid.reference import solve

__all__ = ["ConvergenceEstimate", "ConvergenceEvaluator", "probe_rhs"]

#: default proxy-grid interior size per dimensionality — small enough
#: that a probe solve is a few milliseconds, large enough that the
#: asymptotic contraction factor is representative
DEFAULT_PROXY_N = {2: 32, 3: 16}

#: contraction factors this close to 1 predict astronomically many
#: cycles; treat as non-converging rather than extrapolate noise
_RHO_CEILING = 0.999


def probe_rhs(ndim: int, n: int, seed: int = 20170613) -> np.ndarray:
    """Deterministic probe right-hand side on an ``(n+2)**ndim`` grid:
    a smooth low-frequency mode plus seeded rough noise, so a probe
    solve exercises both the coarse-grid correction and the smoother.
    The measured re-rank uses the same family at production size, so
    predictions and measurements see the same problem."""
    shape = (n + 2,) * ndim
    axes = np.meshgrid(
        *(np.linspace(0.0, 1.0, n + 2),) * ndim, indexing="ij"
    )
    smooth = np.ones(shape)
    for x in axes:
        smooth = smooth * np.sin(np.pi * x)
    rng = np.random.default_rng(seed)
    rough = rng.standard_normal(shape)
    f = smooth + 0.1 * rough
    # homogeneous Dirichlet problem: zero the boundary layer
    mask = np.zeros(shape, dtype=bool)
    mask[(slice(1, -1),) * ndim] = True
    f[~mask] = 0.0
    return f


@dataclass(frozen=True)
class ConvergenceEstimate:
    """What one probe solve predicted for a cycle structure."""

    rho: float  #: asymptotic residual contraction factor per cycle
    cycles_to_tol: float  #: predicted cycles to the target reduction
    diverged: bool  #: residuals grew or went non-finite
    proxy_n: int  #: interior size of the probe grid
    probe_cycles: int  #: cycles actually run in the probe
    residual_norms: tuple[float, ...] = ()

    def predicted_cycles(self, cap: int | None = None) -> int:
        """``cycles_to_tol`` as a usable iteration count (>= 1,
        optionally capped)."""
        if self.diverged or not math.isfinite(self.cycles_to_tol):
            raise ValueError("no finite prediction for a diverged cycle")
        cycles = max(1, int(math.ceil(self.cycles_to_tol)))
        return cycles if cap is None else min(cycles, cap)


class ConvergenceEvaluator:
    """Probe-solve convergence predictor, memoized per cycle spec.

    Parameters
    ----------
    ndim:
        Problem dimensionality (2 or 3) — fixes the proxy grid family.
    proxy_n:
        Base proxy-grid interior size (default 32 for 2-D, 16 for
        3-D).  Deep hierarchies that do not fit the base size use the
        smallest power-of-two grid keeping >= 2 interior points on the
        coarsest level, so every searchable depth stays probeable.
    probe_cycles:
        Cycles per probe solve.  The trailing ``tail`` factors of
        these estimate rho.
    tol_reduction:
        The residual-reduction target the search optimizes for
        (prediction and measured re-rank share this value).
    rhs_seed:
        Seed of the probe right-hand side's rough component —
        deterministic, so estimates are exactly reproducible.
    """

    def __init__(
        self,
        ndim: int,
        *,
        proxy_n: int | None = None,
        probe_cycles: int = 7,
        tail: int = 3,
        tol_reduction: float = 1e-8,
        rhs_seed: int = 20170613,
    ) -> None:
        if ndim not in DEFAULT_PROXY_N:
            raise ValueError(f"no proxy grid for rank {ndim}")
        if probe_cycles < 2:
            raise ValueError("need at least two probe cycles")
        if not 0.0 < tol_reduction < 1.0:
            raise ValueError("tol_reduction must be in (0, 1)")
        self.ndim = ndim
        self.base_proxy_n = (
            proxy_n if proxy_n is not None else DEFAULT_PROXY_N[ndim]
        )
        self.probe_cycles = probe_cycles
        self.tail = max(1, tail)
        self.tol_reduction = tol_reduction
        self.rhs_seed = rhs_seed
        self.probes = 0
        self.memo_hits = 0
        self._memo: dict[str, ConvergenceEstimate] = {}
        self._rhs_cache: dict[int, np.ndarray] = {}

    # -- proxy problem ---------------------------------------------------
    def proxy_n(self, levels: int) -> int:
        """Probe-grid interior size for a ``levels``-deep hierarchy:
        the base size, grown to the smallest power of two keeping the
        coarsest interior >= 2."""
        need = 2 << (levels - 1)  # 2 * 2**(levels-1)
        return max(self.base_proxy_n, need)

    def _rhs(self, n: int) -> np.ndarray:
        cached = self._rhs_cache.get(n)
        if cached is None:
            cached = probe_rhs(self.ndim, n, self.rhs_seed)
            self._rhs_cache[n] = cached
        return cached

    # -- estimation ------------------------------------------------------
    def evaluate(self, spec) -> ConvergenceEstimate:
        """Probe ``spec`` (a :class:`CycleSpec` or flat options) and
        return its convergence estimate (memoized)."""
        spec = as_cycle_spec(spec)
        key = spec.fingerprint()
        cached = self._memo.get(key)
        if cached is not None:
            self.memo_hits += 1
            return cached
        est = self._probe(spec)
        self._memo[key] = est
        return est

    def _probe(self, spec: CycleSpec) -> ConvergenceEstimate:
        self.probes += 1
        n = self.proxy_n(spec.levels)
        f = self._rhs(n)
        with np.errstate(all="ignore"):  # divergence is data, not a warning
            result = solve(f, spec, cycles=self.probe_cycles)
        norms = tuple(float(v) for v in result.residual_norms)
        return self._estimate(norms, n)

    def _estimate(
        self, norms: tuple[float, ...], proxy_n: int
    ) -> ConvergenceEstimate:
        if any(not math.isfinite(v) for v in norms):
            return ConvergenceEstimate(
                rho=float("inf"),
                cycles_to_tol=float("inf"),
                diverged=True,
                proxy_n=proxy_n,
                probe_cycles=len(norms) - 1,
                residual_norms=norms,
            )
        factors = [
            b / a for a, b in zip(norms, norms[1:]) if a > 0.0
        ]
        if not factors or norms[-1] == 0.0:
            # the probe solved to machine zero: as fast as it gets
            return ConvergenceEstimate(
                rho=0.0,
                cycles_to_tol=1.0,
                diverged=False,
                proxy_n=proxy_n,
                probe_cycles=len(norms) - 1,
                residual_norms=norms,
            )
        tail = factors[-self.tail:]
        rho = float(np.exp(np.mean(np.log(np.maximum(tail, 1e-300)))))
        if not math.isfinite(rho) or rho >= _RHO_CEILING:
            return ConvergenceEstimate(
                rho=rho,
                cycles_to_tol=float("inf"),
                diverged=True,
                proxy_n=proxy_n,
                probe_cycles=len(norms) - 1,
                residual_norms=norms,
            )
        cycles = (
            1.0
            if rho <= 0.0
            else math.log(self.tol_reduction) / math.log(rho)
        )
        return ConvergenceEstimate(
            rho=rho,
            cycles_to_tol=max(1.0, cycles),
            diverged=False,
            proxy_n=proxy_n,
            probe_cycles=len(norms) - 1,
            residual_norms=norms,
        )
