"""Auto-tuning (paper section 3.2.4).

Searches the paper's configuration space for the best-performing
compiled variant:

* 2-D: outermost tile size 8..64, innermost 64..512, powers of two
  (16 tile-size points), five grouping-limit values -> 80 configurations;
* 3-D: two outermost 8..32, innermost 64..256, powers of two (27 points),
  five grouping limits -> 135 configurations.

Each configuration is compiled and scored.  Trials are fault-isolated:
a configuration that raises (or exceeds the optional per-trial
wall-clock timeout) is quarantined into ``TuneResult.failed`` as a
:class:`~repro.errors.TrialFailure` and the search continues — one bad
candidate never aborts the space sweep (the regime evolutionary/search
-based generators like ExaStencils rely on).  Two scoring backends exist:
the machine cost model (used for paper-scale experiments — the paper's
own tuner measures on the machine; ours evaluates the Table-1 model) and
wall-clock execution of the numpy backend (used at laptop scale).

Trial compiles route through the content-addressed compile cache
(:mod:`repro.cache`): a configuration whose fingerprint already
compiled successfully — in an earlier sweep, another scoring backend,
or the bench harness — is a cache hit and skips every compiler pass.
Each :class:`TunePoint` reports its compile-time vs. score-time split
and whether the compile was served from cache.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..backend.registry import TIERS
from ..cache import compile_cache, compile_fingerprint
from ..config import PolyMgConfig
from ..errors import TrialFailure
from ..model.costs import PipelineCostModel
from ..model.machine import MachineSpec

__all__ = [
    "TrialMeasurement",
    "TuneMemo",
    "TuneResult",
    "TunePoint",
    "tile_space",
    "group_limit_space",
    "config_space",
    "autotune_model",
    "autotune_measured",
]

GROUP_LIMITS = (1, 2, 4, 6, 8)  # five grouping-limit values


def _pow2_range(lo: int, hi: int) -> list[int]:
    out = []
    v = lo
    while v <= hi:
        out.append(v)
        v *= 2
    return out


def tile_space(ndim: int) -> list[tuple[int, ...]]:
    """The paper's tile-size search space per dimensionality."""
    if ndim == 2:
        return [
            (outer, inner)
            for outer in _pow2_range(8, 64)
            for inner in _pow2_range(64, 512)
        ]
    if ndim == 3:
        return [
            (o1, o2, inner)
            for o1 in _pow2_range(8, 32)
            for o2 in _pow2_range(8, 32)
            for inner in _pow2_range(64, 256)
        ]
    raise ValueError(f"no tuning space for rank {ndim}")


def group_limit_space() -> tuple[int, ...]:
    return GROUP_LIMITS


def config_space(
    base: PolyMgConfig, ndim: int
) -> Iterable[tuple[PolyMgConfig, tuple[int, ...], int]]:
    """All (config, tile_shape, group_limit) tuning points."""
    for limit in GROUP_LIMITS:
        for tiles in tile_space(ndim):
            cfg = base.with_(
                tile_sizes={**base.tile_sizes, ndim: tiles},
                group_size_limit=limit,
            )
            yield cfg, tiles, limit


@dataclass
class TrialMeasurement:
    """What one trial's ``score`` callable measured.

    Score callables may return a bare float (scored-only, no split) or
    a ``TrialMeasurement`` to report the compile/score breakdown; the
    built-in :func:`autotune_model` / :func:`autotune_measured` scorers
    report the full split."""

    score: float
    compile_time: float = 0.0
    execute_time: float = 0.0
    cache_hit: bool = False


@dataclass
class TunePoint:
    tile_shape: tuple[int, ...]
    group_limit: int
    score: float  # seconds (lower is better)
    compile_time: float = 0.0  # wall time spent compiling this config
    execute_time: float = 0.0  # wall time spent scoring (model/exec)
    cache_hit: bool = False  # compile served from the compile cache

    def fingerprint(self) -> str:
        """Stable identity of this configuration within a sweep — the
        tie-break key for equal scores (never dict/insertion order)."""
        return f"tiles={self.tile_shape};limit={self.group_limit}"


class TuneMemo:
    """Fingerprint-keyed memo of trial outcomes, shared across sweeps.

    The evolutionary cycle search and repeated autotune calls revisit
    identical (pipeline spec, params, config, scoring mode) points;
    handing the same ``TuneMemo`` to each call dedupes those
    evaluations.  Failures are latched too — a configuration that
    already failed is re-quarantined without re-running it (the same
    don't-retry-a-known-bad-variant semantics the fallback breakers
    apply to execution tiers)."""

    def __init__(self) -> None:
        self.entries: dict[str, TrialMeasurement | TrialFailure] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self.entries)

    def key(self, pipe, cfg: PolyMgConfig, mode: str) -> str:
        """Content-addressed key: the compile fingerprint of this
        (spec, params, config) point qualified by the scoring mode."""
        outputs = (
            pipe.output
            if isinstance(pipe.output, (list, tuple))
            else [pipe.output]
        )
        fp = compile_fingerprint(outputs, pipe.params, cfg, pipe.name)
        return f"{mode}:{fp}"

    def lookup(self, key: str) -> "TrialMeasurement | TrialFailure | None":
        found = self.entries.get(key)
        if found is None:
            self.misses += 1
        else:
            self.hits += 1
        return found

    def store(
        self, key: str, outcome: "TrialMeasurement | TrialFailure"
    ) -> None:
        self.entries[key] = outcome


@dataclass
class TuneResult:
    best: TunePoint
    points: list[TunePoint]
    configurations: int
    failed: list[TrialFailure] = field(default_factory=list)
    memo_hits: int = 0  # trials served from a shared TuneMemo

    def best_config(self, base: PolyMgConfig, ndim: int) -> PolyMgConfig:
        return base.with_(
            tile_sizes={**base.tile_sizes, ndim: self.best.tile_shape},
            group_size_limit=self.best.group_limit,
        )

    # -- compile/execute split across the sweep -------------------------
    @property
    def compile_time_total(self) -> float:
        return sum(p.compile_time for p in self.points)

    @property
    def execute_time_total(self) -> float:
        return sum(p.execute_time for p in self.points)

    @property
    def cache_hit_count(self) -> int:
        return sum(1 for p in self.points if p.cache_hit)


def _measure(value: "TrialMeasurement | float") -> TrialMeasurement:
    """Normalize a score callable's return value (bare floats carry no
    compile/execute split)."""
    if isinstance(value, TrialMeasurement):
        return value
    return TrialMeasurement(score=float(value))


def _timed_compile(pipe, cfg: PolyMgConfig):
    """Compile one trial configuration through the compile cache,
    returning (compiled, wall_time, served_from_cache)."""
    stats = compile_cache().stats
    hits_before = stats.hits
    t0 = time.perf_counter()
    compiled = pipe.compile(cfg)
    # block on any tier-specific background build work (the native
    # JIT's cc invocation) so every configuration is charged its full
    # readiness wall time, whatever tier it selects
    TIERS.resolve(cfg.backend).ensure_ready(compiled)
    elapsed = time.perf_counter() - t0
    return compiled, elapsed, stats.hits > hits_before


def _run_trial(
    score: Callable[[PolyMgConfig], "TrialMeasurement | float"],
    cfg: PolyMgConfig,
    tiles: tuple[int, ...],
    limit: int,
    trial_timeout: float | None,
) -> TrialMeasurement:
    """One compile+measure trial; every failure mode (exception or
    wall-clock timeout) surfaces as :class:`TrialFailure`."""
    start = time.perf_counter()
    if trial_timeout is None:
        try:
            return _measure(score(cfg))
        except Exception as exc:
            raise TrialFailure(
                "trial raised",
                tile_shape=tiles,
                group_limit=limit,
                cause=f"{type(exc).__name__}: {exc}",
                elapsed=round(time.perf_counter() - start, 3),
            ) from exc

    # run the trial on a worker thread so a hung configuration cannot
    # stall the search; on timeout the worker is abandoned (daemonized
    # by shutdown(wait=False)) and the config quarantined
    pool = ThreadPoolExecutor(1)
    future = pool.submit(score, cfg)
    try:
        return _measure(future.result(timeout=trial_timeout))
    except FutureTimeout:
        raise TrialFailure(
            "trial exceeded wall-clock timeout",
            tile_shape=tiles,
            group_limit=limit,
            timeout=trial_timeout,
        ) from None
    except Exception as exc:
        raise TrialFailure(
            "trial raised",
            tile_shape=tiles,
            group_limit=limit,
            cause=f"{type(exc).__name__}: {exc}",
            elapsed=round(time.perf_counter() - start, 3),
        ) from exc
    finally:
        pool.shutdown(wait=False)


def _tune(
    pipe,
    base: PolyMgConfig,
    score: Callable[[PolyMgConfig], float],
    trial_timeout: float | None = None,
    memo: TuneMemo | None = None,
    mode: str = "",
) -> TuneResult:
    """Search the space; a failing configuration is quarantined into
    ``TuneResult.failed`` and never aborts the search.

    With a shared ``memo``, points whose (spec, params, config, mode)
    fingerprint was already evaluated — by an earlier sweep or another
    caller holding the same memo — are served from it without
    re-running; ``TuneResult.memo_hits`` counts them.  Memoized
    failures stay failures."""
    points: list[TunePoint] = []
    failed: list[TrialFailure] = []
    memo_hits = 0
    for cfg, tiles, limit in config_space(base, pipe.ndim):
        key = memo.key(pipe, cfg, mode) if memo is not None else None
        cached = memo.lookup(key) if key is not None else None
        if cached is not None:
            memo_hits += 1
            if isinstance(cached, TrialFailure):
                failed.append(cached)
                continue
            m = cached
        else:
            try:
                m = _run_trial(score, cfg, tiles, limit, trial_timeout)
            except TrialFailure as failure:
                if key is not None:
                    memo.store(key, failure)
                failed.append(failure)
                continue
            if key is not None:
                memo.store(key, m)
        points.append(
            TunePoint(
                tiles,
                limit,
                m.score,
                compile_time=m.compile_time,
                execute_time=m.execute_time,
                cache_hit=m.cache_hit,
            )
        )
    if not points:
        raise TrialFailure(
            "every configuration in the search space failed",
            attempted=len(failed),
        )
    # ties resolve by the stable config fingerprint, not insertion
    # order, so equal-scoring sweeps always pick the same winner
    best = min(points, key=lambda p: (p.score, p.fingerprint()))
    return TuneResult(
        best, points, len(points) + len(failed), failed, memo_hits
    )


def autotune_model(
    pipe,
    base: PolyMgConfig,
    machine: MachineSpec,
    threads: int,
    cycles: int = 10,
    trial_timeout: float | None = None,
    memo: TuneMemo | None = None,
) -> TuneResult:
    """Tune against the machine cost model (paper-scale problems)."""

    def score(cfg: PolyMgConfig) -> TrialMeasurement:
        compiled, compile_time, hit = _timed_compile(pipe, cfg)
        t0 = time.perf_counter()
        value = TIERS.resolve(cfg.backend).cost_hint(
            compiled, machine, threads=threads, cycles=cycles
        )
        if value is None:  # a tier with no model: fall back directly
            value = PipelineCostModel(compiled, machine).run_time(
                threads, cycles
            )
        return TrialMeasurement(
            score=value,
            compile_time=compile_time,
            execute_time=time.perf_counter() - t0,
            cache_hit=hit,
        )

    return _tune(
        pipe,
        base,
        score,
        trial_timeout,
        memo=memo,
        mode=f"model:t{threads}c{cycles}",
    )


def autotune_measured(
    pipe,
    base: PolyMgConfig,
    inputs_factory: Callable[[], dict],
    repeats: int = 1,
    trial_timeout: float | None = None,
    trial_byte_budget: int | None = None,
    memo: TuneMemo | None = None,
) -> TuneResult:
    """Tune by wall-clock execution (laptop-scale problems; the
    paper's 'minimum of five runs' protocol, scaled).

    Every trial scores *per-cycle* wall time, so configurations remain
    comparable across execution tiers: when the base config selects a
    whole-solve tier, each repeat times one ``driver_hook_cycles``
    burst through ``polymg_drive`` and divides by the cycles served —
    tile sizes are searched under the exact dispatch regime the solve
    will use.  A trial whose driver cannot serve (toolchain missing,
    build failed, artifact without the driver entry) degrades to
    per-invocation ``execute`` timing within the same trial.

    ``trial_byte_budget`` caps each trial's pooled-allocator backing
    memory (see :class:`~repro.config.PolyMgConfig.pool_byte_budget`):
    a configuration whose execution would blow past the budget raises
    the typed :class:`~repro.errors.PoolExhaustedError` and is
    quarantined as a :class:`~repro.errors.TrialFailure` instead of
    OOMing the whole sweep."""

    def score(cfg: PolyMgConfig) -> TrialMeasurement:
        if trial_byte_budget is not None:
            cfg = cfg.with_(pool_byte_budget=trial_byte_budget)
        compiled, compile_time, hit = _timed_compile(pipe, cfg)
        inputs = inputs_factory()
        whole_solve = getattr(
            TIERS.resolve(cfg.backend), "whole_solve", False
        )
        spec = (
            pipe.drive_spec()
            if whole_solve and hasattr(pipe, "drive_spec")
            else None
        )
        burst = max(1, getattr(cfg, "driver_hook_cycles", 1))
        best = float("inf")
        total = 0.0
        for _ in range(repeats):
            t0 = time.perf_counter()
            served = (
                compiled.drive(
                    inputs, max_cycles=burst, tol=0.0, spec=spec
                )
                if spec is not None
                else None
            )
            if served is None or served.cycles == 0:
                # driver unavailable: latch onto per-invocation timing
                # for the remaining repeats of this trial
                spec = None
                compiled.execute(inputs)
                cycles = 1
            else:
                cycles = served.cycles
            elapsed = (time.perf_counter() - t0) / cycles
            best = min(best, elapsed)
            total += elapsed * cycles
        return TrialMeasurement(
            score=best,
            compile_time=compile_time,
            execute_time=total,
            cache_hit=hit,
        )

    return _tune(
        pipe,
        base,
        score,
        trial_timeout,
        memo=memo,
        mode=f"measured:r{repeats}",
    )
