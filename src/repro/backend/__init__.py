"""Backends: the numpy tile interpreter and the C/OpenMP code emitter."""

from .buffers import DirectAllocator, MemoryPool, PoolStats
from .executor import CompiledPipeline, ExecutionStats

__all__ = [
    "DirectAllocator",
    "MemoryPool",
    "PoolStats",
    "CompiledPipeline",
    "ExecutionStats",
]
