"""Backends: the numpy tile interpreter and the C/OpenMP code emitter."""

from .buffers import DirectAllocator, MemoryPool, PoolStats
from .executor import CompiledPipeline, ExecutionStats
from .guards import (
    GuardedPipeline,
    GuardIncident,
    ResidualMonitor,
    scan_nonfinite,
)
from .kernels import KernelPlan, StageKernel, build_kernel_plan

__all__ = [
    "DirectAllocator",
    "MemoryPool",
    "PoolStats",
    "CompiledPipeline",
    "ExecutionStats",
    "KernelPlan",
    "StageKernel",
    "build_kernel_plan",
    "GuardedPipeline",
    "GuardIncident",
    "ResidualMonitor",
    "scan_nonfinite",
]
