"""Backends: the numpy tile interpreter and the C/OpenMP code emitter."""

from .buffers import DirectAllocator, MemoryPool, PoolStats
from .executor import CompiledPipeline, ExecutionStats
from .guards import (
    GuardedPipeline,
    GuardIncident,
    ResidualMonitor,
    scan_nonfinite,
)

__all__ = [
    "DirectAllocator",
    "MemoryPool",
    "PoolStats",
    "CompiledPipeline",
    "ExecutionStats",
    "GuardedPipeline",
    "GuardIncident",
    "ResidualMonitor",
    "scan_nonfinite",
]
