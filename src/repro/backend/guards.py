"""Runtime sentinels and fault-tolerant execution.

Verification at compile time (``repro.verify.invariants``) cannot catch
everything: a numerically unstable smoother, a corrupted buffer, or a
latent backend bug only shows up in the data.  This module provides

* :func:`scan_nonfinite` — NaN/Inf scan over an array, raising
  :class:`~repro.errors.NumericalDivergenceError` with structured
  context.  The executor calls it on every group's live-outs when
  ``PolyMgConfig.runtime_guards`` is on.
* :class:`ResidualMonitor` — residual-divergence detection across
  multigrid cycle invocations: raises when the residual norm turns
  non-finite or grows past ``growth_factor`` times the best norm seen.
* :class:`GuardedPipeline` — graceful degradation.  Wraps a
  :class:`~repro.multigrid.cycles.MultigridPipeline`: executes the
  optimized compiled variant under verifiers + sentinels and, on any
  detected fault, re-executes the invocation with the trusted
  ``polymg-naive`` fallback variant, recording a
  :class:`GuardIncident` instead of returning garbage.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ReproError, NumericalDivergenceError

if TYPE_CHECKING:  # pragma: no cover
    from ..config import PolyMgConfig
    from .executor import CompiledPipeline

__all__ = [
    "scan_nonfinite",
    "ResidualMonitor",
    "GuardIncident",
    "GuardedPipeline",
]


def scan_nonfinite(
    name: str,
    array: np.ndarray,
    *,
    pipeline: str | None = None,
    group: int | None = None,
) -> None:
    """Raise :class:`NumericalDivergenceError` if ``array`` contains any
    NaN or Inf entries."""
    if np.isfinite(array).all():
        return
    bad = int(array.size - np.count_nonzero(np.isfinite(array)))
    raise NumericalDivergenceError(
        "non-finite values detected in live-out",
        pipeline=pipeline,
        group=group,
        stage=name,
        nonfinite_count=bad,
        total=int(array.size),
    )


class ResidualMonitor:
    """Detects residual divergence across multigrid cycle iterations.

    Feed each cycle's residual norm to :meth:`observe`; raises
    :class:`NumericalDivergenceError` when the norm is non-finite or
    exceeds ``growth_factor`` times the smallest norm observed so far
    (a converging solver shrinks monotonically up to stagnation, so a
    100x blow-up is unambiguous divergence).

    ``history`` is a ring buffer of the most recent ``history_limit``
    norms (long-running service solves must not grow memory without
    bound); the running best norm and the total observation count are
    retained separately, so divergence is still judged against the
    best norm *ever* seen even after it has left the window.
    """

    def __init__(
        self,
        growth_factor: float = 100.0,
        *,
        pipeline: str | None = None,
        history_limit: int = 512,
    ) -> None:
        if growth_factor <= 1.0:
            raise ValueError("growth_factor must exceed 1")
        if history_limit < 1:
            raise ValueError("history_limit must be positive")
        self.growth_factor = growth_factor
        self.pipeline = pipeline
        self.history: deque[float] = deque(maxlen=history_limit)
        self.observed = 0
        self.best = float("inf")

    def observe(self, norm: float) -> None:
        norm = float(norm)
        self.observed += 1
        self.history.append(norm)
        if not np.isfinite(norm):
            raise NumericalDivergenceError(
                "residual norm is non-finite",
                pipeline=self.pipeline,
                cycle=self.observed - 1,
                norm=norm,
            )
        self.best = min(self.best, norm)
        if self.best > 0 and norm > self.growth_factor * self.best:
            raise NumericalDivergenceError(
                "residual norm diverged",
                pipeline=self.pipeline,
                cycle=self.observed - 1,
                norm=norm,
                best=self.best,
                growth_factor=self.growth_factor,
            )

    def reduction_factor(self) -> float | None:
        """Most recent cycle's residual reduction factor (``None``
        before two observations)."""
        if len(self.history) < 2 or self.history[-2] == 0:
            return None
        return self.history[-1] / self.history[-2]


@dataclass
class GuardIncident:
    """Record of one detected fault and the recovery taken."""

    invocation: int
    error: ReproError
    fallback: str

    def __str__(self) -> str:
        return (
            f"invocation {self.invocation}: "
            f"{type(self.error).__name__}: {self.error} "
            f"-> fell back to {self.fallback}"
        )


class GuardedPipeline:
    """Fault-tolerant wrapper around a compiled multigrid pipeline.

    The primary variant runs with runtime guards enabled and is
    verified (``repro.verify``) before its first execution.  Any
    :class:`~repro.errors.ReproError` — a verifier rejection or a
    sentinel firing mid-execution — triggers re-execution of the same
    invocation with the ``polymg-naive`` fallback variant, whose output
    is bit-identical to the reference execution path.  Every fault is
    recorded in :attr:`incidents`.

    Both the primary and the fallback compile route through the
    content-addressed compile cache, so after the first guarded
    instance over a specification, further instances (and the fallback
    taken on an incident) are cache hits — graceful degradation costs
    no recompile.
    """

    def __init__(
        self,
        pipeline,
        config: "PolyMgConfig | None" = None,
        *,
        verify_level: str = "full",
    ) -> None:
        from ..variants import polymg_naive, polymg_opt_plus

        self.pipeline = pipeline
        base = config or polymg_opt_plus()
        self.config = base.with_(runtime_guards=True)
        self.compiled: "CompiledPipeline" = pipeline.compile(self.config)
        self.verify_level = verify_level
        self.fallback_name = "polymg-naive"
        self._fallback_config = polymg_naive()
        self._fallback: "CompiledPipeline | None" = None
        self._verified = False
        self._verify_error: ReproError | None = None
        self.incidents: list[GuardIncident] = []
        self.invocations = 0
        # the registry-level fallback-and-count path, outlet-configured
        # to append GuardIncident records to ``self.incidents``
        from .registry import FallbackPolicy

        self.policy = FallbackPolicy(
            sink=self.incidents, wrap=GuardIncident
        )

    # -- internals -----------------------------------------------------
    def _fallback_compiled(self) -> "CompiledPipeline":
        """The trusted ``polymg-naive`` fallback, compiled lazily.

        The compile routes through the content-addressed compile cache
        (:mod:`repro.cache`), so repeated incidents and multiple
        guarded instances over the same specification share one
        fallback compile; the per-instance memo only skips the
        fingerprint lookup."""
        if self._fallback is None:
            self._fallback = self.pipeline.compile(self._fallback_config)
        return self._fallback

    # -- API -----------------------------------------------------------
    def execute(self, inputs: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Run one invocation; falls back transparently on any fault.

        The verification verdict is memoized whichever way it goes: a
        passing artifact is never re-verified, and a failing one
        records a *single* incident and routes every subsequent
        invocation straight to the fallback without paying
        ``verify_compiled`` again."""
        self.invocations += 1
        if self._verify_error is None and not self._verified:
            from ..verify import verify_compiled

            try:
                verify_compiled(self.compiled, self.verify_level)
                self._verified = True
            except ReproError as error:
                self._verify_error = error
                self.policy.fault(
                    error,
                    invocation=self.invocations,
                    fallback=self.fallback_name,
                )
        if self._verify_error is not None:
            return self._fallback_compiled().execute(inputs)
        try:
            return self.compiled.execute(inputs)
        except ReproError as error:
            self.policy.fault(
                error,
                invocation=self.invocations,
                fallback=self.fallback_name,
            )
            return self._fallback_compiled().execute(inputs)

    @property
    def faulted(self) -> bool:
        return bool(self.incidents)
