"""Sandboxed out-of-process execution of native kernels.

The native JIT tier's headline risk is that it runs *machine-generated*
C in-process: one bad kernel — a wild store, an ``abort()``, an
infinite loop Python cannot interrupt — kills or wedges the whole
multi-tenant solve service, defeating every guarantee the resilience
ladder makes.  This module closes that hole with a persistent pool of
subprocess executors:

* **Workers** are long-lived ``spawn`` subprocesses (no forked locks,
  no inherited state).  Each owns a :class:`multiprocessing.shared_memory`
  data segment; the parent stages input grids into it once, the worker
  maps ``pmg_buffer`` descriptors straight onto the shared pages (no
  copy on the worker side, the kernel writes its outputs in place),
  and the parent copies the outputs out — one staging copy in, one
  copy out, regardless of grid count.
* **Watchdog**: every worker heartbeats a shared counter from a daemon
  thread (the GIL is released during the ctypes call, so the beat
  survives a long-running kernel).  The parent hard-kills a worker
  whose job misses its absolute deadline (``REPRO_SANDBOX_TIMEOUT``)
  or whose heartbeat goes stale, and classifies the outcome:
  :class:`~repro.errors.NativeHangError` for deadline/heartbeat kills,
  :class:`~repro.errors.NativeAbortError` for ``SIGABRT``, and
  :class:`~repro.errors.NativeCrashError` for any other fatal signal
  or unexpected exit.  A killed worker is respawned in place; the pool
  (and the service above it) never dies with a kernel.
* **Quarantine**: every crash/hang is recorded against the artifact's
  content hash in the :class:`~repro.cache.NativeArtifactStore`'s
  verdict sidecar; a hash that crashes
  :func:`~repro.cache.quarantine_threshold` times is blacklisted on
  disk and never reloaded by any process again.

Whole-solve driver bursts (``polymg_drive``) run through the same
pool.  A burst of ``k`` cycles legitimately holds a worker ``k`` times
longer than one kernel invocation, so its watchdog deadline scales
with the cycle budget — ``k x REPRO_SANDBOX_CYCLE_TIMEOUT`` (default:
the flat ``REPRO_SANDBOX_TIMEOUT``) — instead of the flat per-job
bound.  The driver additionally bumps a kernel-progress counter in the
heartbeat segment after every completed cycle, and a drive job whose
counter stalls is killed early (a wedged cycle must not ride out the
whole scaled deadline).

Environment switches: ``REPRO_NATIVE_ISOLATION`` forces the isolation
mode (overriding :attr:`repro.config.PolyMgConfig.native_isolation`),
``REPRO_SANDBOX_WORKERS`` sizes the pool (default 2),
``REPRO_SANDBOX_TIMEOUT`` bounds one kernel invocation in seconds
(default 60), ``REPRO_SANDBOX_CYCLE_TIMEOUT`` bounds one driver cycle
(default: the flat timeout), ``REPRO_SANDBOX_HEARTBEAT`` tunes the
beat interval (default 0.1 s; staleness trips at 10 beats or 1 s,
whichever is larger), and ``REPRO_NATIVE_AFFINITY``
(``compact``/``scatter``) is translated into
``OMP_PROC_BIND``/``OMP_PLACES`` inside each worker before its OpenMP
runtime initializes.
"""

from __future__ import annotations

import atexit
import ctypes
import os
import signal
import struct
import threading
import time
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from typing import TYPE_CHECKING

import numpy as np

from ..cache import native_artifact_store
from ..errors import (
    NativeAbortError,
    NativeBackendError,
    NativeCrashError,
    NativeHangError,
)
from .codegen_c import driver_emitted
from .native import DriveResult, NativeRunner

if TYPE_CHECKING:  # pragma: no cover
    from .executor import CompiledPipeline

__all__ = [
    "SandboxRunner",
    "SandboxPool",
    "sandbox_pool",
    "sandbox_state",
    "reset_sandbox_pool",
]

# heartbeat segment layout: offset 0 holds the worker's Python-thread
# beat counter (uint64), offset 8 the kernel-progress counter a driver
# burst bumps once per completed cycle (int64, via ``ctrl->progress``)
_HB_BYTES = 16
_HB_PROGRESS_OFF = 8


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, str(default)))
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, str(default)))
    except ValueError:
        return default


def sandbox_workers() -> int:
    return max(1, _env_int("REPRO_SANDBOX_WORKERS", 2))


def sandbox_timeout() -> float:
    return max(0.05, _env_float("REPRO_SANDBOX_TIMEOUT", 60.0))


def sandbox_cycle_timeout() -> float:
    """Per-cycle allowance for whole-solve driver bursts: a burst of
    ``k`` cycles gets an absolute deadline of ``k`` times this instead
    of the flat :func:`sandbox_timeout`."""
    return max(
        0.05,
        _env_float("REPRO_SANDBOX_CYCLE_TIMEOUT", sandbox_timeout()),
    )


def heartbeat_interval() -> float:
    return max(0.01, _env_float("REPRO_SANDBOX_HEARTBEAT", 0.1))


def _heartbeat_stale_after(interval: float) -> float:
    return max(10.0 * interval, 1.0)


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------


def _apply_affinity_env() -> None:
    """Translate the ``REPRO_NATIVE_AFFINITY`` override into the OpenMP
    binding variables.  Must run before the worker's OpenMP runtime
    initializes (i.e. before any shared object is loaded); explicit
    ``OMP_*`` settings in the environment win."""
    mode = os.environ.get("REPRO_NATIVE_AFFINITY", "").strip().lower()
    bind = {"compact": "close", "scatter": "spread"}.get(mode)
    if bind is not None:
        os.environ.setdefault("OMP_PROC_BIND", bind)
        os.environ.setdefault("OMP_PLACES", "cores")


def _worker_main(conn, hb_name: str, hb_interval: float) -> None:
    """Entry point of one sandbox worker subprocess.

    Protocol (parent → worker over the pipe): one dict per job with the
    shared-object path, the data-segment name, parameter values, thread
    count, and ``(offset, shape)`` placements for every input/output
    inside the segment.  Worker → parent: ``("ok", rc)`` after the
    kernel returns, or ``("err", kind, message)`` for a Python-level
    failure (e.g. the .so would not load).  A crash never replies —
    the parent reads the exit code instead.
    """
    # NOTE on the resource tracker: spawn children inherit the parent's
    # tracker, and attaching registers the same name it already holds
    # (set semantics — deduped), so the parent's unlink at pool close
    # is the single cleanup point.  No child-side unregister needed.
    _apply_affinity_env()
    hb = SharedMemory(name=hb_name)
    hb_base = ctypes.addressof(ctypes.c_char.from_buffer(hb.buf))

    def beat() -> None:
        n = 0
        while True:
            n += 1
            struct.pack_into("<Q", hb.buf, 0, n)
            time.sleep(hb_interval)

    threading.Thread(target=beat, name="sandbox-heartbeat", daemon=True).start()

    from .native import NativeModule, PmgDriveCtrl, _PmgBuffer

    modules: dict[str, NativeModule] = {}
    segments: dict[str, SharedMemory] = {}
    conn.send(("ready",))

    def segment(name: str) -> SharedMemory:
        seg = segments.get(name)
        if seg is None:
            seg = SharedMemory(name=name)
            segments[name] = seg
        return seg

    def descriptor(base: int, offset: int, shape, keepalive) -> _PmgBuffer:
        ndim = len(shape)
        c_shape = (ctypes.c_int64 * ndim)(*shape)
        stride, strides = 1, [0] * ndim
        for d in range(ndim - 1, -1, -1):
            strides[d] = stride
            stride *= shape[d]
        c_strides = (ctypes.c_int64 * ndim)(*strides)
        keepalive.extend((c_shape, c_strides))
        return _PmgBuffer(
            ctypes.cast(
                base + offset, ctypes.POINTER(ctypes.c_double)
            ),
            ndim,
            c_shape,
            c_strides,
        )

    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):
            return
        if job is None:  # clean shutdown
            return
        try:
            module = modules.get(job["so"])
            if module is None:
                module = NativeModule(job["so"])
                modules[job["so"]] = module
            seg = segment(job["shm"])
            base = ctypes.addressof(
                ctypes.c_char.from_buffer(seg.buf)
            )
            keepalive: list = []
            in_bufs = (_PmgBuffer * max(1, len(job["inputs"])))()
            for k, (offset, shape) in enumerate(job["inputs"]):
                in_bufs[k] = descriptor(base, offset, shape, keepalive)
            out_bufs = (_PmgBuffer * max(1, len(job["outputs"])))()
            for k, (offset, shape) in enumerate(job["outputs"]):
                out_bufs[k] = descriptor(base, offset, shape, keepalive)
            params = job["params"]
            c_params = (ctypes.c_int64 * max(1, len(params)))(
                *(params or [0])
            )
            drive = job.get("drive")
            if drive is not None:
                if getattr(module, "_drive", None) is None:
                    conn.send((
                        "err",
                        "NativeABIError",
                        "shared object does not export the "
                        "whole-solve driver",
                    ))
                    continue
                ctrl = PmgDriveCtrl(
                    max_cycles=int(drive["max_cycles"]),
                    iterate_index=int(drive["iterate_index"]),
                    rhs_index=int(drive["rhs_index"]),
                    tol=float(drive["tol"]),
                    norm_scale=float(drive["norm_scale"]),
                    inv_h2=float(drive["inv_h2"]),
                    norms=ctypes.cast(
                        base + int(drive["norms_offset"]),
                        ctypes.POINTER(ctypes.c_double),
                    ),
                    progress=ctypes.cast(
                        hb_base + _HB_PROGRESS_OFF,
                        ctypes.POINTER(ctypes.c_int64),
                    ),
                )
                with module.lock:
                    rc = module._drive(
                        c_params,
                        len(params),
                        int(job["nthreads"]),
                        in_bufs,
                        len(job["inputs"]),
                        out_bufs,
                        len(job["outputs"]),
                        ctypes.byref(ctrl),
                    )
                conn.send((
                    "ok",
                    int(rc),
                    int(ctrl.cycles_done),
                    int(ctrl.converged),
                ))
                continue
            with module.lock:
                rc = module._run(
                    c_params,
                    len(params),
                    int(job["nthreads"]),
                    in_bufs,
                    len(job["inputs"]),
                    out_bufs,
                    len(job["outputs"]),
                )
            conn.send(("ok", int(rc)))
        except Exception as exc:  # Python-level failure: stay alive
            conn.send(("err", type(exc).__name__, str(exc)))


# ---------------------------------------------------------------------------
# parent-side worker handle + watchdog
# ---------------------------------------------------------------------------


class SandboxWorker:
    """Parent-side handle of one executor subprocess."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.jobs = 0
        self.hb_interval = heartbeat_interval()
        self._ctx = get_context("spawn")
        self.hb = SharedMemory(create=True, size=_HB_BYTES)
        struct.pack_into("<Q", self.hb.buf, 0, 0)
        self.conn, child_conn = self._ctx.Pipe()
        self.proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.hb.name, self.hb_interval),
            name=f"polymg-sandbox-{index}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.data: SharedMemory | None = None
        # spawn + import handshake; generous because a cold spawn
        # re-imports numpy and this package
        try:
            if not self.conn.poll(60.0):
                raise NativeBackendError(
                    "sandbox worker failed to start", worker=index
                )
            self.conn.recv()  # ("ready",)
        except (EOFError, OSError):
            exitcode = self.proc.exitcode
            self.close()
            raise NativeBackendError(
                "sandbox worker died during startup",
                worker=index,
                exitcode=exitcode,
            )
        except NativeBackendError:
            self.close()
            raise
        self._beat = 0
        self._beat_seen_at = time.monotonic()

    # -- shared data segment --------------------------------------------
    def ensure_segment(self, nbytes: int) -> SharedMemory:
        if self.data is not None and self.data.size >= nbytes:
            return self.data
        if self.data is not None:
            old = self.data
            self.data = None
            try:
                old.close()
                old.unlink()
            except OSError:
                pass
        self.data = SharedMemory(create=True, size=max(nbytes, 4096))
        return self.data

    # -- watchdog ---------------------------------------------------------
    def _heartbeat_stale(self, now: float) -> bool:
        beat = struct.unpack_from("<Q", self.hb.buf, 0)[0]
        if beat != self._beat:
            self._beat = beat
            self._beat_seen_at = now
            return False
        return (
            now - self._beat_seen_at
            > _heartbeat_stale_after(self.hb_interval)
        )

    def _kill(self) -> None:
        try:
            self.proc.kill()
        except (OSError, ValueError):
            pass
        self.proc.join(5.0)

    def _classify_death(self, key: str, pipeline: str) -> NativeCrashError:
        exitcode = self.proc.exitcode
        if exitcode is not None and exitcode < 0:
            signum = -exitcode
            cls = (
                NativeAbortError
                if signum == signal.SIGABRT
                else NativeCrashError
            )
            try:
                signame = signal.Signals(signum).name
            except ValueError:
                signame = str(signum)
            return cls(
                "sandbox worker killed by signal while running "
                "native kernel",
                pipeline=pipeline,
                artifact_key=key,
                signal=signame,
                worker=self.index,
            )
        return NativeCrashError(
            "sandbox worker exited unexpectedly while running "
            "native kernel",
            pipeline=pipeline,
            artifact_key=key,
            exitcode=exitcode,
            worker=self.index,
        )

    def run_job(
        self,
        job: dict,
        key: str,
        pipeline: str,
        *,
        deadline_s: float | None = None,
        cycle_stale_s: float | None = None,
    ):
        """Send one job and watchdog it to completion.

        ``deadline_s`` overrides the flat :func:`sandbox_timeout` (drive
        jobs scale it with their cycle budget).  ``cycle_stale_s``, when
        given, arms the kernel-progress watch: the job is killed early
        if the driver's per-cycle progress counter stops advancing for
        that long, so a wedged cycle does not ride out the whole scaled
        deadline.  Returns the worker's reply tuple; raises the
        crash-class typed error (after hard-killing the worker where
        needed).  The caller must treat any raise as "this worker is
        dead"."""
        budget = deadline_s if deadline_s is not None else sandbox_timeout()
        now = time.monotonic()
        deadline = now + budget
        self._beat_seen_at = now  # fresh staleness window
        if cycle_stale_s is not None:
            # zero the kernel-progress counter before the burst starts
            # (only one job is in flight per worker at a time)
            struct.pack_into("<q", self.hb.buf, _HB_PROGRESS_OFF, 0)
            progress_seen, progress_seen_at = 0, now
        try:
            self.conn.send(job)
        except (OSError, ValueError, BrokenPipeError):
            self.proc.join(5.0)
            raise self._classify_death(key, pipeline)
        self.jobs += 1
        while True:
            if self.conn.poll(min(0.05, self.hb_interval)):
                try:
                    return self.conn.recv()
                except (EOFError, OSError):
                    self.proc.join(5.0)
                    raise self._classify_death(key, pipeline)
            if not self.proc.is_alive():
                self.proc.join(5.0)
                raise self._classify_death(key, pipeline)
            now = time.monotonic()
            if now > deadline:
                self._kill()
                raise NativeHangError(
                    "native kernel missed its sandbox deadline",
                    pipeline=pipeline,
                    artifact_key=key,
                    timeout_s=budget,
                    worker=self.index,
                )
            if cycle_stale_s is not None:
                progress = struct.unpack_from(
                    "<q", self.hb.buf, _HB_PROGRESS_OFF
                )[0]
                if progress != progress_seen:
                    progress_seen, progress_seen_at = progress, now
                elif now - progress_seen_at > cycle_stale_s:
                    self._kill()
                    raise NativeHangError(
                        "native driver stopped making cycle progress",
                        pipeline=pipeline,
                        artifact_key=key,
                        reason="stalled-cycle",
                        cycles_done=progress,
                        worker=self.index,
                    )
            if self._heartbeat_stale(now):
                self._kill()
                raise NativeHangError(
                    "sandbox worker stopped heartbeating",
                    pipeline=pipeline,
                    artifact_key=key,
                    reason="missed-heartbeat",
                    worker=self.index,
                )

    def close(self) -> None:
        try:
            if self.proc.is_alive():
                self.conn.send(None)
                self.proc.join(2.0)
        except (OSError, ValueError, BrokenPipeError):
            pass
        if self.proc.is_alive():
            self._kill()
        self.conn.close()
        for shm in (self.hb, self.data):
            if shm is None:
                continue
            try:
                shm.close()
                shm.unlink()
            except (OSError, BufferError):
                pass


# ---------------------------------------------------------------------------
# the pool
# ---------------------------------------------------------------------------


class SandboxPool:
    """Fixed-size pool of sandbox workers with crash accounting.

    Workers are spawned lazily (the first native execute pays the
    spawn, subsequent ones reuse the warm worker) and respawned in
    place after every kill, so the pool's capacity is constant from
    the service's point of view.
    """

    def __init__(self, size: int | None = None) -> None:
        self.size = size if size is not None else sandbox_workers()
        self._lock = threading.Lock()
        self._free = threading.Condition(self._lock)
        self._workers: dict[int, SandboxWorker | None] = {}
        self._busy: set[int] = set()
        self._closed = False
        self.stats_lock = threading.Lock()
        self.jobs = 0
        self.crashes = 0
        self.hangs = 0
        self.aborts = 0
        self.respawns = 0

    # -- worker lifecycle -------------------------------------------------
    def _acquire(self) -> SandboxWorker:
        while True:
            with self._free:
                if self._closed:
                    raise NativeBackendError("sandbox pool is closed")
                empty = None
                for idx in range(self.size):
                    if idx in self._busy:
                        continue
                    worker = self._workers.get(idx)
                    if worker is not None:
                        self._busy.add(idx)
                        return worker
                    if empty is None:
                        empty = idx
                if empty is None:
                    self._free.wait()
                    continue
                # reserve the empty slot; spawn outside the lock (a
                # cold spawn re-imports numpy — healthz must not block
                # behind it)
                self._busy.add(empty)
                respawn = empty in self._workers
            try:
                worker = SandboxWorker(empty)
            except Exception:
                with self._free:
                    self._busy.discard(empty)
                    self._free.notify()
                raise
            if respawn:
                with self.stats_lock:
                    self.respawns += 1
            with self._free:
                if self._closed:
                    self._busy.discard(empty)
                    try:
                        worker.close()
                    except Exception:
                        pass
                    raise NativeBackendError("sandbox pool is closed")
                self._workers[empty] = worker
            return worker

    def _release(self, worker: SandboxWorker, dead: bool) -> None:
        with self._free:
            self._busy.discard(worker.index)
            if dead:
                self._workers[worker.index] = None
                try:
                    worker.close()
                except Exception:
                    pass
            self._free.notify()

    # -- execution --------------------------------------------------------
    def run(
        self,
        runner: "SandboxRunner",
        arrays: list[np.ndarray],
        num_threads: int,
    ) -> list[np.ndarray]:
        """Run one kernel invocation out-of-process.

        ``arrays`` are the normalized input grids in DAG order; the
        return value is the output grids in DAG order (fresh arrays the
        caller owns).  Crash-class errors propagate typed; the worker
        involved is already respawn-scheduled when they do.
        """
        placements_in, placements_out = [], []
        offset = 0
        for arr in arrays:
            placements_in.append((offset, tuple(arr.shape)))
            offset += arr.nbytes
        for _out, shape in runner.outputs:
            placements_out.append((offset, tuple(shape)))
            offset += int(np.prod(shape)) * 8
        worker = self._acquire()
        dead = False
        try:
            seg = worker.ensure_segment(offset)
            for arr, (off, shape) in zip(arrays, placements_in):
                view = np.frombuffer(
                    seg.buf, dtype=np.float64,
                    count=arr.size, offset=off,
                ).reshape(shape)
                view[...] = arr
                del view
            job = {
                "so": runner.so_path,
                "shm": seg.name,
                "params": list(runner.param_values),
                "nthreads": int(num_threads),
                "inputs": placements_in,
                "outputs": placements_out,
            }
            with self.stats_lock:
                self.jobs += 1
            try:
                reply = worker.run_job(
                    job, runner.key, runner.pipeline
                )
            except NativeBackendError as exc:
                dead = True
                with self.stats_lock:
                    if isinstance(exc, NativeHangError):
                        self.hangs += 1
                    elif isinstance(exc, NativeAbortError):
                        self.aborts += 1
                    else:
                        self.crashes += 1
                raise
            if reply[0] == "err":
                raise NativeBackendError(
                    "sandbox worker could not run the native kernel",
                    pipeline=runner.pipeline,
                    artifact_key=runner.key,
                    kind=reply[1],
                    error=reply[2],
                )
            rc = reply[1]
            if rc != 0:
                raise runner._error_for(rc)
            outputs = []
            for off, shape in placements_out:
                view = np.frombuffer(
                    seg.buf, dtype=np.float64,
                    count=int(np.prod(shape)), offset=off,
                ).reshape(shape)
                outputs.append(np.array(view))  # the one copy out
                del view
            return outputs
        finally:
            self._release(worker, dead)

    def drive(
        self,
        runner: "SandboxRunner",
        arrays: list[np.ndarray],
        num_threads: int,
        *,
        max_cycles: int,
        iterate_index: int,
        rhs_index: int,
        tol: float,
        norm_scale: float,
        inv_h2: float,
    ) -> tuple[list[np.ndarray], list[float], bool]:
        """Run one whole-solve driver burst out-of-process.

        Same staging contract as :meth:`run`, plus a norms region in
        the shared segment the kernel writes its per-cycle residual
        norms into.  The watchdog deadline scales with the cycle budget
        (``max_cycles x`` :func:`sandbox_cycle_timeout`) and the
        kernel-progress watch kills a burst whose cycle counter stalls.
        Returns ``(outputs, norms, converged)``.
        """
        placements_in, placements_out = [], []
        offset = 0
        for arr in arrays:
            placements_in.append((offset, tuple(arr.shape)))
            offset += arr.nbytes
        for _out, shape in runner.outputs:
            placements_out.append((offset, tuple(shape)))
            offset += int(np.prod(shape)) * 8
        norms_offset = offset
        offset += max_cycles * 8
        worker = self._acquire()
        dead = False
        try:
            seg = worker.ensure_segment(offset)
            for arr, (off, shape) in zip(arrays, placements_in):
                view = np.frombuffer(
                    seg.buf, dtype=np.float64,
                    count=arr.size, offset=off,
                ).reshape(shape)
                view[...] = arr
                del view
            job = {
                "so": runner.so_path,
                "shm": seg.name,
                "params": list(runner.param_values),
                "nthreads": int(num_threads),
                "inputs": placements_in,
                "outputs": placements_out,
                "drive": {
                    "max_cycles": int(max_cycles),
                    "iterate_index": int(iterate_index),
                    "rhs_index": int(rhs_index),
                    "tol": float(tol),
                    "norm_scale": float(norm_scale),
                    "inv_h2": float(inv_h2),
                    "norms_offset": norms_offset,
                },
            }
            with self.stats_lock:
                self.jobs += 1
            cycle_s = sandbox_cycle_timeout()
            try:
                reply = worker.run_job(
                    job,
                    runner.key,
                    runner.pipeline,
                    deadline_s=max_cycles * cycle_s,
                    cycle_stale_s=2.0 * cycle_s,
                )
            except NativeBackendError as exc:
                dead = True
                with self.stats_lock:
                    if isinstance(exc, NativeHangError):
                        self.hangs += 1
                    elif isinstance(exc, NativeAbortError):
                        self.aborts += 1
                    else:
                        self.crashes += 1
                raise
            if reply[0] == "err":
                raise NativeBackendError(
                    "sandbox worker could not run the native driver",
                    pipeline=runner.pipeline,
                    artifact_key=runner.key,
                    kind=reply[1],
                    error=reply[2],
                )
            rc = reply[1]
            if rc == 4:
                from ..errors import NativeABIError

                raise NativeABIError(
                    "shared object rejected the driver control block",
                    pipeline=runner.pipeline,
                    returncode=rc,
                )
            if rc != 0:
                raise runner._error_for(rc)
            done, converged = int(reply[2]), bool(reply[3])
            outputs = []
            for off, shape in placements_out:
                view = np.frombuffer(
                    seg.buf, dtype=np.float64,
                    count=int(np.prod(shape)), offset=off,
                ).reshape(shape)
                outputs.append(np.array(view))  # the one copy out
                del view
            norms_view = np.frombuffer(
                seg.buf, dtype=np.float64,
                count=max_cycles, offset=norms_offset,
            )
            norms = [float(x) for x in norms_view[:done]]
            del norms_view
            return outputs, norms, converged
        finally:
            self._release(worker, dead)

    # -- introspection / shutdown ----------------------------------------
    def state(self) -> dict:
        with self._lock:
            alive = sum(
                1
                for w in self._workers.values()
                if w is not None and w.proc.is_alive()
            )
            busy = len(self._busy)
        with self.stats_lock:
            return {
                "enabled": True,
                "size": self.size,
                "alive": alive,
                "busy": busy,
                "jobs": self.jobs,
                "crashes": self.crashes,
                "hangs": self.hangs,
                "aborts": self.aborts,
                "respawns": self.respawns,
            }

    def close(self) -> None:
        with self._free:
            self._closed = True
            workers = [
                w for w in self._workers.values() if w is not None
            ]
            self._workers.clear()
            self._busy.clear()
            self._free.notify_all()
        for worker in workers:
            try:
                worker.close()
            except Exception:
                pass


# ---------------------------------------------------------------------------
# the runner served to the executor
# ---------------------------------------------------------------------------


class SandboxRunner(NativeRunner):
    """Drop-in :class:`NativeRunner` that never dlopens the artifact.

    Holds the same baked call geometry but routes every invocation
    through the process-wide :class:`SandboxPool`; the shared object is
    only ever mapped inside a disposable worker.  A crash-class fault
    is recorded against the artifact's content hash before it
    propagates, so repeat offenders cross the quarantine threshold and
    are refused on every future load — in this process and the next.
    """

    def __init__(
        self, compiled: "CompiledPipeline", so_path: str, key: str
    ) -> None:
        super().__init__(None, compiled)
        self.so_path = str(so_path)
        self.key = key
        # the parent never dlopens the artifact, so driver capability
        # is decided from the emission predicate, not a symbol probe
        self._driver_capable = driver_emitted(compiled)

    def _staged_arrays(self, input_arrays: dict) -> list[np.ndarray]:
        arrays = []
        for grid, shape in self.inputs:
            arr = self._normalize(grid, input_arrays[grid])
            if arr.shape != shape:
                from ..errors import NativeABIError

                raise NativeABIError(
                    f"input {grid.name!r} has shape {arr.shape}, the "
                    f"shared object was compiled for {shape}",
                    pipeline=self.pipeline,
                )
            arrays.append(arr)
        return arrays

    def run(
        self, input_arrays: dict, num_threads: int
    ) -> dict[str, np.ndarray]:
        arrays = self._staged_arrays(input_arrays)
        try:
            outputs = sandbox_pool().run(arrays=arrays, runner=self,
                                         num_threads=num_threads)
        except (NativeCrashError, NativeHangError) as exc:
            kind = type(exc).__name__
            quarantined = native_artifact_store().record_crash(
                self.key, kind
            )
            exc.context["quarantined"] = quarantined
            raise
        return {
            out.name: arr
            for (out, _shape), arr in zip(self.outputs, outputs)
        }

    @property
    def can_drive(self) -> bool:
        return self._driver_capable

    def drive(
        self,
        input_arrays: dict,
        num_threads: int,
        *,
        max_cycles: int,
        iterate_index: int,
        rhs_index: int,
        tol: float,
        norm_scale: float,
        inv_h2: float,
    ) -> DriveResult:
        """Crash-isolated whole-solve burst: same contract as
        :meth:`NativeRunner.drive`, run inside a sandbox worker with a
        cycle-scaled watchdog deadline."""
        arrays = self._staged_arrays(input_arrays)
        try:
            outputs, norms, converged = sandbox_pool().drive(
                arrays=arrays,
                runner=self,
                num_threads=num_threads,
                max_cycles=max_cycles,
                iterate_index=iterate_index,
                rhs_index=rhs_index,
                tol=tol,
                norm_scale=norm_scale,
                inv_h2=inv_h2,
            )
        except (NativeCrashError, NativeHangError) as exc:
            kind = type(exc).__name__
            quarantined = native_artifact_store().record_crash(
                self.key, kind
            )
            exc.context["quarantined"] = quarantined
            raise
        return DriveResult(
            outputs={
                out.name: arr
                for (out, _shape), arr in zip(self.outputs, outputs)
            },
            norms=norms,
            cycles=len(norms),
            converged=converged,
        )

    def pool_bytes(self) -> int:
        # the emitted pool statics live inside the worker processes;
        # the parent has no in-process native allocations to report
        return 0


# ---------------------------------------------------------------------------
# process-wide singleton
# ---------------------------------------------------------------------------


_POOL: SandboxPool | None = None
_POOL_LOCK = threading.Lock()


def sandbox_pool() -> SandboxPool:
    """The process-wide sandbox pool (lazily created)."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = SandboxPool()
            # workers are daemons, so exiting kills them either way —
            # but only an explicit close() unlinks the heartbeat/data
            # shm segments (idempotent: a second registration is a
            # no-op reset of an already-cleared singleton)
            atexit.register(reset_sandbox_pool)
        return _POOL


def sandbox_state() -> dict:
    """Pool state for health reporting — never *creates* the pool, so
    a service that has not executed natively reports ``enabled=False``
    instead of paying worker spawns inside ``healthz()``."""
    with _POOL_LOCK:
        pool = _POOL
    if pool is None:
        return {"enabled": False}
    state = pool.state()
    state["quarantined"] = len(
        native_artifact_store().quarantined_keys()
    )
    return state


def reset_sandbox_pool() -> None:
    """Close and forget the singleton (test isolation)."""
    global _POOL
    with _POOL_LOCK:
        pool, _POOL = _POOL, None
    if pool is not None:
        pool.close()
