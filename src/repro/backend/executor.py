"""Execution of compiled pipelines (the numpy backend).

A :class:`CompiledPipeline` executes the *exact schedule* produced by
the compiler passes: groups in topological order; overlapped tiles over
each multi-stage group's anchor domain; internal stages into (reused)
scratchpads; live-outs into (reused) full arrays served by the pooled
allocator; arrays freed as soon as their last consumer group finishes
(the generated ``pool_deallocate`` placement of paper 3.2.3).

The backend exists to make every optimization *observable*: outputs are
bit-compared against an independent reference solver in the tests, and
execution statistics (tiles, redundant points, allocation traffic) feed
the machine cost model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..config import PolyMgConfig
from ..errors import InputShapeError, MissingInputError
from ..ir.domain import Box
from ..ir.interval import ConcreteInterval
from .buffers import DirectAllocator, MemoryPool
from .evaluate import evaluate_stage
from .guards import scan_nonfinite

if TYPE_CHECKING:  # pragma: no cover
    from ..ir.dag import PipelineDAG
    from ..lang.function import Function
    from ..passes.grouping import GroupingResult
    from ..passes.groups import Group
    from ..passes.manager import CompileReport
    from ..passes.schedule import PipelineSchedule
    from ..passes.storage import StoragePlan

__all__ = ["ExecutionStats", "CompiledPipeline"]


@dataclass
class ExecutionStats:
    """Counters from one or more ``execute`` calls."""

    executions: int = 0
    groups_executed: int = 0
    tiles_executed: int = 0
    points_computed: int = 0
    ideal_points: int = 0
    scratch_bytes_peak: int = 0
    diamond_segments: int = 0
    copy_bytes: int = 0

    def redundancy(self) -> float:
        if self.ideal_points == 0:
            return 0.0
        return self.points_computed / self.ideal_points - 1.0


class CompiledPipeline:
    """A fully scheduled pipeline ready to run on numpy arrays."""

    def __init__(
        self,
        dag: "PipelineDAG",
        config: PolyMgConfig,
        grouping: "GroupingResult",
        schedule: "PipelineSchedule",
        storage: "StoragePlan",
    ) -> None:
        self.dag = dag
        self.config = config
        self.grouping = grouping
        self.schedule = schedule
        self.storage = storage
        self.bindings = dag.param_bindings
        self.allocator = (
            MemoryPool(byte_budget=config.pool_byte_budget)
            if config.pooled_allocation
            else DirectAllocator()
        )
        self.stats = ExecutionStats()
        # per-compile instrumentation, attached by ``compile_pipeline``
        # (None only for hand-constructed pipelines)
        self.report: "CompileReport | None" = None
        # fault-injection hook (repro.verify.faults): when set, called
        # as ``hook(stage, out_array)`` after every stage evaluation
        self.fault_injector = None
        self._plan_array_lifetimes()
        self._plan_diamond_segments()

    # ------------------------------------------------------------------
    # compile-time planning helpers
    # ------------------------------------------------------------------
    def _plan_array_lifetimes(self) -> None:
        """First-definition and last-use group index per array id."""
        alloc_at: dict[int, int] = {}
        free_after: dict[int, int] = {}
        for gi, group in enumerate(self.grouping.groups):
            for stage in group.live_outs():
                aid = self.storage.array_of[stage]
                alloc_at.setdefault(aid, gi)
                last = gi
                for consumer in self.dag.consumers_of(stage):
                    cg = self.grouping.group_of[consumer]
                    last = max(last, self.schedule.time_of_group(cg))
                if self.dag.is_output(stage):
                    last = len(self.grouping.groups)  # never freed
                free_after[aid] = max(free_after.get(aid, -1), last)
        self._alloc_at = alloc_at
        self._free_after = free_after

    def _plan_diamond_segments(self) -> None:
        """Identify smoother chains to run under diamond tiling
        (``polymg-dtile-opt+``): maximal runs of same-TStencil steps that
        form a whole group."""
        self._diamond_groups: set[int] = set()
        if not self.config.diamond_smoothing:
            return
        for gi, group in enumerate(self.grouping.groups):
            stages = group.stages
            if len(stages) < 2:
                continue
            t0 = getattr(stages[0], "tstencil", None)
            if t0 is None:
                continue
            if all(getattr(s, "tstencil", None) is t0 for s in stages):
                self._diamond_groups.add(gi)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, inputs: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Run one pipeline invocation (e.g. one multigrid cycle)."""
        dag = self.dag
        self.stats.executions += 1

        input_arrays: dict["Function", np.ndarray] = {}
        for grid in dag.inputs:
            if grid.name not in inputs:
                raise MissingInputError(
                    f"missing input {grid.name!r}",
                    pipeline=dag.name,
                    provided=sorted(inputs),
                )
            arr = np.asarray(inputs[grid.name])
            expected = grid.domain_box(self.bindings).shape()
            if arr.shape != expected:
                raise InputShapeError(
                    f"input {grid.name!r} has shape {arr.shape}, expected "
                    f"{expected}",
                    pipeline=dag.name,
                )
            input_arrays[grid] = arr

        arrays: dict[int, np.ndarray] = {}
        outputs: dict[str, np.ndarray] = {}

        output_ids = {
            self.storage.array_of[out]
            for out in dag.outputs
            if out in self.storage.array_of
        }

        def ensure_array(aid: int) -> np.ndarray:
            if aid not in arrays:
                shape = self.storage.array_shapes[aid]
                from ..lang.types import dtype_of

                npdt = dtype_of(self.storage.array_dtypes[aid]).np_dtype
                if aid in output_ids:
                    # program outputs are owned by the caller, never by
                    # the pool (paper 3.2.2: inputs/outputs are not
                    # reuse buffers)
                    arrays[aid] = np.empty(shape, dtype=npdt)
                else:
                    arrays[aid] = self.allocator.allocate(shape, npdt)
            return arrays[aid]

        try:
            for gi, group in enumerate(self.grouping.groups):
                self.stats.groups_executed += 1
                # materialize live-out arrays of this group
                stage_arrays: dict["Function", np.ndarray] = {}
                for stage in group.live_outs():
                    aid = self.storage.array_of[stage]
                    full = ensure_array(aid)
                    shape = stage.domain_box(self.bindings).shape()
                    view = full[tuple(slice(0, s) for s in shape)]
                    stage_arrays[stage] = view
                    if dag.is_output(stage):
                        outputs[stage.name] = view

                if gi in self._diamond_groups:
                    self._execute_group_diamond(
                        group, stage_arrays, input_arrays, arrays
                    )
                elif self.config.tile and group.size > 1:
                    self._execute_group_tiled(
                        gi, group, stage_arrays, input_arrays, arrays
                    )
                else:
                    self._execute_group_straight(
                        group, stage_arrays, input_arrays, arrays
                    )

                if self.config.runtime_guards:
                    for stage, view in stage_arrays.items():
                        scan_nonfinite(
                            stage.name, view, pipeline=dag.name, group=gi
                        )

                # free arrays whose last consumer group has completed
                for aid, last in self._free_after.items():
                    if last == gi and aid in arrays:
                        self.allocator.deallocate(arrays.pop(aid))
        except BaseException:
            # an aborted invocation must not strand pooled arrays: every
            # still-lent buffer goes back to the allocator so the
            # resilience layer's end-of-solve leak accounting only
            # flags genuine leaks
            for aid in list(arrays):
                if aid not in output_ids:
                    self.allocator.deallocate(arrays.pop(aid))
            raise

        # ideal (non-redundant) work for redundancy accounting
        for stage in dag.stages:
            self.stats.ideal_points += stage.domain_box(
                self.bindings
            ).volume()
        return outputs

    # -- readers -----------------------------------------------------------
    def _make_reader(
        self,
        group: "Group",
        input_arrays: dict["Function", np.ndarray],
        arrays: dict[int, np.ndarray],
        scratch: dict["Function", tuple[np.ndarray, tuple[int, ...]]],
    ):
        dag = self.dag
        storage = self.storage
        bindings = self.bindings

        def read(func: "Function", box: Box) -> np.ndarray:
            if func.is_input:
                arr = input_arrays[func]
                return arr[box.slices(origin=(0,) * box.ndim)]
            if func in scratch:
                arr, origin = scratch[func]
                return arr[box.slices(origin=origin)]
            aid = storage.array_of[func]
            full = arrays[aid]
            dom = func.domain_box(bindings)
            view = full[tuple(slice(0, s) for s in dom.shape())]
            return view[box.slices(origin=dom.lower())]

        return read

    # -- straight (untiled) execution ---------------------------------------
    def _execute_group_straight(
        self,
        group: "Group",
        stage_arrays: dict["Function", np.ndarray],
        input_arrays: dict["Function", np.ndarray],
        arrays: dict[int, np.ndarray],
    ) -> None:
        bindings = self.bindings
        scratch: dict["Function", tuple[np.ndarray, tuple[int, ...]]] = {}
        reader = self._make_reader(group, input_arrays, arrays, scratch)
        live = set(group.live_outs())
        for stage in group.stages:
            dom = stage.domain_box(bindings)
            if stage in live:
                out = stage_arrays[stage]
                origin = dom.lower()
            else:
                out = np.empty(dom.shape(), dtype=stage.dtype.np_dtype)
                origin = dom.lower()
                scratch[stage] = (out, origin)
            self.stats.points_computed += evaluate_stage(
                stage, dom, reader, out, origin, bindings
            )
            if self.fault_injector is not None:
                self.fault_injector(stage, out)

    # -- overlapped-tile execution ------------------------------------------
    def _tile_grid(self, anchor_dom: Box, tile_shape) -> list[Box]:
        per_dim: list[list[ConcreteInterval]] = []
        for iv, t in zip(anchor_dom.intervals, tile_shape):
            dim_tiles = []
            lo = iv.lb
            while lo <= iv.ub:
                hi = min(lo + t - 1, iv.ub)
                dim_tiles.append(ConcreteInterval(lo, hi))
                lo = hi + 1
            per_dim.append(dim_tiles)
        return [Box(combo) for combo in itertools.product(*per_dim)]

    def _execute_group_tiled(
        self,
        gi: int,
        group: "Group",
        stage_arrays: dict["Function", np.ndarray],
        input_arrays: dict["Function", np.ndarray],
        arrays: dict[int, np.ndarray],
    ) -> None:
        bindings = self.bindings
        anchor_dom = group.anchor.domain_box(bindings)
        tile_shape = self.config.tile_shape(group.anchor.ndim)
        live = set(group.live_outs())
        splan = self.storage.group_scratch(gi)

        tiles = self._tile_grid(anchor_dom, tile_shape)
        if self.config.num_threads > 1 and len(tiles) > 1:
            # overlapped tiles are independent (communication-avoiding):
            # writes to live-out overlap zones are redundant writes of
            # identical values, so a thread pool over tiles is safe
            from concurrent.futures import ThreadPoolExecutor

            def run_tile(tile):
                return self._execute_one_tile(
                    group, tile, splan, live, stage_arrays,
                    input_arrays, arrays,
                )

            with ThreadPoolExecutor(self.config.num_threads) as pool:
                results = list(pool.map(run_tile, tiles))
            for points, scratch_bytes in results:
                self.stats.tiles_executed += 1
                self.stats.points_computed += points
                self.stats.scratch_bytes_peak = max(
                    self.stats.scratch_bytes_peak, scratch_bytes
                )
            return

        for tile in tiles:
            points, scratch_bytes = self._execute_one_tile(
                group, tile, splan, live, stage_arrays, input_arrays,
                arrays,
            )
            self.stats.tiles_executed += 1
            self.stats.points_computed += points
            self.stats.scratch_bytes_peak = max(
                self.stats.scratch_bytes_peak, scratch_bytes
            )

    def _execute_one_tile(
        self,
        group: "Group",
        tile: Box,
        splan,
        live: set,
        stage_arrays: dict,
        input_arrays: dict,
        arrays: dict,
    ) -> tuple[int, int]:
        """Execute one overlapped tile; returns (points, scratch bytes)."""
        bindings = self.bindings
        regions = group.tile_regions(tile)
        # allocate logical scratch buffers for this tile
        buf_shape: dict[int, tuple[int, ...]] = {}
        buf_dtype: dict[int, np.dtype] = {}
        for stage in group.internal_stages():
            if stage not in regions:
                continue
            bid = splan.buffer_of[stage]
            shape = regions[stage].shape()
            old = buf_shape.get(bid)
            if old is None:
                buf_shape[bid] = shape
                buf_dtype[bid] = stage.dtype.np_dtype
            else:
                buf_shape[bid] = tuple(
                    max(a, b) for a, b in zip(old, shape)
                )
        buffers = {
            bid: np.empty(shape, dtype=buf_dtype[bid])
            for bid, shape in buf_shape.items()
        }
        tile_scratch_bytes = sum(b.nbytes for b in buffers.values())

        points = 0
        scratch: dict["Function", tuple[np.ndarray, tuple[int, ...]]] = {}
        reader = self._make_reader(group, input_arrays, arrays, scratch)
        for stage in group.stages:
            region = regions.get(stage)
            if region is None or region.is_empty():
                continue
            if stage in live:
                out = stage_arrays[stage]
                origin = stage.domain_box(bindings).lower()
            else:
                bid = splan.buffer_of[stage]
                buf = buffers[bid]
                view = buf[tuple(slice(0, s) for s in region.shape())]
                out = view
                origin = region.lower()
                scratch[stage] = (view, origin)
            points += evaluate_stage(
                stage, region, reader, out, origin, bindings
            )
            if self.fault_injector is not None:
                self.fault_injector(stage, out)
        return points, tile_scratch_bytes

    # -- diamond-tiled smoother groups (polymg-dtile-opt+) -------------------
    def _execute_group_diamond(
        self,
        group: "Group",
        stage_arrays: dict["Function", np.ndarray],
        input_arrays: dict["Function", np.ndarray],
        arrays: dict[int, np.ndarray],
    ) -> None:
        from ..pluto.executor import execute_smoother_chain

        self.stats.diamond_segments += 1
        bindings = self.bindings
        scratch: dict["Function", tuple[np.ndarray, tuple[int, ...]]] = {}
        reader = self._make_reader(group, input_arrays, arrays, scratch)

        result, points, copy_bytes = execute_smoother_chain(
            group,
            reader,
            bindings,
            conservative_copies=self.config.dtile_conservative_copies,
        )
        self.stats.points_computed += points
        self.stats.copy_bytes += copy_bytes
        final = group.stages[-1]
        out = stage_arrays[final]
        out[...] = result
        if self.fault_injector is not None:
            self.fault_injector(final, out)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary_line(self) -> str:
        """One-line artifact summary for pass records."""
        return (
            f"CompiledPipeline: {len(self.grouping.groups)} groups, "
            f"{len(self._diamond_groups)} diamond"
        )

    def artifact_summary(self) -> dict:
        """Compile-time artifact summary for the cost model and docs
        (distinct from ``self.report``, the per-pass
        :class:`~repro.passes.manager.CompileReport`)."""
        groups = []
        for gi, group in enumerate(self.grouping.groups):
            tile_shape = (
                self.config.tile_shape(group.anchor.ndim)
                if self.config.tile and group.size > 1
                else None
            )
            splan = self.storage.group_scratch(gi)
            groups.append(
                {
                    "stages": [s.name for s in group.stages],
                    "kinds": [s.stage_kind() for s in group.stages],
                    "anchor": group.anchor.name,
                    "live_outs": [s.name for s in group.live_outs()],
                    "tiled": tile_shape is not None,
                    "diamond": gi in self._diamond_groups,
                    "tile_shape": tile_shape,
                    "scratch_buffers": splan.buffer_count(),
                    "scratch_stages": len(splan.buffer_of),
                    "redundancy": (
                        group.redundancy(tile_shape) if tile_shape else 0.0
                    ),
                }
            )
        return {
            "pipeline": self.dag.name,
            "stage_count": self.dag.stage_count(),
            "group_count": len(self.grouping.groups),
            "groups": groups,
            "full_arrays": self.storage.full_arrays_with_reuse,
            "full_arrays_without_reuse": self.storage.full_arrays_without_reuse,
            "full_array_bytes": self.storage.full_array_bytes_with_reuse,
            "full_array_bytes_without_reuse": (
                self.storage.full_array_bytes_without_reuse
            ),
            "scratch_bytes": self.storage.scratch_bytes_with_reuse,
            "scratch_bytes_without_reuse": (
                self.storage.scratch_bytes_without_reuse
            ),
        }
