"""Execution of compiled pipelines (the numpy backend).

A :class:`CompiledPipeline` executes the *exact schedule* produced by
the compiler passes: groups in topological order; overlapped tiles over
each multi-stage group's anchor domain; internal stages into (reused)
scratchpads; live-outs into (reused) full arrays served by the pooled
allocator; arrays freed as soon as their last consumer group finishes
(the generated ``pool_deallocate`` placement of paper 3.2.3).

The backend exists to make every optimization *observable*: outputs are
bit-compared against an independent reference solver in the tests, and
execution statistics (tiles, redundant points, allocation traffic) feed
the machine cost model.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor, wait as futures_wait
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..config import PolyMgConfig
from ..errors import InputShapeError, MissingInputError
from ..ir.domain import Box
from ..lang.types import dtype_of
from .buffers import DirectAllocator, MemoryPool
from .evaluate import evaluate_stage
from .guards import scan_nonfinite
from .registry import NATIVE, PLANNED, TIERS, BackendStats, FallbackPolicy
from .kernels import (
    ExecEnv,
    KernelPlan,
    Workspace,
    build_group_tile_plan,
    build_kernel_plan,
    run_kernel,
    tile_grid,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..ir.dag import PipelineDAG
    from ..lang.function import Function
    from ..passes.grouping import GroupingResult
    from ..passes.groups import Group
    from ..passes.manager import CompileReport
    from ..passes.schedule import PipelineSchedule
    from ..passes.storage import StoragePlan
    from .kernels import GroupPlan, GroupTilePlan

__all__ = ["ExecutionStats", "CompiledPipeline", "DriveSpec"]


@dataclass(frozen=True)
class DriveSpec:
    """Solve-level geometry the whole-solve native driver needs beyond
    the per-cycle call: which input grid is the iterate (ping-ponged
    across cycles), which is the right-hand side (of the residual), and
    the two scalars the in-kernel residual norm uses —
    ``norm_scale = h**(ndim/2)`` and ``inv_h2 = 1/(h*h)``.  Built once
    per solve by :meth:`repro.multigrid.cycles.MultigridPipeline.drive_spec`."""

    iterate: str
    rhs: str
    norm_scale: float
    inv_h2: float


#: once-per-process latch for the flat-counter deprecation notice (one
#: warning total, not one per attribute — the fix is the same either
#: way: read ``stats.tier(<name>)`` instead)
_FLAT_COUNTER_WARNED = False


def _warn_flat_counter(attr: str) -> None:
    global _FLAT_COUNTER_WARNED
    if _FLAT_COUNTER_WARNED:
        return
    _FLAT_COUNTER_WARNED = True
    import warnings

    warnings.warn(
        f"ExecutionStats.{attr} is deprecated; read the per-tier "
        "record via ExecutionStats.tier(<tier name>) instead",
        DeprecationWarning,
        stacklevel=3,
    )


def _reset_flat_counter_warning() -> None:
    """Re-arm the once-per-process latch (test hook)."""
    global _FLAT_COUNTER_WARNED
    _FLAT_COUNTER_WARNED = False


def _tier_field(tier_name: str, attr: str, flat_name: str | None = None):
    """Deprecated flat counter reading/writing through the per-tier
    :class:`~repro.backend.registry.BackendStats` record."""
    deprecated = flat_name if flat_name is not None else attr

    def fget(self):
        _warn_flat_counter(deprecated)
        return getattr(self.tier(tier_name), attr)

    def fset(self, value):
        _warn_flat_counter(deprecated)
        setattr(self.tier(tier_name), attr, value)

    return property(fget, fset)


@dataclass
class ExecutionStats:
    """Counters from one or more ``execute`` calls.

    Backend-specific counters live in per-tier
    :class:`~repro.backend.registry.BackendStats` records keyed by tier
    name on :attr:`tiers`; the historical flat attributes
    (``plan_time_s``, ``kernel_cache_hits``, ``native_*``) remain as
    deprecated read-through properties onto those records.
    """

    executions: int = 0
    groups_executed: int = 0
    tiles_executed: int = 0
    points_computed: int = 0
    ideal_points: int = 0
    scratch_bytes_peak: int = 0
    diamond_segments: int = 0
    copy_bytes: int = 0
    #: bytes held by the persistent per-thread execution arenas (temp
    #: slots + planned scratch buffers), high-water mark
    temp_bytes_peak: int = 0
    #: times the persistent worker pool was reused after creation
    pool_reuse_count: int = 0
    #: per-tier counters, keyed by registry tier name
    tiers: dict[str, BackendStats] = field(default_factory=dict)

    def tier(self, name: str) -> BackendStats:
        """The (lazily created) counter record of one execution tier."""
        record = self.tiers.get(name)
        if record is None:
            record = self.tiers[name] = BackendStats(tier=name)
        return record

    def redundancy(self) -> float:
        if self.ideal_points == 0:
            return 0.0
        return self.points_computed / self.ideal_points - 1.0

    # -- deprecated flat counters (read-through to the tier records) ----
    #: wall time spent building the ahead-of-time kernel plan
    plan_time_s = _tier_field(PLANNED.name, "plan_time_s")
    #: times a kernel plan was inherited from a compile-cache clone
    kernel_cache_hits = _tier_field(
        PLANNED.name, "cache_hits", "kernel_cache_hits"
    )
    #: wall time the native backend spent in the out-of-process C
    #: compile (0.0 on artifact-store hits)
    native_compile_time_s = _tier_field(
        NATIVE.name, "compile_time_s", "native_compile_time_s"
    )
    #: times a native shared object was served without compiling
    native_cache_hits = _tier_field(
        NATIVE.name, "cache_hits", "native_cache_hits"
    )
    #: executes that ran through the native shared object
    native_executions = _tier_field(
        NATIVE.name, "executions", "native_executions"
    )
    #: executes that wanted the native backend but degraded to the
    #: planned numpy path
    native_fallbacks = _tier_field(
        NATIVE.name, "fallbacks", "native_fallbacks"
    )


class CompiledPipeline:
    """A fully scheduled pipeline ready to run on numpy arrays."""

    def __init__(
        self,
        dag: "PipelineDAG",
        config: PolyMgConfig,
        grouping: "GroupingResult",
        schedule: "PipelineSchedule",
        storage: "StoragePlan",
    ) -> None:
        self.dag = dag
        self.config = config
        self.grouping = grouping
        self.schedule = schedule
        self.storage = storage
        self.bindings = dag.param_bindings
        self.allocator = (
            MemoryPool(byte_budget=config.pool_byte_budget)
            if config.pooled_allocation
            else DirectAllocator()
        )
        self.stats = ExecutionStats()
        # per-compile instrumentation, attached by ``compile_pipeline``
        # (None only for hand-constructed pipelines)
        self.report: "CompileReport | None" = None
        # fault-injection hook (repro.verify.faults): when set, called
        # as ``hook(stage, out_array)`` after every stage evaluation
        self.fault_injector = None
        # the registry tier selected by ``config.backend`` (resolved
        # lazily; the config is frozen so it never changes)
        self._backend_obj = None
        # ahead-of-time kernel plan (built by ``plan()``, possibly
        # inherited from a compile-cache clone)
        self._kernel_plan: KernelPlan | None = None
        self._planned = False
        # native JIT build state (repro.backend.native): the build
        # handle, whether its outcome was folded into the stats, and a
        # latch that permanently disables the native path after a
        # runtime failure or verification mismatch
        self._native_handle = None
        self._native_accounted = False
        self._native_disabled: str | None = None
        self._native_incident_logged = False
        # the last crash-class native fault (sandbox kill/quarantine),
        # held for the resilience layer to consume: the fallback output
        # is correct, but the rung's circuit breaker must still hear
        # about the crash
        self._native_fault_pending = None
        # persistent worker pool + per-thread workspaces
        self._pool: ThreadPoolExecutor | None = None
        self._tls = threading.local()
        self._temp_bytes = 0
        self._temp_lock = threading.Lock()
        # hoisted tiling geometry for the *unplanned* tiled path
        self._tile_plans: dict[int, "GroupTilePlan"] = {}
        self._plan_array_lifetimes()
        self._plan_diamond_segments()

    # ------------------------------------------------------------------
    # compile-time planning helpers
    # ------------------------------------------------------------------
    def _plan_array_lifetimes(self) -> None:
        """First-definition and last-use group index per array id."""
        alloc_at: dict[int, int] = {}
        free_after: dict[int, int] = {}
        for gi, group in enumerate(self.grouping.groups):
            for stage in group.live_outs():
                aid = self.storage.array_of[stage]
                alloc_at.setdefault(aid, gi)
                last = gi
                for consumer in self.dag.consumers_of(stage):
                    cg = self.grouping.group_of[consumer]
                    last = max(last, self.schedule.time_of_group(cg))
                if self.dag.is_output(stage):
                    last = len(self.grouping.groups)  # never freed
                free_after[aid] = max(free_after.get(aid, -1), last)
        self._alloc_at = alloc_at
        self._free_after = free_after

    def _plan_diamond_segments(self) -> None:
        """Identify smoother chains to run under diamond tiling
        (``polymg-dtile-opt+``): maximal runs of same-TStencil steps that
        form a whole group."""
        self._diamond_groups: set[int] = set()
        if not self.config.diamond_smoothing:
            return
        for gi, group in enumerate(self.grouping.groups):
            stages = group.stages
            if len(stages) < 2:
                continue
            t0 = getattr(stages[0], "tstencil", None)
            if t0 is None:
                continue
            if all(getattr(s, "tstencil", None) is t0 for s in stages):
                self._diamond_groups.add(gi)

    # ------------------------------------------------------------------
    # ahead-of-time kernel planning
    # ------------------------------------------------------------------
    def plan(self) -> "KernelPlan | None":
        """Build (or return the already built/inherited) ahead-of-time
        kernel plan.

        Idempotent; called eagerly by ``compile_pipeline`` and lazily by
        the first ``execute`` on hand-constructed pipelines.  Returns
        ``None`` when planning is disabled (``config.kernel_plan``
        False), the arena would exceed ``config.temp_arena_limit``, or
        the pipeline uses a construct the planner cannot lower — in all
        of which cases execution falls back to the unplanned
        interpreter.
        """
        if self._planned:
            return self._kernel_plan
        t0 = time.perf_counter()
        plan = None
        if self.config.kernel_plan and self._backend().plans_kernels:
            try:
                plan = build_kernel_plan(self)
            except Exception:
                # any construct the planner cannot lower degrades to the
                # (always correct) tree-walking interpreter; the
                # construct's own errors still surface there
                plan = None
        elapsed = time.perf_counter() - t0
        self._kernel_plan = plan
        self._planned = True
        self.stats.tier(PLANNED.name).plan_time_s += elapsed
        if self.report is not None:
            self.report.plan_time_s += elapsed
        return plan

    def _inherit_plan(self, other: "CompiledPipeline") -> None:
        """Adopt another executor's kernel plan (compile-cache clone
        path).  The plan is immutable and safely shared; workspaces and
        pools are per-executor."""
        if not other._planned:
            return
        self._kernel_plan = other._kernel_plan
        self._planned = True
        if self._kernel_plan is not None:
            self.stats.tier(PLANNED.name).cache_hits += 1

    # ------------------------------------------------------------------
    # native JIT backend plumbing
    # ------------------------------------------------------------------
    def start_native_build(self, background: bool = True):
        """Kick off (once) the background JIT build when the config
        selects the native backend; returns the build handle or
        ``None``.  Called eagerly by ``compile_pipeline`` so the
        toolchain overlaps the first numpy-executed cycles."""
        if not self._backend().jit_build:
            return None
        if self._native_handle is None:
            from .native import start_native_build

            self._native_handle = start_native_build(
                self, background=background
            )
        return self._native_handle

    def _inherit_native(self, other: "CompiledPipeline") -> None:
        """Adopt another executor's native build (compile-cache clone
        path).  The runner wraps an immutable shared object guarded by
        a per-module lock, so sharing it is safe; a served build counts
        as a native cache hit for the clone."""
        if other._native_handle is None:
            return
        if self._native_handle is other._native_handle:
            # every native-family tier adopts the same shared artifact
            # (the driver tier rides the native build); charge one hit
            return
        self._native_handle = other._native_handle
        self._native_disabled = other._native_disabled
        # the clone did not pay the compile, so only the hit is charged
        self._native_accounted = True
        if self._native_handle.ready_runner() is not None:
            self.stats.tier(NATIVE.name).cache_hits += 1

    def ensure_native(self, timeout: float | None = None):
        """Start the native build if needed, wait up to ``timeout`` for
        it, and return the ready :class:`NativeRunner` or ``None``.
        Used by benchmarks and the autotuner's timed compile region."""
        handle = self.start_native_build()
        if handle is None:
            return None
        handle.wait(timeout)
        self._absorb_native_result()
        if self._native_disabled is not None:
            return None
        return handle.ready_runner()

    def _absorb_native_result(self) -> None:
        """Fold a finished build's outcome into the stats/report
        exactly once per executor."""
        handle = self._native_handle
        if handle is None or handle.state == "pending":
            return
        if self._native_accounted:
            return
        self._native_accounted = True
        self.stats.tier(NATIVE.name).compile_time_s += handle.compile_time_s
        backend = self._backend()
        if getattr(backend, "whole_solve", False):
            # the artifact carries the whole-solve driver entry; its
            # build time is visible under the driver tier too, without
            # disturbing the native bucket the flat counters read
            self.stats.tier(
                backend.name
            ).driver_compile_time_s += handle.compile_time_s
        if self.report is not None:
            self.report.native_compile_time_s += handle.compile_time_s
        if handle.info.get("cache_hit"):
            self.stats.tier(NATIVE.name).cache_hits += 1
        if handle.error is not None:
            self._disable_native("build-failed", handle.error)

    def _disable_native(self, action: str, error: Exception) -> None:
        """Latch the native path off and log one structured incident —
        the fallback must be visible, never a silent downgrade."""
        self._native_disabled = f"{action}: {error}"
        from ..errors import (
            NativeCrashError,
            NativeHangError,
            NativeQuarantinedError,
        )

        if isinstance(
            error,
            (NativeCrashError, NativeHangError, NativeQuarantinedError),
        ):
            self._native_fault_pending = error
        if not self._native_incident_logged:
            self._native_incident_logged = True
            FallbackPolicy().fault(
                error,
                kind="native-fallback",
                action=action,
                report=self.report,
                fallback=TIERS.fallback_for(NATIVE).name,
                pipeline=self.dag.name,
            )

    def consume_native_fault(self):
        """Pop the pending crash-class native fault (or ``None``).

        The sandbox turns a kernel crash into a correct fallback-served
        execute, so the resilience layer's attempt *succeeds* — this
        hook lets it still demote the rung's circuit breaker for the
        crash that happened along the way."""
        fault, self._native_fault_pending = (
            self._native_fault_pending, None,
        )
        return fault

    def _native_tier_stats(self):
        """The serving native-family tier's stats bucket: the driver
        tier when the config selects it, else the per-cycle native
        tier — so executions/fallbacks land on the tier that actually
        served (what the registry-parity and health plumbing read)."""
        backend = self._backend()
        name = backend.name if backend.jit_build else NATIVE.name
        return self.stats.tier(name)

    def _native_runner_for_execute(self):
        """The runner to use for this execute, or ``None`` (fall back
        to the numpy backends).  Never blocks on a pending build."""
        if self.fault_injector is not None:
            # per-stage hook points only exist in the interpreter
            self._native_tier_stats().fallbacks += 1
            return None
        handle = self.start_native_build()
        if handle is None:  # pragma: no cover - guarded by tier dispatch
            return None
        self._absorb_native_result()
        if self._native_disabled is not None:
            self._native_tier_stats().fallbacks += 1
            return None
        runner = handle.ready_runner()
        if runner is None:  # build still in flight
            self._native_tier_stats().fallbacks += 1
            return None
        return runner

    def _native_thread_count(self) -> int:
        """OpenMP team size for native-tier invocations:
        ``native_threads`` when set, else ``num_threads``."""
        override = getattr(self.config, "native_threads", None)
        return override if override is not None else self.config.num_threads

    def _execute_native(
        self,
        runner,
        input_arrays: dict["Function", np.ndarray],
    ) -> dict[str, np.ndarray]:
        """One zero-copy invocation of the shared object."""
        outputs = runner.run(input_arrays, self._native_thread_count())
        self._native_tier_stats().executions += 1
        if self.config.runtime_guards:
            for name, arr in outputs.items():
                scan_nonfinite(name, arr, pipeline=self.dag.name)
        for stage in self.dag.stages:
            self.stats.ideal_points += stage.domain_box(
                self.bindings
            ).volume()
        return outputs

    def drive(
        self,
        inputs: dict[str, np.ndarray],
        *,
        max_cycles: int,
        tol: float,
        spec: DriveSpec,
    ):
        """One whole-solve driver burst: up to ``max_cycles`` multigrid
        cycles (with the in-kernel ``norm < tol`` convergence test) in
        a single native invocation with persistent OpenMP threads.

        Returns a :class:`~repro.backend.native.DriveResult`, or
        ``None`` whenever the driver cannot serve — tier not
        whole-solve-capable, build pending/failed/latched-off, artifact
        without the driver entry, fault injector attached, or an
        unverified runner under ``verify_level="full"`` — so the caller
        runs the same attempt per-cycle instead.  A crash-class native
        fault latches the tier off exactly like a per-cycle fault and
        also answers ``None``.  Never mutates the caller's arrays."""
        backend = self._backend()
        if not getattr(backend, "whole_solve", False):
            return None
        runner = self._native_runner_for_execute()
        if runner is None or not getattr(runner, "can_drive", False):
            return None
        if self.config.verify_level == "full" and not runner.verified:
            # the first result must cross-check against the numpy
            # tiers; only the per-cycle path hosts that comparison
            return None
        input_arrays = self._validated_input_arrays(inputs)
        names = [g.name for g in self.dag.inputs]
        try:
            iterate_index = names.index(spec.iterate)
            rhs_index = names.index(spec.rhs)
        except ValueError:
            return None
        from ..errors import NativeBackendError

        stats = self.stats.tier(backend.name)
        try:
            result = runner.drive(
                input_arrays,
                self._native_thread_count(),
                max_cycles=max_cycles,
                iterate_index=iterate_index,
                rhs_index=rhs_index,
                tol=tol,
                norm_scale=spec.norm_scale,
                inv_h2=spec.inv_h2,
            )
        except NativeBackendError as exc:
            from ..errors import NativeCrashError, NativeHangError

            stats.fallbacks += 1
            action = (
                "crash-isolated"
                if isinstance(exc, (NativeCrashError, NativeHangError))
                else "runtime-rejected"
            )
            self._disable_native(action, exc)
            return None
        self.stats.executions += 1
        stats.executions += 1
        stats.hook_returns += 1
        stats.cycles_in_native += result.cycles
        if self.config.runtime_guards:
            for name, arr in result.outputs.items():
                scan_nonfinite(name, arr, pipeline=self.dag.name)
        for stage in self.dag.stages:
            self.stats.ideal_points += result.cycles * (
                stage.domain_box(self.bindings).volume()
            )
        return result

    def _workspace(self) -> Workspace:
        """The calling thread's persistent execution arena."""
        ws = getattr(self._tls, "ws", None)
        if ws is None or ws.plan is not self._kernel_plan:
            ws = Workspace(self._kernel_plan, self._account_temp_bytes)
            self._tls.ws = ws
        return ws

    def _account_temp_bytes(self, nbytes: int) -> None:
        with self._temp_lock:
            self._temp_bytes += nbytes
            if self._temp_bytes > self.stats.temp_bytes_peak:
                self.stats.temp_bytes_peak = self._temp_bytes

    # ------------------------------------------------------------------
    # persistent worker pool
    # ------------------------------------------------------------------
    def _executor_pool(self) -> ThreadPoolExecutor:
        """The pipeline's lazily created worker pool, reused across
        groups and cycles (only ever acquired from the driving
        thread)."""
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.config.num_threads
            )
            return self._pool
        self.stats.pool_reuse_count += 1
        return self._pool

    def _pool_map(self, pool: ThreadPoolExecutor, fn, items) -> list:
        """``pool.map`` that never leaks stragglers: on any failure,
        unstarted tasks are cancelled and running ones are awaited
        *before* the exception propagates, so no worker can touch
        pooled arrays after the caller's cleanup deallocates them."""
        futures = [pool.submit(fn, item) for item in items]
        try:
            return [f.result() for f in futures]
        except BaseException:
            for f in futures:
                f.cancel()
            futures_wait(futures)
            raise

    def close(self) -> None:
        """Shut down the persistent worker pool and drop the per-thread
        execution arenas.  Idempotent; the pipeline remains usable (the
        pool and arenas are recreated lazily on the next execute)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        if self._native_handle is not None:
            # bounded: the build thread is a daemon, so an unfinished
            # compile cannot block shutdown — but give a finished one a
            # moment to land so its outcome is not silently dropped
            self._native_handle.join(timeout=0.5)
        self._tls = threading.local()
        with self._temp_lock:
            self._temp_bytes = 0

    def __enter__(self) -> "CompiledPipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=False)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, inputs: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Run one pipeline invocation (e.g. one multigrid cycle).

        Validates the inputs, then dispatches through the registry tier
        selected by ``config.backend``; a tier that cannot serve the
        invocation (pending native build, fault-injection hook, no
        kernel plan) delegates down its registry fallback edge, with
        every downgrade counted and recorded.
        """
        self.stats.executions += 1
        input_arrays = self._validated_input_arrays(inputs)
        return self._backend().run(self, input_arrays)

    def _validated_input_arrays(
        self, inputs: dict[str, np.ndarray]
    ) -> dict["Function", np.ndarray]:
        """Shape-check the caller's input dict against the compiled
        geometry; returns it keyed by input grid."""
        dag = self.dag
        input_arrays: dict["Function", np.ndarray] = {}
        for grid in dag.inputs:
            if grid.name not in inputs:
                raise MissingInputError(
                    f"missing input {grid.name!r}",
                    pipeline=dag.name,
                    provided=sorted(inputs),
                )
            arr = np.asarray(inputs[grid.name])
            expected = grid.domain_box(self.bindings).shape()
            if arr.shape != expected:
                raise InputShapeError(
                    f"input {grid.name!r} has shape {arr.shape}, expected "
                    f"{expected}",
                    pipeline=dag.name,
                )
            input_arrays[grid] = arr
        return input_arrays

    def _backend(self):
        """The registry tier selected by ``config.backend``."""
        backend = self._backend_obj
        if backend is None:
            backend = self._backend_obj = TIERS.resolve(
                self.config.backend
            )
        return backend

    def _execute_numpy(
        self,
        input_arrays: dict["Function", np.ndarray],
        plan: "KernelPlan | None",
    ) -> dict[str, np.ndarray]:
        """The numpy group loop: planned kernels where ``plan`` covers
        a group, the tiled/straight interpreter elsewhere (``plan``
        ``None`` runs everything through the interpreter — the
        fault-injection and verification paths need its per-stage hook
        points)."""
        dag = self.dag
        arrays: dict[int, np.ndarray] = {}
        outputs: dict[str, np.ndarray] = {}

        output_ids = {
            self.storage.array_of[out]
            for out in dag.outputs
            if out in self.storage.array_of
        }

        def ensure_array(aid: int) -> np.ndarray:
            if aid not in arrays:
                shape = self.storage.array_shapes[aid]
                npdt = dtype_of(self.storage.array_dtypes[aid]).np_dtype
                if aid in output_ids:
                    # program outputs are owned by the caller, never by
                    # the pool (paper 3.2.2: inputs/outputs are not
                    # reuse buffers)
                    arrays[aid] = np.empty(shape, dtype=npdt)
                else:
                    arrays[aid] = self.allocator.allocate(shape, npdt)
            return arrays[aid]

        try:
            for gi, group in enumerate(self.grouping.groups):
                self.stats.groups_executed += 1
                # materialize live-out arrays of this group
                stage_arrays: dict["Function", np.ndarray] = {}
                for stage in group.live_outs():
                    aid = self.storage.array_of[stage]
                    full = ensure_array(aid)
                    shape = stage.domain_box(self.bindings).shape()
                    view = full[tuple(slice(0, s) for s in shape)]
                    stage_arrays[stage] = view
                    if dag.is_output(stage):
                        outputs[stage.name] = view

                if gi in self._diamond_groups:
                    self._execute_group_diamond(
                        group, stage_arrays, input_arrays, arrays
                    )
                elif plan is not None and gi in plan.groups:
                    self._execute_group_planned(
                        plan.groups[gi], stage_arrays, input_arrays,
                        arrays,
                    )
                elif self.config.tile and group.size > 1:
                    self._execute_group_tiled(
                        gi, group, stage_arrays, input_arrays, arrays
                    )
                else:
                    self._execute_group_straight(
                        group, stage_arrays, input_arrays, arrays
                    )

                if self.config.runtime_guards:
                    for stage, view in stage_arrays.items():
                        scan_nonfinite(
                            stage.name, view, pipeline=dag.name, group=gi
                        )

                # free arrays whose last consumer group has completed
                for aid, last in self._free_after.items():
                    if last == gi and aid in arrays:
                        self.allocator.deallocate(arrays.pop(aid))
        except BaseException:
            # an aborted invocation must not strand pooled arrays: every
            # still-lent buffer goes back to the allocator so the
            # resilience layer's end-of-solve leak accounting only
            # flags genuine leaks
            for aid in list(arrays):
                if aid not in output_ids:
                    self.allocator.deallocate(arrays.pop(aid))
            raise

        # ideal (non-redundant) work for redundancy accounting
        for stage in dag.stages:
            self.stats.ideal_points += stage.domain_box(
                self.bindings
            ).volume()
        return outputs

    def _finish_native_cross_check(
        self,
        runner,
        native_out: dict[str, np.ndarray],
        reference: dict[str, np.ndarray],
    ) -> None:
        """``verify_level=full``: compare the native invocation against
        the numpy backends' outputs; a match marks the runner healthy,
        a mismatch latches the native path off with an incident."""
        from ..errors import NativeVerificationError

        for name, ref in reference.items():
            nat = native_out.get(name)
            if nat is None or nat.shape != ref.shape or not np.allclose(
                nat, ref, rtol=1e-9, atol=1e-11, equal_nan=True
            ):
                delta = (
                    float(np.max(np.abs(nat - ref)))
                    if nat is not None and nat.shape == ref.shape
                    else None
                )
                err = NativeVerificationError(
                    "native output diverged from the numpy backend in "
                    "the one-cycle cross-check",
                    pipeline=self.dag.name,
                    output=name,
                    max_abs_delta=delta,
                )
                self._native_tier_stats().fallbacks += 1
                self._disable_native("verify-mismatch", err)
                return
        runner.verified = True

    # -- readers -----------------------------------------------------------
    def _make_reader(
        self,
        group: "Group",
        input_arrays: dict["Function", np.ndarray],
        arrays: dict[int, np.ndarray],
        scratch: dict["Function", tuple[np.ndarray, tuple[int, ...]]],
    ):
        dag = self.dag
        storage = self.storage
        bindings = self.bindings

        def read(func: "Function", box: Box) -> np.ndarray:
            if func.is_input:
                arr = input_arrays[func]
                return arr[box.slices(origin=(0,) * box.ndim)]
            if func in scratch:
                arr, origin = scratch[func]
                return arr[box.slices(origin=origin)]
            aid = storage.array_of[func]
            full = arrays[aid]
            dom = func.domain_box(bindings)
            view = full[tuple(slice(0, s) for s in dom.shape())]
            return view[box.slices(origin=dom.lower())]

        return read

    # -- straight (untiled) execution ---------------------------------------
    def _execute_group_straight(
        self,
        group: "Group",
        stage_arrays: dict["Function", np.ndarray],
        input_arrays: dict["Function", np.ndarray],
        arrays: dict[int, np.ndarray],
    ) -> None:
        bindings = self.bindings
        scratch: dict["Function", tuple[np.ndarray, tuple[int, ...]]] = {}
        reader = self._make_reader(group, input_arrays, arrays, scratch)
        live = set(group.live_outs())
        for stage in group.stages:
            dom = stage.domain_box(bindings)
            if stage in live:
                out = stage_arrays[stage]
                origin = dom.lower()
            else:
                out = np.empty(dom.shape(), dtype=stage.dtype.np_dtype)
                origin = dom.lower()
                scratch[stage] = (out, origin)
            self.stats.points_computed += evaluate_stage(
                stage, dom, reader, out, origin, bindings
            )
            if self.fault_injector is not None:
                self.fault_injector(stage, out)

    # -- planned execution --------------------------------------------------
    def _execute_group_planned(
        self,
        gp: "GroupPlan",
        stage_arrays: dict["Function", np.ndarray],
        input_arrays: dict["Function", np.ndarray],
        arrays: dict[int, np.ndarray],
    ) -> None:
        if not gp.tiled:
            env = ExecEnv(
                input_arrays, arrays, stage_arrays, self._workspace()
            )
            for kernel in gp.kernels:
                self.stats.points_computed += run_kernel(kernel, env)
            return

        tile_kernels = gp.tile_kernels

        def run_tile(kernels) -> int:
            env = ExecEnv(
                input_arrays, arrays, stage_arrays, self._workspace()
            )
            return sum(run_kernel(k, env) for k in kernels)

        if self.config.num_threads > 1 and len(tile_kernels) > 1:
            # overlapped tiles are independent (communication-avoiding):
            # writes to live-out overlap zones are redundant writes of
            # identical values, so a thread pool over tiles is safe
            pool = self._executor_pool()
            points = self._pool_map(pool, run_tile, tile_kernels)
        else:
            points = [run_tile(kernels) for kernels in tile_kernels]
        self.stats.tiles_executed += len(tile_kernels)
        self.stats.points_computed += sum(points)
        scratch_bytes = gp.tile_plan.tile_scratch_bytes
        if scratch_bytes:
            peak = max(scratch_bytes)
            if peak > self.stats.scratch_bytes_peak:
                self.stats.scratch_bytes_peak = peak

    # -- overlapped-tile execution (unplanned fallback) ---------------------
    def _tile_grid(self, anchor_dom: Box, tile_shape) -> list[Box]:
        return tile_grid(anchor_dom, tile_shape)

    def _group_tile_plan(self, gi: int, group: "Group") -> "GroupTilePlan":
        """Hoisted (and memoized) tiling geometry of one group: tile
        grid, per-tile regions, and scratch shape reductions are paid
        once per compile instead of once per cycle."""
        tp = self._tile_plans.get(gi)
        if tp is None:
            anchor_dom = group.anchor.domain_box(self.bindings)
            tile_shape = self.config.tile_shape(group.anchor.ndim)
            tp = build_group_tile_plan(
                group, self.storage.group_scratch(gi), anchor_dom,
                tile_shape,
            )
            self._tile_plans[gi] = tp
        return tp

    def _execute_group_tiled(
        self,
        gi: int,
        group: "Group",
        stage_arrays: dict["Function", np.ndarray],
        input_arrays: dict["Function", np.ndarray],
        arrays: dict[int, np.ndarray],
    ) -> None:
        live = set(group.live_outs())
        splan = self.storage.group_scratch(gi)
        tp = self._group_tile_plan(gi, group)

        def run_tile(ti: int) -> tuple[int, int]:
            return self._execute_one_tile(
                group, tp, ti, splan, live, stage_arrays, input_arrays,
                arrays,
            )

        if self.config.num_threads > 1 and len(tp.tiles) > 1:
            # overlapped tiles are independent (communication-avoiding):
            # writes to live-out overlap zones are redundant writes of
            # identical values, so a thread pool over tiles is safe
            pool = self._executor_pool()
            results = self._pool_map(pool, run_tile, range(len(tp.tiles)))
        else:
            results = [run_tile(ti) for ti in range(len(tp.tiles))]
        for points, scratch_bytes in results:
            self.stats.tiles_executed += 1
            self.stats.points_computed += points
            self.stats.scratch_bytes_peak = max(
                self.stats.scratch_bytes_peak, scratch_bytes
            )

    def _execute_one_tile(
        self,
        group: "Group",
        tp: "GroupTilePlan",
        ti: int,
        splan,
        live: set,
        stage_arrays: dict,
        input_arrays: dict,
        arrays: dict,
    ) -> tuple[int, int]:
        """Execute one overlapped tile; returns (points, scratch bytes)."""
        bindings = self.bindings
        regions = tp.regions[ti]
        buffers = {
            bid: np.empty(shape, dtype=tp.buf_dtypes[bid])
            for bid, shape in tp.buf_shapes[ti].items()
        }

        points = 0
        scratch: dict["Function", tuple[np.ndarray, tuple[int, ...]]] = {}
        reader = self._make_reader(group, input_arrays, arrays, scratch)
        for stage in group.stages:
            region = regions.get(stage)
            if region is None or region.is_empty():
                continue
            if stage in live:
                out = stage_arrays[stage]
                origin = stage.domain_box(bindings).lower()
            else:
                bid = splan.buffer_of[stage]
                buf = buffers[bid]
                view = buf[tuple(slice(0, s) for s in region.shape())]
                out = view
                origin = region.lower()
                scratch[stage] = (view, origin)
            points += evaluate_stage(
                stage, region, reader, out, origin, bindings
            )
            if self.fault_injector is not None:
                self.fault_injector(stage, out)
        return points, tp.tile_scratch_bytes[ti]

    # -- diamond-tiled smoother groups (polymg-dtile-opt+) -------------------
    def _execute_group_diamond(
        self,
        group: "Group",
        stage_arrays: dict["Function", np.ndarray],
        input_arrays: dict["Function", np.ndarray],
        arrays: dict[int, np.ndarray],
    ) -> None:
        from ..pluto.executor import execute_smoother_chain

        self.stats.diamond_segments += 1
        bindings = self.bindings
        scratch: dict["Function", tuple[np.ndarray, tuple[int, ...]]] = {}
        reader = self._make_reader(group, input_arrays, arrays, scratch)

        result, points, copy_bytes = execute_smoother_chain(
            group,
            reader,
            bindings,
            conservative_copies=self.config.dtile_conservative_copies,
        )
        self.stats.points_computed += points
        self.stats.copy_bytes += copy_bytes
        final = group.stages[-1]
        out = stage_arrays[final]
        out[...] = result
        if self.fault_injector is not None:
            self.fault_injector(final, out)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary_line(self) -> str:
        """One-line artifact summary for pass records."""
        return (
            f"CompiledPipeline: {len(self.grouping.groups)} groups, "
            f"{len(self._diamond_groups)} diamond"
        )

    def artifact_summary(self) -> dict:
        """Compile-time artifact summary for the cost model and docs
        (distinct from ``self.report``, the per-pass
        :class:`~repro.passes.manager.CompileReport`)."""
        groups = []
        for gi, group in enumerate(self.grouping.groups):
            tile_shape = (
                self.config.tile_shape(group.anchor.ndim)
                if self.config.tile and group.size > 1
                else None
            )
            splan = self.storage.group_scratch(gi)
            groups.append(
                {
                    "stages": [s.name for s in group.stages],
                    "kinds": [s.stage_kind() for s in group.stages],
                    "anchor": group.anchor.name,
                    "live_outs": [s.name for s in group.live_outs()],
                    "tiled": tile_shape is not None,
                    "diamond": gi in self._diamond_groups,
                    "tile_shape": tile_shape,
                    "scratch_buffers": splan.buffer_count(),
                    "scratch_stages": len(splan.buffer_of),
                    "redundancy": (
                        group.redundancy(tile_shape) if tile_shape else 0.0
                    ),
                }
            )
        return {
            "pipeline": self.dag.name,
            "stage_count": self.dag.stage_count(),
            "group_count": len(self.grouping.groups),
            "groups": groups,
            "full_arrays": self.storage.full_arrays_with_reuse,
            "full_arrays_without_reuse": self.storage.full_arrays_without_reuse,
            "full_array_bytes": self.storage.full_array_bytes_with_reuse,
            "full_array_bytes_without_reuse": (
                self.storage.full_array_bytes_without_reuse
            ),
            "scratch_bytes": self.storage.scratch_bytes_with_reuse,
            "scratch_bytes_without_reuse": (
                self.storage.scratch_bytes_without_reuse
            ),
        }
