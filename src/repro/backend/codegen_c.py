"""C/OpenMP code emitter (paper Figure 8, section 3.2.5).

Emits, for a compiled pipeline, the C code PolyMG would generate:

* a pipeline function taking the parameters, input grids, and a
  reference to the output array,
* ``pool_allocate``/``pool_deallocate`` calls for live-out full arrays
  placed at first definition / after last use,
* one ``#pragma omp parallel for schedule(static) collapse(d)`` tile
  loop nest per fused group (collapse depth = number of tiled
  dimensions, determined the way section 3.2.5 describes),
* constant-size scratchpad declarations sunk inside the tile loop (one
  per *reused* buffer, annotated with the users it serves — exactly the
  ``/* users: [...] */`` comments of Figure 8),
* per-stage loop nests with clamped tile bounds hoisted into ``const``
  temporaries and ``PMG_IVDEP``-annotated innermost loops.

Two emission modes share one emitter:

* :func:`generate_c` — the Figure-8 artifact: the generated
  lines-of-code column of Table 3 is measured on it, the structural
  tests assert its shape, and the smoke test compiles it with
  ``-Wall -Wextra -Werror``;
* :func:`generate_native_c` — the same pipeline body plus a C ABI
  entry point (``polymg_run``) taking pointer/shape/stride descriptors
  for every input and live-out, validated against the geometry baked
  at compile time.  :mod:`repro.backend.native` compiles this into a
  shared object and invokes it zero-copy on numpy buffers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..lang.expr import (
    BinOp,
    Call,
    Case,
    Condition,
    Const,
    Expr,
    IndexExpr,
    Maximum,
    Minimum,
    Ref,
    Select,
    UnOp,
    VarExpr,
)
from ..lang.sampling import Interp

if TYPE_CHECKING:  # pragma: no cover
    from ..backend.executor import CompiledPipeline
    from ..lang.function import Function

__all__ = [
    "generate_c",
    "generate_native_c",
    "generated_loc",
    "POOL_RUNTIME",
    "NATIVE_ENTRY_NAME",
    "DRIVER_ENTRY_NAME",
    "driver_emitted",
]

#: exported symbol name of the native ABI entry point
NATIVE_ENTRY_NAME = "polymg_run"

#: exported symbol name of the whole-solve driver entry point
DRIVER_ENTRY_NAME = "polymg_drive"


def driver_emitted(compiled: "CompiledPipeline") -> bool:
    """Whether the native translation unit for this pipeline carries the
    whole-solve ``polymg_drive`` entry.  The driver ping-pongs a single
    iterate grid through the pipeline and measures the interior defect
    of its output, so it is emitted exactly for single-output pipelines
    whose output grid has a non-empty interior (every dimension at
    least one boundary layer around one interior point); callers use
    this instead of probing the shared object for the symbol."""
    dag = compiled.dag
    if len(dag.outputs) != 1:
        return False
    shape = dag.outputs[0].domain_box(compiled.bindings).shape()
    return len(shape) >= 1 and all(s >= 3 for s in shape)

POOL_RUNTIME = """\
/* pooled memory allocator (paper section 3.2.3) */
#include <stdlib.h>
#include <string.h>

#define POOL_MAX 256
static void *pool_ptrs[POOL_MAX];
static size_t pool_sizes[POOL_MAX];
static int pool_free[POOL_MAX];
static int pool_count = 0;

static inline void *pool_allocate(size_t bytes) {
  int best = -1;
  for (int i = 0; i < pool_count; i++) {
    if (pool_free[i] && pool_sizes[i] >= bytes &&
        (best < 0 || pool_sizes[i] < pool_sizes[best]))
      best = i;
  }
  if (best >= 0) { pool_free[best] = 0; return pool_ptrs[best]; }
  void *p = malloc(bytes);
  if (p && pool_count < POOL_MAX) {
    pool_ptrs[pool_count] = p;
    pool_sizes[pool_count] = bytes;
    pool_free[pool_count] = 0;
    pool_count++;
  }
  return p;
}

static inline void pool_deallocate(void *p) {
  for (int i = 0; i < pool_count; i++)
    if (pool_ptrs[i] == p) { pool_free[i] = 1; return; }
  free(p);
}
"""

# portable innermost-loop vectorization hint: `#pragma ivdep` is an
# unknown pragma under gcc -Wall -Werror, so the emitted code carries a
# compiler-dispatched macro instead
IVDEP_MACRO = """\
#if defined(__clang__)
#define PMG_IVDEP _Pragma("clang loop vectorize(enable)")
#elif defined(__GNUC__)
#define PMG_IVDEP _Pragma("GCC ivdep")
#else
#define PMG_IVDEP
#endif
"""

# numpy expression functions whose C spelling differs (``abs`` on a
# double operand must be ``fabs``; everything else matches <math.h>)
_C_FN_NAMES = {"abs": "fabs"}

# Whole-solve driver support runtime.  The driver's in-kernel residual
# norm must be bitwise identical to the numpy norm the per-cycle path
# computes in Python (repro.multigrid.kernels.norm_residual), so the
# supervisor's convergence/stagnation decisions are invariant to which
# tier served a cycle:
#
# * ``pmg_pairwise`` replicates numpy's pairwise summation over a
#   contiguous float64 buffer structurally (naive under 8, an
#   8-accumulator block up to 128, recursive halving rounded down to a
#   multiple of 8 above) — the same sequence of IEEE additions in the
#   same order.
# * FP contraction is pinned off for the residual helpers
#   (``PMG_NOCONTRACT``): ``-O3 -march=native`` would otherwise fuse
#   the center-coefficient multiply-add into an FMA, which rounds once
#   where numpy's per-operation arithmetic rounds twice.
DRIVER_RUNTIME = """\
/* ---- whole-solve driver runtime (repro.backend.native) ---- */
#if defined(__clang__)
#define PMG_NOCONTRACT
#else
#define PMG_NOCONTRACT __attribute__((optimize("fp-contract=off")))
#endif

/* structural replica of numpy's pairwise float64 summation */
static PMG_NOCONTRACT double pmg_pairwise(const double *a, int64_t n) {
#if defined(__clang__)
#pragma clang fp contract(off)
#endif
  if (n < 8) {
    double res = 0.0;
    for (int64_t i = 0; i < n; i++) res += a[i];
    return res;
  }
  if (n <= 128) {
    double r0 = a[0], r1 = a[1], r2 = a[2], r3 = a[3];
    double r4 = a[4], r5 = a[5], r6 = a[6], r7 = a[7];
    int64_t i;
    for (i = 8; i < n - (n % 8); i += 8) {
      r0 += a[i + 0]; r1 += a[i + 1]; r2 += a[i + 2]; r3 += a[i + 3];
      r4 += a[i + 4]; r5 += a[i + 5]; r6 += a[i + 6]; r7 += a[i + 7];
    }
    double res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7));
    for (; i < n; i++) res += a[i];
    return res;
  }
  {
    int64_t n2 = n / 2;
    n2 -= n2 % 8;
    return pmg_pairwise(a, n2) + pmg_pairwise(a + n2, n - n2);
  }
}
"""


def _offset(base: str, k: int) -> str:
    """Render ``base + k`` with normalized sign."""
    if k == 0:
        return base
    if k < 0:
        return f"{base} - {-k}"
    return f"{base} + {k}"


class _Emitter:
    def __init__(
        self, compiled: "CompiledPipeline", native: bool = False
    ) -> None:
        self.compiled = compiled
        self.native = native
        #: when True, stage loops are emitted as orphaned ``omp for``
        #: worksharing constructs (binding to the driver's enclosing
        #: persistent ``omp parallel`` team) instead of standalone
        #: ``omp parallel for`` regions, and pool traffic is funneled
        #: through ``single``/``copyprivate``
        self.worksharing = False
        self.lines: list[str] = []
        self.indent = 0
        self.array_names: dict[int, str] = {}
        self.stage_store: dict["Function", tuple[str, str]] = {}
        # (array-name, kind) where kind in {input, array, scratch}
        self.scratch_shape: dict["Function", tuple[int, ...]] = {}
        self.scratch_origin: dict["Function", tuple[str, ...]] = {}

    @property
    def driver(self) -> bool:
        return self.native and driver_emitted(self.compiled)

    # -- OpenMP emission --------------------------------------------------
    def _proc_bind(self) -> str:
        """``proc_bind`` clause from the thread-affinity knob, rendered
        with a leading space (empty for the default ``none``)."""
        affinity = getattr(self.compiled.config, "native_affinity", "none")
        if affinity == "compact":
            return " proc_bind(close)"
        if affinity == "scatter":
            return " proc_bind(spread)"
        return ""

    def omp_loop_pragma(self, tail: str) -> str:
        """A stage loop's worksharing pragma: a fresh parallel region in
        per-cycle mode, an orphaned ``for`` (binding to the driver's
        persistent team) in worksharing mode."""
        if self.worksharing:
            return f"#pragma omp for {tail}"
        return f"#pragma omp parallel for {tail}{self._proc_bind()}"

    def emit_pool_alloc(self, name: str, elems) -> None:
        """Pool-allocate ``name`` (with the native failure check).  In
        worksharing mode exactly one thread of the enclosing team calls
        the allocator and ``copyprivate`` broadcasts the pointer, so
        every thread sees the same buffer and takes the same early
        return on exhaustion."""
        alloc = (
            f"{name} = (double *) (pool_allocate("
            f"sizeof(double) * {elems}));"
        )
        if self.worksharing:
            self.emit(f"double * {name};")
            self.emit(f"#pragma omp single copyprivate({name})")
            self.emit(alloc)
        else:
            self.emit(f"double * {alloc}")
        if self.native:
            self.emit(f"if (!{name}) return -1;")

    def emit_pool_dealloc(self, name: str) -> None:
        if self.worksharing:
            self.emit("#pragma omp single")
        self.emit(f"pool_deallocate({name});")

    # -- emission helpers -------------------------------------------------
    def emit(self, text: str = "") -> None:
        if not text:
            self.lines.append("")
            return
        self.lines.append("  " * self.indent + text)

    def emit_raw(self, text: str) -> None:
        """Emit a preformatted multi-line block at column zero."""
        self.lines.extend(text.splitlines())

    def block(self):
        emitter = self

        class _Block:
            def __enter__(self_inner):
                emitter.indent += 1

            def __exit__(self_inner, *exc):
                emitter.indent -= 1

        return _Block()

    # -- naming -------------------------------------------------------------
    @staticmethod
    def cname(name: str) -> str:
        out = "".join(c if c.isalnum() else "_" for c in name)
        if out and out[0].isdigit():
            out = "_" + out
        return out

    def array_name(self, aid: int) -> str:
        if aid not in self.array_names:
            self.array_names[aid] = f"_arr_{aid}"
        return self.array_names[aid]

    # -- expression rendering ------------------------------------------------
    def index_c(
        self, ix: IndexExpr, coarse: bool = False
    ) -> str:
        """Render a subscript; integral coefficients only."""
        parts = []
        for var, coeff in ix.coeffs.items():
            if coeff.denominator != 1:
                raise ValueError(
                    f"non-integral coefficient in emitted subscript {ix!r}"
                )
            c = coeff.numerator
            if c == 1:
                parts.append(var.name)
            else:
                parts.append(f"{c}*{var.name}")
        const = ix.const
        if const.is_constant():
            k = const.constant_value()
            if k != 0 or not parts:
                parts.append(str(int(k)))
        else:
            c = const.coeff("N")
            if c.denominator == 1:
                rendered = f"{int(c)}*N"
                if const.const:
                    rendered += f" + {int(const.const)}"
                parts.append(rendered)
            else:
                # fractional parameter coefficients (coarse-level
                # bounds like N/2) have no integral C rendering;
                # bindings are concrete, so evaluate them exactly
                parts.append(
                    str(int(const.int_value(self.compiled.bindings)))
                )
        return " + ".join(parts).replace("+ -", "- ")

    def linearize_subs(self, func: "Function", subs: list[str]) -> str:
        """Row-major linearized access into the stage's storage given
        already-rendered subscript strings: full arrays are subscripted
        with domain-relative coordinates, scratchpads with tile-relative
        ones (Figure 8's hoisted-origin form)."""
        name, kind = self.stage_store[func]
        if kind == "scratch":
            dims = list(self.scratch_shape[func])
            origin = self.scratch_origin[func]
        else:
            dims = [
                iv.size().int_value(self.compiled.bindings)
                for iv in func.domain.intervals
            ]
            lower = func.domain_box(self.compiled.bindings).lower()
            origin = [str(l) if l else "" for l in lower]
        terms = []
        for d, sub in enumerate(subs):
            if origin[d]:
                sub = f"({sub} - {origin[d]})"
            else:
                sub = f"({sub})"
            stride = 1
            for inner in dims[d + 1 :]:
                stride *= inner
            terms.append(sub if stride == 1 else f"{sub}*{stride}")
        return f"{name}[{' + '.join(terms)}]"

    def linearize(self, func: "Function", indices) -> str:
        return self.linearize_subs(
            func, [self.index_c(ix) for ix in indices]
        )

    def expr_c(self, expr: Expr) -> str:
        if isinstance(expr, Const):
            v = expr.value
            if isinstance(v, float):
                return repr(v)
            return f"{v}"
        if isinstance(expr, VarExpr):
            return f"({self.index_c(expr.index)})"
        if isinstance(expr, Ref):
            return self.linearize(expr.func, expr.indices)
        if isinstance(expr, BinOp):
            return (
                f"({self.expr_c(expr.left)} {expr.op} "
                f"{self.expr_c(expr.right)})"
            )
        if isinstance(expr, UnOp):
            return f"(-{self.expr_c(expr.operand)})"
        if isinstance(expr, Minimum):
            return f"fmin({self.expr_c(expr.left)}, {self.expr_c(expr.right)})"
        if isinstance(expr, Maximum):
            return f"fmax({self.expr_c(expr.left)}, {self.expr_c(expr.right)})"
        if isinstance(expr, Call):
            args = ", ".join(self.expr_c(a) for a in expr.args)
            fn = _C_FN_NAMES.get(expr.fn, expr.fn)
            return f"{fn}({args})"
        if isinstance(expr, Select):
            return (
                f"({self.cond_c(expr.condition)} ? "
                f"{self.expr_c(expr.true_expr)} : "
                f"{self.expr_c(expr.false_expr)})"
            )
        raise TypeError(f"cannot emit {type(expr).__name__}")

    def cond_c(self, cond: Condition) -> str:
        atoms = []
        for lhs, op, rhs in cond.atoms:
            atoms.append(f"({self.index_c(lhs)} {op} {self.index_c(rhs)})")
        return " && ".join(atoms)

    # -- loop nests --------------------------------------------------------
    def emit_stage_loops(
        self,
        stage: "Function",
        bounds: list[tuple[str, str]],
        pragma_inner: bool = True,
    ) -> None:
        """Emit the stage's loop nest over [lb, ub] string bounds."""
        variables = stage.variables
        for d, var in enumerate(variables):
            lb, ub = bounds[d]
            if d == len(variables) - 1 and pragma_inner:
                self.emit("PMG_IVDEP")
            self.emit(
                f"for (int {var.name} = {lb}; {var.name} <= {ub}; "
                f"{var.name}++) {{"
            )
            self.indent += 1
        self.emit_stage_body(stage)
        for _ in variables:
            self.indent -= 1
            self.emit("}")

    def emit_stage_body(self, stage: "Function") -> None:
        lhs = self.linearize(
            stage, [IndexExpr.of_var(v) for v in stage.variables]
        )
        if isinstance(stage, Interp):
            # parity dispatch rendered as a chain of parity tests
            first = True
            for parity, expr in stage.parity_cases.items():
                test = " && ".join(
                    f"(({v.name}) % 2 == {r})"
                    for v, r in zip(stage.variables, parity)
                )
                kw = "if" if first else "else if"
                self.emit(f"{kw} ({test}) {{")
                with self.block():
                    body = self._coarse_interp_expr(stage, expr)
                    self.emit(f"{lhs} = {body};")
                self.emit("}")
                first = False
            return
        first = True
        for piece in stage.defn:
            if isinstance(piece, Case):
                kw = "if" if first else "else if"
                self.emit(f"{kw} ({self.cond_c(piece.condition)}) {{")
                with self.block():
                    self.emit(f"{lhs} = {self.expr_c(piece.expr)};")
                self.emit("}")
            else:
                if first:
                    self.emit(f"{lhs} = {self.expr_c(piece)};")
                else:
                    self.emit("else {")
                    with self.block():
                        self.emit(f"{lhs} = {self.expr_c(piece)};")
                    self.emit("}")
            first = False

    def _coarse_interp_expr(self, stage: Interp, expr: Expr) -> str:
        """Interp expressions subscript the coarse producer with the
        halved fine index."""

        def rewrite(e: Expr) -> str:
            if isinstance(e, Ref):
                halved = []
                for ix in e.indices:
                    var = ix.single_variable()
                    if var is None:
                        halved.append(self.index_c(ix))
                        continue
                    off = int(ix.const.constant_value())
                    term = f"({var.name}) / 2"
                    if off:
                        term += f" + {off}"
                    halved.append(term)
                return self.linearize_subs(e.func, halved)
            if isinstance(e, BinOp):
                return f"({rewrite(e.left)} {e.op} {rewrite(e.right)})"
            if isinstance(e, UnOp):
                return f"(-{rewrite(e.operand)})"
            if isinstance(e, Const):
                return repr(e.value) if isinstance(e.value, float) else str(e.value)
            return self.expr_c(e)

        return rewrite(expr)

    # -- top level -----------------------------------------------------------
    def generate(self) -> str:
        native = self.native

        self.emit(POOL_RUNTIME)
        self.emit("#include <math.h>")
        if native:
            self.emit("#include <stdint.h>")
            self.emit("#ifdef _OPENMP")
            self.emit("#include <omp.h>")
            self.emit("#endif")
        self.emit_raw(IVDEP_MACRO)
        self.emit("#define max(a, b) ((a) > (b) ? (a) : (b))")
        self.emit("#define min(a, b) ((a) < (b) ? (a) : (b))")
        # floor division for the scaled access maps (C '/' truncates)
        self.emit("static inline int pmg_fdiv(int a, int b) {")
        self.emit("  int q = a / b;")
        self.emit("  return (a % b != 0 && a < 0) ? q - 1 : q;")
        self.emit("}")
        self.emit()
        self.emit_pipeline_function(worksharing=False)
        if native:
            if self.driver:
                self.emit()
                self.emit_raw(DRIVER_RUNTIME)
                self.emit_driver_resid_fill()
                self.emit()
                self.emit_pipeline_function(worksharing=True)
            self.emit()
            self.emit_native_entry()
            if self.driver:
                self.emit()
                self.emit_driver_entry()
        return "\n".join(self.lines) + "\n"

    def emit_pipeline_function(self, worksharing: bool) -> None:
        """Emit the pipeline body as a C function: the Figure-8 form
        (``pipeline_<name>``, each stage its own parallel region), or —
        for the whole-solve driver — the worksharing twin
        (``pipeline_<name>_ws``) whose stage loops are orphaned ``omp
        for`` constructs executed by the driver's persistent team."""
        compiled = self.compiled
        dag = compiled.dag
        cfg = compiled.config
        storage = compiled.storage
        native = self.native
        self.worksharing = worksharing

        param_names = sorted(compiled.bindings)
        sig_parts = [f"int {p}" for p in param_names]
        sig_parts += [
            f"const double *restrict {self.cname(g.name)}"
            for g in dag.inputs
        ]
        if native:
            sig_parts += [
                f"double *restrict out_{self.cname(o.name)}"
                for o in dag.outputs
            ]
            ret = "static int"
        else:
            sig_parts += [
                f"double **restrict out_{self.cname(o.name)}"
                for o in dag.outputs
            ]
            ret = "void"
        suffix = "_ws" if worksharing else ""
        self.emit(
            f"{ret} pipeline_{self.cname(dag.name)}{suffix}"
            f"({', '.join(sig_parts) or 'void'})"
        )
        self.emit("{")
        self.indent += 1
        for p in param_names:
            # parameters are baked into the emitted bounds; keep them in
            # the signature for ABI parity but silence -Wunused-parameter
            self.emit(f"(void) {p};")

        for grid in dag.inputs:
            self.stage_store[grid] = (self.cname(grid.name), "input")

        # in native mode, pipeline outputs write directly into the
        # caller-provided buffers (storage gives every output a
        # dedicated exact-shape array, so the mapping is 1:1)
        output_funcs = set(dag.outputs) if native else set()
        for out in output_funcs:
            self.stage_store[out] = (
                f"out_{self.cname(out.name)}", "array"
            )

        # plan array names for live-outs
        for gi, group in enumerate(compiled.grouping.groups):
            for stage in group.live_outs():
                if stage in output_funcs:
                    continue
                aid = storage.array_of[stage]
                self.stage_store[stage] = (self.array_name(aid), "array")

        emitted_alloc: set[int] = set()
        for gi, group in enumerate(compiled.grouping.groups):
            self.emit(f"/* group {gi}: anchor {group.anchor.name} */")
            for stage in group.live_outs():
                if stage in output_funcs:
                    continue
                aid = storage.array_of[stage]
                if aid in emitted_alloc:
                    continue
                emitted_alloc.add(aid)
                shape = storage.array_shapes[aid]
                elems = 1
                for s in shape:
                    elems *= s
                users = [
                    s.name
                    for s, a in storage.array_of.items()
                    if a == aid
                ]
                self.emit(f"/* users : {users} */")
                self.emit_pool_alloc(self.array_name(aid), elems)

            if cfg.tile and group.size > 1 and gi not in getattr(
                compiled, "_diamond_groups", set()
            ):
                self.emit_tiled_group(gi, group)
            else:
                self.emit_straight_group(group)

            for aid, last in compiled._free_after.items():
                if last == gi and aid in emitted_alloc:
                    self.emit_pool_dealloc(self.array_name(aid))
            self.emit()

        if native:
            self.emit("return 0;")
        else:
            for out in dag.outputs:
                aid = storage.array_of[out]
                self.emit(
                    f"*out_{self.cname(out.name)} = "
                    f"{self.array_name(aid)};"
                )
        self.indent -= 1
        self.emit("}")
        self.worksharing = False

    def emit_straight_group(self, group) -> None:
        bindings = self.compiled.bindings
        live = set(group.live_outs())
        temporaries: list[str] = []
        for stage in group.stages:
            dom = stage.domain_box(bindings)
            if stage not in live:
                # full-size temporary for an unfused internal stage
                name = f"_tmp_{self.cname(stage.name)}"
                self.emit_pool_alloc(name, dom.volume())
                self.stage_store[stage] = (name, "array")
                temporaries.append(name)
            depth = self.collapse_depth(stage)
            self.emit(
                self.omp_loop_pragma(
                    "schedule(static)"
                    + (f" collapse({depth})" if depth > 1 else "")
                )
            )
            bounds = [
                (str(iv.lb), str(iv.ub)) for iv in dom.intervals
            ]
            # the ivdep hint must not separate an omp-for or collapsed
            # loop from its successor, so it only applies to loops
            # strictly inside the parallel nest
            self.emit_stage_loops(
                stage, bounds, pragma_inner=stage.ndim > depth
            )
        # internal temporaries die with the group: return them to the
        # pool so repeated invocations recycle instead of growing it
        for name in temporaries:
            self.emit_pool_dealloc(name)

    @staticmethod
    def _scaled_map(num: int, den: int, off: int, var: str) -> str:
        """C rendering of ``floor((num*var + off) / den)``."""
        scaled = var if num == 1 else f"{num}*{var}"
        inner = _offset(scaled, off)
        if den == 1:
            return inner
        return f"pmg_fdiv({inner}, {den})"

    def _emit_region_fold(
        self, lbs, ubs, nlo, nhi, kind: str, first: bool
    ) -> None:
        """Fold one region contribution (``nlo``/``nhi`` expressions per
        dimension) into the accumulator variables ``lbs``/``ubs``,
        mirroring ``Box.union_hull``'s empty-box identities.

        ``kind`` picks the operand order: ``"footprint"`` is
        ``new.union_hull(acc)`` (an empty new box keeps the
        accumulator), ``"ownership"`` is ``acc.union_hull(new)`` (an
        empty accumulator is replaced even by an empty new box).
        """
        nd = len(lbs)
        if first:
            for d in range(nd):
                self.emit(f"{lbs[d]} = {nlo[d]};")
                self.emit(f"{ubs[d]} = {nhi[d]};")
            return
        self.emit("{")
        self.indent += 1
        for d in range(nd):
            self.emit(f"const int _nlo{d} = {nlo[d]};")
            self.emit(f"const int _nhi{d} = {nhi[d]};")
        ne = " || ".join(f"_nlo{d} > _nhi{d}" for d in range(nd))
        ae = " || ".join(f"{lbs[d]} > {ubs[d]}" for d in range(nd))
        assign = [
            f"{lbs[d]} = _nlo{d}; {ubs[d]} = _nhi{d};" for d in range(nd)
        ]
        hull = [
            f"{lbs[d]} = min({lbs[d]}, _nlo{d}); "
            f"{ubs[d]} = max({ubs[d]}, _nhi{d});"
            for d in range(nd)
        ]
        if kind == "footprint":
            self.emit(f"if (!({ne})) {{")
            self.indent += 1
            self.emit(f"if ({ae}) {{")
            self.indent += 1
            for line in assign:
                self.emit(line)
            self.indent -= 1
            self.emit("} else {")
            self.indent += 1
            for line in hull:
                self.emit(line)
            self.indent -= 1
            self.emit("}")
            self.indent -= 1
            self.emit("}")
        else:  # ownership
            self.emit(f"if ({ae}) {{")
            self.indent += 1
            for line in assign:
                self.emit(line)
            self.indent -= 1
            self.emit(f"}} else if (!({ne})) {{")
            self.indent += 1
            for line in hull:
                self.emit(line)
            self.indent -= 1
            self.emit("}")
        self.indent -= 1
        self.emit("}")

    def emit_tiled_group(self, gi: int, group) -> None:
        compiled = self.compiled
        bindings = compiled.bindings
        cfg = compiled.config
        anchor = group.anchor
        anchor_dom = anchor.domain_box(bindings)
        tile_shape = cfg.tile_shape(anchor.ndim)
        splan = compiled.storage.group_scratch(gi)
        scales = group.scales()
        tp = compiled._group_tile_plan(gi, group)

        # Static mirror of Group.tile_regions' bookkeeping: which stages
        # acquire a region at all (anchor, live-outs, and anything
        # feeding one), and which consumer footprints fold into each
        # producer's region, in the interpreter's processing order.
        stages = list(group.stages)
        sindex = {s: i for i, s in enumerate(stages)}
        live = set(group.live_outs())
        in_group = set(stages)
        present: set = set()
        contribs: dict = {}
        for s in reversed(stages):
            if s is anchor or s in live or s in present:
                present.add(s)
                for producer, acc in group.dag.accesses_of(s).items():
                    if producer in in_group:
                        present.add(producer)
                        contribs.setdefault(producer, []).append(
                            (sindex[s], acc)
                        )

        ndim = anchor.ndim
        depth = ndim  # perfect tile loops collapse over every dimension
        self.emit(
            self.omp_loop_pragma(f"schedule(static) collapse({depth})")
        )
        tvars = [f"T_{d}" for d in range(ndim)]
        for d in range(ndim):
            lo = anchor_dom.intervals[d].lb
            hi = anchor_dom.intervals[d].ub
            self.emit(
                f"for (int {tvars[d]} = {lo}; {tvars[d]} <= {hi}; "
                f"{tvars[d]} += {tile_shape[d]}) {{"
            )
            self.indent += 1

        # scratchpads sunk to the innermost tile loop (section 3.2.5);
        # sized to the exact per-tile region maxima hoisted by the
        # executor's tile plan, so region writes can never overrun
        self.emit("/* Scratchpads */")
        by_buffer: dict[int, list[str]] = {}
        for stage, bid in splan.buffer_of.items():
            by_buffer.setdefault(bid, []).append(stage.name)
        for bid, users in sorted(by_buffer.items()):
            shape = tp.max_buf_shapes.get(bid) or splan.buffer_shapes[bid]
            elems = " * ".join(str(s) for s in shape)
            self.emit(f"/* users : {users} */")
            self.emit(f"double _buf_{gi}_{bid}[({elems})];")
            for stage in splan.buffer_of:
                if splan.buffer_of[stage] == bid:
                    self.stage_store[stage] = (
                        f"_buf_{gi}_{bid}",
                        "scratch",
                    )
                    self.scratch_shape[stage] = shape

        # Per-stage tile regions, computed by replaying the backward
        # footprint propagation of Group.tile_regions in C: consumers
        # first (reverse topological order), each region the clamped
        # union-hull of its consumers' footprints plus (for live-outs)
        # the tile's ownership slice.  The lower bounds double as the
        # scratchpad origins, exactly like the interpreter's.
        self.emit("/* tile regions (backward footprint propagation) */")
        for si in reversed(range(len(stages))):
            stage = stages[si]
            if stage not in present:
                continue
            nd = stage.ndim
            dom = stage.domain_box(bindings)
            lbs = [f"_s{gi}_{si}_lb{d}" for d in range(nd)]
            ubs = [f"_s{gi}_{si}_ub{d}" for d in range(nd)]
            decl = ", ".join(
                f"{lb} = 0, {ub} = -1" for lb, ub in zip(lbs, ubs)
            )
            self.emit(f"/* region of {stage.name} */")
            self.emit(f"int {decl};")
            first = True
            if stage is anchor:
                nlo = [tvars[d] for d in range(nd)]
                nhi = [
                    f"min({tvars[d]} + {tile_shape[d] - 1}, "
                    f"{anchor_dom.intervals[d].ub})"
                    for d in range(nd)
                ]
                self._emit_region_fold(lbs, ubs, nlo, nhi, "footprint", first)
                first = False
            for csi, acc in contribs.get(stage, ()):
                nlo, nhi = [], []
                for j in range(nd):
                    da = acc.dims[j]
                    if da.consumer_dim is None:
                        nlo.append(str(da.const_lo))
                        nhi.append(str(da.const_hi))
                        continue
                    k = da.consumer_dim
                    rng = da.rng
                    clb = f"_s{gi}_{csi}_lb{k}"
                    cub = f"_s{gi}_{csi}_ub{k}"
                    lo_m = self._scaled_map(rng.num, rng.den, rng.omin, clb)
                    hi_m = self._scaled_map(rng.num, rng.den, rng.omax, cub)
                    # empty consumer intervals pass through unmapped
                    # (ConcreteInterval semantics in AccessRange.image)
                    nlo.append(f"({clb} > {cub} ? {clb} : {lo_m})")
                    nhi.append(f"({clb} > {cub} ? {cub} : {hi_m})")
                self._emit_region_fold(lbs, ubs, nlo, nhi, "footprint", first)
                first = False
            if stage in live:
                nlo, nhi = [], []
                for d in range(nd):
                    s = scales[stage][d]
                    slb = dom.intervals[d].lb
                    sub = dom.intervals[d].ub
                    if s == 0:
                        nlo.append(str(slb))
                        nhi.append(str(sub))
                        continue
                    num, den = s.numerator, s.denominator
                    alb = anchor_dom.intervals[d].lb
                    aub = anchor_dom.intervals[d].ub
                    t = tile_shape[d]
                    lo_val = self._scaled_map(num, den, 0, tvars[d])
                    bp1 = f"min({tvars[d]} + {t}, {aub + 1})"
                    hi_val = f"{self._scaled_map(num, den, 0, f'({bp1})')} - 1"
                    lo = f"({tvars[d]} <= {alb} ? {slb} : {lo_val})"
                    hi = (
                        f"({tvars[d]} + {t - 1} >= {aub} ? {sub} : {hi_val})"
                    )
                    nlo.append(f"max({lo}, {slb})")
                    nhi.append(f"min({hi}, {sub})")
                self._emit_region_fold(lbs, ubs, nlo, nhi, "ownership", first)
                first = False
            for d in range(nd):
                self.emit(
                    f"{lbs[d]} = max({lbs[d]}, {dom.intervals[d].lb});"
                )
                self.emit(
                    f"{ubs[d]} = min({ubs[d]}, {dom.intervals[d].ub});"
                )

        # per-stage loop nests over the computed regions
        for si, stage in enumerate(stages):
            if stage not in present:
                continue
            self.emit(f"/* stage {stage.name} */")
            bounds = [
                (f"_s{gi}_{si}_lb{d}", f"_s{gi}_{si}_ub{d}")
                for d in range(stage.ndim)
            ]
            if self.stage_store.get(stage, ("", ""))[1] == "scratch":
                self.scratch_origin[stage] = tuple(
                    f"_s{gi}_{si}_lb{d}" for d in range(stage.ndim)
                )
            self.emit_stage_loops(stage, bounds)

        for _ in range(ndim):
            self.indent -= 1
            self.emit("}")

    def collapse_depth(self, stage: "Function") -> int:
        """Parallel-collapse depth: the number of outer dimensions whose
        loop is perfectly nested (a piecewise boundary definition leaves
        only the outermost loop perfect, per section 3.2.5)."""
        if len(stage.defn) == 1 and not isinstance(stage.defn[0], Case):
            return stage.ndim
        return max(1, stage.ndim - 1)

    # -- native ABI entry point ---------------------------------------------
    def _emit_entry_prologue(
        self,
        param_names: list[str],
        in_shapes: list[int],
        out_shapes: list[int],
    ) -> None:
        """The descriptor-validation prologue shared by ``polymg_run``
        and ``polymg_drive``: count checks, baked parameter values,
        per-buffer geometry, and the OpenMP thread-count handoff."""
        dag = self.compiled.dag
        self.emit(f"if (n_params != {len(param_names)}) return 1;")
        self.emit(f"if (n_inputs != {len(dag.inputs)}) return 2;")
        self.emit(f"if (n_outputs != {len(dag.outputs)}) return 3;")
        if param_names:
            self.emit(f"for (int i = 0; i < {len(param_names)}; i++)")
            with self.block():
                self.emit(
                    "if (params[i] != pmg_param_values[i]) return 10 + i;"
                )
        else:
            self.emit("(void) params;")
        for k, ndim in enumerate(in_shapes):
            self.emit(
                f"if (pmg_check_buffer(&inputs[{k}], pmg_in_shape_{k}, "
                f"{ndim})) return {100 + k};"
            )
        for k, ndim in enumerate(out_shapes):
            self.emit(
                f"if (pmg_check_buffer(&outputs[{k}], pmg_out_shape_{k}, "
                f"{ndim})) return {200 + k};"
            )
        self.emit("#ifdef _OPENMP")
        self.emit("if (nthreads > 0) omp_set_num_threads((int) nthreads);")
        self.emit("#else")
        self.emit("(void) nthreads;")
        self.emit("#endif")

    def _driver_geometry(self):
        """(shape, full strides, interior strides, elems, interior
        elems) of the single output grid, all in elements."""
        out = self.compiled.dag.outputs[0]
        shape = list(out.domain_box(self.compiled.bindings).shape())
        nd = len(shape)
        strides = []
        int_strides = []
        for d in range(nd):
            s = 1
            si = 1
            for inner in shape[d + 1 :]:
                s *= inner
                si *= inner - 2
            strides.append(s)
            int_strides.append(si)
        elems = 1
        nint = 1
        for s in shape:
            elems *= s
            nint *= s - 2
        return shape, strides, int_strides, elems, nint

    def emit_driver_resid_fill(self) -> None:
        """Emit the in-kernel interior-defect helper: squares of
        ``f - A_h u`` written elementwise into ``rr`` in interior
        C order, replicating ``repro.multigrid.kernels.apply_operator``
        operation-for-operation (each binary op a separate rounding, FP
        contraction pinned off) so the driver's residual history is
        bitwise identical to the per-cycle numpy norm."""
        shape, strides, int_strides, _, _ = self._driver_geometry()
        nd = len(shape)
        coef = repr(2.0 * nd)
        self.emit(
            "static PMG_NOCONTRACT void pmg_resid_fill("
            "const double *restrict u,"
        )
        self.emit(
            "    const double *restrict f, double *restrict rr,"
        )
        self.emit("    const double inv_h2) {")
        self.emit("#if defined(__clang__)")
        self.emit("#pragma clang fp contract(off)")
        self.emit("#endif")
        self.indent += 1
        collapse = f" collapse({nd})" if nd > 1 else ""
        self.emit(f"#pragma omp for schedule(static){collapse}")
        for d in range(nd):
            self.emit(
                f"for (int i{d} = 1; i{d} <= {shape[d] - 2}; i{d}++) {{"
            )
            self.indent += 1
        off_terms = []
        k_terms = []
        for d in range(nd):
            st = strides[d]
            ist = int_strides[d]
            off_terms.append(
                f"(int64_t) i{d}" if st == 1 else f"(int64_t) i{d} * {st}"
            )
            base = f"(int64_t) (i{d} - 1)"
            k_terms.append(base if ist == 1 else f"{base} * {ist}")
        self.emit(f"const int64_t pmg_off = {' + '.join(off_terms)};")
        self.emit(f"const int64_t pmg_k = {' + '.join(k_terms)};")
        # mirror apply_operator: -pre[0], + -pre[1..], + (2d)*centre,
        # + -post[d-1..0], * inv_h2 — one rounding per binary op
        self.emit(f"double pmg_t = -u[pmg_off - {strides[0]}];")
        for d in range(1, nd):
            self.emit(f"pmg_t = pmg_t + (-u[pmg_off - {strides[d]}]);")
        self.emit(f"const double pmg_c2 = {coef} * u[pmg_off];")
        self.emit("pmg_t = pmg_t + pmg_c2;")
        for d in reversed(range(nd)):
            self.emit(f"pmg_t = pmg_t + (-u[pmg_off + {strides[d]}]);")
        self.emit("pmg_t = pmg_t * inv_h2;")
        self.emit("const double pmg_r = f[pmg_off] - pmg_t;")
        self.emit("rr[pmg_k] = pmg_r * pmg_r;")
        for _ in range(nd):
            self.indent -= 1
            self.emit("}")
        self.indent -= 1
        self.emit("}")

    def _emit_injected_fault(self) -> None:
        """Test-only crash injection (``PolyMgConfig.native_fault``):
        emit a deliberate fault into the entry point *after* descriptor
        validation and *before* the pipeline call, so the artifact
        compiles, loads, and validates like a healthy one — then takes
        the process down on invocation.  This is how the sandbox's
        crash/hang/abort classification is exercised against real
        native faults instead of simulated ones."""
        fault = getattr(self.compiled.config, "native_fault", None)
        if fault is None:
            return
        self.emit(f"/* injected fault ({fault}): test-only */")
        if fault == "segfault":
            # write through a near-null address via a volatile pointer:
            # a literal NULL store can be folded into a trap instruction
            # (SIGILL) by the optimizer, this stays a plain wild store
            self.emit(
                "volatile double *pmg_bad = "
                "(volatile double *)(intptr_t) 8;"
            )
            self.emit("*pmg_bad = 1.0;")
        elif fault == "spin":
            self.emit("for (volatile int pmg_spin = 1; pmg_spin; ) {}")
        elif fault == "abort":
            self.emit("abort();")

    def emit_native_entry(self) -> None:
        """Emit the exported C ABI: a descriptor-validating entry point
        plus pool introspection hooks."""
        compiled = self.compiled
        dag = compiled.dag
        bindings = compiled.bindings
        param_names = sorted(bindings)

        self.emit_raw(
            """\
/* ---- native ABI (repro.backend.native) ---- */
typedef struct {
  double *data;
  int64_t ndim;
  const int64_t *shape;
  const int64_t *strides; /* in elements, dense row-major expected */
} pmg_buffer;

static int pmg_check_buffer(const pmg_buffer *b, const int64_t *shape,
                            int64_t ndim) {
  int64_t stride = 1;
  if (!b->data || b->ndim != ndim) return 1;
  for (int64_t d = ndim - 1; d >= 0; d--) {
    if (b->shape[d] != shape[d]) return 1;
    if (b->strides[d] != stride) return 1;
    stride *= shape[d];
  }
  return 0;
}
"""
        )
        if param_names:
            values = ", ".join(str(bindings[p]) for p in param_names)
            self.emit(
                f"static const int64_t pmg_param_values[{len(param_names)}]"
                f" = {{{values}}};"
            )
        in_shapes = []
        for k, grid in enumerate(dag.inputs):
            shape = grid.domain_box(bindings).shape()
            dims = ", ".join(str(s) for s in shape)
            self.emit(
                f"static const int64_t pmg_in_shape_{k}[{len(shape)}] = "
                f"{{{dims}}};"
            )
            in_shapes.append(len(shape))
        out_shapes = []
        for k, out in enumerate(dag.outputs):
            shape = out.domain_box(bindings).shape()
            dims = ", ".join(str(s) for s in shape)
            self.emit(
                f"static const int64_t pmg_out_shape_{k}[{len(shape)}] = "
                f"{{{dims}}};"
            )
            out_shapes.append(len(shape))
        self.emit()
        self.emit(
            f"int {NATIVE_ENTRY_NAME}(const int64_t *params, "
            "int64_t n_params, int64_t nthreads,"
        )
        self.emit(
            "               const pmg_buffer *inputs, int64_t n_inputs,"
        )
        self.emit(
            "               const pmg_buffer *outputs, int64_t n_outputs)"
        )
        self.emit("{")
        self.indent += 1
        self._emit_entry_prologue(param_names, in_shapes, out_shapes)
        self._emit_injected_fault()
        args = (
            [f"(int) params[{i}]" for i in range(len(param_names))]
            + [f"inputs[{k}].data" for k in range(len(dag.inputs))]
            + [f"outputs[{k}].data" for k in range(len(dag.outputs))]
        )
        self.emit(
            f"if (pipeline_{self.cname(dag.name)}({', '.join(args)}) != 0)"
        )
        with self.block():
            self.emit("return 500;")
        self.emit("return 0;")
        self.indent -= 1
        self.emit("}")
        self.emit_raw(
            """\

int64_t polymg_pool_bytes(void) {
  int64_t total = 0;
  for (int i = 0; i < pool_count; i++)
    total += (int64_t) pool_sizes[i];
  return total;
}

void polymg_pool_release(void) {
  for (int i = 0; i < pool_count; i++) {
    free(pool_ptrs[i]);
    pool_ptrs[i] = 0;
    pool_sizes[i] = 0;
    pool_free[i] = 0;
  }
  pool_count = 0;
}
"""
        )

    def emit_driver_entry(self) -> None:
        """Emit the whole-solve ``polymg_drive`` ABI: the multigrid
        cycle loop, per-cycle residual-norm convergence test, and
        iterate ping-pong all inside one persistent ``omp parallel``
        team.  Returns after at most ``ctrl->max_cycles`` cycles (the
        supervisor's hook granularity) with the per-cycle norms, and
        writes the output buffer only on success, so a faulted burst
        never corrupts the caller's iterate."""
        compiled = self.compiled
        dag = compiled.dag
        bindings = compiled.bindings
        param_names = sorted(bindings)
        shape, _, _, elems, nint = self._driver_geometry()
        nd = len(shape)
        in_shapes = [
            len(g.domain_box(bindings).shape()) for g in dag.inputs
        ]
        out_shapes = [
            len(o.domain_box(bindings).shape()) for o in dag.outputs
        ]

        self.emit_raw(
            """\
/* ---- whole-solve driver ABI (repro.backend.native) ---- */
typedef struct {
  int64_t max_cycles;         /* in : burst length (hook granularity) */
  int64_t iterate_index;      /* in : iterate grid's slot in inputs[] */
  int64_t rhs_index;          /* in : right-hand side's slot in inputs[] */
  double tol;                 /* in : converge when norm < tol (<=0 off) */
  double norm_scale;          /* in : h**(ndim/2), caller-computed */
  double inv_h2;              /* in : 1/(h*h), caller-computed */
  double *norms;              /* out: per-cycle norms, len max_cycles */
  volatile int64_t *progress; /* out: bumped once per cycle (may be 0) */
  int64_t cycles_done;        /* out: cycles accepted this call */
  int64_t converged;          /* out: 1 when tol was reached */
} pmg_drive_ctrl;
"""
        )
        self.emit(
            f"int {DRIVER_ENTRY_NAME}(const int64_t *params, "
            "int64_t n_params, int64_t nthreads,"
        )
        self.emit(
            "               const pmg_buffer *inputs, int64_t n_inputs,"
        )
        self.emit(
            "               const pmg_buffer *outputs, int64_t n_outputs,"
        )
        self.emit("               pmg_drive_ctrl *ctrl)")
        self.emit("{")
        self.indent += 1
        self._emit_entry_prologue(param_names, in_shapes, out_shapes)
        self.emit("if (!ctrl || ctrl->max_cycles < 1 || !ctrl->norms)")
        with self.block():
            self.emit("return 4;")
        self.emit(
            "if (ctrl->iterate_index < 0 || "
            "ctrl->iterate_index >= n_inputs) return 4;"
        )
        self.emit(
            "if (ctrl->rhs_index < 0 || ctrl->rhs_index >= n_inputs) "
            "return 4;"
        )
        # the iterate and rhs grids must live on the output grid's
        # geometry for the ping-pong and the defect to make sense
        self.emit(
            "if (pmg_check_buffer(&inputs[ctrl->iterate_index], "
            f"pmg_out_shape_0, {nd})) return 4;"
        )
        self.emit(
            "if (pmg_check_buffer(&inputs[ctrl->rhs_index], "
            f"pmg_out_shape_0, {nd})) return 4;"
        )
        self._emit_injected_fault()
        for name, count in (
            ("pmg_u_a", elems),
            ("pmg_u_b", elems),
            ("pmg_rr", nint),
        ):
            self.emit(
                f"double * {name} = (double *) (pool_allocate("
                f"sizeof(double) * {count}));"
            )
        self.emit("if (!pmg_u_a || !pmg_u_b || !pmg_rr) {")
        with self.block():
            for name in ("pmg_u_a", "pmg_u_b", "pmg_rr"):
                self.emit(f"if ({name}) pool_deallocate({name});")
            self.emit("return 500;")
        self.emit("}")
        self.emit("const int64_t pmg_it = ctrl->iterate_index;")
        self.emit(
            "const double *pmg_f = "
            "(const double *) inputs[ctrl->rhs_index].data;"
        )
        self.emit("const double pmg_tol = ctrl->tol;")
        self.emit("const double pmg_scale = ctrl->norm_scale;")
        self.emit("const double pmg_inv_h2 = ctrl->inv_h2;")
        self.emit("const int64_t pmg_cycles = ctrl->max_cycles;")
        self.emit("double *const pmg_norms = ctrl->norms;")
        self.emit(
            "volatile int64_t *const pmg_progress = ctrl->progress;"
        )
        self.emit("int pmg_rc = 0;")
        self.emit("int64_t pmg_done = 0;")
        self.emit("double *pmg_result = 0;")
        self.emit(f"#pragma omp parallel{self._proc_bind()}")
        self.emit("{")
        self.indent += 1
        # per-thread ping-pong pointers: every thread executes the same
        # deterministic swap sequence, so no cross-thread communication
        # is needed for buffer identity — only the norms/result handoff
        # goes through the single-with-barrier below
        self.emit(
            "const double *pmg_src = "
            "(const double *) inputs[pmg_it].data;"
        )
        self.emit("double *pmg_dst = pmg_u_a;")
        self.emit("double *pmg_alt = pmg_u_b;")
        self.emit(
            "for (int64_t pmg_c = 0; pmg_c < pmg_cycles; pmg_c++) {"
        )
        self.indent += 1
        call_args = [f"(int) params[{i}]" for i in range(len(param_names))]
        for k in range(len(dag.inputs)):
            call_args.append(
                f"(pmg_it == {k} ? pmg_src : "
                f"(const double *) inputs[{k}].data)"
            )
        call_args.append("pmg_dst")
        self.emit(
            f"int pmg_rc_l = pipeline_{self.cname(dag.name)}_ws("
        )
        with self.block():
            for i, arg in enumerate(call_args):
                tail = ");" if i == len(call_args) - 1 else ","
                self.emit(f"{arg}{tail}")
        # pipeline_ws broadcasts allocation outcomes via copyprivate, so
        # pmg_rc_l is identical on every thread and the break is uniform
        self.emit("if (pmg_rc_l != 0) {")
        with self.block():
            self.emit("#pragma omp single")
            self.emit("pmg_rc = pmg_rc_l;")
            self.emit("break;")
        self.emit("}")
        self.emit("pmg_resid_fill(pmg_dst, pmg_f, pmg_rr, pmg_inv_h2);")
        self.emit("#pragma omp single")
        self.emit("{")
        with self.block():
            self.emit(
                f"pmg_norms[pmg_c] = sqrt(pmg_pairwise(pmg_rr, {nint}))"
                " * pmg_scale;"
            )
            self.emit("pmg_done = pmg_c + 1;")
            self.emit("pmg_result = pmg_dst;")
            self.emit("if (pmg_progress) *pmg_progress += 1;")
        self.emit("}")
        # the single's implicit barrier publishes pmg_norms[pmg_c]; the
        # convergence decision below is then uniform across the team
        self.emit(
            "if (pmg_tol > 0.0 && pmg_norms[pmg_c] < pmg_tol) break;"
        )
        self.emit("{")
        with self.block():
            self.emit(
                "double *pmg_next = (pmg_c == 0) ? pmg_alt "
                ": (double *) pmg_src;"
            )
            self.emit("pmg_src = pmg_dst;")
            self.emit("pmg_dst = pmg_next;")
        self.emit("}")
        self.indent -= 1
        self.emit("}")
        self.indent -= 1
        self.emit("}")
        self.emit("ctrl->cycles_done = pmg_done;")
        self.emit("ctrl->converged = 0;")
        self.emit("int pmg_ret = 0;")
        self.emit("if (pmg_rc != 0) {")
        with self.block():
            self.emit("pmg_ret = 500;")
        self.emit("} else if (pmg_done > 0) {")
        with self.block():
            self.emit(
                "memcpy(outputs[0].data, pmg_result, "
                f"sizeof(double) * {elems});"
            )
            self.emit(
                "if (pmg_tol > 0.0 && pmg_norms[pmg_done - 1] < pmg_tol)"
            )
            with self.block():
                self.emit("ctrl->converged = 1;")
        self.emit("}")
        self.emit("pool_deallocate(pmg_rr);")
        self.emit("pool_deallocate(pmg_u_b);")
        self.emit("pool_deallocate(pmg_u_a);")
        self.emit("return pmg_ret;")
        self.indent -= 1
        self.emit("}")


def generate_c(compiled: "CompiledPipeline") -> str:
    """Emit Figure-8-style C/OpenMP code for a compiled pipeline."""
    return _Emitter(compiled).generate()


def generate_native_c(compiled: "CompiledPipeline") -> str:
    """Emit the JIT-compilable translation unit: the Figure-8 pipeline
    body plus the exported ``polymg_run`` descriptor ABI."""
    return _Emitter(compiled, native=True).generate()


def generated_loc(compiled: "CompiledPipeline") -> int:
    """Generated lines of code (Table 3 column)."""
    text = generate_c(compiled)
    return sum(1 for line in text.splitlines() if line.strip())
