"""C/OpenMP code emitter (paper Figure 8, section 3.2.5).

Emits, for a compiled pipeline, the C code PolyMG would generate:

* a pipeline function taking the parameters, input grids, and a
  reference to the output array,
* ``pool_allocate``/``pool_deallocate`` calls for live-out full arrays
  placed at first definition / after last use,
* one ``#pragma omp parallel for schedule(static) collapse(d)`` tile
  loop nest per fused group (collapse depth = number of tiled
  dimensions, determined the way section 3.2.5 describes),
* constant-size scratchpad declarations sunk inside the tile loop (one
  per *reused* buffer, annotated with the users it serves — exactly the
  ``/* users: [...] */`` comments of Figure 8),
* per-stage loop nests with clamped tile bounds and ``#pragma ivdep``
  innermost loops.

The emitter exists for artifact parity: the generated-lines-of-code
column of Table 3 is measured on its output, the structural tests assert
Figure 8's shape, and when a C compiler is available the smoke test
compiles a generated file (execution is interpreted by the numpy
backend; the C output is a faithful rendering of the same schedule, with
a reference pool allocator emitted alongside).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..ir.domain import Box
from ..lang.expr import (
    BinOp,
    Call,
    Case,
    Condition,
    Const,
    Expr,
    IndexExpr,
    Maximum,
    Minimum,
    Ref,
    Select,
    UnOp,
    VarExpr,
)
from ..lang.sampling import Interp

if TYPE_CHECKING:  # pragma: no cover
    from ..backend.executor import CompiledPipeline
    from ..lang.function import Function

__all__ = ["generate_c", "generated_loc", "POOL_RUNTIME"]

POOL_RUNTIME = """\
/* pooled memory allocator (paper section 3.2.3) */
#include <stdlib.h>
#include <string.h>

#define POOL_MAX 256
static void *pool_ptrs[POOL_MAX];
static size_t pool_sizes[POOL_MAX];
static int pool_free[POOL_MAX];
static int pool_count = 0;

static void *pool_allocate(size_t bytes) {
  int best = -1;
  for (int i = 0; i < pool_count; i++) {
    if (pool_free[i] && pool_sizes[i] >= bytes &&
        (best < 0 || pool_sizes[i] < pool_sizes[best]))
      best = i;
  }
  if (best >= 0) { pool_free[best] = 0; return pool_ptrs[best]; }
  void *p = malloc(bytes);
  if (pool_count < POOL_MAX) {
    pool_ptrs[pool_count] = p;
    pool_sizes[pool_count] = bytes;
    pool_free[pool_count] = 0;
    pool_count++;
  }
  return p;
}

static void pool_deallocate(void *p) {
  for (int i = 0; i < pool_count; i++)
    if (pool_ptrs[i] == p) { pool_free[i] = 1; return; }
  free(p);
}
"""


class _Emitter:
    def __init__(self, compiled: "CompiledPipeline") -> None:
        self.compiled = compiled
        self.lines: list[str] = []
        self.indent = 0
        self.array_names: dict[int, str] = {}
        self.stage_store: dict["Function", tuple[str, str]] = {}
        # (array-name, kind) where kind in {input, array, scratch}
        self.scratch_shape: dict["Function", tuple[int, ...]] = {}
        self.scratch_origin: dict["Function", tuple[str, ...]] = {}

    # -- emission helpers -------------------------------------------------
    def emit(self, text: str = "") -> None:
        if not text:
            self.lines.append("")
            return
        self.lines.append("  " * self.indent + text)

    def block(self):
        emitter = self

        class _Block:
            def __enter__(self_inner):
                emitter.indent += 1

            def __exit__(self_inner, *exc):
                emitter.indent -= 1

        return _Block()

    # -- naming -------------------------------------------------------------
    @staticmethod
    def cname(name: str) -> str:
        out = "".join(c if c.isalnum() else "_" for c in name)
        if out and out[0].isdigit():
            out = "_" + out
        return out

    def array_name(self, aid: int) -> str:
        if aid not in self.array_names:
            self.array_names[aid] = f"_arr_{aid}"
        return self.array_names[aid]

    # -- expression rendering ------------------------------------------------
    def index_c(
        self, ix: IndexExpr, coarse: bool = False
    ) -> str:
        """Render a subscript; integral coefficients only."""
        parts = []
        for var, coeff in ix.coeffs.items():
            if coeff.denominator != 1:
                raise ValueError(
                    f"non-integral coefficient in emitted subscript {ix!r}"
                )
            c = coeff.numerator
            if c == 1:
                parts.append(var.name)
            else:
                parts.append(f"{c}*{var.name}")
        const = ix.const
        if const.is_constant():
            k = const.constant_value()
            if k != 0 or not parts:
                parts.append(str(int(k)))
        else:
            rendered = str(int(const.coeff("N"))) + "*N"
            if const.const:
                rendered += f" + {int(const.const)}"
            parts.append(rendered)
        return " + ".join(parts).replace("+ -", "- ")

    def linearize(self, func: "Function", indices) -> str:
        """Row-major linearized access into the stage's storage: full
        arrays are subscripted with domain-relative coordinates,
        scratchpads with tile-relative ones (Figure 8's
        ``_buf[(-32*T_i + i)*530 + ...]`` form)."""
        name, kind = self.stage_store[func]
        if kind == "scratch":
            dims = list(self.scratch_shape[func])
            origin = self.scratch_origin[func]
        else:
            dims = [
                iv.size().int_value(self.compiled.bindings)
                for iv in func.domain.intervals
            ]
            lower = func.domain_box(self.compiled.bindings).lower()
            origin = [str(l) if l else "" for l in lower]
        terms = []
        for d, ix in enumerate(indices):
            sub = self.index_c(ix)
            if origin[d]:
                sub = f"({sub} - {origin[d]})"
            else:
                sub = f"({sub})"
            stride = 1
            for inner in dims[d + 1 :]:
                stride *= inner
            terms.append(sub if stride == 1 else f"{sub}*{stride}")
        return f"{name}[{' + '.join(terms)}]"

    def expr_c(self, expr: Expr) -> str:
        if isinstance(expr, Const):
            v = expr.value
            if isinstance(v, float):
                return repr(v)
            return f"{v}"
        if isinstance(expr, VarExpr):
            return f"({self.index_c(expr.index)})"
        if isinstance(expr, Ref):
            return self.linearize(expr.func, expr.indices)
        if isinstance(expr, BinOp):
            return (
                f"({self.expr_c(expr.left)} {expr.op} "
                f"{self.expr_c(expr.right)})"
            )
        if isinstance(expr, UnOp):
            return f"(-{self.expr_c(expr.operand)})"
        if isinstance(expr, Minimum):
            return f"fmin({self.expr_c(expr.left)}, {self.expr_c(expr.right)})"
        if isinstance(expr, Maximum):
            return f"fmax({self.expr_c(expr.left)}, {self.expr_c(expr.right)})"
        if isinstance(expr, Call):
            args = ", ".join(self.expr_c(a) for a in expr.args)
            return f"{expr.fn}({args})"
        if isinstance(expr, Select):
            return (
                f"({self.cond_c(expr.condition)} ? "
                f"{self.expr_c(expr.true_expr)} : "
                f"{self.expr_c(expr.false_expr)})"
            )
        raise TypeError(f"cannot emit {type(expr).__name__}")

    def cond_c(self, cond: Condition) -> str:
        atoms = []
        for lhs, op, rhs in cond.atoms:
            atoms.append(f"({self.index_c(lhs)} {op} {self.index_c(rhs)})")
        return " && ".join(atoms)

    # -- loop nests --------------------------------------------------------
    def emit_stage_loops(
        self,
        stage: "Function",
        bounds: list[tuple[str, str]],
        pragma_inner: bool = True,
    ) -> None:
        """Emit the stage's loop nest over [lb, ub] string bounds."""
        variables = stage.variables
        for d, var in enumerate(variables):
            lb, ub = bounds[d]
            if d == len(variables) - 1 and pragma_inner:
                self.emit("#pragma ivdep")
            self.emit(
                f"for (int {var.name} = {lb}; {var.name} <= {ub}; "
                f"{var.name}++) {{"
            )
            self.indent += 1
        self.emit_stage_body(stage)
        for _ in variables:
            self.indent -= 1
            self.emit("}")

    def emit_stage_body(self, stage: "Function") -> None:
        lhs = self.linearize(
            stage, [IndexExpr.of_var(v) for v in stage.variables]
        )
        if isinstance(stage, Interp):
            # parity dispatch rendered as a chain of parity tests
            first = True
            for parity, expr in stage.parity_cases.items():
                test = " && ".join(
                    f"(({v.name}) % 2 == {r})"
                    for v, r in zip(stage.variables, parity)
                )
                kw = "if" if first else "else if"
                self.emit(f"{kw} ({test}) {{")
                with self.block():
                    body = self._coarse_interp_expr(stage, expr)
                    self.emit(f"{lhs} = {body};")
                self.emit("}")
                first = False
            return
        first = True
        for piece in stage.defn:
            if isinstance(piece, Case):
                kw = "if" if first else "else if"
                self.emit(f"{kw} ({self.cond_c(piece.condition)}) {{")
                with self.block():
                    self.emit(f"{lhs} = {self.expr_c(piece.expr)};")
                self.emit("}")
            else:
                if first:
                    self.emit(f"{lhs} = {self.expr_c(piece)};")
                else:
                    self.emit("else {")
                    with self.block():
                        self.emit(f"{lhs} = {self.expr_c(piece)};")
                    self.emit("}")
            first = False

    def _coarse_interp_expr(self, stage: Interp, expr: Expr) -> str:
        """Interp expressions subscript the coarse producer with the
        halved fine index."""

        def rewrite(e: Expr) -> str:
            if isinstance(e, Ref):
                halved = []
                for ix in e.indices:
                    var = ix.single_variable()
                    if var is None:
                        halved.append(self.index_c(ix))
                        continue
                    off = int(ix.const.constant_value())
                    term = f"({var.name}) / 2"
                    if off:
                        term += f" + {off}"
                    halved.append(term)
                name, _ = self.stage_store[e.func]
                dims = [
                    iv.size().int_value(self.compiled.bindings)
                    for iv in e.func.domain.intervals
                ]
                terms = []
                for d, sub in enumerate(halved):
                    stride = 1
                    for inner in dims[d + 1 :]:
                        stride *= inner
                    terms.append(
                        f"({sub})" if stride == 1 else f"({sub})*{stride}"
                    )
                return f"{name}[{' + '.join(terms)}]"
            if isinstance(e, BinOp):
                return f"({rewrite(e.left)} {e.op} {rewrite(e.right)})"
            if isinstance(e, UnOp):
                return f"(-{rewrite(e.operand)})"
            if isinstance(e, Const):
                return repr(e.value) if isinstance(e.value, float) else str(e.value)
            return self.expr_c(e)

        return rewrite(expr)

    # -- top level -----------------------------------------------------------
    def generate(self) -> str:
        compiled = self.compiled
        dag = compiled.dag
        cfg = compiled.config
        bindings = compiled.bindings
        storage = compiled.storage

        self.emit(POOL_RUNTIME)
        self.emit("#include <math.h>")
        self.emit("#define max(a, b) ((a) > (b) ? (a) : (b))")
        self.emit("#define min(a, b) ((a) < (b) ? (a) : (b))")
        self.emit()
        params = ", ".join(f"int {p}" for p in sorted(bindings))
        inputs = ", ".join(
            f"double *{self.cname(g.name)}" for g in dag.inputs
        )
        outs = ", ".join(
            f"double **out_{self.cname(o.name)}" for o in dag.outputs
        )
        self.emit(
            f"void pipeline_{self.cname(dag.name)}({params}, {inputs}, "
            f"{outs})"
        )
        self.emit("{")
        self.indent += 1

        for grid in dag.inputs:
            self.stage_store[grid] = (self.cname(grid.name), "input")

        # plan array names for live-outs
        for gi, group in enumerate(compiled.grouping.groups):
            for stage in group.live_outs():
                aid = storage.array_of[stage]
                self.stage_store[stage] = (self.array_name(aid), "array")

        emitted_alloc: set[int] = set()
        for gi, group in enumerate(compiled.grouping.groups):
            self.emit(f"/* group {gi}: anchor {group.anchor.name} */")
            for stage in group.live_outs():
                aid = storage.array_of[stage]
                if aid in emitted_alloc:
                    continue
                emitted_alloc.add(aid)
                shape = storage.array_shapes[aid]
                elems = 1
                for s in shape:
                    elems *= s
                users = [
                    s.name
                    for s, a in storage.array_of.items()
                    if a == aid
                ]
                self.emit(f"/* users : {users} */")
                name = self.array_name(aid)
                self.emit(
                    f"double * {name} = (double *) (pool_allocate("
                    f"sizeof(double) * {elems}));"
                )

            if cfg.tile and group.size > 1 and gi not in getattr(
                compiled, "_diamond_groups", set()
            ):
                self.emit_tiled_group(gi, group)
            else:
                self.emit_straight_group(group)

            for aid, last in compiled._free_after.items():
                if last == gi and aid in emitted_alloc:
                    self.emit(
                        f"pool_deallocate({self.array_name(aid)});"
                    )
            self.emit()

        for out in dag.outputs:
            aid = storage.array_of[out]
            self.emit(
                f"*out_{self.cname(out.name)} = {self.array_name(aid)};"
            )
        self.indent -= 1
        self.emit("}")
        return "\n".join(self.lines) + "\n"

    def emit_straight_group(self, group) -> None:
        bindings = self.compiled.bindings
        live = set(group.live_outs())
        for stage in group.stages:
            dom = stage.domain_box(bindings)
            if stage not in live:
                # full-size temporary for an unfused internal stage
                name = f"_tmp_{self.cname(stage.name)}"
                self.emit(
                    f"double * {name} = (double *) (pool_allocate("
                    f"sizeof(double) * {dom.volume()}));"
                )
                self.stage_store[stage] = (name, "array")
            depth = self.collapse_depth(stage)
            self.emit(
                "#pragma omp parallel for schedule(static)"
                + (f" collapse({depth})" if depth > 1 else "")
            )
            bounds = [
                (str(iv.lb), str(iv.ub)) for iv in dom.intervals
            ]
            self.emit_stage_loops(stage, bounds)

    def emit_tiled_group(self, gi: int, group) -> None:
        compiled = self.compiled
        bindings = compiled.bindings
        cfg = compiled.config
        anchor_dom = group.anchor.domain_box(bindings)
        tile_shape = cfg.tile_shape(group.anchor.ndim)
        splan = compiled.storage.group_scratch(gi)
        live = set(group.live_outs())

        ndim = group.anchor.ndim
        depth = ndim  # perfect tile loops collapse over every dimension
        self.emit(
            f"#pragma omp parallel for schedule(static) collapse({depth})"
        )
        tvars = [f"T_{d}" for d in range(ndim)]
        for d in range(ndim):
            lo = anchor_dom.intervals[d].lb
            hi = anchor_dom.intervals[d].ub
            self.emit(
                f"for (int {tvars[d]} = {lo}; {tvars[d]} <= {hi}; "
                f"{tvars[d]} += {tile_shape[d]}) {{"
            )
            self.indent += 1

        # scratchpads sunk to the innermost tile loop (section 3.2.5)
        self.emit("/* Scratchpads */")
        by_buffer: dict[int, list[str]] = {}
        for stage, bid in splan.buffer_of.items():
            by_buffer.setdefault(bid, []).append(stage.name)
        for bid, users in sorted(by_buffer.items()):
            shape = splan.buffer_shapes[bid]
            elems = " * ".join(str(s) for s in shape)
            self.emit(f"/* users : {users} */")
            self.emit(f"double _buf_{gi}_{bid}[({elems})];")
            for stage in splan.buffer_of:
                if splan.buffer_of[stage] == bid:
                    self.stage_store[stage] = (
                        f"_buf_{gi}_{bid}",
                        "scratch",
                    )
                    self.scratch_shape[stage] = shape

        # per-stage clamped loop nests over the tile's needed regions;
        # rendered with representative halo offsets
        tile = Box.from_bounds(
            [
                (iv.lb, min(iv.ub, iv.lb + t - 1))
                for iv, t in zip(anchor_dom.intervals, tile_shape)
            ]
        )
        regions = group.tile_regions(tile)
        scales = group.scales()
        for stage in group.stages:
            region = regions.get(stage)
            if region is None:
                continue
            dom = stage.domain_box(bindings)
            bounds = []
            origin = []
            for d in range(stage.ndim):
                halo_lo = tile.intervals[d].lb - region.intervals[d].lb
                halo_hi = region.intervals[d].ub - (
                    tile.intervals[d].lb + tile_shape[d] - 1
                )
                scale = scales[stage][d]
                if scale == 1:
                    base = tvars[d]
                elif scale.denominator == 1:
                    base = f"{scale.numerator}*{tvars[d]}"
                else:
                    base = f"({tvars[d]})/{scale.denominator}"
                lb = (
                    f"max({dom.intervals[d].lb}, {base} - {halo_lo})"
                )
                span = int(scale * tile_shape[d]) - 1 + halo_hi
                ub = (
                    f"min({dom.intervals[d].ub}, {base} + {span})"
                )
                bounds.append((lb, ub))
                origin.append(f"{base} - {halo_lo}")
            if self.stage_store.get(stage, ("", ""))[1] == "scratch":
                self.scratch_origin[stage] = tuple(origin)
            self.emit(f"/* stage {stage.name} */")
            self.emit_stage_loops(stage, bounds)

        for _ in range(ndim):
            self.indent -= 1
            self.emit("}")

    def collapse_depth(self, stage: "Function") -> int:
        """Parallel-collapse depth: the number of outer dimensions whose
        loop is perfectly nested (a piecewise boundary definition leaves
        only the outermost loop perfect, per section 3.2.5)."""
        if len(stage.defn) == 1 and not isinstance(stage.defn[0], Case):
            return stage.ndim
        return max(1, stage.ndim - 1)


def generate_c(compiled: "CompiledPipeline") -> str:
    """Emit Figure-8-style C/OpenMP code for a compiled pipeline."""
    return _Emitter(compiled).generate()


def generated_loc(compiled: "CompiledPipeline") -> int:
    """Generated lines of code (Table 3 column)."""
    text = generate_c(compiled)
    return sum(1 for line in text.splitlines() if line.strip())
