"""Native C/OpenMP JIT backend: compile and run the emitted PolyMG C.

The paper's headline speedups come from *compiled* C++/OpenMP; this
module closes the loop on our reproduction by taking the translation
unit :func:`repro.backend.codegen_c.generate_native_c` emits — the
Figure-8 pipeline body plus a descriptor-validating ``polymg_run``
entry point — compiling it out-of-process with the system toolchain
(``cc -O3 -march=native -fopenmp -fPIC -shared``, auto-discovered,
flags overridable via :attr:`repro.config.PolyMgConfig.native_cflags`),
loading the shared object via :mod:`ctypes`, and invoking it zero-copy
on the numpy buffers the executor already manages.

Shared objects are cached on disk in the content-addressed
:class:`~repro.cache.NativeArtifactStore` — the key hashes the emitted
source, the compiler flags, and the compiler's identity line, so a
warm process (or a warm cache directory) pays zero compile time.

Everything here is *fallible by design*: a missing toolchain, a failed
or timed-out compile, an unlowerable construct (diamond-tiled smoother
groups, non-double dtypes, attached fault injectors), or a rejected
ABI descriptor raises a typed
:class:`~repro.errors.NativeBackendError` subclass, and the executor
degrades to the planned numpy backend with a structured incident —
never a crash, never a silent wrong answer.

Environment switches: ``REPRO_CC`` pins the compiler (a nonexistent
value simulates a toolchain-less host); ``REPRO_NATIVE_TIMEOUT``
bounds the out-of-process compile in seconds (default 120);
``REPRO_NATIVE_CACHE_DIR`` relocates the artifact store.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from ..cache import native_artifact_store
from ..errors import (
    NativeABIError,
    NativeBackendError,
    NativeCompileError,
    NativeLoweringError,
    NativeQuarantinedError,
    NativeToolchainError,
)
from .codegen_c import (
    DRIVER_ENTRY_NAME,
    NATIVE_ENTRY_NAME,
    generate_native_c,
)

if TYPE_CHECKING:  # pragma: no cover
    from .executor import CompiledPipeline

__all__ = [
    "DEFAULT_CFLAGS",
    "discover_compiler",
    "compiler_ident",
    "unlowerable_reason",
    "native_artifact_key",
    "NativeModule",
    "NativeRunner",
    "DriveResult",
    "NativeBuildHandle",
    "build_native_runner",
    "start_native_build",
    "native_isolation_mode",
]

#: default out-of-process compile flags (overridable per config)
DEFAULT_CFLAGS = ("-O3", "-march=native", "-fopenmp", "-fPIC", "-shared")


def _compile_timeout() -> float:
    try:
        return float(os.environ.get("REPRO_NATIVE_TIMEOUT", "120"))
    except ValueError:
        return 120.0


# ---------------------------------------------------------------------------
# toolchain discovery
# ---------------------------------------------------------------------------

def discover_compiler() -> str | None:
    """Absolute path of the C compiler to use, or ``None``.

    ``REPRO_CC`` wins when set (and resolves strictly — pointing it at
    a nonexistent binary deliberately simulates a toolchain-less
    host); otherwise the first of ``cc``/``gcc``/``clang`` on PATH.
    """
    env = os.environ.get("REPRO_CC")
    if env is not None:
        if os.path.sep in env and os.access(env, os.X_OK):
            return env
        return shutil.which(env)
    for candidate in ("cc", "gcc", "clang"):
        path = shutil.which(candidate)
        if path:
            return path
    return None


_IDENT_MEMO: dict[str, str] = {}
_IDENT_LOCK = threading.Lock()


def compiler_ident(cc: str) -> str:
    """First ``--version`` line of the compiler (part of the artifact
    content address: a toolchain upgrade must bust the .so cache)."""
    with _IDENT_LOCK:
        hit = _IDENT_MEMO.get(cc)
        if hit is not None:
            return hit
    try:
        proc = subprocess.run(
            [cc, "--version"], capture_output=True, text=True, timeout=10
        )
        ident = (proc.stdout or proc.stderr).splitlines()[0].strip()
    except (OSError, subprocess.TimeoutExpired, IndexError):
        ident = f"unknown:{cc}"
    with _IDENT_LOCK:
        _IDENT_MEMO[cc] = ident
    return ident


# ---------------------------------------------------------------------------
# lowerability gate
# ---------------------------------------------------------------------------

def unlowerable_reason(compiled: "CompiledPipeline") -> str | None:
    """Why this pipeline cannot run natively, or ``None`` if it can.

    The C emitter renders every schedule, but two constructs execute
    *differently* from the numpy backend and therefore stay on it:
    diamond-tiled smoother groups (the Pluto-style wavefront executor
    has no C rendering) and non-double dtypes (the emitted kernels are
    ``double`` throughout).  Fault-injection hooks are a per-execute
    runtime condition, checked by the executor, not here.
    """
    if getattr(compiled, "_diamond_groups", None):
        return "diamond-tiled smoother groups have no C lowering"
    for func in list(compiled.dag.inputs) + list(compiled.dag.stages):
        if func.dtype.np_dtype != np.float64:
            return (
                f"stage {func.name!r} has non-double dtype "
                f"{func.dtype.name}"
            )
    return None


# ---------------------------------------------------------------------------
# content address + out-of-process compile
# ---------------------------------------------------------------------------

def native_artifact_key(
    source: str, cflags: tuple[str, ...], ident: str
) -> str:
    """Content address of a shared object: source + flags + compiler."""
    h = hashlib.sha256()
    h.update(source.encode())
    h.update(repr(tuple(cflags)).encode())
    h.update(ident.encode())
    return h.hexdigest()


def _compile_shared_object(
    cc: str,
    cflags: tuple[str, ...],
    source: str,
    key: str,
    timeout: float,
) -> Path:
    """Compile ``source`` out-of-process and rename the result into the
    artifact store.  Raises :class:`NativeCompileError` on any failure."""
    store = native_artifact_store()
    store.root.mkdir(parents=True, exist_ok=True)
    # stage the build inside the store root so the final rename is
    # same-filesystem (atomic)
    with tempfile.TemporaryDirectory(
        dir=store.root, prefix=".build-"
    ) as td:
        src = Path(td) / "pipeline.c"
        out = Path(td) / "pipeline.so"
        src.write_text(source)
        cmd = [cc, *cflags, str(src), "-o", str(out), "-lm"]
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=timeout
            )
        except subprocess.TimeoutExpired:
            raise NativeCompileError(
                "native compile timed out",
                cc=cc,
                timeout_s=timeout,
            )
        except OSError as exc:
            raise NativeCompileError(
                "could not invoke C compiler", cc=cc, errno=str(exc)
            )
        if proc.returncode != 0:
            raise NativeCompileError(
                "C compiler failed on emitted source",
                cc=cc,
                returncode=proc.returncode,
                stderr=proc.stderr[-2000:],
            )
        return store.put(
            key,
            out,
            meta={
                "cc": cc,
                "ident": compiler_ident(cc),
                "cflags": list(cflags),
                "source_bytes": len(source),
            },
        )


# ---------------------------------------------------------------------------
# ctypes module wrapper
# ---------------------------------------------------------------------------


class _PmgBuffer(ctypes.Structure):
    """Mirror of the emitted ``pmg_buffer`` descriptor struct."""

    _fields_ = [
        ("data", ctypes.POINTER(ctypes.c_double)),
        ("ndim", ctypes.c_int64),
        ("shape", ctypes.POINTER(ctypes.c_int64)),
        ("strides", ctypes.POINTER(ctypes.c_int64)),
    ]


class PmgDriveCtrl(ctypes.Structure):
    """Mirror of the emitted ``pmg_drive_ctrl`` struct (whole-solve
    driver ABI, see :func:`~repro.backend.codegen_c.generate_native_c`)."""

    _fields_ = [
        ("max_cycles", ctypes.c_int64),
        ("iterate_index", ctypes.c_int64),
        ("rhs_index", ctypes.c_int64),
        ("tol", ctypes.c_double),
        ("norm_scale", ctypes.c_double),
        ("inv_h2", ctypes.c_double),
        ("norms", ctypes.POINTER(ctypes.c_double)),
        ("progress", ctypes.POINTER(ctypes.c_int64)),
        ("cycles_done", ctypes.c_int64),
        ("converged", ctypes.c_int64),
    ]


class DriveResult:
    """Outcome of one whole-solve driver burst.

    ``outputs`` maps output names to arrays holding the iterate after
    the last *accepted* cycle; ``norms`` is the per-cycle residual-norm
    history (length ``cycles``); ``converged`` reports whether the
    in-kernel ``norm < tol`` test fired."""

    __slots__ = ("outputs", "norms", "cycles", "converged")

    def __init__(
        self,
        outputs: dict[str, np.ndarray],
        norms: list[float],
        cycles: int,
        converged: bool,
    ) -> None:
        self.outputs = outputs
        self.norms = norms
        self.cycles = cycles
        self.converged = converged


class NativeModule:
    """A loaded pipeline shared object.

    The emitted translation unit keeps its memory pool in module
    statics (the paper's cross-cycle pooling), which are not
    thread-safe — every invocation holds :attr:`lock`.  Modules are
    process-global (one per .so path) and never unloaded: dlopen
    handles are reference-counted and an unlinked-but-open .so stays
    valid on Linux, so eviction of the backing file is safe.
    """

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self.lock = threading.Lock()
        try:
            self._lib = ctypes.CDLL(str(path))
        except OSError as exc:
            raise NativeCompileError(
                "could not load compiled shared object",
                path=str(path),
                error=str(exc),
            )
        try:
            self._run = getattr(self._lib, NATIVE_ENTRY_NAME)
            self._pool_bytes = self._lib.polymg_pool_bytes
            self._pool_release = self._lib.polymg_pool_release
        except AttributeError as exc:
            raise NativeCompileError(
                "shared object is missing the native ABI entry points",
                path=str(path),
                error=str(exc),
            )
        self._run.restype = ctypes.c_int
        self._run.argtypes = [
            ctypes.POINTER(ctypes.c_int64),  # params
            ctypes.c_int64,                  # n_params
            ctypes.c_int64,                  # nthreads
            ctypes.POINTER(_PmgBuffer),      # inputs
            ctypes.c_int64,                  # n_inputs
            ctypes.POINTER(_PmgBuffer),      # outputs
            ctypes.c_int64,                  # n_outputs
        ]
        self._pool_bytes.restype = ctypes.c_int64
        self._pool_bytes.argtypes = []
        self._pool_release.restype = None
        self._pool_release.argtypes = []
        # the whole-solve driver entry is emitted only for eligible
        # pipelines (single output, non-degenerate interior) — older
        # cached artifacts and ineligible shapes simply lack the symbol
        try:
            self._drive = getattr(self._lib, DRIVER_ENTRY_NAME)
        except AttributeError:
            self._drive = None
        if self._drive is not None:
            self._drive.restype = ctypes.c_int
            self._drive.argtypes = [
                ctypes.POINTER(ctypes.c_int64),  # params
                ctypes.c_int64,                  # n_params
                ctypes.c_int64,                  # nthreads
                ctypes.POINTER(_PmgBuffer),      # inputs
                ctypes.c_int64,                  # n_inputs
                ctypes.POINTER(_PmgBuffer),      # outputs
                ctypes.c_int64,                  # n_outputs
                ctypes.POINTER(PmgDriveCtrl),    # ctrl
            ]

    def pool_bytes(self) -> int:
        with self.lock:
            return int(self._pool_bytes())

    def pool_release(self) -> None:
        with self.lock:
            self._pool_release()


_MODULES: dict[str, NativeModule] = {}
_MODULES_LOCK = threading.Lock()


def _load_module(path: Path) -> NativeModule:
    key = str(Path(path).resolve())
    with _MODULES_LOCK:
        mod = _MODULES.get(key)
        if mod is None:
            mod = NativeModule(path)
            _MODULES[key] = mod
        return mod


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------


class NativeRunner:
    """Zero-copy invoker of a loaded pipeline shared object.

    Holds the baked call geometry (parameter values in sorted-name
    order, input/output functions in DAG order with their concrete
    shapes) and translates numpy arrays into ``pmg_buffer``
    descriptors.  C-contiguous float64 inputs are passed by pointer;
    anything else (sliced, Fortran-ordered, float32, misaligned) is
    normalized with ``np.ascontiguousarray(..., dtype=float64)`` —
    semantically the same upcast/copy the numpy backend performs — so
    the shared object only ever sees dense row-major doubles.
    """

    def __init__(self, module: NativeModule, compiled: "CompiledPipeline"):
        self.module = module
        dag = compiled.dag
        bindings = compiled.bindings
        self.pipeline = dag.name
        self.param_values = [
            int(bindings[p]) for p in sorted(bindings)
        ]
        self.inputs = [
            (grid, grid.domain_box(bindings).shape())
            for grid in dag.inputs
        ]
        self.outputs = [
            (out, out.domain_box(bindings).shape())
            for out in dag.outputs
        ]
        #: set once the verify_level=full cross-check has passed
        self.verified = False

    # -- descriptor marshalling -----------------------------------------
    def _normalize(self, func, arr: np.ndarray) -> np.ndarray:
        if (
            arr.dtype == np.float64
            and arr.flags.c_contiguous
            and arr.flags.aligned
        ):
            return arr
        try:
            return np.ascontiguousarray(arr, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise NativeABIError(
                f"input {func.name!r} cannot be normalized to dense "
                "row-major float64",
                pipeline=self.pipeline,
                dtype=str(arr.dtype),
                error=str(exc),
            )

    @staticmethod
    def _descriptor(arr: np.ndarray, keepalive: list) -> _PmgBuffer:
        shape = (ctypes.c_int64 * arr.ndim)(*arr.shape)
        strides = (ctypes.c_int64 * arr.ndim)(
            *(s // arr.itemsize for s in arr.strides)
        )
        keepalive.extend((shape, strides, arr))
        return _PmgBuffer(
            arr.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
            arr.ndim,
            shape,
            strides,
        )

    def run(
        self,
        input_arrays: dict,
        num_threads: int,
    ) -> dict[str, np.ndarray]:
        """One pipeline invocation; returns ``{output name: array}``."""
        keepalive: list = []
        in_bufs = (_PmgBuffer * max(1, len(self.inputs)))()
        for k, (grid, shape) in enumerate(self.inputs):
            arr = self._normalize(grid, input_arrays[grid])
            if arr.shape != shape:
                raise NativeABIError(
                    f"input {grid.name!r} has shape {arr.shape}, the "
                    f"shared object was compiled for {shape}",
                    pipeline=self.pipeline,
                )
            in_bufs[k] = self._descriptor(arr, keepalive)
        outputs: dict[str, np.ndarray] = {}
        out_bufs = (_PmgBuffer * max(1, len(self.outputs)))()
        for k, (out, shape) in enumerate(self.outputs):
            arr = np.empty(shape, dtype=np.float64)
            outputs[out.name] = arr
            out_bufs[k] = self._descriptor(arr, keepalive)
        n_params = len(self.param_values)
        params = (ctypes.c_int64 * max(1, n_params))(
            *(self.param_values or [0])
        )
        with self.module.lock:
            rc = self.module._run(
                params,
                n_params,
                int(num_threads),
                in_bufs,
                len(self.inputs),
                out_bufs,
                len(self.outputs),
            )
        if rc != 0:
            raise self._error_for(rc)
        return outputs

    # -- whole-solve driver ---------------------------------------------
    @property
    def can_drive(self) -> bool:
        """Whether the loaded artifact exports ``polymg_drive``."""
        return getattr(self.module, "_drive", None) is not None

    def drive(
        self,
        input_arrays: dict,
        num_threads: int,
        *,
        max_cycles: int,
        iterate_index: int,
        rhs_index: int,
        tol: float,
        norm_scale: float,
        inv_h2: float,
    ) -> DriveResult:
        """One multi-cycle driver burst: run up to ``max_cycles``
        multigrid cycles (with the in-kernel ``norm < tol`` convergence
        test) inside the shared object's persistent OpenMP team.

        Returns the iterate after the last accepted cycle plus the full
        per-cycle residual-norm history; never mutates the caller's
        input arrays (the driver ping-pongs through pool buffers and
        copies out only on success)."""
        if not self.can_drive:
            raise NativeABIError(
                "shared object does not export the whole-solve driver",
                pipeline=self.pipeline,
            )
        keepalive: list = []
        in_bufs = (_PmgBuffer * max(1, len(self.inputs)))()
        for k, (grid, shape) in enumerate(self.inputs):
            arr = self._normalize(grid, input_arrays[grid])
            if arr.shape != shape:
                raise NativeABIError(
                    f"input {grid.name!r} has shape {arr.shape}, the "
                    f"shared object was compiled for {shape}",
                    pipeline=self.pipeline,
                )
            in_bufs[k] = self._descriptor(arr, keepalive)
        outputs: dict[str, np.ndarray] = {}
        out_bufs = (_PmgBuffer * max(1, len(self.outputs)))()
        for k, (out, shape) in enumerate(self.outputs):
            arr = np.empty(shape, dtype=np.float64)
            outputs[out.name] = arr
            out_bufs[k] = self._descriptor(arr, keepalive)
        n_params = len(self.param_values)
        params = (ctypes.c_int64 * max(1, n_params))(
            *(self.param_values or [0])
        )
        norms = (ctypes.c_double * max_cycles)()
        ctrl = PmgDriveCtrl(
            max_cycles=max_cycles,
            iterate_index=iterate_index,
            rhs_index=rhs_index,
            tol=float(tol),
            norm_scale=float(norm_scale),
            inv_h2=float(inv_h2),
            norms=norms,
            progress=None,
        )
        with self.module.lock:
            rc = self.module._drive(
                params,
                n_params,
                int(num_threads),
                in_bufs,
                len(self.inputs),
                out_bufs,
                len(self.outputs),
                ctypes.byref(ctrl),
            )
        if rc == 4:
            raise NativeABIError(
                "shared object rejected the driver control block",
                pipeline=self.pipeline,
                returncode=rc,
            )
        if rc != 0:
            raise self._error_for(rc)
        done = int(ctrl.cycles_done)
        return DriveResult(
            outputs=outputs,
            norms=[float(norms[i]) for i in range(done)],
            cycles=done,
            converged=bool(ctrl.converged),
        )

    def _error_for(self, rc: int) -> NativeBackendError:
        if rc == 500 or rc == -1:
            return NativeBackendError(
                "native pool allocation failed",
                pipeline=self.pipeline,
                returncode=rc,
            )
        if 100 <= rc < 200:
            which = self.inputs[rc - 100][0].name if (
                rc - 100 < len(self.inputs)
            ) else "?"
            return NativeABIError(
                f"shared object rejected input descriptor {which!r}",
                pipeline=self.pipeline,
                returncode=rc,
            )
        if 200 <= rc < 300:
            which = self.outputs[rc - 200][0].name if (
                rc - 200 < len(self.outputs)
            ) else "?"
            return NativeABIError(
                f"shared object rejected output descriptor {which!r}",
                pipeline=self.pipeline,
                returncode=rc,
            )
        return NativeABIError(
            "shared object rejected the call geometry",
            pipeline=self.pipeline,
            returncode=rc,
        )

    def pool_bytes(self) -> int:
        return self.module.pool_bytes()


# ---------------------------------------------------------------------------
# build orchestration
# ---------------------------------------------------------------------------


def native_isolation_mode(config) -> str:
    """The effective isolation mode for native invocations:
    ``REPRO_NATIVE_ISOLATION`` wins when set (and names a known mode),
    otherwise :attr:`~repro.config.PolyMgConfig.native_isolation`."""
    from ..config import ISOLATION_MODES

    env = os.environ.get("REPRO_NATIVE_ISOLATION")
    if env in ISOLATION_MODES:
        return env
    return getattr(config, "native_isolation", "none")


def build_native_runner(
    compiled: "CompiledPipeline", timeout: float | None = None
) -> tuple[NativeRunner, dict]:
    """Lower, compile (or fetch from the artifact store), load, and
    wrap one pipeline.  Returns ``(runner, info)`` where ``info``
    records provenance (``cache_hit``, ``artifact``, ``cc``).  Raises
    a typed :class:`~repro.errors.NativeBackendError` on any failure.

    Under ``native_isolation="sandbox"`` the artifact is *never*
    dlopened here: the returned runner routes every invocation through
    the out-of-process executor pool (:mod:`repro.backend.sandbox`),
    and a content hash the store has quarantined (crashed too many
    times, see :meth:`~repro.cache.NativeArtifactStore.record_crash`)
    is refused before compile or load with
    :class:`~repro.errors.NativeQuarantinedError`.
    """
    reason = unlowerable_reason(compiled)
    if reason is not None:
        raise NativeLoweringError(
            "pipeline cannot be lowered to native code",
            pipeline=compiled.dag.name,
            reason=reason,
        )
    cc = discover_compiler()
    if cc is None:
        raise NativeToolchainError(
            "no C compiler found (REPRO_CC, cc, gcc, clang)",
            pipeline=compiled.dag.name,
            repro_cc=os.environ.get("REPRO_CC"),
        )
    cflags = tuple(compiled.config.native_cflags or DEFAULT_CFLAGS)
    source = generate_native_c(compiled)
    ident = compiler_ident(cc)
    key = native_artifact_key(source, cflags, ident)
    store = native_artifact_store()
    if store.is_quarantined(key):
        raise NativeQuarantinedError(
            "artifact is quarantined after repeated crashes; "
            "refusing to reload it",
            pipeline=compiled.dag.name,
            artifact_key=key,
        )
    so_path = store.get(key)
    cache_hit = so_path is not None
    if so_path is None:
        so_path = _compile_shared_object(
            cc, cflags, source, key,
            timeout if timeout is not None else _compile_timeout(),
        )
    isolation = native_isolation_mode(compiled.config)
    if isolation == "sandbox":
        from .sandbox import SandboxRunner

        runner: NativeRunner = SandboxRunner(
            compiled, str(so_path), key
        )
    else:
        runner = NativeRunner(_load_module(so_path), compiled)
    info = {
        "cache_hit": cache_hit,
        "artifact": str(so_path),
        "key": key,
        "cc": cc,
        "cflags": list(cflags),
        "isolation": isolation,
    }
    return runner, info


class NativeBuildHandle:
    """State of one (possibly background) native build.

    States: ``pending`` → ``ready`` | ``failed``.  The executor polls
    :meth:`ready_runner` on each execute — no blocking on the hot path
    — and :meth:`wait` joins the build when a caller needs the answer
    (benchmarks, ``verify_level=full``, the autotuner's timed region).
    """

    def __init__(self) -> None:
        self._done = threading.Event()
        self.runner: NativeRunner | None = None
        self.error: NativeBackendError | None = None
        self.info: dict = {}
        self.compile_time_s: float = 0.0
        #: the background build thread (``None`` for inline builds) —
        #: always a *daemon* so a compile outliving the process can
        #: never block interpreter shutdown; retained here so
        #: ``CompiledPipeline.close()`` can :meth:`join` it bounded
        self.thread: threading.Thread | None = None

    @property
    def state(self) -> str:
        if not self._done.is_set():
            return "pending"
        return "ready" if self.runner is not None else "failed"

    def wait(self, timeout: float | None = None) -> bool:
        return self._done.wait(timeout)

    def join(self, timeout: float | None = None) -> bool:
        """Join the background build thread (bounded); returns whether
        the thread is no longer running.  A no-op for inline builds."""
        thread = self.thread
        if thread is None:
            return True
        thread.join(timeout)
        return not thread.is_alive()

    def ready_runner(self) -> NativeRunner | None:
        if self._done.is_set():
            return self.runner
        return None

    def _finish(self, runner, error, info, elapsed) -> None:
        self.runner = runner
        self.error = error
        self.info = info
        self.compile_time_s = elapsed
        self._done.set()


def start_native_build(
    compiled: "CompiledPipeline",
    background: bool = True,
    timeout: float | None = None,
) -> NativeBuildHandle:
    """Kick off a native build for ``compiled``.

    ``background=True`` (the default, used by ``compile_pipeline``)
    runs the toolchain on a daemon thread so compilation overlaps the
    first (numpy-executed) cycles; ``background=False`` builds inline.
    """
    handle = NativeBuildHandle()

    def build() -> None:
        t0 = time.perf_counter()
        try:
            runner, info = build_native_runner(compiled, timeout=timeout)
            handle._finish(
                runner, None, info, time.perf_counter() - t0
            )
        except NativeBackendError as exc:
            handle._finish(None, exc, {}, time.perf_counter() - t0)
        except Exception as exc:  # defensive: never kill the process
            handle._finish(
                None,
                NativeBackendError(
                    "unexpected native build failure", error=repr(exc)
                ),
                {},
                time.perf_counter() - t0,
            )

    if background:
        thread = threading.Thread(
            target=build, name="polymg-native-build", daemon=True
        )
        handle.thread = thread
        thread.start()
    else:
        build()
    return handle
