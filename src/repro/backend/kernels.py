"""Ahead-of-time kernel plans for the numpy backend.

The unplanned interpreter (:mod:`repro.backend.evaluate`) re-derives,
on *every* tile of *every* cycle, work that depends only on the bound
parameters: Case condition boxes, Interp parity decompositions, reader
hull boxes and stride/permutation tuples, tile grids, and scratch
buffer shapes — and it walks expression trees allocating a fresh
ndarray per operator.  On realistic multigrid cycles this symbolic
overhead dominates wall-clock, which inverts the paper's whole premise
(pay analysis once at compile time, run tiles at memory speed).

This module lowers each (group, stage-piece) into a
:class:`StageKernel` once, right after parameter binding:

* **target geometry** — concrete output boxes from
  :func:`~repro.backend.evaluate.stage_piece_targets` /
  :func:`~repro.backend.evaluate.interp_parity_pieces`, turned into
  plain slice tuples against the destination array;
* **reader specs** (:class:`RefSpec`) — each ``Ref`` becomes a
  precomposed fancy-index (hull offsets, strides, constant-axis drops),
  an optional axis permutation, and an optional broadcast expansion.
  Materializing a ref at run time is a dictionary lookup plus three
  numpy view operations — no symbolic math;
* **op tapes** — a flattened post-order instruction list evaluated with
  ``np.add/subtract/multiply/divide(..., out=...)`` into a per-thread
  temp arena whose slots are sized (and alias-checked for in-place
  reuse) at plan time, so steady-state execution performs **zero
  per-op allocations**.

Result dtypes are discovered by a *sample run* at plan time: every
plan-time value carries a tiny representative array (or the actual
Python scalar for constants, which matters for value-based promotion),
and each op's sample is computed with the same numpy expression the
interpreter would use.  Sub-expressions whose operands are all known at
plan time (constants, index grids, condition masks) are folded.  This
makes planned execution *bitwise identical* to the unplanned
interpreter — asserted across the fuzz pipelines in the tests.

Tiled groups additionally get a :class:`GroupTilePlan` hoisting the
tile grid, per-tile stage regions, and scratch-buffer shape reductions
out of the execution loop; the unplanned executor path reuses the same
structure.  Plans are built by
:meth:`~repro.backend.executor.CompiledPipeline.plan` and shared across
compile-cache clones (the cache key already fingerprints everything a
plan depends on, so invalidation is inherited from the content
address).  If the per-thread arena would exceed
``PolyMgConfig.temp_arena_limit`` the plan is abandoned and execution
falls back to the interpreter.
"""

from __future__ import annotations

import itertools
import math
import operator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..ir.domain import Box
from ..ir.interval import ConcreteInterval
from ..lang.expr import (
    BinOp,
    Call,
    Const,
    Expr,
    Maximum,
    Minimum,
    Ref,
    Select,
    UnOp,
    VarExpr,
)
from ..lang.sampling import Interp
from .evaluate import (
    _index_grid,
    condition_mask,
    interp_parity_pieces,
    interp_write_slices,
    stage_piece_targets,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..lang.function import Function
    from ..passes.groups import Group
    from ..passes.storage import GroupScratchPlan
    from .executor import CompiledPipeline

__all__ = [
    "RefSpec",
    "Tape",
    "StageKernel",
    "GroupTilePlan",
    "GroupPlan",
    "KernelPlan",
    "Workspace",
    "tile_grid",
    "build_group_tile_plan",
    "build_kernel_plan",
]

# ---------------------------------------------------------------------------
# plan IR
# ---------------------------------------------------------------------------

# RefSpec base kinds
R_INPUT = 0  # key: input Function           (env.inputs)
R_ARRAY = 1  # key: full-array id            (env.arrays)
R_SCRATCH = 2  # key: workspace scratch key  (env.ws)

# instruction kinds
K_UFUNC = 0
K_SELECT = 1
K_WRITE = 2

# operand kinds
A_IMM = 0  # plan-time value (scalar or ndarray)
A_REF = 1  # index into Tape.refs
A_RES = 2  # result of an earlier instruction

_BINOPS = {
    "+": (np.add, operator.add),
    "-": (np.subtract, operator.sub),
    "*": (np.multiply, operator.mul),
    "/": (np.divide, operator.truediv),
}

_CALLS = {
    "sqrt": np.sqrt,
    "exp": np.exp,
    "sin": np.sin,
    "cos": np.cos,
    "abs": np.abs,
    "log": np.log,
    "pow": np.power,
}


class RefSpec:
    """Precompiled read of a producer over a fixed consumer box.

    ``index`` composes the hull read, the per-axis strides, and the
    constant-subscript axis drops into one fancy-index against the
    producer's *backing array* (full array, input, or scratch buffer);
    ``order`` is the axis permutation into consumer order (``None`` if
    identity); ``expand`` inserts broadcast axes for unused consumer
    dims (``None`` if the ref varies along every dim).
    """

    __slots__ = ("kind", "key", "index", "order", "expand")

    def __init__(self, kind, key, index, order, expand):
        self.kind = kind
        self.key = key
        self.index = index
        self.order = order
        self.expand = expand


class _Instr:
    __slots__ = (
        "kind", "ufunc", "args", "to_out", "slot", "shape", "dtype",
        "nbytes", "mask",
    )

    def __init__(self, kind, ufunc, args, slot, shape, dtype, nbytes,
                 mask=None):
        self.kind = kind
        self.ufunc = ufunc
        self.args = args
        self.to_out = False
        self.slot = slot
        self.shape = shape
        self.dtype = dtype
        self.nbytes = nbytes
        self.mask = mask


class Tape:
    """Flattened post-order op tape for one (piece, target box)."""

    __slots__ = ("refs", "instrs")

    def __init__(self, refs, instrs):
        self.refs = refs
        self.instrs = instrs


class _Write:
    """One target-box write of a kernel: run ``tape``, store into
    ``base[index]`` where ``base`` is the live-out view (kind 0) or a
    workspace scratch buffer (kind 1)."""

    __slots__ = ("scratch", "key", "index", "tape")

    def __init__(self, scratch, key, index, tape):
        self.scratch = scratch
        self.key = key
        self.index = index
        self.tape = tape


class StageKernel:
    """All writes of one stage over one concrete region."""

    __slots__ = ("stage", "writes", "points")

    def __init__(self, stage, writes, points):
        self.stage = stage
        self.writes = writes
        self.points = points


@dataclass
class GroupTilePlan:
    """Hoisted per-group tiling geometry (shared by the planned and
    unplanned tiled executors)."""

    tiles: list[Box]
    #: per tile: stage -> region box (stages outside the tile absent)
    regions: list[dict["Function", Box]]
    #: per tile: scratch buffer id -> shape
    buf_shapes: list[dict[int, tuple[int, ...]]]
    buf_dtypes: dict[int, np.dtype]
    #: per tile: total scratch bytes (pre-PR ``scratch_bytes_peak``)
    tile_scratch_bytes: list[int]
    #: per-dimension max over tiles (sizes the persistent workspace)
    max_buf_shapes: dict[int, tuple[int, ...]]


@dataclass
class GroupPlan:
    """Planned execution of one group: either a straight kernel list
    over full stage domains, or per-tile kernel lists."""

    tiled: bool
    kernels: list[StageKernel] | None = None
    tile_kernels: list[list[StageKernel]] | None = None
    tile_plan: GroupTilePlan | None = None


@dataclass
class KernelPlan:
    """The full ahead-of-time execution plan of a compiled pipeline."""

    groups: dict[int, GroupPlan] = field(default_factory=dict)
    #: workspace scratch key -> (shape, dtype)
    scratch_specs: dict[object, tuple[tuple[int, ...], np.dtype]] = field(
        default_factory=dict
    )
    #: byte size of each temp-arena slot (max over all tapes)
    slot_bytes: list[int] = field(default_factory=list)

    def arena_bytes(self) -> int:
        """Per-thread temp-arena requirement."""
        return sum(self.slot_bytes)

    def scratch_bytes(self) -> int:
        """Per-thread scratch-buffer requirement."""
        return sum(
            _volume(shape) * dt.itemsize
            for shape, dt in self.scratch_specs.values()
        )


def _volume(shape) -> int:
    return int(math.prod(shape))


# ---------------------------------------------------------------------------
# run-time workspace (one per thread)
# ---------------------------------------------------------------------------


class Workspace:
    """Per-thread execution arena: lazily allocated temp-slot buffers,
    scratch buffers, and cached per-tape temp views.  Buffers persist
    across tiles, groups, and cycles — steady state never allocates."""

    __slots__ = ("plan", "_account", "_temps", "_scratch", "_views")

    def __init__(self, plan: KernelPlan, account=None):
        self.plan = plan
        self._account = account
        self._temps: dict[int, np.ndarray] = {}
        self._scratch: dict[object, np.ndarray] = {}
        self._views: dict[Tape, list] = {}

    def temp(self, slot: int) -> np.ndarray:
        buf = self._temps.get(slot)
        if buf is None:
            nbytes = self.plan.slot_bytes[slot]
            buf = np.empty(nbytes, dtype=np.uint8)
            self._temps[slot] = buf
            if self._account is not None:
                self._account(nbytes)
        return buf

    def scratch_buffer(self, key) -> np.ndarray:
        buf = self._scratch.get(key)
        if buf is None:
            shape, dtype = self.plan.scratch_specs[key]
            buf = np.empty(shape, dtype=dtype)
            self._scratch[key] = buf
            if self._account is not None:
                self._account(buf.nbytes)
        return buf

    def tape_views(self, tape: Tape) -> list:
        views = self._views.get(tape)
        if views is None:
            views = []
            for ins in tape.instrs:
                if ins.kind == K_WRITE or ins.to_out:
                    views.append(None)
                else:
                    buf = self.temp(ins.slot)
                    views.append(
                        buf[: ins.nbytes].view(ins.dtype).reshape(ins.shape)
                    )
            self._views[tape] = views
        return views


class ExecEnv:
    """Run-time bindings a kernel resolves its reads/writes against."""

    __slots__ = ("inputs", "arrays", "stage_arrays", "ws")

    def __init__(self, inputs, arrays, stage_arrays, ws):
        self.inputs = inputs
        self.arrays = arrays
        self.stage_arrays = stage_arrays
        self.ws = ws


def _materialize(spec: RefSpec, env: ExecEnv) -> np.ndarray:
    k = spec.kind
    if k == R_INPUT:
        base = env.inputs[spec.key]
    elif k == R_ARRAY:
        base = env.arrays[spec.key]
    else:
        base = env.ws.scratch_buffer(spec.key)
    view = base[spec.index]
    if spec.order is not None:
        view = view.transpose(spec.order)
    if spec.expand is not None:
        view = view[spec.expand]
    return view


def run_kernel(kernel: StageKernel, env: ExecEnv) -> int:
    """Execute one stage kernel; returns points computed."""
    ws = env.ws
    for w in kernel.writes:
        if w.scratch:
            base = ws.scratch_buffer(w.key)
        else:
            base = env.stage_arrays[w.key]
        out_view = base[w.index]
        tape = w.tape
        refs = tape.refs
        rv = [_materialize(r, env) for r in refs] if refs else None
        views = ws.tape_views(tape)
        results: list = [None] * len(tape.instrs)
        for j, ins in enumerate(tape.instrs):
            a = [
                v if k == A_IMM else (rv[v] if k == A_REF else results[v])
                for k, v in ins.args
            ]
            kind = ins.kind
            if kind == K_UFUNC:
                dest = out_view if ins.to_out else views[j]
                ins.ufunc(*a, out=dest)
                results[j] = dest
            elif kind == K_SELECT:
                dest = out_view if ins.to_out else views[j]
                np.copyto(dest, a[1], casting="unsafe")
                np.copyto(dest, a[0], where=ins.mask, casting="unsafe")
                results[j] = dest
            else:  # K_WRITE
                np.copyto(out_view, a[0], casting="unsafe")
    return kernel.points


# ---------------------------------------------------------------------------
# tape compilation
# ---------------------------------------------------------------------------

_V_IMM = 0
_V_REF = 1
_V_TEMP = 2


class _Val:
    __slots__ = ("kind", "value", "idx", "slot", "sample", "shape")

    def __init__(self, kind, value=None, idx=None, slot=None, sample=None,
                 shape=()):
        self.kind = kind
        self.value = value  # plan-time value (imm only)
        self.idx = idx  # ref index or instruction index
        self.slot = slot  # temp slot (temp only)
        self.sample = sample  # tiny representative (dtype carrier)
        self.shape = shape  # run-time broadcast shape


def _tiny(value):
    """A 1-element view of an array (dtype/value carrier for sample
    runs) or the scalar itself."""
    if isinstance(value, np.ndarray):
        return value[(slice(0, 1),) * value.ndim]
    return value


class _TapeBuilder:
    def __init__(self, box, variables, bindings, resolver, slot_bytes):
        self.box = box
        self.shape = box.shape()
        self.variables = variables
        self.bindings = bindings
        self.resolver = resolver
        self.slot_bytes = slot_bytes  # shared across the whole plan
        self.refs: list[RefSpec] = []
        self.instrs: list[_Instr] = []
        self.in_use: set[int] = set()

    # -- slot allocation ------------------------------------------------
    def _alloc(self, nbytes: int, avoid: set[int]) -> int:
        for s in range(len(self.slot_bytes)):
            if s not in self.in_use and s not in avoid:
                break
        else:
            s = len(self.slot_bytes)
            self.slot_bytes.append(0)
        self.in_use.add(s)
        if nbytes > self.slot_bytes[s]:
            self.slot_bytes[s] = nbytes
        return s

    def _release(self, vals, keep=None):
        for v in vals:
            if v.kind == _V_TEMP and v.slot != keep:
                self.in_use.discard(v.slot)

    @staticmethod
    def _desc(v: _Val):
        if v.kind == _V_IMM:
            return (A_IMM, v.value)
        if v.kind == _V_REF:
            return (A_REF, v.idx)
        return (A_RES, v.idx)

    @staticmethod
    def _operand(v: _Val):
        """Plan-time stand-in: actual value for immediates (value-based
        promotion must see real constants), tiny sample otherwise."""
        if v.kind == _V_IMM and not isinstance(v.value, np.ndarray):
            return v.value
        if v.kind == _V_IMM:
            return _tiny(v.value)
        return v.sample

    # -- emission -------------------------------------------------------
    def emit(self, expr: Expr) -> _Val:
        if isinstance(expr, Const):
            return _Val(_V_IMM, value=expr.value, sample=expr.value)
        if isinstance(expr, VarExpr):
            grid = _index_grid(
                expr.index, self.box, self.variables, self.bindings
            )
            if isinstance(grid, np.ndarray):
                return _Val(
                    _V_IMM, value=grid, sample=_tiny(grid),
                    shape=grid.shape,
                )
            return _Val(_V_IMM, value=grid, sample=grid)
        if isinstance(expr, Ref):
            spec, shape, np_dtype = _build_ref_spec(
                expr, self.box, self.variables, self.bindings, self.resolver
            )
            idx = len(self.refs)
            self.refs.append(spec)
            sample = np.zeros((1,) * self.box.ndim, dtype=np_dtype)
            return _Val(_V_REF, idx=idx, sample=sample, shape=shape)
        if isinstance(expr, BinOp):
            left = self.emit(expr.left)
            right = self.emit(expr.right)
            ufunc, pyop = _BINOPS[expr.op]
            return self._op(ufunc, pyop, (left, right))
        if isinstance(expr, UnOp):
            v = self.emit(expr.operand)
            return self._op(np.negative, operator.neg, (v,))
        if isinstance(expr, Minimum):
            left = self.emit(expr.left)
            right = self.emit(expr.right)
            return self._op(np.minimum, np.minimum, (left, right))
        if isinstance(expr, Maximum):
            left = self.emit(expr.left)
            right = self.emit(expr.right)
            return self._op(np.maximum, np.maximum, (left, right))
        if isinstance(expr, Call):
            args = tuple(self.emit(a) for a in expr.args)
            fn = _CALLS[expr.fn]
            return self._op(fn, fn, args)
        if isinstance(expr, Select):
            return self._select(expr)
        raise TypeError(f"cannot compile {type(expr).__name__}")

    def _op(self, ufunc, pyop, operands: tuple[_Val, ...]) -> _Val:
        if all(v.kind == _V_IMM for v in operands):
            # fold: every operand is known at plan time
            value = pyop(*[v.value for v in operands])
            shape = value.shape if isinstance(value, np.ndarray) else ()
            return _Val(_V_IMM, value=value, sample=_tiny(value), shape=shape)
        with np.errstate(all="ignore"):
            sample = ufunc(*[self._operand(v) for v in operands])
        shape = np.broadcast_shapes(*[v.shape for v in operands])
        dtype = sample.dtype
        nbytes = _volume(shape) * dtype.itemsize
        # prefer in-place reuse of a dying operand with identical geometry
        slot = None
        for v in operands:
            if (
                v.kind == _V_TEMP
                and v.shape == shape
                and v.sample.dtype == dtype
            ):
                slot = v.slot
                break
        if slot is None:
            avoid = {v.slot for v in operands if v.kind == _V_TEMP}
            slot = self._alloc(nbytes, avoid)
        self._release(operands, keep=slot)
        instr = _Instr(
            K_UFUNC, ufunc, tuple(self._desc(v) for v in operands),
            slot, shape, dtype, nbytes,
        )
        j = len(self.instrs)
        self.instrs.append(instr)
        return _Val(_V_TEMP, idx=j, slot=slot, sample=_tiny(sample),
                    shape=shape)

    def _select(self, expr: Select) -> _Val:
        mask = condition_mask(
            expr.condition, self.box, self.variables, self.bindings
        )
        t = self.emit(expr.true_expr)
        f = self.emit(expr.false_expr)
        if t.kind == _V_IMM and f.kind == _V_IMM:
            value = np.where(mask, t.value, f.value)
            return _Val(
                _V_IMM, value=value, sample=_tiny(value), shape=value.shape
            )
        tiny_mask = _tiny(mask)
        with np.errstate(all="ignore"):
            sample = np.where(
                tiny_mask, self._operand(t), self._operand(f)
            )
        # np.where broadcasts over the mask too, and condition_mask
        # always yields the full box shape
        shape = np.broadcast_shapes(mask.shape, t.shape, f.shape)
        dtype = sample.dtype
        nbytes = _volume(shape) * dtype.itemsize
        # copyto(dest, f); copyto(dest, t, where=mask): dest must not
        # alias an operand, so never reuse their slots in place
        avoid = {v.slot for v in (t, f) if v.kind == _V_TEMP}
        slot = self._alloc(nbytes, avoid)
        self._release((t, f))
        instr = _Instr(
            K_SELECT, None, (self._desc(t), self._desc(f)),
            slot, shape, dtype, nbytes, mask=mask,
        )
        j = len(self.instrs)
        self.instrs.append(instr)
        return _Val(_V_TEMP, idx=j, slot=slot, sample=_tiny(sample),
                    shape=shape)

    def finish(self, expr: Expr, out_dtype: np.dtype) -> Tape:
        root = self.emit(expr)
        if root.kind == _V_TEMP:
            ins = self.instrs[root.idx]
            # the root's producing instruction is always last (post
            # order); retarget it at the output view when the store
            # cast matches what the interpreter's assignment would do
            if ins.kind == K_SELECT or np.can_cast(
                ins.dtype, out_dtype, casting="same_kind"
            ):
                ins.to_out = True
            else:
                self.instrs.append(
                    _Instr(K_WRITE, None, ((A_RES, root.idx),),
                           None, None, None, 0)
                )
        else:
            self.instrs.append(
                _Instr(K_WRITE, None, (self._desc(root),),
                       None, None, None, 0)
            )
        return Tape(tuple(self.refs), tuple(self.instrs))


def _build_ref_spec(ref, box, variables, bindings, resolver):
    """Compose the hull read, strides, constant-axis drops, axis
    permutation, and broadcast expansion of one ``Ref`` into a
    :class:`RefSpec` (mirrors ``evaluate._eval_ref`` exactly)."""
    hull: list[ConcreteInterval] = []
    drivers: list[int | None] = []
    steps: list[int] = []
    for ix in ref.indices:
        var = ix.single_variable()
        if var is None:
            if not ix.is_constant():
                raise ValueError(f"unsupported subscript {ix!r}")
            c = ix.const.int_value(bindings)
            hull.append(ConcreteInterval(c, c))
            drivers.append(None)
            steps.append(1)
            continue
        coeff = ix.coeff_of(var)
        if coeff.denominator != 1 or coeff <= 0:
            raise ValueError(
                f"non-integral subscript coefficient in {ix!r}; sampling "
                "constructs must be parity-expanded before evaluation"
            )
        a = coeff.numerator
        c = ix.const.int_value(bindings)
        k = variables.index(var)
        iv = box.intervals[k]
        hull.append(ConcreteInterval(a * iv.lb + c, a * iv.ub + c))
        drivers.append(k)
        steps.append(a)

    live = [d for d in drivers if d is not None]
    if len(set(live)) != len(live):
        raise ValueError(
            f"diagonal access (one consumer dim drives two producer dims) "
            f"in {ref!r}"
        )

    kind, key, origin, np_dtype = resolver(ref.func)
    index = []
    for j, (iv, drv, st) in enumerate(zip(hull, drivers, steps)):
        o = origin[j]
        if drv is None:
            index.append(iv.lb - o)  # integer index drops the axis
        else:
            index.append(slice(iv.lb - o, iv.ub - o + 1, st))

    order = sorted(range(len(live)), key=lambda i: live[i])
    order_t = tuple(order) if order != list(range(len(live))) else None

    used = sorted(live)
    expand = []
    shape = []
    src = 0
    for k in range(box.ndim):
        if src < len(used) and used[src] == k:
            expand.append(slice(None))
            shape.append(box.intervals[k].size())
            src += 1
        else:
            expand.append(None)
            shape.append(1)
    expand_t = tuple(expand) if src < box.ndim else None
    return (
        RefSpec(kind, key, tuple(index), order_t, expand_t),
        tuple(shape),
        np_dtype,
    )


def compile_tape(expr, box, variables, bindings, resolver, slot_bytes,
                 out_dtype) -> Tape:
    builder = _TapeBuilder(box, variables, bindings, resolver, slot_bytes)
    return builder.finish(expr, out_dtype)


# ---------------------------------------------------------------------------
# stage / group / pipeline planning
# ---------------------------------------------------------------------------


def tile_grid(anchor_dom: Box, tile_shape) -> list[Box]:
    """Rectangular tile decomposition of a group's anchor domain."""
    per_dim: list[list[ConcreteInterval]] = []
    for iv, t in zip(anchor_dom.intervals, tile_shape):
        dim_tiles = []
        lo = iv.lb
        while lo <= iv.ub:
            hi = min(lo + t - 1, iv.ub)
            dim_tiles.append(ConcreteInterval(lo, hi))
            lo = hi + 1
        per_dim.append(dim_tiles)
    return [Box(combo) for combo in itertools.product(*per_dim)]


def build_group_tile_plan(
    group: "Group",
    splan: "GroupScratchPlan",
    anchor_dom: Box,
    tile_shape,
) -> GroupTilePlan:
    """Hoist the tile grid, per-tile regions, and scratch shape
    reductions of one tiled group out of the execution loop."""
    tiles = tile_grid(anchor_dom, tile_shape)
    regions_per_tile: list[dict] = []
    buf_shapes_per_tile: list[dict[int, tuple[int, ...]]] = []
    buf_dtypes: dict[int, np.dtype] = {}
    tile_scratch_bytes: list[int] = []
    max_buf_shapes: dict[int, tuple[int, ...]] = {}
    internal = list(group.internal_stages())
    for tile in tiles:
        regions = group.tile_regions(tile)
        buf_shape: dict[int, tuple[int, ...]] = {}
        for stage in internal:
            region = regions.get(stage)
            if region is None:
                continue
            bid = splan.buffer_of[stage]
            shape = region.shape()
            old = buf_shape.get(bid)
            if old is None:
                buf_shape[bid] = shape
                buf_dtypes.setdefault(bid, stage.dtype.np_dtype)
            else:
                buf_shape[bid] = tuple(
                    max(a, b) for a, b in zip(old, shape)
                )
        regions_per_tile.append(regions)
        buf_shapes_per_tile.append(buf_shape)
        tile_scratch_bytes.append(
            sum(
                _volume(shape) * buf_dtypes[bid].itemsize
                for bid, shape in buf_shape.items()
            )
        )
        for bid, shape in buf_shape.items():
            old = max_buf_shapes.get(bid)
            max_buf_shapes[bid] = (
                shape if old is None
                else tuple(max(a, b) for a, b in zip(old, shape))
            )
    return GroupTilePlan(
        tiles=tiles,
        regions=regions_per_tile,
        buf_shapes=buf_shapes_per_tile,
        buf_dtypes=buf_dtypes,
        tile_scratch_bytes=tile_scratch_bytes,
        max_buf_shapes=max_buf_shapes,
    )


def _compile_stage_kernel(
    stage,
    region: Box,
    scratch_target,  # None for live-outs, else (workspace key, origin)
    out_origin,
    out_dtype,
    bindings,
    resolver,
    slot_bytes,
) -> StageKernel | None:
    writes = []
    points = 0
    variables = stage.variables
    if isinstance(stage, Interp):
        for parity, expr, qbox in interp_parity_pieces(stage, region):
            tape = compile_tape(
                expr, qbox, variables, bindings, resolver, slot_bytes,
                out_dtype,
            )
            index = interp_write_slices(qbox, parity, out_origin)
            if scratch_target is None:
                writes.append(_Write(False, stage, index, tape))
            else:
                writes.append(_Write(True, scratch_target[0], index, tape))
            points += qbox.volume()
    else:
        for tbox, expr in stage_piece_targets(stage, region, bindings):
            tape = compile_tape(
                expr, tbox, variables, bindings, resolver, slot_bytes,
                out_dtype,
            )
            index = tbox.slices(out_origin)
            if scratch_target is None:
                writes.append(_Write(False, stage, index, tape))
            else:
                writes.append(_Write(True, scratch_target[0], index, tape))
            points += tbox.volume()
    if not writes:
        return None
    return StageKernel(stage, writes, points)


def build_kernel_plan(compiled: "CompiledPipeline") -> KernelPlan | None:
    """Lower a compiled pipeline into a :class:`KernelPlan`.

    Returns ``None`` when the plan's per-thread temp arena would exceed
    ``config.temp_arena_limit`` (the executor then falls back to the
    unplanned interpreter).  Diamond-tiled groups are never planned —
    they run through :mod:`repro.pluto.executor` unchanged.
    """
    from ..lang.types import dtype_of

    config = compiled.config
    bindings = compiled.bindings
    storage = compiled.storage
    plan = KernelPlan()
    slot_bytes = plan.slot_bytes

    dom_lower: dict = {}

    def lower_of(func):
        lo = dom_lower.get(func)
        if lo is None:
            lo = func.domain_box(bindings).lower()
            dom_lower[func] = lo
        return lo

    array_dtype = {
        aid: dtype_of(name).np_dtype
        for aid, name in storage.array_dtypes.items()
    }

    for gi, group in enumerate(compiled.grouping.groups):
        if gi in compiled._diamond_groups:
            continue
        live = set(group.live_outs())
        splan = storage.group_scratch(gi)

        def make_resolver(scratch_origins):
            def resolver(func):
                entry = scratch_origins.get(func)
                if entry is not None:
                    key, origin = entry
                    return R_SCRATCH, key, origin, func.dtype.np_dtype
                if func.is_input:
                    return (
                        R_INPUT, func, (0,) * func.ndim,
                        func.dtype.np_dtype,
                    )
                aid = storage.array_of[func]
                return R_ARRAY, aid, lower_of(func), array_dtype[aid]

            return resolver

        if config.tile and group.size > 1:
            anchor_dom = group.anchor.domain_box(bindings)
            tile_shape = config.tile_shape(group.anchor.ndim)
            tp = build_group_tile_plan(group, splan, anchor_dom, tile_shape)
            for bid, shape in tp.max_buf_shapes.items():
                plan.scratch_specs[(gi, bid)] = (shape, tp.buf_dtypes[bid])
            tile_kernels: list[list[StageKernel]] = []
            for regions in tp.regions:
                scratch_origins: dict = {}
                resolver = make_resolver(scratch_origins)
                kernels: list[StageKernel] = []
                for stage in group.stages:
                    region = regions.get(stage)
                    if region is None or region.is_empty():
                        continue
                    if stage in live:
                        scratch_target = None
                        out_origin = lower_of(stage)
                    else:
                        bid = splan.buffer_of[stage]
                        key = (gi, bid)
                        out_origin = region.lower()
                        scratch_target = (key, out_origin)
                        scratch_origins[stage] = (key, out_origin)
                    kernel = _compile_stage_kernel(
                        stage, region, scratch_target, out_origin,
                        stage.dtype.np_dtype, bindings, resolver,
                        slot_bytes,
                    )
                    if kernel is not None:
                        kernels.append(kernel)
                tile_kernels.append(kernels)
            plan.groups[gi] = GroupPlan(
                tiled=True, tile_kernels=tile_kernels, tile_plan=tp
            )
        else:
            scratch_origins = {}
            resolver = make_resolver(scratch_origins)
            kernels = []
            for stage in group.stages:
                dom = stage.domain_box(bindings)
                if stage in live:
                    scratch_target = None
                    out_origin = dom.lower()
                else:
                    key = ("s", gi, stage.uid)
                    out_origin = dom.lower()
                    scratch_target = (key, out_origin)
                    scratch_origins[stage] = (key, out_origin)
                    plan.scratch_specs[key] = (
                        dom.shape(), stage.dtype.np_dtype
                    )
                kernel = _compile_stage_kernel(
                    stage, dom, scratch_target, out_origin,
                    stage.dtype.np_dtype, bindings, resolver, slot_bytes,
                )
                if kernel is not None:
                    kernels.append(kernel)
            plan.groups[gi] = GroupPlan(tiled=False, kernels=kernels)

    limit = config.temp_arena_limit
    if limit is not None and plan.arena_bytes() > limit:
        return None
    return plan
