"""Runtime buffer management: the pooled memory allocator.

Paper section 3.2.3: PolyMG generates ``pool_allocate`` /
``pool_deallocate`` calls so that full-array requests across (and
within) multigrid cycle invocations are served from a pool instead of
fresh ``malloc`` calls.  Arrays are actually allocated at the first
cycle's entry and all freed after the last; a deallocation is a table
update.

The pool here mirrors that behaviour for the numpy backend: it owns flat
byte buffers, serves a request with the first free buffer of sufficient
size (scanning the free list, as the paper describes), and returns a
correctly-shaped view.  Statistics (fresh allocations vs. pool hits,
peak resident bytes) feed the machine cost model and Figure 11b.

Resource-pressure guards (see :mod:`repro.resilience`): an optional
``byte_budget`` bounds the total backing bytes the pool may own,
raising the typed :class:`~repro.errors.PoolExhaustedError` instead of
letting the process OOM; every error path stays inside the
:class:`~repro.errors.ReproError` taxonomy so guarded execution can
demote on memory pressure; :meth:`MemoryPool.trim` releases the free
list when a variant is demoted and sits in cooldown; and
:meth:`MemoryPool.assert_no_leaks` turns outstanding-buffer accounting
at solve end into a loud, typed failure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AllocatorError, PoolExhaustedError

__all__ = ["PoolStats", "MemoryPool", "DirectAllocator"]


@dataclass
class PoolStats:
    fresh_allocations: int = 0
    pool_hits: int = 0
    deallocations: int = 0
    resident_bytes: int = 0
    peak_resident_bytes: int = 0
    requested_bytes: int = 0
    trimmed_bytes: int = 0
    budget_rejections: int = 0

    def record_alloc(self, nbytes: int, from_pool: bool) -> None:
        self.requested_bytes += nbytes
        if from_pool:
            self.pool_hits += 1
        else:
            self.fresh_allocations += 1
            self.resident_bytes += nbytes
            self.peak_resident_bytes = max(
                self.peak_resident_bytes, self.resident_bytes
            )


class MemoryPool:
    """First-fit pooled allocator over flat byte buffers.

    ``byte_budget`` (``None`` = unbounded) caps the total backing bytes
    the pool may own (free + lent).  A fresh allocation that would
    breach the budget — after the free list has been searched — raises
    :class:`~repro.errors.PoolExhaustedError`, as does a failed backing
    allocation, so memory pressure surfaces as a typed runtime fault
    that guarded/laddered execution can catch and demote on.
    """

    def __init__(self, byte_budget: int | None = None) -> None:
        if byte_budget is not None and byte_budget < 0:
            raise AllocatorError(
                "pool byte budget must be non-negative",
                byte_budget=byte_budget,
            )
        self.byte_budget = byte_budget
        self._free: list[np.ndarray] = []  # flat uint8 buffers
        self._lent: dict[int, np.ndarray] = {}  # id(view) -> backing buffer
        self.stats = PoolStats()

    def allocate(self, shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        backing = None
        best_index = -1
        for i, buf in enumerate(self._free):
            if buf.nbytes >= nbytes and (
                backing is None or buf.nbytes < backing.nbytes
            ):
                backing, best_index = buf, i
        from_pool = backing is not None
        if backing is None:
            if (
                self.byte_budget is not None
                and self.stats.resident_bytes + nbytes > self.byte_budget
            ):
                self.stats.budget_rejections += 1
                raise PoolExhaustedError(
                    "pool byte budget exceeded",
                    requested=nbytes,
                    resident=self.stats.resident_bytes,
                    budget=self.byte_budget,
                    outstanding=len(self._lent),
                )
            try:
                backing = np.empty(nbytes, dtype=np.uint8)
            except MemoryError as exc:
                raise PoolExhaustedError(
                    "backing allocation failed",
                    requested=nbytes,
                    resident=self.stats.resident_bytes,
                    budget=self.byte_budget,
                ) from exc
        else:
            self._free.pop(best_index)
        self.stats.record_alloc(nbytes, from_pool)
        view = backing[:nbytes].view(dtype).reshape(shape)
        self._lent[id(view)] = backing
        return view

    def deallocate(self, view: np.ndarray) -> None:
        backing = self._lent.pop(id(view), None)
        if backing is None:
            raise AllocatorError(
                "deallocate of a buffer not lent by this pool",
                shape=tuple(view.shape),
                outstanding=len(self._lent),
            )
        self.stats.deallocations += 1
        self._free.append(backing)

    def trim(self) -> int:
        """Release every free (un-lent) buffer back to the OS and
        return the number of bytes released.  Called when a
        degradation-ladder variant is demoted, so an idle pool does not
        keep its high-water backing resident through the cooldown."""
        released = sum(buf.nbytes for buf in self._free)
        self._free.clear()
        self.stats.resident_bytes -= released
        self.stats.trimmed_bytes += released
        return released

    def release_all(self) -> None:
        """Drop every buffer (end of the last multigrid cycle)."""
        self._free.clear()
        self._lent.clear()
        self.stats.resident_bytes = 0

    @property
    def outstanding(self) -> int:
        return len(self._lent)

    @property
    def outstanding_bytes(self) -> int:
        return sum(b.nbytes for b in self._lent.values())

    def assert_no_leaks(self) -> None:
        """Raise :class:`~repro.errors.AllocatorError` if any lent
        buffer was never deallocated (end-of-solve leak check)."""
        if self._lent:
            raise AllocatorError(
                "pool buffers still outstanding at solve end",
                outstanding=len(self._lent),
                outstanding_bytes=self.outstanding_bytes,
            )


class DirectAllocator:
    """Non-pooled allocator: every request is a fresh ``np.empty`` (what
    ``polymg-opt`` does for full arrays).  Keeps the same interface and
    statistics so variants are interchangeable in the executor."""

    def __init__(self) -> None:
        self.stats = PoolStats()
        self._lent: dict[int, int] = {}

    def allocate(self, shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        try:
            array = np.empty(shape, dtype=dtype)
        except MemoryError as exc:
            raise PoolExhaustedError(
                "backing allocation failed",
                requested=int(np.prod(shape, dtype=np.int64))
                * dtype.itemsize,
            ) from exc
        self.stats.record_alloc(array.nbytes, from_pool=False)
        self._lent[id(array)] = array.nbytes
        return array

    def deallocate(self, view: np.ndarray) -> None:
        nbytes = self._lent.pop(id(view), None)
        if nbytes is not None:
            self.stats.deallocations += 1
            self.stats.resident_bytes -= nbytes

    def trim(self) -> int:
        return 0  # nothing pooled, nothing to release

    def release_all(self) -> None:
        self._lent.clear()

    @property
    def outstanding(self) -> int:
        return len(self._lent)

    @property
    def outstanding_bytes(self) -> int:
        return sum(self._lent.values())

    def assert_no_leaks(self) -> None:
        if self._lent:
            raise AllocatorError(
                "buffers still outstanding at solve end",
                outstanding=len(self._lent),
                outstanding_bytes=self.outstanding_bytes,
            )
