"""Runtime buffer management: the pooled memory allocator.

Paper section 3.2.3: PolyMG generates ``pool_allocate`` /
``pool_deallocate`` calls so that full-array requests across (and
within) multigrid cycle invocations are served from a pool instead of
fresh ``malloc`` calls.  Arrays are actually allocated at the first
cycle's entry and all freed after the last; a deallocation is a table
update.

The pool here mirrors that behaviour for the numpy backend: it owns flat
byte buffers, serves a request with the first free buffer of sufficient
size (scanning the free list, as the paper describes), and returns a
correctly-shaped view.  Statistics (fresh allocations vs. pool hits,
peak resident bytes) feed the machine cost model and Figure 11b.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PoolStats", "MemoryPool", "DirectAllocator"]


@dataclass
class PoolStats:
    fresh_allocations: int = 0
    pool_hits: int = 0
    deallocations: int = 0
    resident_bytes: int = 0
    peak_resident_bytes: int = 0
    requested_bytes: int = 0

    def record_alloc(self, nbytes: int, from_pool: bool) -> None:
        self.requested_bytes += nbytes
        if from_pool:
            self.pool_hits += 1
        else:
            self.fresh_allocations += 1
            self.resident_bytes += nbytes
            self.peak_resident_bytes = max(
                self.peak_resident_bytes, self.resident_bytes
            )


class MemoryPool:
    """First-fit pooled allocator over flat byte buffers."""

    def __init__(self) -> None:
        self._free: list[np.ndarray] = []  # flat uint8 buffers
        self._lent: dict[int, np.ndarray] = {}  # id(view) -> backing buffer
        self.stats = PoolStats()

    def allocate(self, shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        backing = None
        best_index = -1
        for i, buf in enumerate(self._free):
            if buf.nbytes >= nbytes and (
                backing is None or buf.nbytes < backing.nbytes
            ):
                backing, best_index = buf, i
        from_pool = backing is not None
        if backing is None:
            backing = np.empty(nbytes, dtype=np.uint8)
        else:
            self._free.pop(best_index)
        self.stats.record_alloc(nbytes, from_pool)
        view = backing[:nbytes].view(dtype).reshape(shape)
        self._lent[id(view)] = backing
        return view

    def deallocate(self, view: np.ndarray) -> None:
        backing = self._lent.pop(id(view), None)
        if backing is None:
            from ..errors import AllocatorError

            raise AllocatorError(
                "deallocate of a buffer not lent by this pool",
                shape=tuple(view.shape),
                outstanding=len(self._lent),
            )
        self.stats.deallocations += 1
        self._free.append(backing)

    def release_all(self) -> None:
        """Drop every buffer (end of the last multigrid cycle)."""
        self._free.clear()
        self._lent.clear()
        self.stats.resident_bytes = 0

    @property
    def outstanding(self) -> int:
        return len(self._lent)


class DirectAllocator:
    """Non-pooled allocator: every request is a fresh ``np.empty`` (what
    ``polymg-opt`` does for full arrays).  Keeps the same interface and
    statistics so variants are interchangeable in the executor."""

    def __init__(self) -> None:
        self.stats = PoolStats()
        self._lent: dict[int, int] = {}

    def allocate(self, shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        array = np.empty(shape, dtype=dtype)
        self.stats.record_alloc(array.nbytes, from_pool=False)
        self._lent[id(array)] = array.nbytes
        return array

    def deallocate(self, view: np.ndarray) -> None:
        nbytes = self._lent.pop(id(view), None)
        if nbytes is not None:
            self.stats.deallocations += 1
            self.stats.resident_bytes -= nbytes

    def release_all(self) -> None:
        self._lent.clear()

    @property
    def outstanding(self) -> int:
        return len(self._lent)
