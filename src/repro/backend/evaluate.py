"""Vectorized evaluation of stage definitions over box regions.

This is the interpreter half of the backend, split into two halves:

* **plan-build**: region decomposition — :func:`stage_piece_targets`
  lowers a piecewise ``Case`` definition over a region into concrete
  ``(box, expr)`` targets (if/elif chain semantics with box
  subtraction) and :func:`interp_parity_pieces` lowers a parity-expanded
  ``Interp`` stage into per-parity-class coarse boxes.  These are pure
  geometry and are reused by the ahead-of-time kernel planner
  (:mod:`repro.backend.kernels`), which pays them once per compile;

* **tape-exec fallback**: :func:`evaluate_stage` — the unplanned
  tree-walking interpreter over those targets, one vectorized
  expression evaluation per (piece, sub-box), never per point.  The
  fault-injection and verification paths always run through this
  fallback, so their semantics are independent of the kernel planner.

Handles strided reads for ``Restrict``-scaled subscripts, constant
subscripts, and dimension permutation/broadcast for refs that do not
use every stage variable.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

from ..ir.domain import Box
from ..ir.interval import ConcreteInterval
from ..lang.expr import (
    BinOp,
    Call,
    Case,
    Condition,
    Const,
    Expr,
    IndexExpr,
    Maximum,
    Minimum,
    Ref,
    Select,
    UnOp,
    VarExpr,
)
from ..lang.sampling import Interp

if TYPE_CHECKING:  # pragma: no cover
    from ..lang.function import Function

__all__ = [
    "Reader",
    "evaluate_stage",
    "eval_expr",
    "condition_mask",
    "stage_piece_targets",
    "interp_parity_pieces",
    "interp_write_slices",
]

# reader(func, box) -> ndarray of exactly box.shape() (a view is fine)
Reader = Callable[["Function", Box], np.ndarray]

_CALL_FNS = {
    "sqrt": np.sqrt,
    "exp": np.exp,
    "sin": np.sin,
    "cos": np.cos,
    "abs": np.abs,
    "log": np.log,
}


def _index_grid(
    index: IndexExpr,
    box: Box,
    variables: tuple,
    bindings: Mapping[str, int],
):
    """Evaluate an index expression over a box; returns a broadcastable
    array (or scalar for constant indices)."""
    value = float(index.const.value(bindings))
    total = value
    ndim = box.ndim
    for var, coeff in index.coeffs.items():
        d = variables.index(var)
        iv = box.intervals[d]
        ax = np.arange(iv.lb, iv.ub + 1, dtype=np.float64) * float(coeff)
        shape = [1] * ndim
        shape[d] = ax.shape[0]
        total = total + ax.reshape(shape)
    return total


def _eval_ref(
    ref: Ref,
    box: Box,
    variables: tuple,
    reader: Reader,
    bindings: Mapping[str, int],
) -> np.ndarray:
    """Evaluate a read of another function over ``box``.

    Computes the producer hull box, reads it, applies per-dimension
    strides, removes constant-subscript axes, permutes remaining axes to
    consumer order, and inserts broadcast axes for unused consumer
    dimensions.
    """
    producer = ref.func
    hull: list[ConcreteInterval] = []
    drivers: list[int | None] = []
    steps: list[int] = []
    for ix in ref.indices:
        var = ix.single_variable()
        if var is None:
            if not ix.is_constant():
                raise ValueError(f"unsupported subscript {ix!r}")
            c = ix.const.int_value(bindings)
            hull.append(ConcreteInterval(c, c))
            drivers.append(None)
            steps.append(1)
            continue
        coeff = ix.coeff_of(var)
        if coeff.denominator != 1 or coeff <= 0:
            raise ValueError(
                f"non-integral subscript coefficient in {ix!r}; sampling "
                "constructs must be parity-expanded before evaluation"
            )
        a = coeff.numerator
        c = ix.const.int_value(bindings)
        k = variables.index(var)
        iv = box.intervals[k]
        hull.append(ConcreteInterval(a * iv.lb + c, a * iv.ub + c))
        drivers.append(k)
        steps.append(a)

    arr = reader(producer, Box(hull))
    # stride producer axes for coefficients > 1
    arr = arr[tuple(slice(None, None, s) for s in steps)]
    # drop constant axes (each has size 1 after the hull read)
    const_axes = tuple(j for j, d in enumerate(drivers) if d is None)
    if const_axes:
        arr = np.squeeze(arr, axis=const_axes)
    live_drivers = [d for d in drivers if d is not None]
    if len(set(live_drivers)) != len(live_drivers):
        raise ValueError(
            f"diagonal access (one consumer dim drives two producer dims) "
            f"in {ref!r}"
        )
    # permute producer axes into consumer-dimension order
    order = sorted(range(len(live_drivers)), key=lambda i: live_drivers[i])
    if order != list(range(len(live_drivers))):
        arr = np.transpose(arr, order)
    # broadcast axes for consumer dims the ref does not vary along
    used = sorted(live_drivers)
    shape = []
    src = 0
    for k in range(box.ndim):
        if src < len(used) and used[src] == k:
            shape.append(arr.shape[src])
            src += 1
        else:
            shape.append(1)
    return arr.reshape(shape)


def eval_expr(
    expr: Expr,
    box: Box,
    variables: tuple,
    reader: Reader,
    bindings: Mapping[str, int],
):
    """Evaluate an expression tree over ``box``; result broadcasts to
    ``box.shape()``."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, VarExpr):
        return _index_grid(expr.index, box, variables, bindings)
    if isinstance(expr, Ref):
        return _eval_ref(expr, box, variables, reader, bindings)
    if isinstance(expr, BinOp):
        left = eval_expr(expr.left, box, variables, reader, bindings)
        right = eval_expr(expr.right, box, variables, reader, bindings)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        return left / right
    if isinstance(expr, UnOp):
        return -eval_expr(expr.operand, box, variables, reader, bindings)
    if isinstance(expr, Minimum):
        return np.minimum(
            eval_expr(expr.left, box, variables, reader, bindings),
            eval_expr(expr.right, box, variables, reader, bindings),
        )
    if isinstance(expr, Maximum):
        return np.maximum(
            eval_expr(expr.left, box, variables, reader, bindings),
            eval_expr(expr.right, box, variables, reader, bindings),
        )
    if isinstance(expr, Call):
        args = [
            eval_expr(a, box, variables, reader, bindings) for a in expr.args
        ]
        if expr.fn == "pow":
            return np.power(args[0], args[1])
        return _CALL_FNS[expr.fn](*args)
    if isinstance(expr, Select):
        mask = condition_mask(expr.condition, box, variables, bindings)
        t = eval_expr(expr.true_expr, box, variables, reader, bindings)
        f = eval_expr(expr.false_expr, box, variables, reader, bindings)
        return np.where(mask, t, f)
    raise TypeError(f"cannot evaluate {type(expr).__name__}")


def condition_mask(
    cond: Condition,
    box: Box,
    variables: tuple,
    bindings: Mapping[str, int],
) -> np.ndarray:
    mask = np.ones((1,) * box.ndim, dtype=bool)
    for lhs, op, rhs in cond.atoms:
        l = _index_grid(lhs, box, variables, bindings)
        r = _index_grid(rhs, box, variables, bindings)
        if op == "<=":
            mask = mask & (l <= r)
        elif op == ">=":
            mask = mask & (l >= r)
        else:
            mask = mask & (l == r)
    return np.broadcast_to(mask, box.shape()) if mask.shape != box.shape() else mask


def _condition_box(
    cond: Condition,
    region: Box,
    variables: tuple,
    bindings: Mapping[str, int],
) -> Box:
    """The sub-box of ``region`` where ``cond`` holds (conditions are
    axis-aligned in GMG pipelines)."""
    bounds = cond.constraint_bounds(dict(bindings))
    intervals = list(region.intervals)
    for var, (lo, hi) in bounds.items():
        d = variables.index(var)
        ilo = intervals[d].lb if lo == float("-inf") else math.ceil(lo)
        ihi = intervals[d].ub if hi == float("inf") else math.floor(hi)
        intervals[d] = intervals[d].intersect(ConcreteInterval(ilo, ihi))
    return Box(intervals)


def stage_piece_targets(
    stage: "Function",
    region: Box,
    bindings: Mapping[str, int],
) -> list[tuple[Box, Expr]]:
    """Lower a (non-``Interp``) stage's piecewise definition over
    ``region`` into concrete ``(box, expr)`` targets.

    Exactly the if/elif chain semantics of ``Case`` lists: each ``Case``
    claims the sub-box of the still-unclaimed region where its condition
    holds; a plain trailing expression claims everything left.  The
    boxes are pairwise disjoint and their union is the subset of
    ``region`` the definition covers.  Both the unplanned interpreter
    and the kernel planner consume this decomposition, so planned and
    fallback execution write the same boxes in the same order.
    """
    variables = stage.variables
    out: list[tuple[Box, Expr]] = []
    remaining = [region]
    for piece in stage.defn:
        if not remaining:
            break
        if isinstance(piece, Case):
            targets = []
            next_remaining: list[Box] = []
            for rbox in remaining:
                cbox = _condition_box(
                    piece.condition, rbox, variables, bindings
                )
                if not cbox.is_empty():
                    targets.append(cbox)
                next_remaining.extend(rbox.subtract(cbox))
            expr = piece.expr
            remaining = next_remaining
        else:
            targets = remaining
            expr = piece
            remaining = []
        for tbox in targets:
            out.append((tbox, expr))
    return out


def interp_parity_pieces(
    stage: Interp,
    region: Box,
) -> list[tuple[tuple[int, ...], Expr, Box]]:
    """Per-parity-class lowering of an ``Interp`` stage over ``region``:
    for each output parity class ``x_d = 2 q_d + r_d``, the coarse box
    of ``q`` whose stride-2 image lies in ``region`` (empty classes are
    dropped)."""
    pieces: list[tuple[tuple[int, ...], Expr, Box]] = []
    for parity, expr in stage.parity_cases.items():
        qiv: list[ConcreteInterval] = []
        for d, r in enumerate(parity):
            iv = region.intervals[d]
            qlo = -((-(iv.lb - r)) // 2)  # ceil((lb - r)/2)
            qhi = (iv.ub - r) // 2
            qiv.append(ConcreteInterval(qlo, qhi))
        qbox = Box(qiv)
        if qbox.is_empty():
            continue
        pieces.append((parity, expr, qbox))
    return pieces


def interp_write_slices(
    qbox: Box,
    parity: tuple[int, ...],
    out_origin: tuple[int, ...],
) -> tuple[slice, ...]:
    """Stride-2 output slices of one interp parity class relative to an
    array whose element ``out_origin`` is index 0."""
    return tuple(
        slice(2 * q.lb + r - o, 2 * q.ub + r - o + 1, 2)
        for q, r, o in zip(qbox.intervals, parity, out_origin)
    )


def evaluate_stage(
    stage: "Function",
    region: Box,
    reader: Reader,
    out: np.ndarray,
    out_origin: tuple[int, ...],
    bindings: Mapping[str, int],
) -> int:
    """Evaluate ``stage`` over ``region``, writing into ``out`` (whose
    element ``out_origin`` is index 0).  Returns the number of points
    computed (for statistics).

    This is the *unplanned* tree-walking path; the planned path
    (:mod:`repro.backend.kernels`) precompiles the same targets into op
    tapes.  Fault-injection and verification always run through here.
    """
    if region.is_empty():
        return 0
    variables = stage.variables
    points = 0
    if isinstance(stage, Interp):
        for parity, expr, qbox in interp_parity_pieces(stage, region):
            value = eval_expr(expr, qbox, variables, reader, bindings)
            out[interp_write_slices(qbox, parity, out_origin)] = value
            points += qbox.volume()
        return points
    for tbox, expr in stage_piece_targets(stage, region, bindings):
        value = eval_expr(expr, tbox, variables, reader, bindings)
        out[tbox.slices(out_origin)] = value
        points += tbox.volume()
    return points
