"""The formal ``Backend`` protocol and the ordered execution-tier
registry.

The paper's central claim is that one DSL program lowers to many
execution strategies without touching the solver.  This module makes
that claim a first-class object: every execution tier is a
:class:`Backend` registered in the process-wide :class:`TierRegistry`
(``TIERS``), and everything that used to switch on the
``"native"|"planned"|"interpreted"`` string tags — the executor, the
degradation ladder, the compile cache, the autotuner, the solve
service — now asks the registry instead.  String-literal backend
comparisons are *banned* outside this module (enforced by
``scripts/check_no_backend_strings.py`` in CI).

Registered tiers, fastest first::

    native-driver  whole-solve C cycle loop       (repro.backend.native)
    native         per-cycle C/OpenMP invocation  (repro.backend.native)
    batched        one plan, many RHS, stacked    (this module)
    planned        AOT numpy kernel tapes         (repro.backend.kernels)
    interpreted    tree-walking tile interpreter  (repro.backend.evaluate)

Each tier declares:

* capability flags (``lowerable_constructs``,
  ``supports_fault_injection``, ``supports_batching``,
  ``plans_kernels``, ``jit_build``, ``config_selectable``);
* its **degradation-ladder rungs** — the registry order concatenates
  them into the canonical ladder (``TIERS.ladder_order()``), which is
  what :data:`repro.variants.LADDER_ORDER` now re-exports;
* hooks: :meth:`Backend.plan` / :meth:`Backend.execute` (the
  plan/buffers execution surface), :meth:`Backend.ensure_ready` (block
  until tier-specific build work — e.g. the native JIT — is done, so
  the autotuner charges it to the trial), :meth:`Backend.cost_hint`
  (machine-model estimate for the autotuner/evolver),
  :meth:`Backend.inherit` (compile-cache artifact adoption), and
  :meth:`Backend.close`.

Per-tier counters live in :class:`BackendStats` records keyed by tier
name on ``ExecutionStats.tiers``; the old flat counters
(``native_executions`` & co.) remain as deprecated read-through
properties on :class:`~repro.backend.executor.ExecutionStats`.

:class:`FallbackPolicy` is the **single** fallback-and-count path.  The
three historical copies (executor native latch, ``GuardedPipeline``,
``ResilientPipeline``) all construct one with their own outlets —
incident log, compile report, incident sink, circuit breaker, stats —
and call :meth:`FallbackPolicy.fault`; the records and breaker signals
emitted are bit-for-bit what the old inline code produced.

The registry proves it pays for itself with
:class:`BatchedPlannedBackend`: the fourth tier executes **one kernel
plan over many right-hand sides** by prefixing a batch axis to every
precompiled tape read, write, temp slot, and scratch buffer.  numpy
broadcasting aligns trailing dimensions, so the unmodified per-request
``StageKernel`` tapes run verbatim over ``(B, *spatial)`` arrays and
the result is bitwise identical to ``B`` per-request executes.  The
solve service uses it to coalesce same-spec queued requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..errors import InputShapeError, MissingInputError
from .kernels import (
    A_IMM,
    A_REF,
    K_SELECT,
    K_UFUNC,
    K_WRITE,
    R_ARRAY,
    R_INPUT,
    ExecEnv,
    KernelPlan,
    RefSpec,
    StageKernel,
    Tape,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..resilience.incidents import IncidentLog, IncidentRecord
    from .executor import CompiledPipeline, ExecutionStats

__all__ = [
    "BackendStats",
    "ExecutionPlan",
    "ExecutionBuffers",
    "Backend",
    "FallbackPolicy",
    "TierRegistry",
    "InterpretedBackend",
    "PlannedBackend",
    "NativeBackend",
    "DriverBackend",
    "BatchedPlannedBackend",
    "INTERPRETED",
    "PLANNED",
    "NATIVE",
    "DRIVER",
    "BATCHED",
    "TIERS",
]


# ---------------------------------------------------------------------------
# per-tier statistics
# ---------------------------------------------------------------------------


@dataclass
class BackendStats:
    """Counters of one execution tier (one record per tier name on
    ``ExecutionStats.tiers``)."""

    tier: str
    #: executes that ran to completion through this tier
    executions: int = 0
    #: executes that wanted this tier but degraded to the next one
    fallbacks: int = 0
    #: tier artifacts served without rebuilding (kernel-plan clones,
    #: native artifact-store hits)
    cache_hits: int = 0
    #: wall time in tier-specific build work (native cc invocation)
    compile_time_s: float = 0.0
    #: wall time building the ahead-of-time kernel plan
    plan_time_s: float = 0.0
    #: requests served by batched executes (batched tier only)
    coalesced: int = 0
    #: multigrid cycles retired inside whole-solve driver bursts
    #: (driver tier only)
    cycles_in_native: int = 0
    #: driver bursts that returned to the Python supervisor hook
    #: (driver tier only)
    hook_returns: int = 0
    #: JIT wall time attributed to artifacts carrying the whole-solve
    #: driver entry (driver tier only; the shared object is the same
    #: one the per-cycle native tier uses)
    driver_compile_time_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "tier": self.tier,
            "executions": self.executions,
            "fallbacks": self.fallbacks,
            "cache_hits": self.cache_hits,
            "compile_time_s": round(self.compile_time_s, 6),
            "plan_time_s": round(self.plan_time_s, 6),
            "coalesced": self.coalesced,
            "cycles_in_native": self.cycles_in_native,
            "hook_returns": self.hook_returns,
            "driver_compile_time_s": round(
                self.driver_compile_time_s, 6
            ),
        }


# ---------------------------------------------------------------------------
# the execution surface
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExecutionPlan:
    """What a tier prepared for a pipeline: the tier name plus the
    tier-specific artifact (a :class:`~repro.backend.kernels.KernelPlan`,
    a native build handle, or ``None`` for the interpreter)."""

    tier: str
    artifact: object | None = None


@dataclass(frozen=True)
class ExecutionBuffers:
    """Run-time operands of one execute: the compiled pipeline (owner
    of stats, allocator, workspaces) and the validated input arrays."""

    compiled: "CompiledPipeline"
    inputs: dict


# ---------------------------------------------------------------------------
# the single fallback-and-count path
# ---------------------------------------------------------------------------


class FallbackPolicy:
    """One fault-recording path shared by every tier and consumer.

    Construct it with whichever outlets the deployment has — any subset
    of an :class:`~repro.resilience.incidents.IncidentLog`, a circuit
    breaker (anything with ``record_failure(variant, error)``, i.e. the
    :class:`~repro.resilience.ladder.DegradationLadder`), an incident
    ``sink`` list plus ``wrap`` factory (the ``GuardedPipeline``
    shape), and an :class:`~repro.backend.executor.ExecutionStats` —
    then report every fault through :meth:`fault`.  The records emitted
    are exactly what the pre-registry inline copies produced, so audit
    trails and breaker behaviour are unchanged.
    """

    def __init__(
        self,
        *,
        log: "IncidentLog | None" = None,
        breaker=None,
        sink: list | None = None,
        wrap: Callable | None = None,
        stats: "ExecutionStats | None" = None,
    ) -> None:
        self.log = log
        self.breaker = breaker
        self.sink = sink
        self.wrap = wrap
        self.stats = stats

    def fault(
        self,
        error: Exception,
        *,
        kind: str = "fault",
        tier: str | None = None,
        variant: str | None = None,
        action: str | None = None,
        invocation: int | None = None,
        report=None,
        fallback: str | None = None,
        details: dict | None = None,
        **context,
    ) -> "IncidentRecord | None":
        """Record one fault everywhere it must be visible.

        ``tier`` bumps that tier's fallback counter; ``variant`` signals
        the circuit breaker; ``report`` mirrors the record onto a
        :class:`~repro.passes.manager.CompileReport` (as the structured
        incident dict when no log record exists); ``fallback`` names
        the tier/variant that serves instead.  Returns the incident-log
        record, when one was written.
        """
        rec = None
        if self.stats is not None and tier is not None:
            self.stats.tier(tier).fallbacks += 1
        if self.log is not None:
            fields: dict = {"variant": variant, "invocation": invocation}
            if action is not None:
                fields["action"] = action
            if details is not None:
                fields["details"] = details
            rec = self.log.record(
                kind,
                error=f"{type(error).__name__}: {error}",
                **fields,
            )
        if report is not None:
            if rec is not None:
                report.record_incident(rec.to_dict())
            else:
                incident = {"kind": kind, **context}
                if action is not None:
                    incident["action"] = action
                incident["error"] = str(error)
                if fallback is not None:
                    incident["fallback"] = fallback
                report.record_incident(incident)
        if self.sink is not None and self.wrap is not None:
            self.sink.append(self.wrap(invocation, error, fallback))
        if self.breaker is not None and variant is not None:
            self.breaker.record_failure(variant, error)
        return rec


# ---------------------------------------------------------------------------
# the Backend protocol (base class doubles as the reference impl)
# ---------------------------------------------------------------------------

#: every DSL construct the numpy tiers evaluate
_ALL_CONSTRUCTS = frozenset(
    {
        "stencil",
        "tstencil",
        "restrict",
        "interp",
        "select",
        "case",
        "diamond",
        "float32",
    }
)


class Backend:
    """One execution tier.  Subclasses override the flags and hooks;
    the base class implements the interpreter-shaped defaults.

    The run-time contract: ``execute(plan(compiled), buffers)`` runs
    one pipeline invocation, accumulates counters into the tier's
    :class:`BackendStats` record on ``compiled.stats``, and returns the
    output arrays.  A tier that cannot serve an invocation (missing
    toolchain, pending build, fault-injection hook it cannot host)
    delegates to ``TIERS.fallback_for(self)`` — falling back is a
    counted, recorded event, never a silent downgrade.
    """

    name = "backend"
    #: degradation-ladder rungs this tier contributes, fastest first
    rungs: tuple[str, ...] = ()
    #: DSL constructs the tier can lower (informational; the native
    #: tier's ``unlowerable_reason`` remains the run-time authority)
    lowerable_constructs: frozenset = _ALL_CONSTRUCTS
    #: can host per-stage fault-injection hooks (interpreter only)
    supports_fault_injection = False
    #: serves many same-spec RHS in one execute (batched tier only)
    supports_batching = False
    #: valid value for ``PolyMgConfig.backend``
    config_selectable = True
    #: builds/consumes the ahead-of-time kernel plan
    plans_kernels = True
    #: runs an out-of-process toolchain build (native JIT only)
    jit_build = False
    #: can confine a crashing/hanging kernel to a disposable worker
    #: process (``native_isolation="sandbox"``) instead of risking the
    #: host — only the native tier runs untrusted machine-generated code
    crash_isolated = False
    #: runs the whole multigrid cycle loop (convergence test included)
    #: inside one invocation, returning to Python only every
    #: ``driver_hook_cycles`` cycles (whole-solve driver tier only)
    whole_solve = False

    # -- planning / readiness -------------------------------------------
    def plan(self, compiled: "CompiledPipeline", config=None) -> ExecutionPlan:
        """Prepare (idempotently) whatever this tier needs to execute
        ``compiled``; never blocks on background builds."""
        return ExecutionPlan(self.name, None)

    def ensure_ready(
        self, compiled: "CompiledPipeline", timeout: float | None = None
    ) -> None:
        """Block until tier-specific build work is finished, so callers
        that meter compile wall time (the autotuner) charge it to the
        right trial.  Default: nothing to wait for."""
        return None

    def cost_hint(
        self,
        compiled: "CompiledPipeline",
        machine,
        *,
        threads: int = 1,
        cycles: int = 1,
    ) -> float | None:
        """Predicted run time (seconds) of ``cycles`` invocations on
        ``machine``, or ``None`` when the tier has no model.  All numpy
        tiers — and the native tier, which executes the same schedule —
        answer with the Table-1 machine cost model."""
        from ..model.costs import PipelineCostModel

        return PipelineCostModel(compiled, machine).run_time(
            threads, cycles
        )

    # -- execution ------------------------------------------------------
    def execute(self, plan: ExecutionPlan, buffers: ExecutionBuffers):
        """One invocation through this tier; returns the outputs."""
        compiled = buffers.compiled
        compiled.stats.tier(self.name).executions += 1
        return compiled._execute_numpy(buffers.inputs, None)

    def run(self, compiled: "CompiledPipeline", input_arrays: dict):
        """Convenience: ``execute(plan(compiled), buffers)``."""
        return self.execute(
            self.plan(compiled), ExecutionBuffers(compiled, input_arrays)
        )

    # -- lifecycle ------------------------------------------------------
    def inherit(
        self, clone: "CompiledPipeline", source: "CompiledPipeline"
    ) -> None:
        """Adopt this tier's artifacts on a compile-cache clone."""
        return None

    def close(self, compiled: "CompiledPipeline") -> None:
        """Release tier resources held by ``compiled``."""
        compiled.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class InterpretedBackend(Backend):
    """The tree-walking tile interpreter — always correct, hosts the
    per-stage fault-injection hooks, the degradation floor."""

    name = "interpreted"
    supports_fault_injection = True
    plans_kernels = False


class PlannedBackend(Backend):
    """Ahead-of-time numpy kernel tapes (bitwise-identical to the
    interpreter); falls back per-execute when no plan exists."""

    name = "planned"
    rungs = (
        "polymg-opt+",
        "polymg-opt",
        "polymg-dtile-opt+",
        "polymg-naive",
    )

    def plan(self, compiled, config=None) -> ExecutionPlan:
        return ExecutionPlan(self.name, compiled.plan())

    def execute(self, plan, buffers):
        compiled = buffers.compiled
        kplan = plan.artifact
        if compiled.fault_injector is not None:
            # per-stage hook points only exist in the interpreter
            kplan = None
        if kplan is None:
            return TIERS.fallback_for(self).run(compiled, buffers.inputs)
        compiled.stats.tier(self.name).executions += 1
        return compiled._execute_numpy(buffers.inputs, kplan)

    def inherit(self, clone, source):
        clone._inherit_plan(source)


class NativeBackend(Backend):
    """The C/OpenMP JIT: zero-copy ctypes invocation of a shared object
    built in the background; every reason it cannot serve an execute is
    a counted fallback to the planned tier."""

    name = "native"
    rungs = ("polymg-native",)
    jit_build = True
    crash_isolated = True
    lowerable_constructs = _ALL_CONSTRUCTS - {"diamond", "float32"}

    def plan(self, compiled, config=None) -> ExecutionPlan:
        return ExecutionPlan(self.name, compiled.start_native_build())

    def ensure_ready(self, compiled, timeout=None):
        compiled.ensure_native(timeout)

    def execute(self, plan, buffers):
        compiled = buffers.compiled
        input_arrays = buffers.inputs
        stats = compiled.stats.tier(self.name)
        native_cross = None
        runner = compiled._native_runner_for_execute()
        if runner is not None:
            from ..errors import NativeBackendError

            try:
                native_out = compiled._execute_native(
                    runner, input_arrays
                )
            except NativeBackendError as exc:
                from ..errors import NativeCrashError, NativeHangError

                stats.fallbacks += 1
                action = (
                    "crash-isolated"
                    if isinstance(
                        exc, (NativeCrashError, NativeHangError)
                    )
                    else "runtime-rejected"
                )
                compiled._disable_native(action, exc)
            else:
                if (
                    runner.verified
                    or compiled.config.verify_level != "full"
                ):
                    return native_out
                # verify_level=full: cross-check the first native
                # result against the numpy tiers before trusting it
                native_cross = native_out
        outputs = TIERS.fallback_for(self).run(compiled, input_arrays)
        if native_cross is not None:
            compiled._finish_native_cross_check(
                runner, native_cross, outputs
            )
        return outputs

    def cost_hint(self, compiled, machine, *, threads=1, cycles=1):
        """Table-1 machine model plus one Python→native dispatch
        crossing *per cycle* — the honest per-cycle native estimate the
        roofline predictor ranks against the whole-solve driver."""
        from ..model.costs import NATIVE_DISPATCH_OVERHEAD_S

        base = super().cost_hint(
            compiled, machine, threads=threads, cycles=cycles
        )
        if base is None:
            return None
        return base + cycles * NATIVE_DISPATCH_OVERHEAD_S

    def inherit(self, clone, source):
        clone._inherit_native(source)


class DriverBackend(NativeBackend):
    """The whole-solve native driver: the multigrid cycle loop,
    residual-norm convergence test, and iterate ping-pong run inside
    one ``polymg_drive`` invocation with a persistent OpenMP team,
    returning to the Python supervisor hook every
    :attr:`~repro.config.PolyMgConfig.driver_hook_cycles` cycles.

    Shares the per-cycle native tier's artifact (the same translation
    unit carries both entry points, so one JIT build and one
    artifact-store entry serve both tiers), its lowerability gate, its
    sandbox confinement, and its latched fallback machinery.  Per-cycle
    executes through this tier behave exactly like the native tier;
    the whole-solve path is :meth:`CompiledPipeline.drive`, which
    callers reach only when this tier's ``whole_solve`` flag is set."""

    name = "native-driver"
    rungs = ("polymg-driver",)
    whole_solve = True

    def cost_hint(self, compiled, machine, *, threads=1, cycles=1):
        """One dispatch crossing per ``driver_hook_cycles`` burst
        instead of per cycle — the driver's amortization advantage as
        the roofline predictor sees it."""
        from ..model.costs import NATIVE_DISPATCH_OVERHEAD_S

        base = Backend.cost_hint(
            self, compiled, machine, threads=threads, cycles=cycles
        )
        if base is None:
            return None
        k = max(1, getattr(compiled.config, "driver_hook_cycles", 1))
        bursts = -(-cycles // k)  # ceil
        return base + bursts * NATIVE_DISPATCH_OVERHEAD_S


# ---------------------------------------------------------------------------
# the batched tier: one plan, many right-hand sides
# ---------------------------------------------------------------------------

_ALL = slice(None)


class _BatchedWorkspace:
    """A :class:`~repro.backend.kernels.Workspace` with a batch axis:
    temp slots hold ``batch`` stacked instances, scratch buffers and
    tape views gain a leading ``batch`` dimension."""

    __slots__ = ("plan", "batch", "_temps", "_scratch", "_views")

    def __init__(self, plan: KernelPlan, batch: int):
        self.plan = plan
        self.batch = batch
        self._temps: dict[int, np.ndarray] = {}
        self._scratch: dict[object, np.ndarray] = {}
        self._views: dict[Tape, list] = {}

    def scratch_buffer(self, key) -> np.ndarray:
        buf = self._scratch.get(key)
        if buf is None:
            shape, dtype = self.plan.scratch_specs[key]
            buf = np.empty((self.batch,) + shape, dtype=dtype)
            self._scratch[key] = buf
        return buf

    def tape_views(self, tape: Tape) -> list:
        views = self._views.get(tape)
        if views is None:
            views = []
            for ins in tape.instrs:
                if ins.kind == K_WRITE or ins.to_out:
                    views.append(None)
                    continue
                buf = self._temps.get(ins.slot)
                nbytes = self.batch * self.plan.slot_bytes[ins.slot]
                if buf is None:
                    buf = np.empty(nbytes, dtype=np.uint8)
                    self._temps[ins.slot] = buf
                views.append(
                    buf[: self.batch * ins.nbytes]
                    .view(ins.dtype)
                    .reshape((self.batch,) + ins.shape)
                )
            self._views[tape] = views
        return views


def _materialize_batched(spec: RefSpec, env: ExecEnv) -> np.ndarray:
    """A precompiled tape read with a batch axis prefixed: same fancy
    index, transpose order shifted by one, broadcast axes after the
    batch axis."""
    k = spec.kind
    if k == R_INPUT:
        base = env.inputs[spec.key]
    elif k == R_ARRAY:
        base = env.arrays[spec.key]
    else:
        base = env.ws.scratch_buffer(spec.key)
    view = base[(_ALL,) + spec.index]
    if spec.order is not None:
        view = view.transpose((0,) + tuple(o + 1 for o in spec.order))
    if spec.expand is not None:
        view = view[(_ALL,) + spec.expand]
    return view


def _run_kernel_batched(kernel: StageKernel, env: ExecEnv, batch: int) -> int:
    """Run one unmodified stage kernel over ``batch`` stacked RHS.
    Every op is the same elementwise ufunc applied per batch slice, so
    the result is bitwise identical to ``batch`` per-request runs."""
    ws = env.ws
    for w in kernel.writes:
        if w.scratch:
            base = ws.scratch_buffer(w.key)
        else:
            base = env.stage_arrays[w.key]
        out_view = base[(_ALL,) + w.index]
        tape = w.tape
        refs = tape.refs
        rv = [_materialize_batched(r, env) for r in refs] if refs else None
        views = ws.tape_views(tape)
        results: list = [None] * len(tape.instrs)
        for j, ins in enumerate(tape.instrs):
            a = [
                v if k == A_IMM else (rv[v] if k == A_REF else results[v])
                for k, v in ins.args
            ]
            kind = ins.kind
            if kind == K_UFUNC:
                dest = out_view if ins.to_out else views[j]
                ins.ufunc(*a, out=dest)
                results[j] = dest
            elif kind == K_SELECT:
                dest = out_view if ins.to_out else views[j]
                np.copyto(dest, a[1], casting="unsafe")
                np.copyto(dest, a[0], where=ins.mask, casting="unsafe")
                results[j] = dest
            else:  # K_WRITE
                np.copyto(out_view, a[0], casting="unsafe")
    return kernel.points * batch


class BatchedPlannedBackend(PlannedBackend):
    """One kernel plan, many right-hand sides.

    :meth:`execute_batch` stacks the per-request inputs along a new
    leading axis and drives the *existing* per-request kernel tapes
    over the stack, amortizing the per-op Python dispatch across the
    whole batch.  Preconditions (else a counted fallback to per-request
    executes): a kernel plan exists, no diamond-tiled groups, no
    fault-injection hook.  Single executes behave exactly like the
    planned tier.
    """

    name = "batched"
    rungs = ()
    supports_batching = True
    config_selectable = False
    lowerable_constructs = _ALL_CONSTRUCTS - {"diamond"}

    def inherit(self, clone, source):
        # the planned tier's hook already adopts the shared kernel
        # plan; running it again would double-count the cache hit
        pass

    def execute_batch(
        self, compiled: "CompiledPipeline", inputs_list: list
    ) -> list:
        """Run ``len(inputs_list)`` same-spec invocations as one
        batched execute; returns the per-request output dicts, bitwise
        identical to per-request ``execute`` calls."""
        batch = len(inputs_list)
        stats = compiled.stats.tier(self.name)
        plan = (
            compiled.plan()
            if compiled.fault_injector is None
            else None
        )
        if batch == 1 or plan is None or compiled._diamond_groups:
            if batch > 1:
                stats.fallbacks += 1
            return [compiled.execute(inputs) for inputs in inputs_list]

        dag = compiled.dag
        bindings = compiled.bindings
        storage = compiled.storage
        inputs: dict = {}
        for grid in dag.inputs:
            expected = grid.domain_box(bindings).shape()
            stacked = []
            for req in inputs_list:
                if grid.name not in req:
                    raise MissingInputError(
                        f"missing input {grid.name!r}",
                        pipeline=dag.name,
                        provided=sorted(req),
                    )
                arr = np.asarray(req[grid.name])
                if arr.shape != expected:
                    raise InputShapeError(
                        f"input {grid.name!r} has shape {arr.shape}, "
                        f"expected {expected}",
                        pipeline=dag.name,
                    )
                stacked.append(arr)
            inputs[grid] = np.stack(stacked)

        stats.executions += 1
        stats.coalesced += batch
        compiled.stats.executions += 1
        ws = _BatchedWorkspace(plan, batch)
        arrays: dict[int, np.ndarray] = {}
        out_views: dict[str, np.ndarray] = {}
        output_ids = {
            storage.array_of[out]
            for out in dag.outputs
            if out in storage.array_of
        }

        def ensure_array(aid: int) -> np.ndarray:
            if aid not in arrays:
                from ..lang.types import dtype_of

                shape = (batch,) + storage.array_shapes[aid]
                npdt = dtype_of(storage.array_dtypes[aid]).np_dtype
                if aid in output_ids:
                    arrays[aid] = np.empty(shape, dtype=npdt)
                else:
                    arrays[aid] = compiled.allocator.allocate(shape, npdt)
            return arrays[aid]

        try:
            for gi, group in enumerate(compiled.grouping.groups):
                compiled.stats.groups_executed += 1
                stage_arrays: dict = {}
                for stage in group.live_outs():
                    aid = storage.array_of[stage]
                    full = ensure_array(aid)
                    shape = stage.domain_box(bindings).shape()
                    view = full[
                        (_ALL,) + tuple(slice(0, s) for s in shape)
                    ]
                    stage_arrays[stage] = view
                    if dag.is_output(stage):
                        out_views[stage.name] = view
                gp = plan.groups[gi]
                env = ExecEnv(inputs, arrays, stage_arrays, ws)
                kernel_lists = (
                    gp.tile_kernels if gp.tiled else [gp.kernels]
                )
                for kernels in kernel_lists:
                    for kernel in kernels:
                        compiled.stats.points_computed += (
                            _run_kernel_batched(kernel, env, batch)
                        )
                if gp.tiled:
                    compiled.stats.tiles_executed += len(gp.tile_kernels)
                if compiled.config.runtime_guards:
                    from .guards import scan_nonfinite

                    for stage, view in stage_arrays.items():
                        scan_nonfinite(
                            stage.name, view, pipeline=dag.name, group=gi
                        )
                for aid, last in compiled._free_after.items():
                    if last == gi and aid in arrays:
                        compiled.allocator.deallocate(arrays.pop(aid))
        except BaseException:
            for aid in list(arrays):
                if aid not in output_ids:
                    compiled.allocator.deallocate(arrays.pop(aid))
            raise

        for stage in dag.stages:
            compiled.stats.ideal_points += (
                batch * stage.domain_box(bindings).volume()
            )
        return [
            {name: view[b] for name, view in out_views.items()}
            for b in range(batch)
        ]


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------


class TierRegistry:
    """Ordered execution tiers, fastest first — the single source of
    truth for backend names, the degradation ladder, fallback edges,
    and compile-cache artifact adoption."""

    def __init__(self) -> None:
        self._order: list[Backend] = []
        self._by_name: dict[str, Backend] = {}
        self._fallback: dict[str, str | None] = {}

    def register(
        self, backend: Backend, *, fallback: str | None = None
    ) -> Backend:
        """Append ``backend`` to the tier order.  ``fallback`` names
        the tier that serves when this one cannot (must already be
        registered or be registered later)."""
        if backend.name in self._by_name:
            raise ValueError(f"tier {backend.name!r} already registered")
        self._order.append(backend)
        self._by_name[backend.name] = backend
        self._fallback[backend.name] = fallback
        return backend

    def __iter__(self):
        return iter(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def names(self) -> tuple[str, ...]:
        """Every registered tier name, fastest first."""
        return tuple(b.name for b in self._order)

    def selectable_names(self) -> tuple[str, ...]:
        """Tier names valid as ``PolyMgConfig.backend``."""
        return tuple(
            b.name for b in self._order if b.config_selectable
        )

    def resolve(self, name: str) -> Backend:
        """The tier registered under ``name``."""
        backend = self._by_name.get(name)
        if backend is None:
            raise KeyError(
                f"unknown backend {name!r}; registered: {self.names()}"
            )
        return backend

    def fallback_for(self, backend: Backend | str) -> Backend | None:
        """The tier that serves when ``backend`` cannot."""
        name = backend if isinstance(backend, str) else backend.name
        target = self._fallback.get(self.resolve(name).name)
        return None if target is None else self.resolve(target)

    # -- the degradation ladder -----------------------------------------
    def ladder_order(self) -> tuple[str, ...]:
        """The canonical graded-degradation ladder: every tier's rungs,
        concatenated in registry order (fastest first)."""
        return tuple(
            rung for backend in self._order for rung in backend.rungs
        )

    def degradation_floor(self) -> str:
        """The last ladder rung — the variant that serves when every
        faster circuit is open (and the ceiling admission forces on
        low-priority tenants under overload)."""
        return self.ladder_order()[-1]

    def tier_of_rung(self, rung: str) -> Backend | None:
        """The tier a ladder rung belongs to."""
        for backend in self._order:
            if rung in backend.rungs:
                return backend
        return None

    # -- cross-cutting hooks --------------------------------------------
    def inherit_artifacts(
        self, clone: "CompiledPipeline", source: "CompiledPipeline"
    ) -> None:
        """Compile-cache clone path: let every tier adopt its artifacts
        (kernel plan, native build) from the cached executor."""
        for backend in self._order:
            backend.inherit(clone, source)

    def tier_health(self, ladder) -> dict:
        """Per-tier health section for ``healthz()`` and the bench
        report printers: rung breaker states plus execution/failure
        tallies, aggregated from the ladder's per-rung records."""
        snap = ladder.snapshot()
        section = {}
        for backend in self._order:
            rungs = {
                name: snap[name] for name in backend.rungs if name in snap
            }
            if not rungs and backend.rungs:
                continue
            states = {h["state"] for h in rungs.values()}
            if not states:
                breaker = "n/a"
            elif states == {"closed"}:
                breaker = "closed"
            elif "closed" in states or "half-open" in states:
                breaker = "degraded"
            else:
                breaker = "open"
            section[backend.name] = {
                "breaker": breaker,
                "executions": sum(
                    h["invocations"] for h in rungs.values()
                ),
                "failures": sum(h["failures"] for h in rungs.values()),
                "trips": sum(h["trips"] for h in rungs.values()),
                "rungs": {
                    name: h["state"] for name, h in rungs.items()
                },
            }
        return section


#: the five registered tiers, fastest first
TIERS = TierRegistry()
DRIVER = TIERS.register(DriverBackend(), fallback="native")
NATIVE = TIERS.register(NativeBackend(), fallback="planned")
BATCHED = TIERS.register(BatchedPlannedBackend(), fallback="planned")
PLANNED = TIERS.register(PlannedBackend(), fallback="interpreted")
INTERPRETED = TIERS.register(InterpretedBackend())
