"""Content-addressed compile cache.

The autotuner sweeps 80/135-point configuration spaces per workload,
the benchmark harness re-compiles the same variants figure after
figure, and every :class:`~repro.backend.guards.GuardedPipeline`
instance used to compile its own ``polymg-naive`` fallback.  All of
those are *pure* recompilations: the compile pipeline is deterministic
in (DSL specification, parameter bindings, configuration), so its
result can be memoized under a stable content fingerprint.

Keying
------
:func:`compile_fingerprint` hashes three independent components:

* the **specification**: every function reachable from the outputs, in
  deterministic topological order — class, name, dtype, parametric
  domain intervals, the full definition expression tree, and the
  topological indices of its producers (so graph shape is captured
  beyond names);
* the **parameter bindings**, sorted;
* the **configuration**: every :class:`~repro.config.PolyMgConfig`
  field (via :meth:`~repro.config.PolyMgConfig.fingerprint`), so
  changing *any* switch — including ``verify_level`` and
  ``runtime_guards`` — busts the key.

Serving
-------
A hit does **not** return the original ``CompiledPipeline`` object: it
constructs a fresh executor over the *shared* immutable artifacts
(DAG, grouping, schedule, storage plan) so every compile result has
its own execution statistics, allocator pool, and fault-injection
hook, exactly like a cold compile.  The artifacts themselves are
protected by an **integrity seal** — a digest over group order,
schedule timestamps, and the complete storage plan taken at insert
time.  A fault injector (:mod:`repro.verify.faults`) that corrupts a
cached artifact in place changes the seal; the next lookup detects the
mismatch, evicts the tainted entry, and recompiles — corrupted
artifacts are never served from cache.

``REPRO_COMPILE_CACHE=0`` disables the cache process-wide;
``REPRO_COMPILE_CACHE_SIZE`` overrides the LRU capacity (default 256).

Native artifacts
----------------
The native JIT backend (:mod:`repro.backend.native`) keys its shared
objects by a content address over (emitted C source, compiler flags,
compiler identity) and stores them **on disk** in a
:class:`NativeArtifactStore`: artifacts are renamed into place
atomically (concurrent processes race benignly), a SHA-256 sidecar
detects corrupt artifacts (they are deleted and recompiled, never
loaded), and the store is size-bounded with LRU-by-mtime eviction.
``REPRO_NATIVE_CACHE_DIR`` overrides the location,
``REPRO_NATIVE_CACHE_BYTES`` the size bound (default 256 MiB).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

try:  # POSIX only; the store degrades to thread-level locking without it
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

if TYPE_CHECKING:  # pragma: no cover
    from .backend.executor import CompiledPipeline
    from .config import PolyMgConfig
    from .lang.function import Function
    from .passes.manager import CompileReport

__all__ = [
    "spec_fingerprint",
    "compile_fingerprint",
    "CacheStats",
    "CompileCache",
    "compile_cache",
    "cache_enabled",
    "NativeArtifactStats",
    "NativeArtifactStore",
    "native_artifact_store",
    "quarantine_threshold",
]


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------

# uids are drawn from a process-global monotonically increasing counter
# and never reused, so a uid tuple is a sound memo key even after the
# original Function objects are garbage-collected.
_spec_fp_memo: dict[tuple[int, ...], str] = {}


def spec_fingerprint(outputs: Sequence["Function"]) -> str:
    """Stable content hash of a DSL specification.

    Two independently built, structurally identical specifications
    (e.g. two calls to ``build_poisson_cycle`` with the same arguments)
    produce the same fingerprint even though their ``Function`` objects
    differ.
    """
    from .ir.dag import topological_order

    memo_key = tuple(f.uid for f in outputs)
    hit = _spec_fp_memo.get(memo_key)
    if hit is not None:
        return hit

    order, _ = topological_order(outputs)
    index = {f: i for i, f in enumerate(order)}
    h = hashlib.sha256()
    for i, f in enumerate(order):
        h.update(
            f"{i}|{type(f).__name__}|{f.name}|{f.dtype.name}|".encode()
        )
        h.update(repr(f.intervals).encode())
        producers = (
            [] if f.is_input else sorted(f.producers(), key=lambda p: p.uid)
        )
        h.update(repr([index[p] for p in producers]).encode())
        if not f.is_input and f.has_defn:
            h.update(repr(f.defn).encode())
        timesteps = getattr(f, "timesteps", None)
        if timesteps is not None:
            h.update(f"|T{timesteps}".encode())
        h.update(b"\n")
    out_ids = [index[f] for f in outputs]
    h.update(f"outputs={out_ids}".encode())
    digest = h.hexdigest()
    if len(_spec_fp_memo) > 4096:  # unbounded spec churn guard
        _spec_fp_memo.clear()
    _spec_fp_memo[memo_key] = digest
    return digest


def compile_fingerprint(
    outputs: Sequence["Function"],
    params: dict[str, int],
    config: "PolyMgConfig",
    name: str,
) -> str:
    """The compile cache key: hash of (spec, params, config, name)."""
    h = hashlib.sha256()
    h.update(spec_fingerprint(outputs).encode())
    h.update(repr(sorted(params.items())).encode())
    h.update(config.fingerprint().encode())
    h.update(name.encode())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# artifact integrity seal
# ---------------------------------------------------------------------------


def artifact_seal(compiled: "CompiledPipeline") -> str:
    """Digest of every artifact field a fault class can corrupt:
    group order and membership, schedule timestamps, scratch slot
    assignments, and full-array geometry.  Recomputed at lookup time to
    detect in-place tampering with cached artifacts."""
    h = hashlib.sha256()
    grouping = compiled.grouping
    schedule = compiled.schedule
    storage = compiled.storage
    for group in grouping.groups:
        h.update(f"g|{group.anchor.uid}|".encode())
        h.update(repr([s.uid for s in group.stages]).encode())
        h.update(f"|t{schedule.time_of_group(group)}".encode())
    h.update(b"#stages|")
    h.update(
        repr(
            sorted(
                (s.uid, t) for s, t in schedule.stage_time.items()
            )
        ).encode()
    )
    h.update(b"#arrays|")
    h.update(
        repr(
            sorted((s.uid, aid) for s, aid in storage.array_of.items())
        ).encode()
    )
    h.update(repr(sorted(storage.array_shapes.items())).encode())
    h.update(repr(sorted(storage.array_dtypes.items())).encode())
    for gi in sorted(storage.scratch):
        splan = storage.scratch[gi]
        h.update(f"#scratch{gi}|".encode())
        h.update(
            repr(
                sorted((s.uid, b) for s, b in splan.buffer_of.items())
            ).encode()
        )
        h.update(repr(sorted(splan.buffer_shapes.items())).encode())
        h.update(repr(sorted(splan.buffer_dtypes.items())).encode())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# the cache
# ---------------------------------------------------------------------------


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    #: entries rejected (and evicted) because the integrity seal no
    #: longer matched — i.e. a cached artifact was mutated in place
    tainted_rejections: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "tainted_rejections": self.tainted_rejections,
        }


@dataclass
class _CacheEntry:
    compiled: "CompiledPipeline"
    report: "CompileReport"
    seal: str


class CompileCache:
    """LRU cache of compile results keyed by content fingerprint.

    Thread-safe: the autotuner's timeout path runs trials on worker
    threads.
    """

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = maxsize
        self._entries: OrderedDict[str, _CacheEntry] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str) -> "CompiledPipeline | None":
        """Return a fresh executor over the cached artifacts, or
        ``None`` on miss or on a tainted (mutated-in-place) entry."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if artifact_seal(entry.compiled) != entry.seal:
                # a fault injector (or any in-place mutation) corrupted
                # the cached artifacts: never serve them
                del self._entries[key]
                self.stats.tainted_rejections += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            entry.report.cache_hits += 1
            return self._clone(entry)

    @staticmethod
    def _clone(entry: _CacheEntry) -> "CompiledPipeline":
        from .backend.executor import CompiledPipeline

        src = entry.compiled
        clone = CompiledPipeline(
            src.dag, src.config, src.grouping, src.schedule, src.storage
        )
        clone.report = entry.report
        # every registered tier adopts its own artifacts: the kernel
        # plan and the native shared object are immutable and keyed by
        # the same content address as the compile artifacts, so clones
        # share them instead of re-lowering / re-invoking the
        # toolchain; workspaces and worker pools stay per-executor
        from .backend.registry import TIERS

        TIERS.inherit_artifacts(clone, src)
        return clone

    def store(self, key: str, compiled: "CompiledPipeline") -> None:
        if compiled.report is None:
            raise ValueError("cannot cache a pipeline without a report")
        with self._lock:
            self._entries[key] = _CacheEntry(
                compiled, compiled.report, artifact_seal(compiled)
            )
            self._entries.move_to_end(key)
            self.stats.stores += 1
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def evict(self, key: str) -> bool:
        """Drop one entry by fingerprint (returns whether it existed).

        Used by the resilience layer when a compiled artifact fails
        verification: a statically bad artifact must never be served
        from cache again, so the next probe of that variant recompiles
        from scratch."""
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                self.stats.evictions += 1
                return True
            return False

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


# ---------------------------------------------------------------------------
# on-disk shared-object store for the native JIT backend
# ---------------------------------------------------------------------------


@dataclass
class NativeArtifactStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    #: artifacts whose on-disk bytes no longer matched their SHA-256
    #: sidecar (deleted, reported as a miss, recompiled)
    corrupt_rejections: int = 0
    #: lookups refused because the key's verdict sidecar marks it
    #: quarantined (crashed too many times; never reloaded)
    quarantined_rejections: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "corrupt_rejections": self.corrupt_rejections,
            "quarantined_rejections": self.quarantined_rejections,
        }


def _sha256_file(path: Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


class NativeArtifactStore:
    """Size-bounded on-disk cache of JIT-compiled shared objects.

    Keys are content addresses (see
    :func:`repro.backend.native.native_artifact_key`); values are
    ``<key>.so`` files with a ``<key>.json`` sidecar recording the
    artifact's SHA-256 digest and provenance.  Writers stage under a
    unique temporary name and ``os.replace`` into place, so concurrent
    processes compiling the same key race benignly (last writer wins
    with an identical artifact).  A served artifact is re-hashed
    against its sidecar first: corruption (truncated file, bit rot,
    partial copy) deletes the entry instead of loading it.

    Cross-process mutual exclusion: every ``get``/``put``/``clear``
    holds an exclusive ``flock`` on ``<root>/.store.lock`` in addition
    to the in-process thread lock.  Without it, two renames inside
    ``put`` (``.so`` then ``.json``) are individually atomic but not
    *jointly*: a reader in another process can observe the new shared
    object against the old sidecar, "detect" a hash mismatch, and
    delete a perfectly good artifact.  The same window lets concurrent
    LRU evictions unlink a file another process is mid-hash on.  The
    lock is advisory, held only for the store operation (never across
    a compile), and degrades to thread-only locking where ``fcntl`` is
    unavailable.
    """

    def __init__(
        self, root: str | Path, max_bytes: int = 256 * 1024 * 1024
    ) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self.stats = NativeArtifactStats()

    @contextlib.contextmanager
    def _flock(self):
        """Exclusive inter-process lock over the store directory."""
        if fcntl is None:
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.root / ".store.lock", os.O_RDWR | os.O_CREAT)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            # closing the fd releases the flock
            os.close(fd)

    def _so_path(self, key: str) -> Path:
        return self.root / f"{key}.so"

    def _meta_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _verdict_path(self, key: str) -> Path:
        # ``<key>.verdict.json`` — stem is ``<key>.verdict``, so LRU
        # eviction (which unlinks ``<key>.so`` + ``<key>.json``) leaves
        # the verdict behind: quarantine outlives the artifact bytes.
        return self.root / f"{key}.verdict.json"

    def _read_verdict(self, key: str) -> dict:
        try:
            verdict = json.loads(self._verdict_path(key).read_text())
        except (OSError, ValueError):
            return {}
        return verdict if isinstance(verdict, dict) else {}

    def get(self, key: str) -> Path | None:
        """Return the artifact path for ``key``, or ``None`` on miss or
        on a corrupt artifact (which is deleted)."""
        with self._lock, self._flock():
            if self._read_verdict(key).get("quarantined"):
                self.stats.quarantined_rejections += 1
                return None
            so = self._so_path(key)
            meta = self._meta_path(key)
            if not so.is_file() or not meta.is_file():
                self.stats.misses += 1
                return None
            try:
                recorded = json.loads(meta.read_text())["sha256"]
                actual = _sha256_file(so)
            except (OSError, KeyError, ValueError):
                recorded, actual = "?", "!"
            if actual != recorded:
                for p in (so, meta):
                    try:
                        p.unlink()
                    except OSError:
                        pass
                self.stats.corrupt_rejections += 1
                self.stats.misses += 1
                return None
            now = None  # bump mtime for LRU eviction ordering
            os.utime(so, now)
            self.stats.hits += 1
            return so

    def put(self, key: str, built_so: Path, meta: dict | None = None) -> Path:
        """Move a freshly built shared object into the store under
        ``key`` (atomic rename-into-place) and return its final path."""
        with self._lock, self._flock():
            self.root.mkdir(parents=True, exist_ok=True)
            built_so = Path(built_so)
            digest = _sha256_file(built_so)
            so = self._so_path(key)
            meta_path = self._meta_path(key)
            record = dict(meta or {})
            record["sha256"] = digest
            record["size"] = built_so.stat().st_size
            tmp_meta = self.root / f".{key}.json.tmp.{os.getpid()}"
            tmp_meta.write_text(json.dumps(record, indent=2) + "\n")
            os.replace(built_so, so)
            os.replace(tmp_meta, meta_path)
            self.stats.stores += 1
            self._evict_over_budget(keep=key)
            return so

    def _evict_over_budget(self, keep: str | None = None) -> None:
        """LRU-by-mtime eviction down to ``max_bytes`` (lock held)."""
        entries = []
        total = 0
        for so in self.root.glob("*.so"):
            try:
                st = so.stat()
            except OSError:
                continue
            total += st.st_size
            entries.append((st.st_mtime, st.st_size, so))
        entries.sort()
        for _mtime, size, so in entries:
            if total <= self.max_bytes:
                break
            if keep is not None and so.stem == keep:
                continue
            for p in (so, so.with_suffix(".json")):
                try:
                    p.unlink()
                except OSError:
                    pass
            total -= size
            self.stats.evictions += 1

    # -- artifact quarantine --------------------------------------------
    def record_crash(self, key: str, kind: str) -> bool:
        """Record one crash/hang against ``key``'s verdict sidecar and
        return whether the key is now quarantined.

        The sidecar (``<key>.verdict.json``) is the durable half of the
        sandbox's crash handling: once ``crashes`` reaches
        :func:`quarantine_threshold`, the verdict flips to
        ``quarantined`` and :meth:`get` refuses the key forever — in
        this process and in every future one — even after the ``.so``
        itself is evicted.  Written atomically under the store's flock
        so concurrent sandbox pools merge their counts instead of
        clobbering each other."""
        with self._lock, self._flock():
            self.root.mkdir(parents=True, exist_ok=True)
            verdict = self._read_verdict(key)
            verdict["crashes"] = int(verdict.get("crashes", 0)) + 1
            kinds = verdict.setdefault("kinds", [])
            if isinstance(kinds, list):
                kinds.append(kind)
            verdict["quarantined"] = bool(
                verdict.get("quarantined")
            ) or verdict["crashes"] >= quarantine_threshold()
            tmp = self.root / f".{key}.verdict.tmp.{os.getpid()}"
            tmp.write_text(json.dumps(verdict, indent=2) + "\n")
            os.replace(tmp, self._verdict_path(key))
            return bool(verdict["quarantined"])

    def is_quarantined(self, key: str) -> bool:
        with self._lock, self._flock():
            return bool(self._read_verdict(key).get("quarantined"))

    def quarantined_keys(self) -> list[str]:
        """Keys currently blacklisted on disk (for health reporting)."""
        with self._lock, self._flock():
            if not self.root.is_dir():
                return []
            keys = []
            for p in self.root.glob("*.verdict.json"):
                key = p.name[: -len(".verdict.json")]
                if self._read_verdict(key).get("quarantined"):
                    keys.append(key)
            return sorted(keys)

    def clear(self) -> None:
        with self._lock, self._flock():
            if not self.root.is_dir():
                return
            for p in list(self.root.glob("*.so")) + list(
                self.root.glob("*.json")
            ):
                try:
                    p.unlink()
                except OSError:
                    pass


def quarantine_threshold() -> int:
    """Crash count at which an artifact key is quarantined for good
    (``REPRO_NATIVE_QUARANTINE_AFTER``, default 3, minimum 1)."""
    try:
        value = int(os.environ.get("REPRO_NATIVE_QUARANTINE_AFTER", "3"))
    except ValueError:
        return 3
    return max(1, value)


def _native_store_root() -> Path:
    env = os.environ.get("REPRO_NATIVE_CACHE_DIR")
    if env:
        return Path(env)
    return Path(os.path.expanduser("~/.cache/polymg-native"))


def _native_store_bytes() -> int:
    try:
        return int(
            os.environ.get(
                "REPRO_NATIVE_CACHE_BYTES", str(256 * 1024 * 1024)
            )
        )
    except ValueError:
        return 256 * 1024 * 1024


_NATIVE_STORE: NativeArtifactStore | None = None
_NATIVE_LOCK = threading.Lock()


def native_artifact_store() -> NativeArtifactStore:
    """The process-wide native artifact store.  Re-created when
    ``REPRO_NATIVE_CACHE_DIR`` changes (test isolation)."""
    global _NATIVE_STORE
    with _NATIVE_LOCK:
        root = _native_store_root()
        if _NATIVE_STORE is None or _NATIVE_STORE.root != root:
            _NATIVE_STORE = NativeArtifactStore(
                root, _native_store_bytes()
            )
        return _NATIVE_STORE


def cache_enabled() -> bool:
    return os.environ.get("REPRO_COMPILE_CACHE", "1") != "0"


def _default_maxsize() -> int:
    try:
        return int(os.environ.get("REPRO_COMPILE_CACHE_SIZE", "256"))
    except ValueError:
        return 256


_GLOBAL_CACHE: CompileCache | None = None
_GLOBAL_LOCK = threading.Lock()


def compile_cache() -> CompileCache:
    """The process-wide compile cache (lazily created)."""
    global _GLOBAL_CACHE
    with _GLOBAL_LOCK:
        if _GLOBAL_CACHE is None:
            _GLOBAL_CACHE = CompileCache(_default_maxsize())
        return _GLOBAL_CACHE
