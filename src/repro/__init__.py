"""repro — a reproduction of "Optimizing Geometric Multigrid Method
Computation using a DSL Approach" (SC'17): the PolyMG DSL, its
optimizing compiler (fusion, overlapped tiling, the storage
optimizations of section 3.2), a numpy execution backend, a C/OpenMP
emitter, a Pluto-style diamond-tiling backend, the hand-optimized
baselines, and a machine cost model of the paper's evaluation platform.

Quickstart::

    from repro import (
        MultigridOptions, build_poisson_cycle, polymg_opt_plus,
    )
    pipe = build_poisson_cycle(2, 128, MultigridOptions(levels=4))
    compiled = pipe.compile(polymg_opt_plus())
    out = compiled.execute(pipe.make_inputs(v, f))

See README.md, DESIGN.md, and EXPERIMENTS.md.
"""

from .backend.guards import GuardedPipeline, ResidualMonitor
from .cache import CompileCache, compile_cache, compile_fingerprint
from .compiler import compile_pipeline
from .config import PolyMgConfig
from .errors import (
    CompileError,
    NumericalDivergenceError,
    PassOrderingError,
    PoolExhaustedError,
    ReproError,
    ScheduleLegalityError,
    SolveAbortedError,
    StorageSoundnessError,
    TileCoverageError,
    TrialFailure,
)
from .passes.manager import (
    CompilationContext,
    CompileReport,
    Pass,
    PassManager,
    default_passes,
)
from .multigrid import (
    MultigridOptions,
    build_poisson_cycle,
    reference_cycle,
    solve,
    solve_compiled,
)
from .multigrid.cycles import solve_supervised
from .resilience import (
    DegradationLadder,
    IncidentLog,
    ResilientPipeline,
    SolveSupervisor,
    SupervisedSolveResult,
    SupervisorPolicy,
)
from .verify import verify_compiled
from .multigrid.cycles import build_smoother_chain
from .multigrid.nas_mg import NasMgSolver, build_nas_mg_cycle
from .variants import (
    POLYMG_VARIANTS,
    handopt_model,
    handopt_pluto_model,
    polymg_dtile_opt_plus,
    polymg_naive,
    polymg_opt,
    polymg_opt_plus,
    variant_config,
)

__version__ = "1.0.0"

__all__ = [
    "compile_pipeline",
    "PolyMgConfig",
    "CompilationContext",
    "CompileReport",
    "Pass",
    "PassManager",
    "default_passes",
    "CompileCache",
    "compile_cache",
    "compile_fingerprint",
    "PassOrderingError",
    "MultigridOptions",
    "build_poisson_cycle",
    "build_smoother_chain",
    "reference_cycle",
    "solve",
    "solve_compiled",
    "solve_supervised",
    "verify_compiled",
    "GuardedPipeline",
    "ResidualMonitor",
    "DegradationLadder",
    "IncidentLog",
    "ResilientPipeline",
    "SolveSupervisor",
    "SupervisedSolveResult",
    "SupervisorPolicy",
    "ReproError",
    "CompileError",
    "ScheduleLegalityError",
    "StorageSoundnessError",
    "TileCoverageError",
    "NumericalDivergenceError",
    "PoolExhaustedError",
    "SolveAbortedError",
    "TrialFailure",
    "NasMgSolver",
    "build_nas_mg_cycle",
    "POLYMG_VARIANTS",
    "handopt_model",
    "handopt_pluto_model",
    "polymg_dtile_opt_plus",
    "polymg_naive",
    "polymg_opt",
    "polymg_opt_plus",
    "variant_config",
]
