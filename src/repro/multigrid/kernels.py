"""Dimension-generic numpy kernels for geometric multigrid.

These are the *reference* building blocks: weighted-Jacobi relaxation,
residual (defect), full-weighting restriction, and bi/tri-linear
interpolation for the discrete Poisson operator

    A_h u = (2d * u - sum of face neighbours) / h**2      (A = -laplace)

on grids of shape ``(N+2,)**d`` with one boundary layer (homogeneous
Dirichlet unless the caller maintains other boundary values — every
kernel preserves boundaries).

Operation *order* inside each kernel deliberately mirrors the expression
trees built by :mod:`repro.multigrid.cycles` so that the DSL executor
and this reference agree bit-for-bit where floating-point allows; tests
assert agreement to 1e-12 and exact agreement among compiled variants.
"""

from __future__ import annotations

import itertools

import numpy as np

__all__ = [
    "interior",
    "apply_operator",
    "jacobi_step",
    "residual",
    "restrict_full_weighting",
    "interpolate",
    "correct",
    "norm_residual",
]


def interior(ndim: int) -> tuple[slice, ...]:
    return (slice(1, -1),) * ndim


def _shifted(u: np.ndarray, d: int, off: int) -> np.ndarray:
    """Interior-shaped view of ``u`` shifted by ``off`` along dim ``d``."""
    idx: list[slice] = [slice(1, -1)] * u.ndim
    stop = u.shape[d] - 1 + off
    idx[d] = slice(1 + off, stop if stop != 0 else None)
    return u[tuple(idx)]


def apply_operator(u: np.ndarray, h: float) -> np.ndarray:
    """Interior values of ``A_h u`` (matching the DSL Stencil expansion
    order: neighbours in lexicographic weight order around the centre)."""
    d = u.ndim
    c = u[interior(d)]
    # lexicographic order of the (2d+1)-point stencil weight matrix:
    # for each dim in order, the -1 neighbour comes before the centre,
    # the +1 neighbour after.
    total = None
    pre = []
    post = []
    for dim in range(d):
        pre.append(_shifted(u, dim, -1))
        post.append(_shifted(u, dim, +1))
    # order: -z, -y, -x, centre, +x, +y, +z (matches nested weight lists)
    for term in pre:
        total = -term if total is None else total + (-term)
    total = total + (2.0 * d) * c
    for term in reversed(post):
        total = total + (-term)
    return total * (1.0 / (h * h))


def jacobi_step(
    u: np.ndarray, f: np.ndarray, h: float, omega: float = 0.8
) -> np.ndarray:
    """One weighted-Jacobi relaxation of ``A_h u = f``; returns a new
    grid with boundaries copied from ``u``."""
    d = u.ndim
    weight = omega * (h * h) / (2.0 * d)
    out = u.copy()
    out[interior(d)] = u[interior(d)] - weight * (
        apply_operator(u, h) - f[interior(d)]
    )
    return out


def residual(u: np.ndarray, f: np.ndarray, h: float) -> np.ndarray:
    """Interior defect ``f - A_h u`` (shape ``(N,)**d``, no boundary)."""
    d = u.ndim
    return f[interior(d)] - apply_operator(u, h)


def restrict_full_weighting(r: np.ndarray) -> np.ndarray:
    """Full-weighting restriction of an interior-only fine residual
    (shape ``(N,)**d``) to an interior-only coarse grid (shape
    ``(N//2,)**d``), with the 3**d kernel of weights 2**(d - |offset|)
    normalized by 4**d — the paper's [1,2,1;2,4,2;1,2,1]/16 in 2-D."""
    d = r.ndim
    n = r.shape[0]
    if n % 2 != 0:
        raise ValueError("interior size must be even to restrict")
    nc = n // 2
    # pad so fine index 2q+off (q in 1..nc, off in -1..1) is in range:
    # interior array index of fine point i is i-1; build padded view
    pad = np.zeros(tuple(s + 2 for s in r.shape), dtype=r.dtype)
    pad[interior(d)] = r
    out = None
    scale = 1.0 / (4.0**d)
    for offsets in itertools.product((-1, 0, 1), repeat=d):
        w = 1.0
        for o in offsets:
            w *= 2.0 if o == 0 else 1.0
        sl = tuple(
            slice(2 + o, 2 + o + 2 * (nc - 1) + 1, 2) for o in offsets
        )
        term = pad[sl] if w == 1.0 else w * pad[sl]
        out = term if out is None else out + term
    return out * scale


def interpolate(e: np.ndarray, fine_n: int) -> np.ndarray:
    """Bi/tri-linear interpolation of an interior-only coarse error
    (shape ``(nc,)**d``) to an interior-only fine grid (shape
    ``(fine_n,)**d``): fine point ``2q + parity`` averages the coarse
    points ``q + {0, parity_d}`` per dimension (coarse boundary = 0)."""
    d = e.ndim
    nc = e.shape[0]
    if fine_n != 2 * nc:
        raise ValueError("fine interior must be twice the coarse interior")
    # padded coarse grid with zero boundary, index q in 0..nc+1
    pad = np.zeros(tuple(s + 2 for s in e.shape), dtype=e.dtype)
    pad[interior(d)] = e
    out = np.empty((fine_n,) * d, dtype=e.dtype)
    for parity in itertools.product((0, 1), repeat=d):
        # fine interior point x=2q+r for x in [1, fine_n]:
        # q in [ceil((1-r)/2), (fine_n - r)//2]
        q_lo = [-((-(1 - r)) // 2) for r in parity]
        q_hi = [(fine_n - r) // 2 for r in parity]
        total = None
        weight = 0.5 ** sum(parity)
        for deltas in itertools.product(*[(0, r) if r else (0,) for r in parity]):
            sl = tuple(
                slice(lo + dd, hi + dd + 1)
                for lo, hi, dd in zip(q_lo, q_hi, deltas)
            )
            term = pad[sl]
            total = term if total is None else total + term
        if weight != 1.0:
            total = total * weight
        dst = tuple(
            slice(2 * lo + r - 1, 2 * hi + r - 1 + 1, 2)
            for lo, hi, r in zip(q_lo, q_hi, parity)
        )
        out[dst] = total
    return out


def correct(v: np.ndarray, e_interior: np.ndarray) -> np.ndarray:
    """Coarse-grid correction ``v + e`` on the interior; boundaries kept
    from ``v``."""
    out = v.copy()
    out[interior(v.ndim)] = v[interior(v.ndim)] + e_interior
    return out


def norm_residual(u: np.ndarray, f: np.ndarray, h: float) -> float:
    """L2 norm of the interior defect (scaled by h**(d/2))."""
    r = residual(u, f, h)
    return float(np.sqrt(np.sum(r * r)) * h ** (u.ndim / 2.0))
