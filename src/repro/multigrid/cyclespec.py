"""Per-level multigrid cycle structure — the search space of PR 10.

:class:`~repro.multigrid.reference.MultigridOptions` describes a cycle
with one flat tuple ``(cycle, n1, n2, n3, levels, omega)``: every level
smooths the same number of times with the same relaxation weight, and
the branching schedule is all-V or all-W.  The evolutionary
cycle-structure search (:mod:`repro.tuning.evolve`) needs the general
object: *each* level's pre/post smoothing step counts, relaxation
weight, and branching factor are independent genes, and the hierarchy
depth itself is searchable.

:class:`CycleSpec` is that object — a tuple of :class:`LevelSpec`
entries indexed by level (0 = coarsest).  It is consumed everywhere a
``MultigridOptions`` is today via :func:`as_cycle_spec`, which
normalizes either form, so the DSL builder
(:func:`~repro.multigrid.cycles.build_poisson_cycle`), the reference
solver (:func:`~repro.multigrid.reference.reference_cycle`), and every
execution tier downstream of the lowering pick discovered cycles up
with no backend changes.  ``CycleSpec.from_options(opts)`` reproduces
the flat options *exactly* (including the W-cycle convention that the
level directly above the coarsest recurses once), so the two forms
build identical stage DAGs and identical iterates.

Both remediation hooks the solve supervisor uses on stagnation —
:meth:`bumped` (more smoothing) and :meth:`widened` (V -> W) — exist on
both forms with the same signatures, so supervised solves of
discovered cycles keep the full PR-3 remediation ladder.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, replace

__all__ = ["LevelSpec", "CycleSpec", "as_cycle_spec"]


@dataclass(frozen=True)
class LevelSpec:
    """Cycle structure of one grid level.

    At the coarsest level (level 0) only ``pre`` and ``omega`` are
    meaningful: ``pre`` is the coarse-solve smoothing step count and
    ``post``/``branch`` are ignored (and normalized to ``0``/``1`` so
    equal behaviour fingerprints equally).
    """

    pre: int = 4  #: pre-smoothing steps (coarsest: coarse-solve steps)
    post: int = 4  #: post-smoothing steps
    omega: float = 0.8  #: relaxation weight of this level's smoother
    branch: int = 1  #: recursions into the next-coarser level (1=V, 2=W)

    def __post_init__(self) -> None:
        if self.pre < 0 or self.post < 0:
            raise ValueError(
                f"negative smoothing step count ({self.pre}, {self.post})"
            )
        if self.branch < 1:
            raise ValueError(f"branch factor must be >= 1, got {self.branch}")
        if not math.isfinite(self.omega):
            raise ValueError(f"non-finite relaxation weight {self.omega!r}")

    def label(self) -> str:
        b = f"x{self.branch}" if self.branch != 1 else ""
        return f"{self.pre}.{self.post}w{self.omega:g}{b}"


@dataclass(frozen=True)
class CycleSpec:
    """A complete per-level cycle structure (index 0 = coarsest)."""

    level_specs: tuple[LevelSpec, ...]

    def __post_init__(self) -> None:
        if len(self.level_specs) < 2:
            raise ValueError("need at least two levels")
        specs = tuple(
            LevelSpec(ls.pre, ls.post, ls.omega, ls.branch)
            if not isinstance(ls, LevelSpec)
            else ls
            for ls in self.level_specs
        )
        coarse = specs[0]
        if coarse.post != 0 or coarse.branch != 1:
            # canonicalize: the coarsest level has no post-smoothing or
            # recursion, so don't let dead genes split fingerprints
            specs = (replace(coarse, post=0, branch=1),) + specs[1:]
        # the level directly above the coarsest visits it once by the
        # W-cycle convention shared with MultigridOptions; canonicalize
        # its branch too so equal-behaviour specs fingerprint equally
        if len(specs) >= 2 and specs[1].branch != 1:
            specs = (specs[0], replace(specs[1], branch=1)) + specs[2:]
        object.__setattr__(self, "level_specs", specs)

    # -- geometry --------------------------------------------------------
    @property
    def levels(self) -> int:
        return len(self.level_specs)

    def level(self, k: int) -> LevelSpec:
        return self.level_specs[k]

    # -- conversions -----------------------------------------------------
    @classmethod
    def from_options(cls, opts) -> "CycleSpec":
        """The exact per-level form of a flat ``MultigridOptions``:
        level 0 smooths ``n2`` steps; levels 1..L-1 smooth ``n1``
        pre / ``n3`` post at weight ``omega``; a W cycle recurses twice
        into every coarser level except the coarsest (the convention of
        the paper's 100/98-stage W-cycle DAGs)."""
        specs = [LevelSpec(pre=opts.n2, post=0, omega=opts.omega, branch=1)]
        for k in range(1, opts.levels):
            wide = opts.cycle == "W" and k - 1 > 0
            specs.append(
                LevelSpec(
                    pre=opts.n1,
                    post=opts.n3,
                    omega=opts.omega,
                    branch=2 if wide else 1,
                )
            )
        return cls(tuple(specs))

    # -- identity --------------------------------------------------------
    def label(self) -> str:
        """Compact structural label, finest level first (e.g.
        ``cyc5[2.1w0.9|2.1w0.9x2|...|c8w0.8]``)."""
        fine = "|".join(
            ls.label() for ls in reversed(self.level_specs[1:])
        )
        coarse = self.level_specs[0]
        return (
            f"cyc{self.levels}[{fine}|c{coarse.pre}w{coarse.omega:g}]"
        )

    def fingerprint(self) -> str:
        """Canonical serialization — equal behaviour, equal string."""
        parts = [
            f"({ls.pre},{ls.post},{ls.omega!r},{ls.branch})"
            for ls in self.level_specs
        ]
        return f"cyclespec:[{';'.join(parts)}]"

    def short_hash(self, n: int = 10) -> str:
        return hashlib.sha256(self.fingerprint().encode()).hexdigest()[:n]

    def to_dict(self) -> dict:
        return {
            "levels": [
                {
                    "pre": ls.pre,
                    "post": ls.post,
                    "omega": ls.omega,
                    "branch": ls.branch,
                }
                for ls in self.level_specs
            ]
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CycleSpec":
        return cls(
            tuple(
                LevelSpec(
                    pre=int(ls["pre"]),
                    post=int(ls["post"]),
                    omega=float(ls["omega"]),
                    branch=int(ls.get("branch", 1)),
                )
                for ls in data["levels"]
            )
        )

    # -- work accounting -------------------------------------------------
    def smoothing_steps(self) -> int:
        """Total smoothing steps over one cycle, level visit
        multiplicities included — the dominant work term."""

        def visits(level: int) -> int:
            if level == self.levels - 1:
                return 1
            return visits(level + 1) * self.level_specs[level + 1].branch

        total = 0
        for k, ls in enumerate(self.level_specs):
            total += visits(k) * (ls.pre + ls.post)
        return total

    # -- supervisor remediation hooks ------------------------------------
    def bumped(self, bump: int) -> "CycleSpec":
        """More smoothing everywhere above the coarsest level — the
        stagnation remediation analogue of ``MultigridOptions.bumped``."""
        specs = [self.level_specs[0]]
        specs += [
            replace(ls, pre=ls.pre + bump, post=ls.post + bump)
            for ls in self.level_specs[1:]
        ]
        return CycleSpec(tuple(specs))

    def widened(self) -> "CycleSpec | None":
        """The next-wider branching schedule (every eligible level's
        branch bumped to 2), or ``None`` when already maximal or too
        shallow to widen — the V -> W remediation analogue."""
        if self.levels <= 2:
            return None
        specs = list(self.level_specs)
        changed = False
        for k in range(2, self.levels):
            if specs[k].branch < 2:
                specs[k] = replace(specs[k], branch=2)
                changed = True
        if not changed:
            return None
        return CycleSpec(tuple(specs))


def as_cycle_spec(opts) -> CycleSpec:
    """Normalize either cycle-structure form to a :class:`CycleSpec`.

    Accepts a :class:`CycleSpec` (returned as-is) or anything with the
    flat ``MultigridOptions`` attributes (``cycle``/``n1``/``n2``/
    ``n3``/``levels``/``omega``)."""
    if isinstance(opts, CycleSpec):
        return opts
    return CycleSpec.from_options(opts)
