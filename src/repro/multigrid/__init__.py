"""Geometric multigrid library: reference kernels/solver, the DSL cycle
builder (Figure 3), problem definitions, and the NAS MG benchmark."""

from .cycles import MultigridPipeline, build_poisson_cycle, solve_compiled
from .cyclespec import CycleSpec, LevelSpec, as_cycle_spec
from .kernels import (
    apply_operator,
    correct,
    interpolate,
    jacobi_step,
    norm_residual,
    residual,
    restrict_full_weighting,
)
from .reference import MultigridOptions, SolveResult, reference_cycle, solve

__all__ = [
    "MultigridPipeline",
    "build_poisson_cycle",
    "solve_compiled",
    "CycleSpec",
    "LevelSpec",
    "as_cycle_spec",
    "apply_operator",
    "correct",
    "interpolate",
    "jacobi_step",
    "norm_residual",
    "residual",
    "restrict_full_weighting",
    "MultigridOptions",
    "SolveResult",
    "reference_cycle",
    "solve",
]
