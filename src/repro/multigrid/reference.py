"""Independent reference multigrid solver (ground truth).

A plain-numpy implementation of Algorithm 1 (V-cycle) and the W-cycle,
written directly against :mod:`repro.multigrid.kernels` with no DSL or
compiler involvement.  Every compiled variant's output is compared
against this solver in the tests; it also provides convergence-factor
measurements used by the example applications.

Cycle conventions (matching the DSL builder and the paper's stage
counts in Table 3):

* smoothing configuration ``(n1, n2, n3)`` = pre-smoothing steps,
  coarsest-level smoothing steps, post-smoothing steps;
* the initial guess on every coarse level is zero;
* the W-cycle recurses twice into every coarser level except that a
  level directly above the coarsest recurses once (this reproduces the
  paper's 100/98-stage W-cycle DAGs for 4-4-4/10-0-0 with 4 levels).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .cyclespec import CycleSpec, as_cycle_spec
from .kernels import (
    correct,
    interior,
    interpolate,
    jacobi_step,
    norm_residual,
    residual,
    restrict_full_weighting,
)

__all__ = ["MultigridOptions", "reference_cycle", "solve", "SolveResult"]


@dataclass(frozen=True)
class MultigridOptions:
    """Cycle structure options shared by reference, DSL, and baselines.

    The flat textbook form: every level smooths ``(n1, n3)`` steps at
    weight ``omega`` and the branching schedule is all-V or all-W.  The
    general per-level form is :class:`~repro.multigrid.cyclespec
    .CycleSpec`; everything downstream of
    :func:`~repro.multigrid.cyclespec.as_cycle_spec` accepts either.
    """

    cycle: str = "V"  # "V" or "W"
    n1: int = 4
    n2: int = 4
    n3: int = 4
    levels: int = 4
    omega: float = 0.8

    def __post_init__(self) -> None:
        if self.cycle not in ("V", "W"):
            raise ValueError(f"unknown cycle type {self.cycle!r}")
        if self.levels < 2:
            raise ValueError("need at least two levels")
        if min(self.n1, self.n2, self.n3) < 0:
            raise ValueError("negative smoothing step count")

    def smoothing_label(self) -> str:
        return f"{self.n1}-{self.n2}-{self.n3}"

    # -- supervisor remediation hooks (same surface as CycleSpec) --------
    def bumped(self, bump: int) -> "MultigridOptions":
        """More pre/post smoothing — the stagnation remediation."""
        return replace(self, n1=self.n1 + bump, n3=self.n3 + bump)

    def widened(self) -> "MultigridOptions | None":
        """The V -> W remediation, or ``None`` when not applicable
        (already W, or too shallow for W to differ from V)."""
        if self.cycle == "V" and self.levels > 2:
            return replace(self, cycle="W")
        return None


def _smooth(u, f, h, steps, omega):
    for _ in range(steps):
        u = jacobi_step(u, f, h, omega)
    return u


def reference_cycle(
    v: np.ndarray,
    f: np.ndarray,
    h: float,
    opts: "MultigridOptions | CycleSpec",
    level: int | None = None,
) -> np.ndarray:
    """One multigrid cycle; ``level`` counts down to 0 (coarsest).

    ``opts`` may be the flat :class:`MultigridOptions` or a per-level
    :class:`~repro.multigrid.cyclespec.CycleSpec`; the flat form builds
    the identical iterate it always did."""
    spec = as_cycle_spec(opts)
    if level is None:
        level = spec.levels - 1
    ls = spec.level(level)
    if level == 0:
        return _smooth(v, f, h, ls.pre, ls.omega)

    v = _smooth(v, f, h, ls.pre, ls.omega)
    r = residual(v, f, h)
    r2 = restrict_full_weighting(r)

    nc = r2.shape[0]
    e2 = np.zeros(tuple(s + 2 for s in r2.shape), dtype=v.dtype)
    f2 = np.zeros_like(e2)
    f2[interior(v.ndim)] = r2

    # coarse spacing convention: h_c = 1/(nc+1) — for even-interior
    # grids this distributes the coarse/fine boundary mismatch
    # symmetrically and converges markedly better than h_c = 2h
    hc = 1.0 / (nc + 1)
    for _visit in range(ls.branch):
        e2 = reference_cycle(e2, f2, hc, spec, level - 1)

    e = interpolate(e2[interior(v.ndim)], 2 * nc)
    v = correct(v, e)
    return _smooth(v, f, h, ls.post, ls.omega)


@dataclass
class SolveResult:
    u: np.ndarray
    residual_norms: list[float] = field(default_factory=list)
    cycles: int = 0

    def convergence_factors(self) -> list[float]:
        return [
            b / a if a > 0 else 0.0
            for a, b in zip(self.residual_norms, self.residual_norms[1:])
        ]


def solve(
    f: np.ndarray,
    opts: MultigridOptions,
    cycles: int = 10,
    u0: np.ndarray | None = None,
    tol: float | None = None,
) -> SolveResult:
    """Iterate multigrid cycles on ``A_h u = f`` (full-size grids with
    boundary layer; homogeneous Dirichlet)."""
    n = f.shape[0] - 2
    if n % (1 << (opts.levels - 1)) != 0:
        raise ValueError(
            f"interior size {n} not divisible by 2**(levels-1)"
        )
    h = 1.0 / (n + 1)
    u = np.zeros_like(f) if u0 is None else u0.copy()
    result = SolveResult(u)
    result.residual_norms.append(norm_residual(u, f, h))
    for _ in range(cycles):
        u = reference_cycle(u, f, h, opts)
        result.cycles += 1
        result.residual_norms.append(norm_residual(u, f, h))
        if tol is not None and result.residual_norms[-1] < tol:
            break
    result.u = u
    return result
