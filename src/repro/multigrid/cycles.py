"""DSL multigrid cycle builder — the executable analogue of Figure 3.

``build_poisson_cycle`` constructs the PolyMG specification of one
V-/W-cycle for the d-dimensional Poisson problem: a recursive Python
function assembling ``TStencil`` smoothers, a defect stage, ``Restrict``
and ``Interp`` sampling stages, and the pointwise correction — exactly
the paper's ``rec_v_cycle``.  The result wraps the output function
together with parameter bindings and auxiliary zero-guess inputs, and
compiles under any :class:`~repro.config.PolyMgConfig`.

Expression construction mirrors :mod:`repro.multigrid.kernels`
operation-for-operation so the compiled pipelines agree with the
reference solver to floating-point round-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..compiler import compile_pipeline
from ..config import PolyMgConfig
from ..lang.expr import Case, Condition
from ..lang.function import Function, Grid
from ..lang.parameters import Interval, Parameter, Variable
from ..lang.sampling import Interp, Restrict
from ..lang.stencil import Stencil, TStencil
from ..lang.types import Double, Int
from .cyclespec import CycleSpec, as_cycle_spec
from .reference import MultigridOptions

__all__ = [
    "MultigridPipeline",
    "build_poisson_cycle",
    "build_smoother_chain",
    "solve_compiled",
    "solve_supervised",
    "laplacian_weights",
    "full_weighting_weights",
]


def laplacian_weights(ndim: int) -> list:
    """Nested weight list of the (2d+1)-point ``-laplace`` operator
    (2-D: ``[[0,-1,0],[-1,4,-1],[0,-1,0]]``)."""

    def build(idx: tuple[int, ...]):
        if len(idx) == ndim:
            off = [i - 1 for i in idx]
            nz = [o for o in off if o != 0]
            if not nz:
                return 2 * ndim
            if len(nz) == 1 and abs(nz[0]) == 1:
                return -1
            return 0
        return [build(idx + (i,)) for i in range(3)]

    return build(())


def full_weighting_weights(ndim: int) -> list:
    """Nested full-weighting restriction weights: ``2**(#zero offsets)``
    (2-D: ``[[1,2,1],[2,4,2],[1,2,1]]``)."""

    def build(idx: tuple[int, ...]):
        if len(idx) == ndim:
            zeros = sum(1 for i in idx if i == 1)
            return 1 << zeros
        return [build(idx + (i,)) for i in range(3)]

    return build(())


def _ones(shape: tuple[int, ...]):
    if len(shape) == 1:
        return [1] * shape[0]
    return [_ones(shape[1:]) for _ in range(shape[0])]


@dataclass
class MultigridPipeline:
    """A built (but not yet compiled) multigrid cycle specification."""

    name: str
    ndim: int
    N: int
    opts: "MultigridOptions | CycleSpec"
    output: Function
    v_grid: Grid
    f_grid: Grid
    zero_grids: list[Grid]
    params: dict[str, int]
    stage_count_: int = 0

    def compile(
        self,
        config: PolyMgConfig | None = None,
        *,
        cache: bool = True,
        snapshot_ir: bool = False,
    ):
        """Compile this cycle under ``config``.

        Routes through the content-addressed compile cache: repeated
        compiles of an identical (spec, params, config) fingerprint —
        autotuner trials, guarded fallbacks, benchmark reruns — skip
        the compiler passes entirely.  The returned pipeline carries a
        per-pass :class:`~repro.passes.manager.CompileReport` as
        ``.report``."""
        return compile_pipeline(
            self.output,
            self.params,
            config=config,
            name=self.name,
            cache=cache,
            snapshot_ir=snapshot_ir,
        )

    def make_inputs(
        self, v: np.ndarray, f: np.ndarray
    ) -> dict[str, np.ndarray]:
        inputs = {self.v_grid.name: v, self.f_grid.name: f}
        for grid in self.zero_grids:
            shape = grid.domain_box(self.params).shape()
            inputs[grid.name] = np.zeros(shape, dtype=np.float64)
        return inputs

    def grid_shape(self) -> tuple[int, ...]:
        return (self.N + 2,) * self.ndim

    def drive_spec(self):
        """The whole-solve driver's solve-level geometry (see
        :class:`~repro.backend.executor.DriveSpec`): the iterate and
        right-hand-side grid names plus the residual-norm scalars of
        the finest level."""
        from ..backend.executor import DriveSpec

        h = 1.0 / (self.N + 1)
        return DriveSpec(
            iterate=self.v_grid.name,
            rhs=self.f_grid.name,
            norm_scale=h ** (self.ndim / 2.0),
            inv_h2=1.0 / (h * h),
        )


def solve_compiled(
    pipeline: MultigridPipeline,
    f: np.ndarray,
    *,
    config: PolyMgConfig | None = None,
    compiled=None,
    cycles: int = 10,
    u0: np.ndarray | None = None,
    tol: float | None = None,
    guards: bool = False,
    growth_factor: float = 100.0,
):
    """Iterate compiled multigrid cycles on ``A_h u = f``.

    The executable analogue of :func:`repro.multigrid.reference.solve`:
    each V-/W-cycle invocation runs the compiled pipeline (``compiled``
    may be any object with ``execute``, e.g. a
    :class:`~repro.backend.guards.GuardedPipeline`; otherwise
    ``pipeline`` is compiled under ``config``).

    With ``guards=True`` a
    :class:`~repro.backend.guards.ResidualMonitor` watches the residual
    norm after every cycle and raises
    :class:`~repro.errors.NumericalDivergenceError` on blow-up — an
    unstable smoother diverges loudly instead of silently returning
    garbage.

    When ``compiled`` is not given, the compile routes through the
    content-addressed compile cache, so repeated solves of the same
    problem under the same configuration pay the compiler passes once.
    """
    from ..backend.guards import ResidualMonitor
    from .kernels import norm_residual
    from .reference import SolveResult

    if compiled is None:
        compiled = pipeline.compile(config)
    h = 1.0 / (pipeline.N + 1)
    u = np.zeros_like(f) if u0 is None else u0.copy()
    monitor = (
        ResidualMonitor(growth_factor, pipeline=pipeline.name)
        if guards
        else None
    )
    result = SolveResult(u)
    norm = norm_residual(u, f, h)
    result.residual_norms.append(norm)
    if monitor is not None:
        monitor.observe(norm)
    # whole-solve driver fast path: burst up to ``driver_hook_cycles``
    # cycles per native call (in-kernel convergence test included);
    # any burst the driver cannot serve falls back to per-cycle
    # execution below, iterate-for-iterate identical
    drive = getattr(compiled, "drive", None)
    spec = pipeline.drive_spec() if drive is not None else None
    while result.cycles < cycles:
        served = None
        if drive is not None:
            burst = min(
                getattr(compiled.config, "driver_hook_cycles", 1),
                cycles - result.cycles,
            )
            served = drive(
                pipeline.make_inputs(u, f),
                max_cycles=burst,
                tol=tol if tol is not None else 0.0,
                spec=spec,
            )
        if served is not None:
            if served.cycles == 0:  # defensive: never spin in place
                drive = None
                continue
            u = np.array(
                served.outputs[pipeline.output.name], copy=True
            )
            result.u = u
            result.cycles += served.cycles
            for norm in served.norms:
                result.residual_norms.append(norm)
                if monitor is not None:
                    monitor.observe(norm)
            if served.converged:
                break
            continue
        out = compiled.execute(pipeline.make_inputs(u, f))
        u = np.array(out[pipeline.output.name], copy=True)
        result.u = u
        result.cycles += 1
        norm = norm_residual(u, f, h)
        result.residual_norms.append(norm)
        if monitor is not None:
            monitor.observe(norm)
        if tol is not None and norm < tol:
            break
    return result


def solve_supervised(
    pipeline: MultigridPipeline,
    f: np.ndarray,
    *,
    u0: np.ndarray | None = None,
    cycles: int = 30,
    tol: float | None = None,
    deadline: float | None = None,
    supervisor=None,
    **supervisor_kwargs,
):
    """Solve under the resilience subsystem's full supervision.

    The service-grade analogue of :func:`solve_compiled`: cycles run on
    the highest healthy rung of a degradation ladder
    (``polymg-opt+`` -> ... -> ``polymg-naive``), a mid-solve fault
    restores the last-known-good checkpoint and retries on the demoted
    rung, residual stagnation triggers remediation (bump smoothing,
    switch V->W, demote), and the solve respects a wall-clock
    ``deadline`` and cycle budget.  Returns a
    :class:`~repro.resilience.supervisor.SupervisedSolveResult` whose
    ``report()`` carries the full incident/health trail.

    Pass a prebuilt ``supervisor`` (ladder health then persists across
    solves — service semantics); otherwise one is constructed with
    ``supervisor_kwargs`` forwarded to
    :class:`~repro.resilience.supervisor.SolveSupervisor`.
    """
    from ..resilience import SolveSupervisor, SupervisorPolicy

    if supervisor is None:
        policy = SupervisorPolicy(
            max_cycles=cycles, tol=tol, deadline=deadline
        )
        supervisor = SolveSupervisor(
            pipeline, policy, **supervisor_kwargs
        )
    return supervisor.solve(f, u0=u0)


class _CycleBuilder:
    def __init__(
        self, ndim: int, N: int, opts: "MultigridOptions | CycleSpec"
    ) -> None:
        spec = as_cycle_spec(opts)
        if N % (1 << (spec.levels - 1)) != 0:
            raise ValueError(
                f"N={N} not divisible by 2**(levels-1)={1 << (spec.levels - 1)}"
            )
        self.ndim = ndim
        self.N = N
        self.opts = opts
        self.spec = spec
        self.param = Parameter(Int, "N")
        self.vars = tuple(
            Variable(n) for n in ("z", "y", "x")[3 - ndim :]
        )
        self.zero_grids: dict[int, Grid] = {}
        self.counter = 0
        self.stage_count = 0

    # -- level geometry -------------------------------------------------
    def level_n(self, level: int):
        """Parametric interior extent of ``level`` (affine in N)."""
        shift = self.spec.levels - 1 - level
        return self.param.affine * Fraction(1, 1 << shift)

    def level_n_value(self, level: int) -> int:
        return self.N >> (self.spec.levels - 1 - level)

    def h(self, level: int) -> float:
        """Mesh width of ``level``: ``1/(N_l + 1)`` (symmetric
        convention; see multigrid.reference for the rationale)."""
        return 1.0 / (self.level_n_value(level) + 1)

    def full_intervals(self, level: int) -> list[Interval]:
        n = self.level_n(level)
        return [Interval(Int, 0, n + 1) for _ in range(self.ndim)]

    def interior_intervals(self, level: int) -> list[Interval]:
        n = self.level_n(level)
        return [Interval(Int, 1, n) for _ in range(self.ndim)]

    def interior_condition(self, level: int) -> Condition:
        n = self.level_n(level)
        cond = None
        for var in self.vars:
            atom = (var >= 1) & (var <= n)
            cond = atom if cond is None else cond & atom
        return cond

    def zero_grid(self, level: int) -> Grid:
        if level not in self.zero_grids:
            n = self.level_n(level)
            sizes = [n + 2 for _ in range(self.ndim)]
            self.zero_grids[level] = Grid(Double, f"zero_L{level}", sizes)
        return self.zero_grids[level]

    def _tag(self) -> int:
        self.counter += 1
        return self.counter

    # -- cycle stages (Figure 3's helper functions) ----------------------
    def smoother(
        self,
        v: Function,
        f: Function,
        level: int,
        steps: int,
        tag: str,
        omega: float | None = None,
    ) -> Function:
        if steps == 0:
            return v
        if omega is None:
            omega = self.spec.level(level).omega
        h = self.h(level)
        weight = omega * (h * h) / (2.0 * self.ndim)
        W = TStencil(
            (self.vars, self.full_intervals(level)),
            Double,
            steps,
            evolving=v,
            name=f"{tag}_L{level}_{self._tag()}",
        )
        a_v = Stencil(
            v, self.vars, laplacian_weights(self.ndim), 1.0 / (h * h)
        )
        W.defn = [
            Case(
                self.interior_condition(level),
                v(*self.vars) - weight * (a_v - f(*self.vars)),
            ),
            v(*self.vars),
        ]
        self.stage_count += steps
        return W.last

    def defect(self, v: Function, f: Function, level: int) -> Function:
        h = self.h(level)
        r = Function(
            (self.vars, self.full_intervals(level)),
            Double,
            name=f"defect_L{level}_{self._tag()}",
        )
        r.kind = "defect"
        a_v = Stencil(
            v, self.vars, laplacian_weights(self.ndim), 1.0 / (h * h)
        )
        r.defn = [
            Case(self.interior_condition(level), f(*self.vars) - a_v),
            0.0,
        ]
        self.stage_count += 1
        return r

    def restrict(self, r: Function, coarse_level: int) -> Function:
        R = Restrict(
            (self.vars, self.interior_intervals(coarse_level)),
            Double,
            name=f"restrict_L{coarse_level}_{self._tag()}",
        )
        R.defn = [
            Stencil(
                r,
                self.vars,
                full_weighting_weights(self.ndim),
                1.0 / (4.0**self.ndim),
            )
        ]
        self.stage_count += 1
        return R

    def interpolate(self, e: Function, fine_level: int) -> Function:
        P = Interp(
            (self.vars, self.interior_intervals(fine_level)),
            Double,
            name=f"interp_L{fine_level}_{self._tag()}",
        )

        def parity_entry(parity: tuple[int, ...]):
            shape = tuple(1 + r for r in parity)
            expr = Stencil(
                e, self.vars, _ones(shape), origin=(0,) * self.ndim
            )
            w = 0.5 ** sum(parity)
            return expr * w if w != 1.0 else expr

        def table(parity: tuple[int, ...]):
            if len(parity) == self.ndim:
                return parity_entry(parity)
            return [table(parity + (0,)), table(parity + (1,))]

        P.defn = [table(())]
        self.stage_count += 1
        return P

    def correct(
        self, v: Function, e: Function, level: int
    ) -> Function:
        c = Function(
            (self.vars, self.full_intervals(level)),
            Double,
            name=f"correct_L{level}_{self._tag()}",
        )
        c.kind = "correct"
        c.defn = [
            Case(
                self.interior_condition(level),
                v(*self.vars) + e(*self.vars),
            ),
            v(*self.vars),
        ]
        self.stage_count += 1
        return c

    # -- recursion (Figure 3's rec_v_cycle, per-level generalized) --------
    def rec_cycle(self, v: Function, f: Function, level: int) -> Function:
        ls = self.spec.level(level)
        if level == 0:
            return self.smoother(v, f, level, ls.pre, "coarse", ls.omega)

        smoothed = self.smoother(v, f, level, ls.pre, "pre", ls.omega)
        r_h = self.defect(smoothed, f, level)
        r_2h = self.restrict(r_h, level - 1)
        e_2h = self.zero_grid(level - 1)
        for _visit in range(ls.branch):
            e_2h = self.rec_cycle(e_2h, r_2h, level - 1)
        e_h = self.interpolate(e_2h, level)
        v_c = self.correct(smoothed, e_h, level)
        return self.smoother(v_c, f, level, ls.post, "post", ls.omega)


def build_poisson_cycle(
    ndim: int,
    N: int,
    opts: "MultigridOptions | CycleSpec",
    name: str | None = None,
) -> MultigridPipeline:
    """Build one Poisson multigrid cycle specification.

    ``N`` is the finest interior extent per dimension (grid arrays are
    ``(N+2)**ndim``); it must be divisible by ``2**(levels-1)``.

    ``opts`` is either the flat :class:`MultigridOptions` or a
    per-level :class:`~repro.multigrid.cyclespec.CycleSpec` (the
    evolutionary search's genome): both lower through the identical
    recursion, so every execution tier — interpreted, planned, batched,
    native, driver — picks discovered cycles up with no backend
    changes.
    """
    if ndim not in (1, 2, 3):
        raise ValueError("supported grid ranks: 1, 2, 3")
    builder = _CycleBuilder(ndim, N, opts)
    sizes = [builder.param + 2 for _ in range(ndim)]
    v_grid = Grid(Double, "V", sizes)
    f_grid = Grid(Double, "F", sizes)
    output = builder.rec_cycle(v_grid, f_grid, builder.spec.levels - 1)
    if name is None:
        if isinstance(opts, CycleSpec):
            name = f"evo-{ndim}D-{opts.short_hash()}-N{N}"
        else:
            name = (
                f"{opts.cycle}-{ndim}D-{opts.smoothing_label()}-N{N}"
            )
    pipeline = MultigridPipeline(
        name=name,
        ndim=ndim,
        N=N,
        opts=opts,
        output=output,
        v_grid=v_grid,
        f_grid=f_grid,
        zero_grids=[
            builder.zero_grids[l] for l in sorted(builder.zero_grids)
        ],
        params={"N": N},
    )
    pipeline.stage_count_ = builder.stage_count
    return pipeline


def build_smoother_chain(
    ndim: int,
    N: int,
    steps: int,
    omega: float = 0.8,
    name: str | None = None,
) -> MultigridPipeline:
    """A standalone pipeline of ``steps`` Jacobi smoothing iterations on
    one grid — the paper's Figure 11a workload (smoother-only
    comparison of overlapped vs diamond tiling)."""
    opts = MultigridOptions(
        cycle="V", n1=steps, n2=0, n3=0, levels=2, omega=omega
    )
    builder = _CycleBuilder(ndim, N, opts)
    sizes = [builder.param + 2 for _ in range(ndim)]
    v_grid = Grid(Double, "V", sizes)
    f_grid = Grid(Double, "F", sizes)
    top = opts.levels - 1
    output = builder.smoother(v_grid, f_grid, top, steps, "smooth")
    pipeline = MultigridPipeline(
        name=name or f"smoother-{ndim}D-{steps}steps-N{N}",
        ndim=ndim,
        N=N,
        opts=opts,
        output=output,
        v_grid=v_grid,
        f_grid=f_grid,
        zero_grids=[],
        params={"N": N},
    )
    pipeline.stage_count_ = steps
    return pipeline
