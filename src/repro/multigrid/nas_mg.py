"""NAS Parallel Benchmarks MG kernel (paper section 4.1).

A from-scratch implementation of the NPB 3.2 MG benchmark structure the
paper evaluates: the 27-point operators ``resid`` (A), ``psinv`` (S),
``rprj3`` (full-weighting restriction), and trilinear ``interp``, driven
by the ``mg3P`` V-cycle with *no pre-smoothing* (the paper: "NAS MG uses
a V-cycle with no pre-smoothing steps") and the non-periodic boundary
setting the paper benchmarks against.

Substitutions (documented in DESIGN.md): the official NPB verification
norms depend on NPB's exact power-of-two pseudo-random RHS; we generate
the same *kind* of RHS (+1 at ten positions, -1 at ten positions, from a
seeded generator) and verify self-consistently (deterministic residual
norms, convergence behaviour).  Class sizes follow Table 2 (B: 256^3,
20 iterations; C: 512^3, 20 iterations) with scaled-down classes for
laptop execution.

Both a plain-numpy solver (:class:`NasMgSolver`) and a PolyMG DSL
pipeline builder (:func:`build_nas_mg_cycle`) are provided; the compiled
pipeline is verified against the numpy solver bit-for-bit by the tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..lang.expr import Case
from ..lang.function import Function, Grid
from ..lang.parameters import Interval, Parameter, Variable
from ..lang.sampling import Interp, Restrict
from ..lang.stencil import Stencil
from ..lang.types import Double, Int

__all__ = [
    "NAS_A",
    "NAS_C",
    "NAS_CLASSES",
    "nas_rhs",
    "NasMgSolver",
    "build_nas_mg_cycle",
    "NasMgPipeline",
]

#: 27-point operator coefficients by neighbour class (centre, face,
#: edge, corner) — NPB's ``a`` and ``c`` arrays.
NAS_A = (-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0)
NAS_C = (-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0)
#: rprj3 full-weighting coefficients by class.
NAS_P = (0.5, 0.25, 0.125, 0.0625)

#: Table 2 classes: interior size and cycle iterations (S/W scaled for
#: laptop runs; B/C are the paper's sizes).
NAS_CLASSES = {
    "S": (32, 4),
    "W": (64, 8),
    "A": (256, 4),
    "B": (256, 20),
    "C": (512, 20),
}


def nas_rhs(n: int, seed: int = 314159265) -> np.ndarray:
    """NPB-style RHS: zeros with +1 at ten positions and -1 at ten other
    positions, on the interior of an (n+2)^3 grid."""
    rng = np.random.default_rng(seed)
    v = np.zeros((n + 2,) * 3)
    picks = rng.choice(n**3, size=20, replace=False)
    for rank, flat in enumerate(picks):
        z, rem = divmod(int(flat), n * n)
        y, x = divmod(rem, n)
        v[z + 1, y + 1, x + 1] = 1.0 if rank < 10 else -1.0
    return v


def _class_weights(coeffs) -> list:
    """Build the 3x3x3 nested weight list from per-class coefficients."""
    w = []
    for dz in (-1, 0, 1):
        plane = []
        for dy in (-1, 0, 1):
            row = []
            for dx in (-1, 0, 1):
                cls = abs(dz) + abs(dy) + abs(dx)
                row.append(coeffs[cls])
            plane.append(row)
        w.append(plane)
    return w


def apply_27pt(u: np.ndarray, coeffs) -> np.ndarray:
    """Interior application of a 27-point class-coefficient operator,
    accumulating in the DSL ``Stencil`` expansion order so the numpy and
    compiled paths agree bit-for-bit."""
    total = None
    inner = (slice(1, -1),) * 3
    for dz, dy, dx in itertools.product((-1, 0, 1), repeat=3):
        w = coeffs[abs(dz) + abs(dy) + abs(dx)]
        if w == 0:
            continue
        view = u[
            1 + dz : u.shape[0] - 1 + dz or None,
            1 + dy : u.shape[1] - 1 + dy or None,
            1 + dx : u.shape[2] - 1 + dx or None,
        ]
        term = view if w == 1 else w * view
        total = term if total is None else total + term
    return total


@dataclass
class _Level:
    u: np.ndarray
    r: np.ndarray


class NasMgSolver:
    """Plain-numpy NAS MG (non-periodic boundaries)."""

    def __init__(self, n: int, levels: int | None = None) -> None:
        if levels is None:
            levels = max(2, n.bit_length() - 2)  # down to a 4^3 coarsest
        if n % (1 << (levels - 1)) != 0:
            raise ValueError("interior size not divisible by 2**(levels-1)")
        self.n = n
        self.levels = levels
        self.grids: list[_Level] = []
        for k in range(levels):
            nk = n >> (levels - 1 - k)
            shape = (nk + 2,) * 3
            self.grids.append(
                _Level(np.zeros(shape), np.zeros(shape))
            )

    # -- operators -------------------------------------------------------
    @staticmethod
    def resid(u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """r = v - A u (interior; zero boundary)."""
        r = np.zeros_like(u)
        r[1:-1, 1:-1, 1:-1] = v[1:-1, 1:-1, 1:-1] - apply_27pt(u, NAS_A)
        return r

    @staticmethod
    def psinv(r: np.ndarray, u: np.ndarray) -> np.ndarray:
        """u = u + S r (interior)."""
        out = u.copy()
        out[1:-1, 1:-1, 1:-1] = u[1:-1, 1:-1, 1:-1] + apply_27pt(r, NAS_C)
        return out

    @staticmethod
    def rprj3(r: np.ndarray) -> np.ndarray:
        """Coarse residual by 27-point full weighting (interior)."""
        n = r.shape[0] - 2
        nc = n // 2
        out = np.zeros((nc + 2,) * 3)
        total = None
        for dz, dy, dx in itertools.product((-1, 0, 1), repeat=3):
            w = NAS_P[abs(dz) + abs(dy) + abs(dx)]
            view = r[
                2 + dz : 2 + dz + 2 * nc - 1 : 2,
                2 + dy : 2 + dy + 2 * nc - 1 : 2,
                2 + dx : 2 + dx + 2 * nc - 1 : 2,
            ]
            term = view if w == 1 else w * view
            total = term if total is None else total + term
        out[1:-1, 1:-1, 1:-1] = total
        return out

    @staticmethod
    def interp_add(u_fine: np.ndarray, z: np.ndarray) -> np.ndarray:
        """u_fine += trilinear prolongation of the coarse z (interior)."""
        from .kernels import interpolate

        n = u_fine.shape[0] - 2
        out = u_fine.copy()
        out[1:-1, 1:-1, 1:-1] = u_fine[1:-1, 1:-1, 1:-1] + interpolate(
            z[1:-1, 1:-1, 1:-1], n
        )
        return out

    # -- cycle ------------------------------------------------------------
    def mg3p(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """One NAS MG V-cycle: returns the updated fine solution."""
        top = self.levels - 1
        g = self.grids
        g[top].u[...] = u
        g[top].r[...] = self.resid(u, v)
        # down: restrict residuals to the coarsest level
        for k in range(top, 0, -1):
            g[k - 1].r[...] = self.rprj3(g[k].r)
        # coarsest: u = S r from a zero guess
        g[0].u[...] = 0.0
        g[0].u[...] = self.psinv(g[0].r, g[0].u)
        # up: prolong, correct residual, smooth
        for k in range(1, top):
            g[k].u[...] = 0.0
            g[k].u[...] = self.interp_add(g[k].u, g[k - 1].u)
            g[k].r[...] = self.resid(g[k].u, g[k].r)
            g[k].u[...] = self.psinv(g[k].r, g[k].u)
        # top level: correct the actual solution
        g[top].u[...] = self.interp_add(u, g[top - 1].u)
        g[top].r[...] = self.resid(g[top].u, v)
        g[top].u[...] = self.psinv(g[top].r, g[top].u)
        return g[top].u.copy()

    def solve(self, v: np.ndarray, iterations: int):
        u = np.zeros_like(v)
        norms = [self.residual_norm(u, v)]
        for _ in range(iterations):
            u = self.mg3p(u, v)
            norms.append(self.residual_norm(u, v))
        return u, norms

    def residual_norm(self, u: np.ndarray, v: np.ndarray) -> float:
        r = self.resid(u, v)
        return float(
            np.sqrt(np.sum(r * r) / float(self.n + 2) ** 3)
        )


# ---------------------------------------------------------------------------
# DSL pipeline version
# ---------------------------------------------------------------------------


@dataclass
class NasMgPipeline:
    name: str
    n: int
    levels: int
    output: Function
    u_grid: Grid
    v_grid: Grid
    params: dict[str, int]
    stage_count_: int = 0
    ndim: int = 3

    def compile(self, config=None):
        from ..compiler import compile_pipeline

        return compile_pipeline(
            self.output, self.params, config=config, name=self.name
        )

    def make_inputs(self, u: np.ndarray, v: np.ndarray):
        return {self.u_grid.name: u, self.v_grid.name: v}


def build_nas_mg_cycle(
    n: int, levels: int | None = None, name: str | None = None
) -> NasMgPipeline:
    """Build one NAS MG V-cycle as a PolyMG pipeline."""
    if levels is None:
        levels = max(2, n.bit_length() - 2)
    if n % (1 << (levels - 1)) != 0:
        raise ValueError("interior size not divisible by 2**(levels-1)")
    N = Parameter(Int, "N")
    z, y, x = Variable("z"), Variable("y"), Variable("x")
    variables = (z, y, x)
    u_grid = Grid(Double, "U", [N + 2, N + 2, N + 2])
    v_grid = Grid(Double, "V", [N + 2, N + 2, N + 2])
    counter = itertools.count()
    stage_count = 0

    from fractions import Fraction

    def level_n(k):
        return N.affine * Fraction(1, 1 << (levels - 1 - k))

    def full_iv(k):
        nl = level_n(k)
        return [Interval(Int, 0, nl + 1) for _ in range(3)]

    def interior_iv(k):
        nl = level_n(k)
        return [Interval(Int, 1, nl) for _ in range(3)]

    def interior_cond(k):
        nl = level_n(k)
        cond = None
        for var in variables:
            atom = (var >= 1) & (var <= nl)
            cond = atom if cond is None else cond & atom
        return cond

    def resid(u, v, k):
        nonlocal stage_count
        r = Function(
            (variables, full_iv(k)), Double, f"resid_L{k}_{next(counter)}"
        )
        r.kind = "defect"
        r.defn = [
            Case(
                interior_cond(k),
                v(*variables)
                - Stencil(u, variables, _class_weights(NAS_A)),
            ),
            0.0,
        ]
        stage_count += 1
        return r

    def psinv(r, u, k):
        nonlocal stage_count
        s = Function(
            (variables, full_iv(k)), Double, f"psinv_L{k}_{next(counter)}"
        )
        s.kind = "smooth"
        s.defn = [
            Case(
                interior_cond(k),
                u(*variables)
                + Stencil(r, variables, _class_weights(NAS_C)),
            ),
            u(*variables),
        ]
        stage_count += 1
        return s

    def rprj3(r, k):
        # full coarse domain with a zero boundary ring: the next rprj3
        # in the chain reads one halo cell beyond the interior (NPB
        # zeroes boundaries via comm3 in the non-periodic setting)
        nonlocal stage_count
        R = Restrict(
            (variables, full_iv(k)),
            Double,
            name=f"rprj3_L{k}_{next(counter)}",
        )
        R.defn = [
            Case(
                interior_cond(k),
                Stencil(r, variables, _class_weights(NAS_P)),
            ),
            0.0,
        ]
        stage_count += 1
        return R

    def zero3(k):
        nonlocal stage_count
        zf = Function(
            (variables, full_iv(k)), Double, f"zero_L{k}_{next(counter)}"
        )
        zf.defn = [0.0]
        stage_count += 1
        return zf

    def interp_add(u, coarse, k):
        """u + trilinear(coarse) on the fine interior, boundary from u."""
        nonlocal stage_count
        P = Interp(
            (variables, interior_iv(k)),
            Double,
            name=f"interp_L{k}_{next(counter)}",
        )

        def entry(parity):
            shape = tuple(1 + p for p in parity)
            ones = shape  # helper below expands

            def nested(s):
                if len(s) == 1:
                    return [1] * s[0]
                return [nested(s[1:]) for _ in range(s[0])]

            e = Stencil(coarse, variables, nested(shape), origin=(0, 0, 0))
            w = 0.5 ** sum(parity)
            return e * w if w != 1.0 else e

        def table(parity):
            if len(parity) == 3:
                return entry(parity)
            return [table(parity + (0,)), table(parity + (1,))]

        P.defn = [table(())]
        stage_count += 1

        c = Function(
            (variables, full_iv(k)), Double, f"correct_L{k}_{next(counter)}"
        )
        c.kind = "correct"
        c.defn = [
            Case(interior_cond(k), u(*variables) + P(*variables)),
            u(*variables),
        ]
        stage_count += 1
        return c

    top = levels - 1
    # down phase
    r = [None] * levels
    r[top] = resid(u_grid, v_grid, top)
    for k in range(top, 0, -1):
        r[k - 1] = rprj3(r[k], k - 1)
    # coarsest
    u0 = zero3(0)
    u = psinv(r[0], u0, 0)
    # up phase
    for k in range(1, top):
        uz = zero3(k)
        uk = interp_add(uz, u, k)
        rk = resid(uk, r[k], k)
        u = psinv(rk, uk, k)
    # top level
    ut = interp_add(u_grid, u, top)
    rt = resid(ut, v_grid, top)
    out = psinv(rt, ut, top)

    pipe = NasMgPipeline(
        name=name or f"NAS-MG-N{n}",
        n=n,
        levels=levels,
        output=out,
        u_grid=u_grid,
        v_grid=v_grid,
        params={"N": n},
    )
    pipe.stage_count_ = stage_count
    return pipe
