"""Fused stage groups and their tile geometry.

A :class:`Group` is a set of pipeline stages executed together under one
overlapped tile loop (paper section 3.1).  The group knows

* its **anchor** — the last stage in topological order; the tile loop
  iterates over the anchor's domain and every other stage's per-tile
  region is derived from it,
* per-stage **scales** relative to the anchor (rational, per dimension:
  a pre-smoothing stage fused below a ``Restrict`` anchor runs at scale
  2, i.e. on a grid twice as fine),
* per-tile **needs** — the hyper-trapezoidal footprints obtained by
  propagating the anchor tile backwards through the access relations
  (these size the scratchpads), and
* per-tile **ownership** regions for live-out stages, guaranteeing that
  the union over tiles covers each live-out's full domain even for
  point-sampling accesses.
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING, Sequence

from ..errors import CompileError
from ..ir.domain import Box
from ..ir.interval import ConcreteInterval

if TYPE_CHECKING:  # pragma: no cover
    from ..ir.dag import PipelineDAG
    from ..lang.function import Function

__all__ = ["Group"]


class Group:
    """A fused set of stages, scheduled and tiled as one unit."""

    def __init__(self, dag: "PipelineDAG", stages: Sequence["Function"]) -> None:
        self.dag = dag
        members = set(stages)
        # keep the DAG's deterministic topological order
        self.stages: list["Function"] = [
            s for s in dag.stages if s in members
        ]
        if len(self.stages) != len(members):
            raise CompileError(
                "group contains stages unknown to the DAG",
                pipeline=dag.name,
                stages=sorted(s.name for s in members),
            )
        self._scales: dict["Function", tuple[Fraction, ...]] | None = None

    # -- structure -------------------------------------------------------
    @property
    def anchor(self) -> "Function":
        return self.stages[-1]

    @property
    def size(self) -> int:
        return len(self.stages)

    def __contains__(self, func: "Function") -> bool:
        return any(func is s for s in self.stages)

    def __repr__(self) -> str:
        return f"Group({[s.name for s in self.stages]})"

    # -- liveness ----------------------------------------------------------
    def live_outs(self) -> list["Function"]:
        """Stages whose values are used outside the group (or are
        pipeline outputs); these require full-array storage."""
        outs = []
        for stage in self.stages:
            if self.dag.is_output(stage) or any(
                c not in self for c in self.dag.consumers_of(stage)
            ):
                outs.append(stage)
        return outs

    def internal_stages(self) -> list["Function"]:
        """Stages storable as tile-local scratchpads."""
        live = set(self.live_outs())
        return [s for s in self.stages if s not in live]

    # -- geometry ----------------------------------------------------------
    def scales(self) -> dict["Function", tuple[Fraction, ...]]:
        """Per-dimension scale of each stage relative to the anchor.

        Scale ``s`` means the stage's grid coordinate corresponding to
        anchor coordinate ``x`` is about ``s * x``.  Raises when two
        producer-consumer paths disagree (such groups are rejected by
        the grouping pass).
        """
        if self._scales is not None:
            return self._scales
        anchor = self.anchor
        scales: dict["Function", tuple[Fraction, ...]] = {
            anchor: tuple(Fraction(1) for _ in range(anchor.ndim))
        }
        # reverse topological sweep: consumers are resolved before
        # producers
        for consumer in reversed(self.stages):
            if consumer not in scales:
                continue
            cscale = scales[consumer]
            for producer, acc in self.dag.accesses_of(consumer).items():
                if producer not in self:
                    continue
                pscale = [Fraction(1)] * producer.ndim
                for j, dim in enumerate(acc.dims):
                    if dim.consumer_dim is None:
                        pscale[j] = Fraction(0)
                        continue
                    if dim.rng is None:
                        raise CompileError(
                            "access dimension has neither consumer "
                            "dimension nor sampling rate",
                            stage=consumer.name,
                            producer=producer.name,
                            dim=j,
                        )
                    pscale[j] = (
                        cscale[dim.consumer_dim]
                        * dim.rng.num
                        / dim.rng.den
                    )
                new = tuple(pscale)
                old = scales.get(producer)
                if old is not None and old != new:
                    raise CompileError(
                        f"inconsistent scales for {producer.name} in "
                        f"group anchored at {anchor.name}: {old} vs {new}",
                        stage=producer.name,
                        anchor=anchor.name,
                    )
                scales[producer] = new
        missing = [s.name for s in self.stages if s not in scales]
        if missing:
            raise CompileError(
                f"stages {missing} unreachable from anchor "
                f"{anchor.name} inside group",
                anchor=anchor.name,
                stages=missing,
            )
        self._scales = scales
        return scales

    def tile_needs(
        self, anchor_box: Box, clamp: bool = True
    ) -> dict["Function", Box]:
        """Per-stage region needed to compute ``anchor_box`` of the
        anchor (backward footprint propagation; paper Figure 5's
        hyper-trapezoids)."""
        bindings = self.dag.param_bindings
        needs: dict["Function", Box] = {self.anchor: anchor_box}
        for consumer in reversed(self.stages):
            if consumer not in needs:
                continue
            cbox = needs[consumer]
            for producer, acc in self.dag.accesses_of(consumer).items():
                if producer not in self:
                    continue
                fp = acc.footprint(cbox)
                if producer in needs:
                    fp = fp.union_hull(needs[producer])
                needs[producer] = fp
        if clamp:
            for stage, box in needs.items():
                needs[stage] = box.intersect(stage.domain_box(bindings))
        return needs

    def ownership(
        self,
        stage: "Function",
        anchor_tile: Box,
        anchor_domain: Box,
    ) -> Box:
        """The sub-box of ``stage``'s domain owned by ``anchor_tile``.

        Ownership partitions every live-out's domain across the tile
        grid: per dimension, anchor coordinate range ``[a, b]`` owns
        stage range ``[floor(s*a), floor(s*(b+1)) - 1]``, extended to the
        stage's domain edges on boundary tiles.  Together with the
        footprint needs this guarantees full coverage of live-outs.
        """
        scale = self.scales()[stage]
        sdom = stage.domain_box(self.dag.param_bindings)
        out = []
        for d in range(stage.ndim):
            s = scale[d]
            a = anchor_tile.intervals[d].lb
            b = anchor_tile.intervals[d].ub
            if s == 0:
                out.append(sdom.intervals[d])
                continue
            lo = int(s * a // 1)
            hi = int(s * (b + 1) // 1) - 1
            if a <= anchor_domain.intervals[d].lb:
                lo = sdom.intervals[d].lb
            if b >= anchor_domain.intervals[d].ub:
                hi = sdom.intervals[d].ub
            out.append(
                ConcreteInterval(lo, hi).intersect(sdom.intervals[d])
            )
        return Box(out)

    def tile_regions(self, anchor_tile: Box) -> dict["Function", Box]:
        """Exact per-stage computation regions for one tile.

        Like :meth:`tile_needs` but live-out stages additionally compute
        their ownership region, so the union over the tile grid covers
        every live-out's domain (redundant overlap-zone writes of the
        same values are the price of communication-avoiding overlapped
        tiling, paper section 3.1)."""
        bindings = self.dag.param_bindings
        anchor_dom = self.anchor.domain_box(bindings)
        live = set(self.live_outs())
        regions: dict["Function", Box] = {
            self.anchor: anchor_tile.intersect(anchor_dom)
        }
        for stage in reversed(self.stages):
            region = regions.get(stage)
            if stage in live:
                own = self.ownership(stage, anchor_tile, anchor_dom)
                region = own if region is None else region.union_hull(own)
            if region is None:
                # not needed by this tile at all (possible for a live-out
                # producer chain on interior tiles) -> empty region
                continue
            region = region.intersect(stage.domain_box(bindings))
            regions[stage] = region
            for producer, acc in self.dag.accesses_of(stage).items():
                if producer not in self:
                    continue
                fp = acc.footprint(region)
                if producer in regions:
                    fp = fp.union_hull(regions[producer])
                regions[producer] = fp
        return regions

    # -- cost estimation (used by the grouping heuristic) -----------------
    def redundancy(self, tile_shape: Sequence[int]) -> float:
        """Fraction of extra (redundant) computation introduced by
        overlapped tiling at the given anchor tile shape."""
        bindings = self.dag.param_bindings
        anchor_dom = self.anchor.domain_box(bindings)
        tile = Box.from_bounds(
            [
                (iv.lb, min(iv.ub, iv.lb + t - 1))
                for iv, t in zip(anchor_dom.intervals, tile_shape)
            ]
        )
        needs = self.tile_needs(tile, clamp=True)
        scales = self.scales()
        need_vol = 0
        own_vol = 0
        for stage in self.stages:
            need_vol += needs.get(stage, tile).volume()
            own = 1
            sdom = stage.domain_box(bindings)
            for d in range(stage.ndim):
                s = scales[stage][d]
                extent = (
                    sdom.intervals[d].size()
                    if s == 0
                    else max(1, int(s * tile.intervals[d].size()))
                )
                own *= min(extent, sdom.intervals[d].size())
            own_vol += own
        if own_vol == 0:
            return 0.0
        return max(0.0, need_vol / own_vol - 1.0)

    def scratch_bytes(self, tile_shape: Sequence[int]) -> int:
        """Total scratchpad bytes per tile without any reuse (one buffer
        per internal stage)."""
        bindings = self.dag.param_bindings
        anchor_dom = self.anchor.domain_box(bindings)
        tile = Box.from_bounds(
            [
                (iv.lb, min(iv.ub, iv.lb + t - 1))
                for iv, t in zip(anchor_dom.intervals, tile_shape)
            ]
        )
        needs = self.tile_needs(tile, clamp=True)
        total = 0
        for stage in self.internal_stages():
            total += needs[stage].volume() * stage.dtype.size_bytes
        return total
