"""Storage optimization (paper section 3.2).

Implements the paper's two remapping passes on top of a generic
implementation of Algorithms 2 (``get_last_use_map``) and 3
(``remap_storage``):

* **Intra-group scratchpad reuse** (3.2.1): tile-local buffers of
  internal (non-live-out) stages are classified by dtype and size —
  equality relaxed by a small per-dimension slack — and greedily
  remapped so dead scratchpads are recycled by later stages of the same
  class.  Figure 7's example (interp + correct + 4 smooths -> 2 buffers)
  is reproduced by the tests.

* **Inter-group full-array reuse** (3.2.2): live-out arrays have
  parametric sizes; arrays whose sizes share the same parametric part
  (differing by ghost-zone constants) form one storage class sized by
  the per-dimension maxima.  Constant-sized arrays form classes that
  exclude parametric ones.  Live-outs are scheduled at their group's
  timestamp; pipeline inputs and outputs never serve as reuse targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Hashable, Iterable, Sequence

from ..config import PolyMgConfig
from ..errors import StorageSoundnessError
from ..ir.affine import Affine
from ..ir.domain import Box
from .grouping import GroupingResult
from .groups import Group
from .schedule import PipelineSchedule

if TYPE_CHECKING:  # pragma: no cover
    from ..lang.function import Function

__all__ = [
    "get_last_use_map",
    "remap_storage",
    "ScratchClass",
    "ArrayClass",
    "GroupScratchPlan",
    "StoragePlan",
    "plan_storage",
]


# ---------------------------------------------------------------------------
# Algorithms 2 and 3 (verbatim structure from the paper)
# ---------------------------------------------------------------------------


def get_last_use_map(
    funcs: Sequence["Function"],
    timestamp: dict["Function", int],
    users: Callable[["Function"], Iterable["Function"]],
) -> dict[int, list["Function"]]:
    """Algorithm 2: map each time point to the functions whose last use
    is at that time.

    A function with no users inside the scope dies at its own timestamp
    (it was computed for consumers outside the scope — the caller
    excludes live-outs — or is genuinely dead).
    """
    last_use: dict["Function", int] = {}
    for func in funcs:
        t = timestamp[func]
        for user in users(func):
            if user in timestamp:
                t = max(t, timestamp[user])
        last_use[func] = t
    out: dict[int, list["Function"]] = {}
    for func, t in last_use.items():
        out.setdefault(t, []).append(func)
    for entries in out.values():
        entries.sort(key=lambda f: f.uid)
    return out


def remap_storage(
    funcs: Sequence["Function"],
    timestamp: dict["Function", int],
    storage_class: dict["Function", Hashable],
    users: Callable[["Function"], Iterable["Function"]],
) -> dict["Function", int]:
    """Algorithm 3: greedily map functions to logical arrays.

    Functions are visited in schedule order; each draws from its storage
    class's pool of dead arrays (or mints a new array id), then arrays
    of functions whose last use is the current timestamp are returned to
    their pools.  Returning *after* allocation keeps a consumer from
    writing into the buffer it is still reading (paper Algorithm 3).
    """
    for func in funcs:
        if func not in timestamp:
            raise StorageSoundnessError(
                "function has no timestamp for storage remapping",
                stage=func.name,
            )
        if func not in storage_class:
            raise StorageSoundnessError(
                "function has no storage class for remapping",
                stage=func.name,
            )
    last_use_map = get_last_use_map(funcs, timestamp, users)
    ordered = sorted(funcs, key=lambda f: (timestamp[f], f.uid))
    array_pool: dict[Hashable, list[int]] = {}
    storage: dict["Function", int] = {}
    array_id = 0
    released_through = -1

    def release_dead(before: int) -> None:
        # Recycle arrays of functions whose last use is *strictly
        # earlier* than the requesting timestamp.  (The paper's listing
        # releases at equal timestamps too, which is safe when
        # timestamps are unique — intra-group stage order — but at
        # group granularity two live-outs share their group's time and
        # an array still being read by that group must not be handed
        # out within it.)
        nonlocal released_through
        for t in sorted(last_use_map):
            if t <= released_through or t >= before:
                continue
            for dead in last_use_map[t]:
                if dead not in storage:
                    continue
                dead_cls = storage_class[dead]
                dead_id = storage[dead]
                pool = array_pool.setdefault(dead_cls, [])
                if dead_id not in pool:
                    pool.append(dead_id)
        released_through = max(released_through, before - 1)

    for func in ordered:
        release_dead(timestamp[func])
        cls = storage_class[func]
        pool = array_pool.setdefault(cls, [])
        if not pool:
            array_id += 1
            storage[func] = array_id
        else:
            storage[func] = pool.pop()
    return storage


# ---------------------------------------------------------------------------
# scratch classification (intra-group)
# ---------------------------------------------------------------------------


@dataclass
class ScratchClass:
    """A scratchpad storage class: dtype + a representative shape that is
    the per-dimension max over member shapes (within the slack)."""

    key: int
    dtype_name: str
    shape: tuple[int, ...]

    def bytes(self, itemsize: int) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n * itemsize


def classify_scratch_shapes(
    shapes: dict["Function", tuple[int, ...]],
    slack: int,
) -> tuple[dict["Function", ScratchClass], list[ScratchClass]]:
    """Bucket scratch shapes into classes; shapes are compatible when
    every dimension differs by at most ``slack`` elements (the paper's
    relaxed size-equality)."""
    classes: list[ScratchClass] = []
    assignment: dict["Function", ScratchClass] = {}
    ordered = sorted(
        shapes.items(), key=lambda kv: (-_volume(kv[1]), kv[0].uid)
    )
    for func, shape in ordered:
        chosen = None
        for cls in classes:
            if cls.dtype_name != func.dtype.name:
                continue
            if len(cls.shape) != len(shape):
                continue
            if all(abs(a - b) <= slack for a, b in zip(cls.shape, shape)):
                chosen = cls
                break
        if chosen is None:
            chosen = ScratchClass(len(classes), func.dtype.name, shape)
            classes.append(chosen)
        else:
            chosen.shape = tuple(
                max(a, b) for a, b in zip(chosen.shape, shape)
            )
        assignment[func] = chosen
    return assignment, classes


def _volume(shape: Sequence[int]) -> int:
    v = 1
    for s in shape:
        v *= s
    return v


# ---------------------------------------------------------------------------
# full-array classification (inter-group)
# ---------------------------------------------------------------------------


@dataclass
class ArrayClass:
    """A full-array storage class over parametric sizes.

    ``signature`` is the per-dimension parametric part (coefficient
    tuples) shared by all members; ``sizes`` holds the running
    per-dimension maxima (Affine, same parametric part, max constant)."""

    key: int
    dtype_name: str
    signature: tuple[tuple[tuple[str, object], ...], ...]
    sizes: list[Affine]

    def byte_size(self, bindings: dict[str, int], itemsize: int) -> int:
        n = 1
        for size in self.sizes:
            n *= size.int_value(bindings)
        return n * itemsize


def array_signature(sizes: Sequence[Affine]):
    return tuple(tuple(sorted(size.coeffs.items())) for size in sizes)


def classify_arrays(
    funcs: Sequence["Function"],
) -> tuple[dict["Function", ArrayClass], list[ArrayClass]]:
    """Inter-group storage classes (paper 3.2.2): same dtype, same rank,
    same parametric size parts; class size = per-dimension maximum (so
    every member fits, ghost-zone offsets included)."""
    classes: dict[tuple, ArrayClass] = {}
    assignment: dict["Function", ArrayClass] = {}
    for func in funcs:
        sizes = list(func.domain.sizes())
        sig = array_signature(sizes)
        key = (func.dtype.name, len(sizes), sig)
        cls = classes.get(key)
        if cls is None:
            cls = ArrayClass(len(classes), func.dtype.name, sig, sizes)
            classes[key] = cls
        else:
            cls.sizes = [
                a if a.diff_const(b) >= 0 else b
                for a, b in zip(cls.sizes, sizes)
            ]
        assignment[func] = cls
    return assignment, list(classes.values())


# ---------------------------------------------------------------------------
# the combined storage plan
# ---------------------------------------------------------------------------


@dataclass
class GroupScratchPlan:
    """Scratch allocation for one group."""

    buffer_of: dict["Function", int]
    buffer_shapes: dict[int, tuple[int, ...]]
    buffer_dtypes: dict[int, str]
    stage_shapes: dict["Function", tuple[int, ...]]

    def buffer_count(self) -> int:
        return len(self.buffer_shapes)

    def total_bytes(self, itemsize_of: Callable[[str], int]) -> int:
        return sum(
            _volume(shape) * itemsize_of(self.buffer_dtypes[b])
            for b, shape in self.buffer_shapes.items()
        )


@dataclass
class StoragePlan:
    """Complete storage decisions for a compiled pipeline."""

    scratch: dict[int, GroupScratchPlan] = field(default_factory=dict)
    array_of: dict["Function", int] = field(default_factory=dict)
    array_shapes: dict[int, tuple[int, ...]] = field(default_factory=dict)
    array_dtypes: dict[int, str] = field(default_factory=dict)
    # statistics for the cost model / reports
    scratch_buffers_without_reuse: int = 0
    scratch_bytes_without_reuse: int = 0
    scratch_bytes_with_reuse: int = 0
    full_arrays_without_reuse: int = 0
    full_arrays_with_reuse: int = 0
    full_array_bytes_without_reuse: int = 0
    full_array_bytes_with_reuse: int = 0

    def group_scratch(self, group_index: int) -> GroupScratchPlan:
        return self.scratch[group_index]

    def summary_line(self) -> str:
        """One-line artifact summary for pass records."""
        scratch_buffers = sum(
            p.buffer_count() for p in self.scratch.values()
        )
        return (
            f"StoragePlan: {self.full_arrays_with_reuse} full arrays "
            f"({self.full_arrays_without_reuse} before reuse), "
            f"{scratch_buffers} scratch buffers"
        )


def _scratch_shapes_for_group(
    group: Group, config: PolyMgConfig
) -> dict["Function", tuple[int, ...]]:
    """Representative (worst-case) per-tile scratch shape per internal
    stage: footprint of a full-size tile anchored at the domain origin,
    unclamped below, capped by the stage's own domain extent."""
    bindings = group.dag.param_bindings
    anchor_dom = group.anchor.domain_box(bindings)
    tile_shape = config.tile_shape(group.anchor.ndim)
    tile = Box.from_bounds(
        [
            (iv.lb, min(iv.ub, iv.lb + t - 1))
            for iv, t in zip(anchor_dom.intervals, tile_shape)
        ]
    )
    needs = group.tile_needs(tile, clamp=False)
    shapes: dict["Function", tuple[int, ...]] = {}
    for stage in group.internal_stages():
        dom = stage.domain_box(bindings)
        shapes[stage] = tuple(
            min(n.size(), d.size())
            for n, d in zip(needs[stage].intervals, dom.intervals)
        )
    return shapes


def plan_storage(
    grouping: GroupingResult,
    schedule: PipelineSchedule,
    config: PolyMgConfig,
) -> StoragePlan:
    """Run both storage passes and collect the plan + statistics."""
    dag = grouping.dag
    plan = StoragePlan()

    # ----- intra-group scratchpads (3.2.1) -----------------------------
    for gi, group in enumerate(grouping.groups):
        shapes = _scratch_shapes_for_group(group, config)
        internal = list(shapes)
        plan.scratch_buffers_without_reuse += len(internal)
        plan.scratch_bytes_without_reuse += sum(
            _volume(shapes[s]) * s.dtype.size_bytes for s in internal
        )
        if not internal:
            plan.scratch[gi] = GroupScratchPlan({}, {}, {}, {})
            continue

        if config.intra_group_reuse:
            # the "+/- small constant" class threshold must absorb the
            # per-step halo spread inside the group (each fused stencil
            # step widens the footprint by its halo; Figure 7's
            # interp+correct+smooths share one class)
            slack = max(config.scratch_class_slack, 2 * group.size)
            cls_map, _classes = classify_scratch_shapes(shapes, slack)
            # timestamps cover the whole group so that last-use analysis
            # sees reads by live-out stages of internal scratchpads
            timestamps = {
                s: schedule.time_of_stage(s) for s in group.stages
            }

            def in_group_users(func, _group=group):
                return [
                    c for c in dag.consumers_of(func) if c in _group
                ]

            storage = remap_storage(
                internal,
                timestamps,
                {s: (cls_map[s].dtype_name, cls_map[s].key) for s in internal},
                in_group_users,
            )
            buffer_shapes: dict[int, tuple[int, ...]] = {}
            buffer_dtypes: dict[int, str] = {}
            for stage, buf in storage.items():
                cls = cls_map[stage]
                buffer_shapes[buf] = cls.shape
                buffer_dtypes[buf] = cls.dtype_name
        else:
            storage = {s: i + 1 for i, s in enumerate(internal)}
            buffer_shapes = {storage[s]: shapes[s] for s in internal}
            buffer_dtypes = {storage[s]: s.dtype.name for s in internal}

        plan.scratch[gi] = GroupScratchPlan(
            storage, buffer_shapes, buffer_dtypes, shapes
        )
        from ..lang.types import dtype_of

        plan.scratch_bytes_with_reuse += plan.scratch[gi].total_bytes(
            lambda name: dtype_of(name).size_bytes
        )

    # ----- inter-group full arrays (3.2.2) ------------------------------
    liveouts: list["Function"] = []
    for group in grouping.groups:
        for stage in group.live_outs():
            liveouts.append(stage)
    plan.full_arrays_without_reuse = len(liveouts)
    bindings = dag.param_bindings
    plan.full_array_bytes_without_reuse = sum(
        s.domain_box(bindings).volume() * s.dtype.size_bytes
        for s in liveouts
    )

    # pipeline outputs keep dedicated arrays (never reused)
    reusable = [s for s in liveouts if not dag.is_output(s)]
    outputs = [s for s in liveouts if dag.is_output(s)]

    next_id = 0
    if config.inter_group_reuse and reusable:
        cls_map, _classes = classify_arrays(reusable)
        timestamps = {s: schedule.liveout_time(s) for s in reusable}

        def group_users(func):
            # consumers' groups, expressed through any member stage so
            # timestamps compare at group granularity
            return [c for c in dag.consumers_of(func)]

        # cross-group timestamps for users too
        full_ts = dict(timestamps)
        for func in reusable:
            for c in dag.consumers_of(func):
                full_ts.setdefault(c, schedule.liveout_time(c))

        storage = remap_storage(
            reusable,
            full_ts,
            {s: (cls_map[s].dtype_name, cls_map[s].key) for s in reusable},
            group_users,
        )
        id_remap: dict[int, int] = {}
        for stage in sorted(reusable, key=lambda s: s.uid):
            raw = storage[stage]
            if raw not in id_remap:
                id_remap[raw] = next_id
                next_id += 1
            aid = id_remap[raw]
            plan.array_of[stage] = aid
            cls = cls_map[stage]
            shape = tuple(sz.int_value(bindings) for sz in cls.sizes)
            old = plan.array_shapes.get(aid)
            if old is None or _volume(shape) > _volume(old):
                plan.array_shapes[aid] = shape
                plan.array_dtypes[aid] = cls.dtype_name
    else:
        for stage in reusable:
            plan.array_of[stage] = next_id
            plan.array_shapes[next_id] = stage.domain_box(bindings).shape()
            plan.array_dtypes[next_id] = stage.dtype.name
            next_id += 1

    for stage in outputs:
        plan.array_of[stage] = next_id
        plan.array_shapes[next_id] = stage.domain_box(bindings).shape()
        plan.array_dtypes[next_id] = stage.dtype.name
        next_id += 1

    plan.full_arrays_with_reuse = len(plan.array_shapes)
    from ..lang.types import dtype_of

    plan.full_array_bytes_with_reuse = sum(
        _volume(shape) * dtype_of(plan.array_dtypes[aid]).size_bytes
        for aid, shape in plan.array_shapes.items()
    )
    return plan
