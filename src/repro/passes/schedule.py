"""Scheduling: total order of groups and of stages within groups.

The storage passes (paper section 3.2) require every function to have a
timestamp under a fixed total order.  Groups execute in topological
order; stages within a group execute in topological order under the
group's tile loop.  A live-out function's schedule time is the time of
the group it belongs to (paper 3.2.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import ScheduleLegalityError
from .grouping import GroupingResult
from .groups import Group

if TYPE_CHECKING:  # pragma: no cover
    from ..lang.function import Function

__all__ = ["PipelineSchedule"]


class PipelineSchedule:
    """Timestamps for groups and stages."""

    def __init__(self, grouping: GroupingResult) -> None:
        self.grouping = grouping
        self.group_time: dict[int, int] = {
            id(g): t for t, g in enumerate(grouping.groups)
        }
        self.stage_time: dict["Function", int] = {}
        for group in grouping.groups:
            for t, stage in enumerate(group.stages):
                self.stage_time[stage] = t

    def time_of_group(self, group: Group) -> int:
        try:
            return self.group_time[id(group)]
        except KeyError:
            raise ScheduleLegalityError(
                "group is not part of this schedule",
                anchor=group.anchor.name,
            ) from None

    def time_of_stage(self, stage: "Function") -> int:
        """Intra-group timestamp of a stage."""
        try:
            return self.stage_time[stage]
        except KeyError:
            raise ScheduleLegalityError(
                "stage has no timestamp in this schedule",
                stage=stage.name,
            ) from None

    def summary_line(self) -> str:
        """One-line artifact summary for pass records."""
        return (
            f"PipelineSchedule: {len(self.group_time)} group slots, "
            f"{len(self.stage_time)} stage timestamps"
        )

    def liveout_time(self, stage: "Function") -> int:
        """Cross-group timestamp of a live-out (its group's time)."""
        try:
            group = self.grouping.group_of[stage]
        except KeyError:
            raise ScheduleLegalityError(
                "stage belongs to no scheduled group",
                stage=stage.name,
            ) from None
        return self.time_of_group(group)
