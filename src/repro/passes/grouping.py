"""Greedy auto-grouping for fusion (paper section 3.1).

PolyMG reuses PolyMage's greedy heuristic: starting from one group per
stage, producer groups are merged into consumer groups whenever

* the merged group stays within the *grouping limit* (max stages),
* the merge keeps the group-level graph acyclic (no other path exists
  between the two groups),
* all member stages get a consistent per-dimension scale relative to the
  merged anchor, and
* the estimated redundant computation of overlapped tiling at the
  configured tile size stays below the overlap threshold.

The sweep repeats until a fixpoint.  The result is a
:class:`GroupingResult` with groups in topological order and the
group-level consumer relation, ready for scheduling, tiling, and the
storage passes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..config import PolyMgConfig
from ..errors import CompileError, ScheduleLegalityError
from .groups import Group

if TYPE_CHECKING:  # pragma: no cover
    from ..ir.dag import PipelineDAG
    from ..lang.function import Function

__all__ = ["GroupingResult", "auto_group"]


class GroupingResult:
    """Groups in topological order plus group-graph queries."""

    def __init__(self, dag: "PipelineDAG", groups: list[Group]) -> None:
        self.dag = dag
        self.groups = self._topo_sort(dag, groups)
        self.group_of: dict["Function", Group] = {}
        for group in self.groups:
            for stage in group.stages:
                self.group_of[stage] = group

    @staticmethod
    def _topo_sort(dag: "PipelineDAG", groups: list[Group]) -> list[Group]:
        owner: dict["Function", Group] = {}
        for group in groups:
            for stage in group.stages:
                owner[stage] = group
        # group order induced by the stage topological order of anchors
        return sorted(groups, key=lambda g: dag.stage_index(g.anchor))

    def consumers_of_group(self, group: Group) -> list[Group]:
        seen: list[Group] = []
        for stage in group.stages:
            for consumer in self.dag.consumers_of(stage):
                g = self.group_of.get(consumer)
                if g is not None and g is not group and g not in seen:
                    seen.append(g)
        return seen

    def producers_of_group(self, group: Group) -> list[Group]:
        seen: list[Group] = []
        for stage in group.stages:
            for producer in self.dag.producers_of(stage):
                g = self.group_of.get(producer)
                if g is not None and g is not group and g not in seen:
                    seen.append(g)
        return seen

    def summary_line(self) -> str:
        """One-line artifact summary for pass records."""
        sizes = [g.size for g in self.groups]
        return (
            f"GroupingResult: {len(self.groups)} groups over "
            f"{sum(sizes)} stages (largest {max(sizes, default=0)})"
        )

    def validate(self) -> None:
        """Invariant checks: partition, acyclicity, schedulability."""
        covered = [s for g in self.groups for s in g.stages]
        if len(covered) != len(set(covered)) or set(covered) != set(
            self.dag.stages
        ):
            raise CompileError(
                "groups do not partition the stage set",
                pipeline=self.dag.name,
                covered=len(set(covered)),
                stages=len(self.dag.stages),
            )
        seen: set[int] = set()
        for group in self.groups:
            for producer_group in self.producers_of_group(group):
                if id(producer_group) not in seen:
                    raise ScheduleLegalityError(
                        "group order is not topological (cycle in "
                        "condensed graph?)",
                        pipeline=self.dag.name,
                        consumer_anchor=group.anchor.name,
                        producer_anchor=producer_group.anchor.name,
                    )
            seen.add(id(group))


def _reaches(
    consumers_of,
    src: Group,
    dst: Group,
    skip_direct: bool,
) -> bool:
    """True if ``dst`` is reachable from ``src`` in the *current* group
    graph (``consumers_of`` computes consumer groups on demand); with
    ``skip_direct`` the length-1 edge src->dst is ignored (merge-safety
    check)."""
    stack = []
    for g in consumers_of(src):
        if g is dst and skip_direct:
            continue
        stack.append(g)
    visited: set[int] = set()
    while stack:
        g = stack.pop()
        if g is dst:
            return True
        if id(g) in visited:
            continue
        visited.add(id(g))
        stack.extend(consumers_of(g))
    return False


def _is_one_chain(group: Group) -> bool:
    """True when every stage belongs to the same ``TStencil`` chain
    (the only fusion ``fuse_smoother_chains_only`` permits)."""
    first = getattr(group.stages[0], "tstencil", None)
    if first is None:
        return False
    return all(
        getattr(s, "tstencil", None) is first for s in group.stages
    )


def _diamond_compatible(group: Group) -> bool:
    """Under ``diamond_smoothing`` smoother chains must stay isolated:
    a group either contains only steps of one ``TStencil`` (a chain the
    Pluto-style backend can diamond-tile) or no smoother steps at all."""
    tstencils = {id(getattr(s, "tstencil", None)) for s in group.stages}
    has_smooth = any(
        getattr(s, "tstencil", None) is not None for s in group.stages
    )
    if not has_smooth:
        return True
    return len(tstencils) == 1


def auto_group(dag: "PipelineDAG", config: PolyMgConfig) -> GroupingResult:
    """PolyMage-style greedy grouping under ``config`` thresholds."""
    groups = [Group(dag, [stage]) for stage in dag.stages]

    if not config.fuse:
        return GroupingResult(dag, groups)

    def group_of_map() -> dict["Function", Group]:
        mapping: dict["Function", Group] = {}
        for g in groups:
            for s in g.stages:
                mapping[s] = g
        return mapping

    changed = True
    while changed:
        changed = False
        owner = group_of_map()

        def current_consumers(g: Group) -> list[Group]:
            """Consumer groups of ``g`` in the *current* partition."""
            outs: list[Group] = []
            for stage in g.stages:
                for consumer in dag.consumers_of(stage):
                    cg = owner.get(consumer)
                    if cg is not None and cg is not g and cg not in outs:
                        outs.append(cg)
            return outs

        def do_merge(a: Group, b: Group, merged: Group) -> None:
            groups.remove(a)
            groups.remove(b)
            groups.append(merged)
            for stage in merged.stages:
                owner[stage] = merged

        def merge_allowed(a: Group, b: Group) -> Group | None:
            """Checks for absorbing producer ``a`` into consumer ``b``;
            returns the merged group or None."""
            if a.size + b.size > config.group_size_limit:
                return None
            # acyclicity: no second path a ->* b in the current graph.
            # Fast path: a producer whose only consumer group is b
            # cannot start an alternative path.
            a_consumers = current_consumers(a)
            if a_consumers != [b] and _reaches(
                current_consumers, a, b, True
            ):
                return None
            merged = Group(dag, a.stages + b.stages)
            if config.fuse_smoother_chains_only and not _is_one_chain(
                merged
            ):
                return None
            if config.diamond_smoothing and not _diamond_compatible(
                merged
            ):
                return None
            try:
                merged.scales()
            except CompileError:
                return None
            if config.tile and merged.size > 1:
                tile = config.tile_shape(merged.anchor.ndim)
                if merged.redundancy(tile) > config.overlap_threshold:
                    return None
            return merged

        # sweep producers in topological order, absorbing each into its
        # consumer group; a freshly merged group keeps extending along
        # its single-consumer chain within the sweep (PolyMage's
        # automerge behaviour); groups already touched this sweep are
        # otherwise left for the next sweep
        merged_ids: set[int] = set()
        for producer_group in sorted(
            groups, key=lambda g: dag.stage_index(g.anchor)
        ):
            if id(producer_group) in merged_ids:
                continue
            for consumer_group in list(current_consumers(producer_group)):
                if id(consumer_group) in merged_ids:
                    continue
                merged = merge_allowed(producer_group, consumer_group)
                if merged is None:
                    continue
                do_merge(producer_group, consumer_group, merged)
                merged_ids.add(id(producer_group))
                merged_ids.add(id(consumer_group))
                merged_ids.add(id(merged))
                # chain extension: while the merged group has exactly
                # one (untouched) consumer, keep absorbing it
                while True:
                    chain = [
                        g
                        for g in current_consumers(merged)
                        if id(g) not in merged_ids
                    ]
                    if len(chain) != 1 or current_consumers(merged) != chain:
                        break
                    nxt = chain[0]
                    candidate = merge_allowed(merged, nxt)
                    if candidate is None:
                        break
                    do_merge(merged, nxt, candidate)
                    merged_ids.add(id(nxt))
                    merged_ids.add(id(candidate))
                    merged = candidate
                changed = True
                break

    result = GroupingResult(dag, groups)
    result.validate()
    return result
