"""Pass-manager architecture for the PolyMG compile path.

The paper's code generator (Figure 4) is a fixed phase sequence.  This
module makes that sequence an explicit, inspectable pipeline of
:class:`Pass` objects threading a shared :class:`CompilationContext`:

* every pass declares the artifacts it ``requires`` and ``produces``
  (``"dag"``, ``"grouping"``, ``"schedule"``, ``"storage"``,
  ``"compiled"``, plus ``"verified:*"`` markers), and the
  :class:`PassManager` statically validates the ordering before running
  anything — a mis-ordered pipeline fails with
  :class:`~repro.errors.PassOrderingError` instead of an attribute
  error three phases later;
* the verifiers of :mod:`repro.verify.invariants` are ordinary passes,
  interleaved after the phase they check when
  ``PolyMgConfig.verify_level`` selects them (see
  :func:`default_passes`) — no special-cased call sites;
* every pass run is instrumented: wall time, input/output artifact
  summaries, and (optionally) an IR snapshot are recorded into a
  :class:`CompileReport`, retrievable from every compiled pipeline as
  ``compiled.report`` and dumpable as JSON for the bench harness.

Growing the code generator — reordering phases, inserting an octree or
search-based specialization pass, running a sub-pipeline per candidate
in an evolutionary sweep — means editing the pass list, not the driver.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from ..config import PolyMgConfig
from ..errors import CompileError, PassOrderingError

if TYPE_CHECKING:  # pragma: no cover
    from ..lang.function import Function

__all__ = [
    "CompilationContext",
    "Pass",
    "PassRecord",
    "CompileReport",
    "PassManager",
    "BuildDagPass",
    "GroupingPass",
    "SchedulingPass",
    "StoragePlanningPass",
    "BackendPass",
    "VerifySchedulePass",
    "VerifyStoragePass",
    "VerifyTilingPass",
    "default_passes",
]


# ---------------------------------------------------------------------------
# shared compilation state
# ---------------------------------------------------------------------------


@dataclass
class CompilationContext:
    """The evolving artifact set threaded through the pass pipeline.

    Inputs (``outputs``/``params``/``config``/``name``) are fixed at
    construction; every pass reads prior artifacts with :meth:`get` and
    publishes its results with :meth:`produce`.  Provenance (which pass
    produced which artifact) is kept for the report.
    """

    outputs: tuple["Function", ...]
    params: dict[str, int]
    config: PolyMgConfig
    name: str
    artifacts: dict[str, Any] = field(default_factory=dict)
    produced_by: dict[str, str] = field(default_factory=dict)

    def produce(self, key: str, value: Any, *, by: str = "?") -> None:
        if key in self.artifacts:
            raise PassOrderingError(
                "artifact produced twice",
                pipeline=self.name,
                artifact=key,
                first_producer=self.produced_by.get(key),
                second_producer=by,
            )
        self.artifacts[key] = value
        self.produced_by[key] = by

    def get(self, key: str) -> Any:
        try:
            return self.artifacts[key]
        except KeyError:
            raise PassOrderingError(
                "artifact requested before any pass produced it",
                pipeline=self.name,
                artifact=key,
                available=sorted(self.artifacts),
            ) from None

    def has(self, key: str) -> bool:
        return key in self.artifacts

    # convenience accessors for the canonical artifacts
    @property
    def dag(self):
        return self.get("dag")

    @property
    def grouping(self):
        return self.get("grouping")

    @property
    def schedule(self):
        return self.get("schedule")

    @property
    def storage(self):
        return self.get("storage")

    @property
    def compiled(self):
        return self.get("compiled")


# ---------------------------------------------------------------------------
# pass protocol
# ---------------------------------------------------------------------------


class Pass:
    """One phase of the compile pipeline.

    Subclasses set ``name``, ``requires`` and ``produces`` and implement
    :meth:`run`, publishing each declared artifact via
    ``ctx.produce``.  ``snapshot`` may return a human-readable dump of
    the IR state after the pass (collected only when the manager runs
    with ``snapshot_ir=True``).
    """

    name: str = "pass"
    requires: tuple[str, ...] = ()
    produces: tuple[str, ...] = ()

    def run(self, ctx: CompilationContext) -> None:  # pragma: no cover
        raise NotImplementedError

    def snapshot(self, ctx: CompilationContext) -> str | None:
        return None

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(requires={list(self.requires)}, "
            f"produces={list(self.produces)})"
        )


# ---------------------------------------------------------------------------
# instrumentation
# ---------------------------------------------------------------------------


def _summarize_artifact(value: Any) -> str:
    """Compact, human-readable artifact summary for pass records."""
    kind = type(value).__name__
    if hasattr(value, "summary_line"):
        try:
            return value.summary_line()
        except Exception:  # summaries must never break a compile
            return kind
    if hasattr(value, "stage_count"):  # PipelineDAG
        return f"{kind}: {value.stage_count()} stages"
    return kind


@dataclass
class PassRecord:
    """Instrumentation of one pass run."""

    name: str
    wall_time: float
    requires: tuple[str, ...]
    produces: tuple[str, ...]
    inputs: dict[str, str] = field(default_factory=dict)
    outputs: dict[str, str] = field(default_factory=dict)
    snapshot: str | None = None

    def to_dict(self) -> dict:
        d = {
            "name": self.name,
            "wall_time": self.wall_time,
            "requires": list(self.requires),
            "produces": list(self.produces),
            "inputs": dict(self.inputs),
            "outputs": dict(self.outputs),
        }
        if self.snapshot is not None:
            d["snapshot"] = self.snapshot
        return d


@dataclass
class CompileReport:
    """Per-compile instrumentation: one :class:`PassRecord` per pass.

    Attached to every compiled pipeline as ``compiled.report``.
    ``cache_hits`` counts how many times this compile's artifacts were
    served from the compile cache after the cold compile recorded here.

    ``incidents`` collects structured runtime incident records (see
    :mod:`repro.resilience.incidents`) involving executors built from
    this compile — faults, ladder demotions/promotions, checkpoint
    restores.  The report object is shared between cache clones, so
    the incident trail is the history of the *fingerprint*, across
    every executor served for it.
    """

    pipeline: str
    fingerprint: str = ""
    total_wall_time: float = 0.0
    #: wall time spent building the ahead-of-time kernel plan
    #: (:mod:`repro.backend.kernels`); recorded by
    #: :meth:`~repro.backend.executor.CompiledPipeline.plan`, shared by
    #: cache clones like the rest of the report
    plan_time_s: float = 0.0
    #: wall time spent in the native backend's out-of-process compile
    #: (0.0 when the backend is not ``native`` or the artifact store
    #: served the shared object)
    native_compile_time_s: float = 0.0
    passes: list[PassRecord] = field(default_factory=list)
    cache_hits: int = 0
    incidents: list[dict] = field(default_factory=list)

    def record_incident(self, incident: dict) -> None:
        """Append one structured incident record (a plain dict, e.g.
        :meth:`repro.resilience.incidents.IncidentRecord.to_dict`)."""
        self.incidents.append(incident)

    def pass_names(self) -> list[str]:
        return [p.name for p in self.passes]

    def pass_time(self, name: str) -> float:
        """Total wall time of all runs of the named pass."""
        times = [p.wall_time for p in self.passes if p.name == name]
        if not times:
            raise KeyError(name)
        return sum(times)

    def to_dict(self) -> dict:
        return {
            "pipeline": self.pipeline,
            "fingerprint": self.fingerprint,
            "total_wall_time": self.total_wall_time,
            "plan_time_s": self.plan_time_s,
            "native_compile_time_s": self.native_compile_time_s,
            "cache_hits": self.cache_hits,
            "passes": [p.to_dict() for p in self.passes],
            "incidents": list(self.incidents),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


# ---------------------------------------------------------------------------
# the manager
# ---------------------------------------------------------------------------


class PassManager:
    """Runs an ordered pass pipeline over a :class:`CompilationContext`.

    ``validate`` proves statically (before any pass runs) that every
    declared requirement is produced by an earlier pass and that no two
    passes produce the same artifact.
    """

    def __init__(
        self, passes: Sequence[Pass], *, snapshot_ir: bool = False
    ) -> None:
        self.passes = list(passes)
        self.snapshot_ir = snapshot_ir
        self.validate()

    def validate(self) -> None:
        available: dict[str, str] = {}
        for p in self.passes:
            for req in p.requires:
                if req not in available:
                    raise PassOrderingError(
                        "pass requires an artifact no earlier pass "
                        "produces",
                        pass_name=p.name,
                        artifact=req,
                        available=sorted(available),
                    )
            for out in p.produces:
                if out in available:
                    raise PassOrderingError(
                        "two passes declare the same artifact",
                        artifact=out,
                        first_producer=available[out],
                        second_producer=p.name,
                    )
                available[out] = p.name

    def run(self, ctx: CompilationContext) -> CompileReport:
        report = CompileReport(pipeline=ctx.name)
        t_start = time.perf_counter()
        for p in self.passes:
            inputs = {
                key: _summarize_artifact(ctx.get(key)) for key in p.requires
            }
            t0 = time.perf_counter()
            p.run(ctx)
            elapsed = time.perf_counter() - t0
            missing = [key for key in p.produces if not ctx.has(key)]
            if missing:
                raise CompileError(
                    "pass finished without producing its declared "
                    "artifacts",
                    pipeline=ctx.name,
                    pass_name=p.name,
                    missing=missing,
                )
            record = PassRecord(
                name=p.name,
                wall_time=elapsed,
                requires=p.requires,
                produces=p.produces,
                inputs=inputs,
                outputs={
                    key: _summarize_artifact(ctx.get(key))
                    for key in p.produces
                },
            )
            if self.snapshot_ir:
                record.snapshot = p.snapshot(ctx)
            report.passes.append(record)
        report.total_wall_time = time.perf_counter() - t_start
        return report


# ---------------------------------------------------------------------------
# the concrete compile pipeline (paper Figure 4)
# ---------------------------------------------------------------------------


class BuildDagPass(Pass):
    """Phase 1: polyhedral representation — DAG + access summaries."""

    name = "build-dag"
    requires = ()
    produces = ("dag",)

    def run(self, ctx: CompilationContext) -> None:
        from ..ir.dag import PipelineDAG

        ctx.produce(
            "dag",
            PipelineDAG(ctx.outputs, params=ctx.params, name=ctx.name),
            by=self.name,
        )

    def snapshot(self, ctx: CompilationContext) -> str:
        return ctx.dag.summary()


class GroupingPass(Pass):
    """Phase 2: *automerge* — greedy grouping for fusion."""

    name = "grouping"
    requires = ("dag",)
    produces = ("grouping",)

    def run(self, ctx: CompilationContext) -> None:
        from .grouping import auto_group

        ctx.produce(
            "grouping", auto_group(ctx.dag, ctx.config), by=self.name
        )

    def snapshot(self, ctx: CompilationContext) -> str:
        return "\n".join(
            f"group {gi}: "
            + ", ".join(s.name for s in group.stages)
            for gi, group in enumerate(ctx.grouping.groups)
        )


class SchedulingPass(Pass):
    """Phase 3: total order of groups and of stages within groups."""

    name = "scheduling"
    requires = ("grouping",)
    produces = ("schedule",)

    def run(self, ctx: CompilationContext) -> None:
        from .schedule import PipelineSchedule

        ctx.produce(
            "schedule", PipelineSchedule(ctx.grouping), by=self.name
        )


class StoragePlanningPass(Pass):
    """Phase 5: scratchpad + full-array reuse, pooled allocation."""

    name = "storage"
    requires = ("grouping", "schedule")
    produces = ("storage",)

    def run(self, ctx: CompilationContext) -> None:
        from .storage import plan_storage

        ctx.produce(
            "storage",
            plan_storage(ctx.grouping, ctx.schedule, ctx.config),
            by=self.name,
        )


class BackendPass(Pass):
    """Phase 6: backend construction (the numpy interpreter; the
    C/OpenMP emitter consumes the same compiled object).  Tile geometry
    (phase 4) is derived lazily from the access relations inside the
    groups, so it has no standalone pass."""

    name = "backend"
    requires = ("dag", "grouping", "schedule", "storage")
    produces = ("compiled",)

    def run(self, ctx: CompilationContext) -> None:
        from ..backend.executor import CompiledPipeline

        ctx.produce(
            "compiled",
            CompiledPipeline(
                ctx.dag, ctx.config, ctx.grouping, ctx.schedule, ctx.storage
            ),
            by=self.name,
        )


class VerifySchedulePass(Pass):
    """Interleaved verifier: schedule legality (after scheduling)."""

    name = "verify-schedule"
    requires = ("grouping", "schedule")
    produces = ("verified:schedule",)

    def run(self, ctx: CompilationContext) -> None:
        from ..verify.invariants import verify_schedule

        verify_schedule(ctx.grouping, ctx.schedule, pipeline=ctx.name)
        ctx.produce("verified:schedule", True, by=self.name)


class VerifyStoragePass(Pass):
    """Interleaved verifier: storage soundness (after the storage
    passes)."""

    name = "verify-storage"
    requires = ("grouping", "schedule", "storage")
    produces = ("verified:storage",)

    def run(self, ctx: CompilationContext) -> None:
        from ..verify.invariants import verify_storage

        verify_storage(
            ctx.grouping,
            ctx.schedule,
            ctx.storage,
            ctx.config,
            pipeline=ctx.name,
        )
        ctx.produce("verified:storage", True, by=self.name)


class VerifyTilingPass(Pass):
    """Interleaved verifier: tile coverage (after backend construction,
    which decides the diamond-tiled groups to skip)."""

    name = "verify-tiling"
    requires = ("grouping", "compiled")
    produces = ("verified:tiling",)

    def run(self, ctx: CompilationContext) -> None:
        from ..verify.invariants import verify_tiling

        verify_tiling(
            ctx.grouping,
            ctx.config,
            level=ctx.config.verify_level,
            skip_groups=ctx.compiled._diamond_groups,
            pipeline=ctx.name,
        )
        ctx.produce("verified:tiling", True, by=self.name)


def default_passes(config: PolyMgConfig) -> list[Pass]:
    """The paper's phase sequence, with the verifiers interleaved as
    ordinary passes when ``config.verify_level`` selects them."""
    verify = config.verify_level != "off"
    passes: list[Pass] = [BuildDagPass(), GroupingPass(), SchedulingPass()]
    if verify:
        passes.append(VerifySchedulePass())
    passes.append(StoragePlanningPass())
    if verify:
        passes.append(VerifyStoragePass())
    passes.append(BackendPass())
    if verify:
        passes.append(VerifyTilingPass())
    return passes
