"""Compiler passes: grouping/fusion, tile geometry, scheduling, and the
storage optimizations that are the paper's central contribution."""

from .grouping import GroupingResult, auto_group
from .groups import Group
from .schedule import PipelineSchedule
from .storage import (
    StoragePlan,
    get_last_use_map,
    plan_storage,
    remap_storage,
)

__all__ = [
    "GroupingResult",
    "auto_group",
    "Group",
    "PipelineSchedule",
    "StoragePlan",
    "get_last_use_map",
    "plan_storage",
    "remap_storage",
]
