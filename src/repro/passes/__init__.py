"""Compiler passes: grouping/fusion, tile geometry, scheduling, the
storage optimizations that are the paper's central contribution, and
the pass-manager infrastructure that sequences them
(:mod:`repro.passes.manager`)."""

from .grouping import GroupingResult, auto_group
from .groups import Group
from .manager import (
    CompilationContext,
    CompileReport,
    Pass,
    PassManager,
    PassRecord,
    default_passes,
)
from .schedule import PipelineSchedule
from .storage import (
    StoragePlan,
    get_last_use_map,
    plan_storage,
    remap_storage,
)

__all__ = [
    "GroupingResult",
    "auto_group",
    "Group",
    "CompilationContext",
    "CompileReport",
    "Pass",
    "PassManager",
    "PassRecord",
    "default_passes",
    "PipelineSchedule",
    "StoragePlan",
    "get_last_use_map",
    "plan_storage",
    "remap_storage",
]
