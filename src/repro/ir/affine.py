"""Parametric affine arithmetic.

This module implements the scalar affine expressions used throughout the
polyhedral-lite IR: quantities of the form

    c0 + c1 * p1 + c2 * p2 + ...

where ``p_i`` are named compile-time parameters (e.g. the problem size
``N``) and the coefficients are exact rationals.  Domain bounds, array
sizes, and ghost-zone offsets are all represented with :class:`Affine`, so
passes such as inter-group storage classification (paper section 3.2.2)
can reason about "arrays whose sizes differ only by constant offsets"
without binding the parameters first.

The design mirrors what PolyMG obtains from ISL's ``pw_aff`` for the
restricted class of expressions geometric-multigrid pipelines need.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping, Union

Number = Union[int, Fraction]
AffineLike = Union["Affine", int, Fraction, str]

__all__ = ["Affine", "aff", "amax", "amin"]


def _as_fraction(value: Number) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    raise TypeError(f"expected int or Fraction, got {type(value).__name__}")


class Affine:
    """An affine expression ``const + sum(coeff[p] * p)`` over parameters.

    Instances are immutable and hashable.  Parameters are identified by
    their *names* (strings); the language layer maps ``Parameter`` objects
    down to names before constructing IR.
    """

    __slots__ = ("_coeffs", "_const", "_hash")

    def __init__(
        self,
        const: Number = 0,
        coeffs: Mapping[str, Number] | None = None,
    ) -> None:
        self._const = _as_fraction(const)
        items = {}
        if coeffs:
            for name, c in coeffs.items():
                frac = _as_fraction(c)
                if frac != 0:
                    items[str(name)] = frac
        self._coeffs: tuple[tuple[str, Fraction], ...] = tuple(
            sorted(items.items())
        )
        self._hash = hash((self._const, self._coeffs))

    # -- accessors ---------------------------------------------------------
    @property
    def const(self) -> Fraction:
        return self._const

    @property
    def coeffs(self) -> dict[str, Fraction]:
        return dict(self._coeffs)

    @property
    def params(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self._coeffs)

    def is_constant(self) -> bool:
        return not self._coeffs

    def constant_value(self) -> Fraction:
        if not self.is_constant():
            raise ValueError(f"{self} is not constant")
        return self._const

    def coeff(self, name: str) -> Fraction:
        for n, c in self._coeffs:
            if n == name:
                return c
        return Fraction(0)

    # -- algebra -----------------------------------------------------------
    @staticmethod
    def wrap(value: AffineLike) -> "Affine":
        if isinstance(value, Affine):
            return value
        if isinstance(value, str):
            return Affine(0, {value: 1})
        return Affine(value)

    def __add__(self, other: AffineLike) -> "Affine":
        o = Affine.wrap(other)
        coeffs = dict(self._coeffs)
        for name, c in o._coeffs:
            coeffs[name] = coeffs.get(name, Fraction(0)) + c
        return Affine(self._const + o._const, coeffs)

    __radd__ = __add__

    def __neg__(self) -> "Affine":
        return Affine(-self._const, {n: -c for n, c in self._coeffs})

    def __sub__(self, other: AffineLike) -> "Affine":
        return self + (-Affine.wrap(other))

    def __rsub__(self, other: AffineLike) -> "Affine":
        return Affine.wrap(other) + (-self)

    def __mul__(self, factor: Number) -> "Affine":
        f = _as_fraction(factor)
        return Affine(
            self._const * f, {n: c * f for n, c in self._coeffs}
        )

    __rmul__ = __mul__

    def __truediv__(self, factor: Number) -> "Affine":
        f = _as_fraction(factor)
        if f == 0:
            raise ZeroDivisionError("affine division by zero")
        return self * (Fraction(1) / f)

    def floor_div(self, divisor: int, bindings: Mapping[str, int]) -> int:
        """Evaluate ``floor(self / divisor)`` under ``bindings``."""
        value = self.value(bindings)
        num, den = value.numerator, value.denominator * divisor
        return num // den

    # -- evaluation --------------------------------------------------------
    def subs(self, bindings: Mapping[str, Number]) -> "Affine":
        """Substitute some parameters with numeric values."""
        const = self._const
        coeffs: dict[str, Fraction] = {}
        for name, c in self._coeffs:
            if name in bindings:
                const += c * _as_fraction(bindings[name])
            else:
                coeffs[name] = c
        return Affine(const, coeffs)

    def value(self, bindings: Mapping[str, Number] | None = None) -> Fraction:
        """Fully evaluate; raises if a parameter is unbound."""
        result = self.subs(bindings or {})
        if not result.is_constant():
            missing = ", ".join(result.params)
            raise ValueError(f"unbound parameters: {missing}")
        return result._const

    def int_value(self, bindings: Mapping[str, Number] | None = None) -> int:
        v = self.value(bindings)
        if v.denominator != 1:
            raise ValueError(f"{self} does not evaluate to an integer: {v}")
        return v.numerator

    # -- comparisons -------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, Fraction)):
            other = Affine(other)
        if not isinstance(other, Affine):
            return NotImplemented
        return self._const == other._const and self._coeffs == other._coeffs

    def __hash__(self) -> int:
        return self._hash

    def same_shape(self, other: "Affine") -> bool:
        """True when the parametric parts agree (differ by a constant only).

        This is the classification predicate used by inter-group storage
        allocation: arrays whose dimensions match up to ghost-zone
        constants may share a storage class.
        """
        return self._coeffs == Affine.wrap(other)._coeffs

    def diff_const(self, other: "Affine") -> Fraction:
        """The constant gap ``self - other``; requires :meth:`same_shape`."""
        o = Affine.wrap(other)
        if not self.same_shape(o):
            raise ValueError(f"{self} and {o} differ in parametric part")
        return self._const - o._const

    # -- misc ----------------------------------------------------------------
    def __repr__(self) -> str:
        parts = []
        for name, c in self._coeffs:
            if c == 1:
                parts.append(name)
            elif c == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{c}*{name}")
        if self._const != 0 or not parts:
            parts.append(str(self._const))
        out = " + ".join(parts)
        return out.replace("+ -", "- ")


def aff(value: AffineLike) -> Affine:
    """Coerce ``value`` (int, Fraction, parameter name, Affine) to Affine."""
    return Affine.wrap(value)


def amax(values: Iterable[AffineLike], bindings: Mapping[str, Number] | None = None):
    """Maximum of affine expressions.

    Symbolic max is only defined when all expressions share the same
    parametric part (then the max is decided by constants); otherwise the
    caller must provide ``bindings`` and a numeric max is returned.
    """
    items = [Affine.wrap(v) for v in values]
    if not items:
        raise ValueError("amax of empty sequence")
    first = items[0]
    if all(v.same_shape(first) for v in items[1:]):
        return max(items, key=lambda v: v.const)
    if bindings is None:
        raise ValueError("incomparable affine expressions without bindings")
    return max(items, key=lambda v: v.value(bindings))


def amin(values: Iterable[AffineLike], bindings: Mapping[str, Number] | None = None):
    """Minimum analogue of :func:`amax`."""
    items = [Affine.wrap(v) for v in values]
    if not items:
        raise ValueError("amin of empty sequence")
    first = items[0]
    if all(v.same_shape(first) for v in items[1:]):
        return min(items, key=lambda v: v.const)
    if bindings is None:
        raise ValueError("incomparable affine expressions without bindings")
    return min(items, key=lambda v: v.value(bindings))
