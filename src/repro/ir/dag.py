"""Pipeline DAG construction and queries.

The PolyMG compiler processes the Python-embedded specification as a
directed acyclic graph of functions with instance-wise dependence
summaries on the edges (paper section 2, Figure 2).  This module builds
that graph from the output functions, performs validation (feed-forward,
defined stages, rank-consistent accesses), and provides the queries used
by every later pass: deterministic topological order, per-edge access
summaries, consumer maps, and per-stage grid "level" annotation used in
reports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids lang<->ir cycle)
    from ..lang.function import Function, FunctionAccess

__all__ = ["PipelineDAG", "topological_order"]


def topological_order(
    roots: Sequence["Function"],
) -> tuple[list["Function"], dict["Function", list["Function"]]]:
    """Deterministic topological order (producers first) of all functions
    reachable from ``roots`` through producer edges, plus the consumer
    map.  Raises on cycles (which the language cannot express, but
    defensive validation is cheap)."""
    order: list["Function"] = []
    consumers: dict["Function", list["Function"]] = {}
    state: dict["Function", int] = {}  # 0 visiting, 1 done

    def visit(func: "Function", stack: list["Function"]) -> None:
        mark = state.get(func)
        if mark == 1:
            return
        if mark == 0:
            cycle = " -> ".join(f.name for f in stack + [func])
            raise ValueError(f"cycle in pipeline: {cycle}")
        state[func] = 0
        producers = (
            [] if func.is_input else sorted(func.producers(), key=lambda f: f.uid)
        )
        for prod in producers:
            consumers.setdefault(prod, [])
            if func not in consumers[prod]:
                consumers[prod].append(func)
            visit(prod, stack + [func])
        state[func] = 1
        order.append(func)

    for root in sorted(roots, key=lambda f: f.uid):
        visit(root, [])
    return order, consumers


class PipelineDAG:
    """The compiler's view of one pipeline (e.g. one multigrid cycle)."""

    def __init__(
        self,
        outputs: Sequence["Function"],
        params: Mapping[str, int] | None = None,
        name: str = "pipeline",
    ) -> None:
        self.name = name
        self.outputs: tuple["Function", ...] = tuple(outputs)
        self.param_bindings: dict[str, int] = dict(params or {})

        order, consumers = topological_order(self.outputs)
        self.all_functions: list["Function"] = order
        self.inputs: list["Function"] = [f for f in order if f.is_input]
        self.stages: list["Function"] = [f for f in order if not f.is_input]
        self._consumers = consumers
        self._access_cache: dict["Function", dict["Function", FunctionAccess]] = {}

        for stage in self.stages:
            if not stage.has_defn:
                raise ValueError(f"stage {stage.name} has no definition")

    # -- queries --------------------------------------------------------
    def stage_count(self) -> int:
        """Number of DAG nodes excluding inputs (paper Table 3 column)."""
        return len(self.stages)

    def consumers_of(self, func: "Function") -> list["Function"]:
        return list(self._consumers.get(func, []))

    def producers_of(self, func: "Function") -> list["Function"]:
        if func.is_input:
            return []
        return sorted(func.producers(), key=lambda f: f.uid)

    def accesses_of(self, func: "Function") -> dict["Function", FunctionAccess]:
        if func.is_input:
            return {}
        if func not in self._access_cache:
            self._access_cache[func] = func.accesses()
        return self._access_cache[func]

    def access(self, consumer: "Function", producer: "Function") -> FunctionAccess:
        return self.accesses_of(consumer)[producer]

    def is_output(self, func: "Function") -> bool:
        return any(func is out for out in self.outputs)

    def stage_index(self, func: "Function") -> int:
        return self.stages.index(func)

    # -- interop ----------------------------------------------------------
    def to_networkx(self):
        """Export to a :mod:`networkx` DiGraph (tests, visual reports)."""
        import networkx as nx

        g = nx.DiGraph(name=self.name)
        for func in self.all_functions:
            g.add_node(
                func.name,
                kind=func.stage_kind(),
                ndim=func.ndim,
                dtype=func.dtype.name,
                is_input=func.is_input,
            )
        for stage in self.stages:
            for producer in self.producers_of(stage):
                g.add_edge(producer.name, stage.name)
        return g

    def summary(self) -> str:
        lines = [f"pipeline {self.name}: {self.stage_count()} stages"]
        for stage in self.stages:
            prods = ", ".join(p.name for p in self.producers_of(stage))
            lines.append(
                f"  {stage.name} [{stage.stage_kind()}] <- {prods or '(none)'}"
            )
        return "\n".join(lines)
