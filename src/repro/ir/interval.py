"""Parametric integer intervals.

An :class:`Interval` is an inclusive integer range ``[lb, ub]`` whose
bounds are :class:`~repro.ir.affine.Affine` expressions.  Intervals are
the one-dimensional building block of iteration domains
(:mod:`repro.ir.domain`).
"""

from __future__ import annotations

from typing import Mapping

from .affine import Affine, AffineLike, aff

__all__ = ["Interval", "ConcreteInterval"]


class Interval:
    """Inclusive parametric integer interval ``[lb, ub]``."""

    __slots__ = ("lb", "ub")

    def __init__(self, lb: AffineLike, ub: AffineLike) -> None:
        self.lb = aff(lb)
        self.ub = aff(ub)

    def bind(self, bindings: Mapping[str, int]) -> "ConcreteInterval":
        return ConcreteInterval(
            self.lb.int_value(bindings), self.ub.int_value(bindings)
        )

    def subs(self, bindings: Mapping[str, int]) -> "Interval":
        return Interval(self.lb.subs(bindings), self.ub.subs(bindings))

    def shift(self, offset: AffineLike) -> "Interval":
        return Interval(self.lb + offset, self.ub + offset)

    def grow(self, lo: AffineLike, hi: AffineLike) -> "Interval":
        """Extend the interval by ``lo`` below and ``hi`` above."""
        return Interval(self.lb - lo, self.ub + hi)

    def size(self) -> Affine:
        """Number of points, as an affine expression."""
        return self.ub - self.lb + 1

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        return self.lb == other.lb and self.ub == other.ub

    def __hash__(self) -> int:
        return hash((self.lb, self.ub))

    def __repr__(self) -> str:
        return f"[{self.lb}, {self.ub}]"


class ConcreteInterval:
    """Inclusive integer interval with bound (plain ``int``) endpoints."""

    __slots__ = ("lb", "ub")

    def __init__(self, lb: int, ub: int) -> None:
        self.lb = int(lb)
        self.ub = int(ub)

    def is_empty(self) -> bool:
        return self.ub < self.lb

    def size(self) -> int:
        return max(0, self.ub - self.lb + 1)

    def intersect(self, other: "ConcreteInterval") -> "ConcreteInterval":
        return ConcreteInterval(max(self.lb, other.lb), min(self.ub, other.ub))

    def union_hull(self, other: "ConcreteInterval") -> "ConcreteInterval":
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        return ConcreteInterval(min(self.lb, other.lb), max(self.ub, other.ub))

    def contains(self, point: int) -> bool:
        return self.lb <= point <= self.ub

    def covers(self, other: "ConcreteInterval") -> bool:
        return other.is_empty() or (self.lb <= other.lb and other.ub <= self.ub)

    def shift(self, offset: int) -> "ConcreteInterval":
        return ConcreteInterval(self.lb + offset, self.ub + offset)

    def grow(self, lo: int, hi: int) -> "ConcreteInterval":
        return ConcreteInterval(self.lb - lo, self.ub + hi)

    def subtract(self, other: "ConcreteInterval") -> list["ConcreteInterval"]:
        """Set difference ``self \\ other`` as disjoint intervals."""
        inter = self.intersect(other)
        if inter.is_empty():
            return [] if self.is_empty() else [self]
        pieces = []
        if self.lb < inter.lb:
            pieces.append(ConcreteInterval(self.lb, inter.lb - 1))
        if inter.ub < self.ub:
            pieces.append(ConcreteInterval(inter.ub + 1, self.ub))
        return pieces

    def __iter__(self):
        return iter(range(self.lb, self.ub + 1))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConcreteInterval):
            return NotImplemented
        if self.is_empty() and other.is_empty():
            return True
        return self.lb == other.lb and self.ub == other.ub

    def __hash__(self) -> int:
        if self.is_empty():
            return hash("empty-interval")
        return hash((self.lb, self.ub))

    def __repr__(self) -> str:
        return f"[{self.lb}, {self.ub}]"
