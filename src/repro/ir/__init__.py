"""Polyhedral-lite intermediate representation.

Parametric affine arithmetic, integer intervals and boxes, scaled affine
access relations, and the pipeline DAG — the subset of a polyhedral
framework that geometric multigrid pipelines require (see DESIGN.md for
the ISL substitution rationale).
"""

from .access import AccessDim, AccessRange, identity_access
from .affine import Affine, aff, amax, amin
from .dag import PipelineDAG, topological_order
from .domain import Box, Domain, box_union_volume
from .interval import ConcreteInterval
from .interval import Interval as IRInterval

__all__ = [
    "AccessDim",
    "AccessRange",
    "identity_access",
    "Affine",
    "aff",
    "amax",
    "amin",
    "PipelineDAG",
    "topological_order",
    "Box",
    "Domain",
    "box_union_volume",
    "ConcreteInterval",
    "IRInterval",
]
