"""Hyperrectangular iteration domains (boxes).

PolyMG's polyhedral representation, specialized to the domain class that
geometric multigrid pipelines actually produce: products of integer
intervals.  :class:`Box` is the concrete (bound) form used by executors
and tiling; :class:`Domain` carries parametric bounds.

Box subtraction (needed for piecewise/boundary ``Case`` lowering and for
live-out boundary analysis) returns a disjoint decomposition, mirroring
what PolyMG obtains from ISL set subtraction.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from .affine import Affine
from .interval import ConcreteInterval, Interval

__all__ = ["Domain", "Box", "box_union_volume"]


class Domain:
    """Parametric hyperrectangular domain: a product of :class:`Interval`."""

    __slots__ = ("intervals",)

    def __init__(self, intervals: Sequence[Interval]) -> None:
        self.intervals = tuple(intervals)

    @property
    def ndim(self) -> int:
        return len(self.intervals)

    def bind(self, bindings: Mapping[str, int]) -> "Box":
        return Box([iv.bind(bindings) for iv in self.intervals])

    def sizes(self) -> tuple[Affine, ...]:
        return tuple(iv.size() for iv in self.intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Domain):
            return NotImplemented
        return self.intervals == other.intervals

    def __hash__(self) -> int:
        return hash(self.intervals)

    def __repr__(self) -> str:
        return "x".join(repr(iv) for iv in self.intervals)


class Box:
    """Concrete hyperrectangular domain: a product of concrete intervals."""

    __slots__ = ("intervals",)

    def __init__(self, intervals: Sequence[ConcreteInterval]) -> None:
        self.intervals = tuple(intervals)

    @classmethod
    def from_bounds(cls, bounds: Iterable[tuple[int, int]]) -> "Box":
        return cls([ConcreteInterval(lb, ub) for lb, ub in bounds])

    @property
    def ndim(self) -> int:
        return len(self.intervals)

    def is_empty(self) -> bool:
        return any(iv.is_empty() for iv in self.intervals)

    def volume(self) -> int:
        vol = 1
        for iv in self.intervals:
            vol *= iv.size()
        return vol

    def shape(self) -> tuple[int, ...]:
        return tuple(iv.size() for iv in self.intervals)

    def lower(self) -> tuple[int, ...]:
        return tuple(iv.lb for iv in self.intervals)

    def upper(self) -> tuple[int, ...]:
        return tuple(iv.ub for iv in self.intervals)

    def intersect(self, other: "Box") -> "Box":
        self._check_rank(other)
        return Box([a.intersect(b) for a, b in zip(self.intervals, other.intervals)])

    def union_hull(self, other: "Box") -> "Box":
        self._check_rank(other)
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        return Box(
            [a.union_hull(b) for a, b in zip(self.intervals, other.intervals)]
        )

    def covers(self, other: "Box") -> bool:
        if other.is_empty():
            return True
        if self.is_empty():
            return False
        return all(
            a.covers(b) for a, b in zip(self.intervals, other.intervals)
        )

    def contains(self, point: Sequence[int]) -> bool:
        return not self.is_empty() and all(
            iv.contains(p) for iv, p in zip(self.intervals, point)
        )

    def grow(self, lo: Sequence[int], hi: Sequence[int]) -> "Box":
        return Box(
            [
                iv.grow(l, h)
                for iv, l, h in zip(self.intervals, lo, hi)
            ]
        )

    def shift(self, offsets: Sequence[int]) -> "Box":
        return Box([iv.shift(o) for iv, o in zip(self.intervals, offsets)])

    def subtract(self, other: "Box") -> list["Box"]:
        """Disjoint decomposition of ``self \\ other``.

        Standard sweep: peel off slabs dimension by dimension outside the
        intersection; the pieces are pairwise disjoint and their union is
        exactly the set difference.
        """
        if self.is_empty():
            return []
        inter = self.intersect(other)
        if inter.is_empty():
            return [self]
        pieces: list[Box] = []
        current = list(self.intervals)
        for d in range(self.ndim):
            for part in current[d].subtract(inter.intervals[d]):
                slab = list(current)
                slab[d] = part
                pieces.append(Box(slab))
            current[d] = inter.intervals[d]
        return [p for p in pieces if not p.is_empty()]

    def subtract_all(self, others: Iterable["Box"]) -> list["Box"]:
        remaining = [self]
        for other in others:
            nxt: list[Box] = []
            for piece in remaining:
                nxt.extend(piece.subtract(other))
            remaining = nxt
        return [p for p in remaining if not p.is_empty()]

    def slices(self, origin: Sequence[int] | None = None) -> tuple[slice, ...]:
        """Numpy slices selecting this box out of an array whose element
        ``origin`` sits at index 0 (defaults to the box's own lower corner
        — useful for scratchpads)."""
        if origin is None:
            origin = self.lower()
        return tuple(
            slice(iv.lb - o, iv.ub - o + 1)
            for iv, o in zip(self.intervals, origin)
        )

    def points(self) -> Iterator[tuple[int, ...]]:
        """Iterate lexicographically over all points (small boxes only)."""
        if self.is_empty():
            return
        def rec(d: int, prefix: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
            if d == self.ndim:
                yield prefix
                return
            for v in self.intervals[d]:
                yield from rec(d + 1, prefix + (v,))
        yield from rec(0, ())

    def _check_rank(self, other: "Box") -> None:
        if self.ndim != other.ndim:
            raise ValueError(
                f"rank mismatch: {self.ndim} vs {other.ndim}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        if self.is_empty() and other.is_empty():
            return True
        return self.intervals == other.intervals

    def __hash__(self) -> int:
        if self.is_empty():
            return hash("empty-box")
        return hash(self.intervals)

    def __repr__(self) -> str:
        return "x".join(repr(iv) for iv in self.intervals)


def box_union_volume(boxes: Sequence[Box]) -> int:
    """Volume of the union of ``boxes`` (inclusion by decomposition)."""
    total = 0
    seen: list[Box] = []
    for box in boxes:
        for piece in box.subtract_all(seen):
            total += piece.volume()
        seen.append(box)
    return total
