"""Scaled affine access relations.

Every read in a GMG pipeline maps a consumer iteration index ``x`` to a
producer index of the form

    floor((num * x + off) / den)

with small positive ``num``/``den`` (1 for plain stencils, ``num=2`` for
restriction-style downsampling, ``den=2`` for interpolation-style
upsampling).  :class:`AccessDim` is a single such map per dimension;
:class:`AccessRange` summarizes *all* reads of one producer by one
consumer along one dimension (same scaling, an inclusive offset window),
which is what dependence-driven overlap computation needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd

from .interval import ConcreteInterval

__all__ = ["AccessDim", "AccessRange", "identity_access"]


@dataclass(frozen=True)
class AccessDim:
    """One-dimensional access map ``x -> floor((num*x + off)/den)``."""

    num: int = 1
    den: int = 1
    off: int = 0

    def __post_init__(self) -> None:
        if self.num <= 0 or self.den <= 0:
            raise ValueError("access scaling must be positive")
        g = gcd(self.num, self.den)
        if g != 1:
            object.__setattr__(self, "num", self.num // g)
            object.__setattr__(self, "den", self.den // g)
            # off is *not* reducible: floor((2x+1)/2) != floor((x+0.5)/1)

    def apply(self, x: int) -> int:
        return (self.num * x + self.off) // self.den

    def image(self, interval: ConcreteInterval) -> ConcreteInterval:
        """Image of an interval (map is monotone non-decreasing)."""
        if interval.is_empty():
            return interval
        return ConcreteInterval(self.apply(interval.lb), self.apply(interval.ub))

    def is_identity(self) -> bool:
        return self.num == 1 and self.den == 1 and self.off == 0

    def scaling(self) -> tuple[int, int]:
        return (self.num, self.den)

    def to_range(self) -> "AccessRange":
        return AccessRange(self.num, self.den, self.off, self.off)


@dataclass(frozen=True)
class AccessRange:
    """All accesses of a producer along one dim: a window of offsets
    ``[omin, omax]`` under a common scaling ``num/den``."""

    num: int = 1
    den: int = 1
    omin: int = 0
    omax: int = 0

    def __post_init__(self) -> None:
        if self.num <= 0 or self.den <= 0:
            raise ValueError("access scaling must be positive")
        if self.omin > self.omax:
            raise ValueError("empty access offset window")

    def union(self, other: "AccessRange") -> "AccessRange":
        """Smallest window covering both; scalings must match."""
        if (self.num, self.den) != (other.num, other.den):
            raise ValueError(
                f"cannot union accesses with scalings "
                f"{self.num}/{self.den} and {other.num}/{other.den}"
            )
        return AccessRange(
            self.num,
            self.den,
            min(self.omin, other.omin),
            max(self.omax, other.omax),
        )

    def image(self, interval: ConcreteInterval) -> ConcreteInterval:
        """Producer footprint of a consumer interval."""
        if interval.is_empty():
            return interval
        lo = (self.num * interval.lb + self.omin) // self.den
        hi = (self.num * interval.ub + self.omax) // self.den
        return ConcreteInterval(lo, hi)

    def scaling(self) -> tuple[int, int]:
        return (self.num, self.den)

    def halo(self) -> int:
        """Width of the offset window (extra points read beyond a single
        aligned point) — the per-step overlap contribution."""
        return self.omax - self.omin

    def __repr__(self) -> str:
        scale = (
            "" if (self.num, self.den) == (1, 1) else f"{self.num}/{self.den}*"
        )
        return f"<{scale}x+[{self.omin},{self.omax}]>"


def identity_access(ndim: int) -> tuple[AccessRange, ...]:
    return tuple(AccessRange() for _ in range(ndim))
