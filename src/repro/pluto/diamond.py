"""Diamond-tile schedule geometry for time-iterated stencils.

This module stands in for libPluto's diamond tiling (Bandishti et al.,
SC'12) for the restricted program class PolyMG feeds it: ``T``
applications of a near-neighbour stencil over a rectangular grid (the
pre-/post-smoothing ``TStencil`` chains).

We generate the classic two-phase concurrent-start decomposition along
the outermost space dimension (remaining dimensions are kept full-width
and vectorized, as practical implementations do):

* **Phase A** — shrinking triangles: base ``[k*w, (k+1)*w - 1]`` at the
  first step, shrinking by one point per side per time step;
* **Phase B** — growing (inverted) triangles between them, executable
  once all phase-A triangles of the slab are done.

Every grid point of every time step is computed exactly once (no
redundant computation, unlike overlapped tiling), all tiles within a
phase are independent (concurrent start), and a slab costs two global
synchronizations.  These are precisely the properties the paper
contrasts against overlapped tiling (Figure 5, Figure 11a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..ir.interval import ConcreteInterval

__all__ = ["DiamondTile", "diamond_schedule", "diamond_stats"]


@dataclass(frozen=True)
class DiamondTile:
    """One triangle of the two-phase decomposition.

    ``steps`` yields, for each time step of the slab the tile covers,
    the interval of outer-dimension grid points it must compute.
    """

    phase: int  # 0 = shrinking (A), 1 = growing (B)
    index: int  # tile position k along the outer dimension
    slab_start: int  # first time step of the slab (1-based)
    slab_height: int
    width: int
    extent: ConcreteInterval  # outer-dimension domain

    def steps(self) -> Iterator[tuple[int, ConcreteInterval]]:
        k, w = self.index, self.width
        for s in range(self.slab_height):
            t = self.slab_start + s
            if self.phase == 0:
                lo = k * w + s
                hi = (k + 1) * w - 1 - s
            else:
                lo = (k + 1) * w - s
                hi = (k + 1) * w + s - 1
            iv = ConcreteInterval(lo, hi).intersect(self.extent)
            if not iv.is_empty():
                yield t, iv


def diamond_schedule(
    timesteps: int,
    extent: ConcreteInterval,
    width: int,
    slab_height: int | None = None,
) -> list[list[DiamondTile]]:
    """The full schedule: a list of *phases*; tiles within a phase are
    mutually independent, phases are separated by barriers.

    ``slab_height`` defaults to ``min(timesteps, width // 2)`` — the
    tallest slab whose shrinking triangles stay non-degenerate.
    """
    if timesteps <= 0:
        return []
    if width < 2:
        raise ValueError("diamond width must be >= 2")
    if slab_height is None:
        slab_height = max(1, min(timesteps, width // 2))
    phases: list[list[DiamondTile]] = []
    t = 1
    while t <= timesteps:
        height = min(slab_height, timesteps - t + 1)
        k_lo = (extent.lb // width) - 1
        k_hi = extent.ub // width + 1
        phase_a = []
        phase_b = []
        for k in range(k_lo, k_hi + 1):
            a = DiamondTile(0, k, t, height, width, extent)
            if any(True for _ in a.steps()):
                phase_a.append(a)
            b = DiamondTile(1, k, t, height, width, extent)
            if any(True for _ in b.steps()):
                phase_b.append(b)
        phases.append(phase_a)
        phases.append(phase_b)
        t += height
    return phases


@dataclass(frozen=True)
class DiamondStats:
    """Schedule statistics consumed by the machine cost model."""

    timesteps: int
    slabs: int
    barriers: int
    tiles: int
    max_concurrency: int
    points: int  # total points computed (== timesteps * extent size)


def diamond_stats(
    timesteps: int,
    extent: ConcreteInterval,
    width: int,
    slab_height: int | None = None,
) -> DiamondStats:
    phases = diamond_schedule(timesteps, extent, width, slab_height)
    tiles = sum(len(p) for p in phases)
    concurrency = max((len(p) for p in phases), default=0)
    return DiamondStats(
        timesteps=timesteps,
        slabs=len(phases) // 2,
        barriers=len(phases),
        tiles=tiles,
        max_concurrency=concurrency,
        points=timesteps * extent.size(),
    )
