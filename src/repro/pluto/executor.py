"""Execution of diamond-tiled smoother chains.

Runs a group consisting solely of consecutive ``TStencil`` steps under
the :mod:`repro.pluto.diamond` schedule, with two full-grid ping-pong
buffers (time-parity addressing): computing step ``t`` over an interval
reads step ``t-1`` values from the other buffer, which the dependence
structure of the two-phase decomposition guarantees are already in
place.

The ``conservative_copies`` flag reproduces the implementation issue the
paper reports for ``polymg-dtile-opt+`` (section 4.2): conservative
assumptions about reusing input/output arrays force extra whole-grid
memory copies around the diamond-tiled segment — we perform those copies
for real and report their byte volume so the cost model can charge them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

from ..backend.evaluate import evaluate_stage
from ..ir.domain import Box
from .diamond import diamond_schedule

if TYPE_CHECKING:  # pragma: no cover
    from ..lang.function import Function
    from ..passes.groups import Group

__all__ = ["execute_smoother_chain", "diamond_width_for"]


def diamond_width_for(extent_size: int, timesteps: int) -> int:
    """Pick a diamond base width: wide enough for non-degenerate slabs
    over all timesteps, narrow enough to produce parallelism."""
    width = max(4, 2 * timesteps)
    # aim for at least ~8 tiles across the extent when possible
    while width > 2 * timesteps and extent_size // width < 8:
        width //= 2
    width = max(width, 2 * min(timesteps, max(1, extent_size // 4)))
    return max(4, min(width, max(4, extent_size)))


def _chain_of(group: "Group") -> list["Function"]:
    stages = list(group.stages)
    t0 = getattr(stages[0], "tstencil", None)
    if t0 is None or not all(
        getattr(s, "tstencil", None) is t0 for s in stages
    ):
        raise ValueError(
            "diamond execution requires a group of same-TStencil steps"
        )
    stages.sort(key=lambda s: s.time_index)  # type: ignore[attr-defined]
    times = [s.time_index for s in stages]  # type: ignore[attr-defined]
    if times != list(range(times[0], times[0] + len(times))):
        raise ValueError("non-contiguous smoother chain")
    return stages


def execute_smoother_chain(
    group: "Group",
    reader: Callable[["Function", Box], np.ndarray],
    bindings: Mapping[str, int],
    conservative_copies: bool = True,
    width: int | None = None,
) -> tuple[np.ndarray, int, int]:
    """Execute the chain; returns ``(result, points_computed,
    copy_bytes)`` where ``result`` holds the final step over the stage
    domain."""
    stages = _chain_of(group)
    timesteps = len(stages)
    first = stages[0]
    domain = first.domain_box(dict(bindings))
    shape = domain.shape()
    npdt = first.dtype.np_dtype

    # previous-step sources: stage[i] reads prev_funcs[i]
    prev_funcs: list["Function"] = []
    tst = stages[0].tstencil  # type: ignore[attr-defined]
    for s in stages:
        prev_funcs.append(tst[s.time_index - 1])  # type: ignore[attr-defined]

    buffers = [
        np.empty(shape, dtype=npdt),
        np.empty(shape, dtype=npdt),
    ]
    copy_bytes = 0
    initial = reader(prev_funcs[0], domain)
    if conservative_copies:
        # conservative input copy (the polymg-dtile-opt+ issue)
        buffers[0][...] = initial
        src0: np.ndarray = buffers[0]
        copy_bytes += buffers[0].nbytes
    else:
        src0 = np.asarray(initial)

    origin = domain.lower()

    def buffer_for(t: int) -> np.ndarray:
        # step t (1-based within the chain) writes buffers[t % 2]
        return buffers[t % 2]

    def source_for(t: int) -> np.ndarray:
        return src0 if t == 1 else buffers[(t - 1) % 2]

    points = 0
    if width is None:
        width = diamond_width_for(domain.intervals[0].size(), timesteps)

    phases = diamond_schedule(timesteps, domain.intervals[0], width)
    for phase in phases:
        for tile in phase:
            for t, interval in tile.steps():
                stage = stages[t - 1]
                prev = prev_funcs[t - 1]
                region = Box([interval] + list(domain.intervals[1:]))
                src = source_for(t)
                dst = buffer_for(t)

                def step_reader(func: "Function", box: Box, _src=src, _prev=prev):
                    if func is _prev:
                        return _src[box.slices(origin=origin)]
                    return reader(func, box)

                points += evaluate_stage(
                    stage, region, step_reader, dst, origin, bindings
                )

    result = buffer_for(timesteps)
    if conservative_copies:
        out = result.copy()
        copy_bytes += out.nbytes
        result = out
    return result, points, copy_bytes
