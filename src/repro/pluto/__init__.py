"""Diamond tiling for time-iterated stencils (libPluto substitute)."""

from .diamond import DiamondTile, diamond_schedule, diamond_stats
from .executor import execute_smoother_chain

__all__ = [
    "DiamondTile",
    "diamond_schedule",
    "diamond_stats",
    "execute_smoother_chain",
]
