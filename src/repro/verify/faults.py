"""Fault injection: deliberately corrupt compiled artifacts.

A verifier that never fires is indistinguishable from one that cannot
fire.  Each injector below plants one member of a known fault class
into a :class:`~repro.backend.executor.CompiledPipeline` **in place**
and returns a :class:`FaultRecord` describing the corruption, so the
tests (``tests/verify/``) can assert that

* the corresponding verifier/sentinel catches the fault, and
* :class:`~repro.backend.guards.GuardedPipeline` degrades gracefully,
  producing the reference answer via its fallback variant.

Fault classes (mirroring the failure modes of the paper's storage and
scheduling transformations):

``slot-swap``      — an intra-group scratchpad slot is reassigned to a
                     stage whose predecessor tenant is still live (the
                     canonical illegal ``remapStorage`` output).
``ghost-shrink``   — a full array's ghost-zone allocation is shrunk by
                     one element, so a tenant no longer fits.
``group-reorder``  — a producer group is scheduled after its consumer.
``nan-poison``     — a scratch buffer is overwritten with NaN during
                     execution (models an out-of-bounds write or a
                     numerically broken kernel).
``nan-poison-once``— the transient flavour: NaN poison on exactly one
                     pipeline invocation, clean before and after
                     (models a single-event upset; the scenario the
                     degradation ladder's demote -> probe -> re-promote
                     path must survive end to end).

A second family targets the *native* tier: the ``native-*`` injectors
do not mutate a compiled pipeline — they transform a
:class:`~repro.config.PolyMgConfig` so the C emitter compiles a real
fault (wild store, infinite loop, ``abort()``) into the shared
object's entry point (see
``repro.backend.codegen_c._Emitter._emit_injected_fault``).  The
faulted artifact loads and validates like a healthy one, then takes
its process down on invocation — exactly the failure class the
sandbox (:mod:`repro.backend.sandbox`) exists to contain.  Because
``native_fault`` is part of the config fingerprint, a faulted
artifact's content hash never collides with the healthy build.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..passes.schedule import PipelineSchedule
from .invariants import _scratch_live_ranges

if TYPE_CHECKING:  # pragma: no cover
    from ..backend.executor import CompiledPipeline

__all__ = [
    "FaultRecord",
    "inject_slot_swap",
    "inject_ghost_shrink",
    "inject_group_reorder",
    "inject_nan_poison",
    "inject_transient_nan_poison",
    "inject_native_segfault",
    "inject_native_spin",
    "inject_native_abort",
    "FAULT_INJECTORS",
    "NATIVE_FAULT_INJECTORS",
]


@dataclass
class FaultRecord:
    """What was corrupted, for test assertions and incident reports."""

    kind: str
    details: dict = field(default_factory=dict)

    def __str__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.details.items())
        return f"{self.kind}({parts})"


def inject_slot_swap(compiled: "CompiledPipeline") -> FaultRecord:
    """Reassign a scratchpad slot so two concurrently-live internal
    stages share it.

    Prefers a pair whose lifetimes overlap strictly (the victim is read
    again after the intruder's write); falls back to a handoff pair
    (intruder is the victim's last consumer), which Algorithm 3's
    strict-release rule equally forbids.
    """
    fallback_site = None
    for gi, group in enumerate(compiled.grouping.groups):
        splan = compiled.storage.scratch.get(gi)
        if splan is None or len(set(splan.buffer_of.values())) < 2:
            continue
        internal = group.internal_stages()
        ranges = _scratch_live_ranges(
            compiled.grouping, compiled.schedule, internal, group
        )
        ordered = sorted(internal, key=lambda s: ranges[s][0])
        for a, b in itertools.combinations(ordered, 2):
            if splan.buffer_of[a] == splan.buffer_of[b]:
                continue
            birth_b = ranges[b][0]
            death_a = ranges[a][1]
            if birth_b > death_a:
                continue
            if birth_b < death_a:
                return _apply_slot_swap(gi, splan, a, b)
            if fallback_site is None:
                fallback_site = (gi, splan, a, b)
    if fallback_site is not None:
        return _apply_slot_swap(*fallback_site)
    raise ValueError(
        "no injectable scratchpad site (pipeline has no group with "
        "two live scratch slots)"
    )


def _apply_slot_swap(gi, splan, a, b) -> FaultRecord:
    old = splan.buffer_of[b]
    splan.buffer_of[b] = splan.buffer_of[a]
    return FaultRecord(
        "slot-swap",
        {
            "group": gi,
            "victim": a.name,
            "intruder": b.name,
            "slot": splan.buffer_of[a],
            "old_slot": old,
        },
    )


def inject_ghost_shrink(compiled: "CompiledPipeline") -> FaultRecord:
    """Shrink one full array's innermost extent by one element, so a
    tenant's ghost zone no longer fits."""
    storage = compiled.storage
    bindings = compiled.bindings
    for stage, aid in sorted(
        storage.array_of.items(), key=lambda kv: kv[0].uid
    ):
        shape = storage.array_shapes[aid]
        need = stage.domain_box(bindings).shape()
        # shrink only where the tenant needs the full extent, so the
        # fault is guaranteed illegal
        if shape[-1] == need[-1] and shape[-1] > 1:
            storage.array_shapes[aid] = shape[:-1] + (shape[-1] - 1,)
            return FaultRecord(
                "ghost-shrink",
                {
                    "array": aid,
                    "stage": stage.name,
                    "old_shape": shape,
                    "new_shape": storage.array_shapes[aid],
                },
            )
    raise ValueError("no injectable full-array site")


def inject_group_reorder(compiled: "CompiledPipeline") -> FaultRecord:
    """Swap a producer group after one of its consumers and rebuild the
    schedule, so the consumer executes before its input exists."""
    grouping = compiled.grouping
    groups = grouping.groups
    for i, group in enumerate(groups):
        for consumer in grouping.consumers_of_group(group):
            j = next(
                k for k, g in enumerate(groups) if g is consumer
            )
            if j <= i:
                continue
            groups[i], groups[j] = groups[j], groups[i]
            # the schedule now follows the corrupted group order
            compiled.schedule = PipelineSchedule(grouping)
            return FaultRecord(
                "group-reorder",
                {
                    "producer": group.anchor.name,
                    "consumer": consumer.anchor.name,
                    "positions": (i, j),
                },
            )
    raise ValueError("no injectable group pair (single-group pipeline)")


def inject_nan_poison(compiled: "CompiledPipeline") -> FaultRecord:
    """Arm a fault hook that overwrites one internal stage's scratch
    buffer with NaN during execution."""
    target = None
    for gi, group in enumerate(compiled.grouping.groups):
        internal = group.internal_stages()
        if internal:
            target = internal[0]
            target_group = gi
            break
    if target is None:
        raise ValueError(
            "no injectable scratch stage (pipeline has no fused group "
            "with internal stages)"
        )

    def poison(stage, out: np.ndarray, _target=target) -> None:
        if stage is _target:
            out.fill(np.nan)

    compiled.fault_injector = poison
    return FaultRecord(
        "nan-poison", {"group": target_group, "stage": target.name}
    )


def inject_transient_nan_poison(
    compiled: "CompiledPipeline", invocation: int = 1
) -> FaultRecord:
    """Arm a *transient* fault: NaN-poison one internal stage's scratch
    buffer during exactly the ``invocation``-th ``execute`` call
    (1-based), leaving every other invocation clean.  This is the
    single-event-upset scenario the degradation ladder must recover
    from without pinning the pipeline to a slow rung."""
    target = None
    for gi, group in enumerate(compiled.grouping.groups):
        internal = group.internal_stages()
        if internal:
            target = internal[0]
            target_group = gi
            break
    if target is None:
        raise ValueError(
            "no injectable scratch stage (pipeline has no fused group "
            "with internal stages)"
        )

    def poison(stage, out: np.ndarray, _target=target) -> None:
        # stats.executions increments at execute() entry, so it equals
        # the 1-based invocation number while the hook runs
        if compiled.stats.executions == invocation and stage is _target:
            out.fill(np.nan)

    compiled.fault_injector = poison
    return FaultRecord(
        "nan-poison-once",
        {
            "group": target_group,
            "stage": target.name,
            "invocation": invocation,
        },
    )


def _inject_native_fault(config, fault: str):
    new_config = config.with_(native_fault=fault)
    return new_config, FaultRecord(
        f"native-{fault}", {"native_fault": fault}
    )


def inject_native_segfault(config):
    """Emit a wild store into the native entry point: the kernel
    SIGSEGVs on its first invocation.  Returns ``(config, record)`` —
    compile with the returned config to build the crashing artifact."""
    return _inject_native_fault(config, "segfault")


def inject_native_spin(config):
    """Emit an infinite loop into the native entry point: the kernel
    never returns and only the sandbox watchdog can reclaim the
    worker.  Returns ``(config, record)``."""
    return _inject_native_fault(config, "spin")


def inject_native_abort(config):
    """Emit ``abort()`` into the native entry point: the kernel kills
    its process with ``SIGABRT``.  Returns ``(config, record)``."""
    return _inject_native_fault(config, "abort")


FAULT_INJECTORS = {
    "slot-swap": inject_slot_swap,
    "ghost-shrink": inject_ghost_shrink,
    "group-reorder": inject_group_reorder,
    "nan-poison": inject_nan_poison,
}

#: config-transforming native crash injectors — separate from
#: :data:`FAULT_INJECTORS` because they take a ``PolyMgConfig`` (and
#: return a new one) instead of mutating a compiled pipeline
NATIVE_FAULT_INJECTORS = {
    "native-segfault": inject_native_segfault,
    "native-spin": inject_native_spin,
    "native-abort": inject_native_abort,
}
