"""Self-checking infrastructure: pass-level verifiers and the
fault-injection harness that proves they fire.

``invariants`` re-derives the legality conditions of the scheduling and
storage passes *independently* of the pass implementations and
cross-checks the compiled artifact against them; ``faults``
deliberately corrupts compiled artifacts so the tests can demonstrate
that every checker catches its fault class.
"""

from .invariants import (
    verify_compiled,
    verify_schedule,
    verify_storage,
    verify_tiling,
)

__all__ = [
    "verify_compiled",
    "verify_schedule",
    "verify_storage",
    "verify_tiling",
]
