"""Pass-level verifiers: every compile phase proves its own invariants.

The storage optimizations (paper Algorithms 2 & 3: scratchpad
remapping, inter-group full-array reuse) are exactly the
transformations that fail *silently* — an illegal remap or a mis-sized
ghost zone corrupts data without crashing.  These verifiers re-derive
the legality conditions **independently** of the pass implementations
and cross-check the compiled artifact:

* :func:`verify_schedule` — every producer group is scheduled strictly
  before its consumer groups; stages within each group are
  topologically ordered and their timestamps match their positions.
* :func:`verify_storage` — liveness is re-derived from the DAG (not
  via :func:`~repro.passes.storage.get_last_use_map`) and every shared
  scratchpad slot / full array is checked for overlapping tenant
  lifetimes; buffer shapes and dtypes must cover every tenant
  (ghost-zone offsets included); pipeline outputs keep exclusive
  arrays; two live-outs of one group never share an array (the
  one-reuse-per-group constraint).
* :func:`verify_tiling` — the overlapped-tile grid partitions the
  anchor domain (``cheap``) and, at ``full`` level, the union of
  per-tile live-out regions is proven to cover each live-out's entire
  domain by exact region enumeration over a coverage mask.

:func:`verify_compiled` runs all of the above on a
:class:`~repro.backend.executor.CompiledPipeline`.  Inside the
compiler the same checks are registered as ordinary interleaved passes
(``verify-schedule``, ``verify-storage``, ``verify-tiling``) by
:func:`repro.passes.manager.default_passes` whenever
``PolyMgConfig.verify_level`` is not ``"off"``, so they run (and are
timed) under the pass manager right after the phase they check.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..config import PolyMgConfig, VERIFY_LEVELS
from ..errors import (
    CompileError,
    ScheduleLegalityError,
    StorageSoundnessError,
    TileCoverageError,
)
from ..ir.domain import Box
from ..ir.interval import ConcreteInterval

if TYPE_CHECKING:  # pragma: no cover
    from ..backend.executor import CompiledPipeline
    from ..lang.function import Function
    from ..passes.grouping import GroupingResult
    from ..passes.schedule import PipelineSchedule
    from ..passes.storage import StoragePlan

__all__ = [
    "verify_schedule",
    "verify_storage",
    "verify_tiling",
    "verify_compiled",
]


def _check_level(level: str) -> str:
    if level not in VERIFY_LEVELS:
        raise CompileError(
            f"unknown verify level {level!r}", expected=VERIFY_LEVELS
        )
    return level


# ---------------------------------------------------------------------------
# (a) schedule legality
# ---------------------------------------------------------------------------


def verify_schedule(
    grouping: "GroupingResult",
    schedule: "PipelineSchedule",
    *,
    pipeline: str | None = None,
) -> None:
    """Prove the schedule legal: producer groups strictly before their
    consumers, stages within each group in topological order with
    timestamps matching their positions."""
    dag = grouping.dag
    for gi, group in enumerate(grouping.groups):
        t = schedule.time_of_group(group)
        for producer_group in grouping.producers_of_group(group):
            tp = schedule.time_of_group(producer_group)
            if tp >= t:
                raise ScheduleLegalityError(
                    "producer group scheduled at or after its consumer",
                    pipeline=pipeline,
                    group=gi,
                    producer_anchor=producer_group.anchor.name,
                    consumer_anchor=group.anchor.name,
                    producer_time=tp,
                    consumer_time=t,
                )
        position = {s: i for i, s in enumerate(group.stages)}
        for stage in group.stages:
            if schedule.time_of_stage(stage) != position[stage]:
                raise ScheduleLegalityError(
                    "stage timestamp disagrees with its group position",
                    pipeline=pipeline,
                    group=gi,
                    stage=stage.name,
                    timestamp=schedule.time_of_stage(stage),
                    position=position[stage],
                )
            for producer in dag.producers_of(stage):
                if producer in position and (
                    position[producer] >= position[stage]
                ):
                    raise ScheduleLegalityError(
                        "stage scheduled before its in-group producer",
                        pipeline=pipeline,
                        group=gi,
                        stage=stage.name,
                        producer=producer.name,
                    )


# ---------------------------------------------------------------------------
# (b) storage soundness
# ---------------------------------------------------------------------------


def _scratch_live_ranges(
    grouping: "GroupingResult",
    schedule: "PipelineSchedule",
    stages: Iterable["Function"],
    group,
) -> dict["Function", tuple[int, int]]:
    """Independent intra-group liveness: [definition, last in-group use]
    per stage, re-derived from the DAG's consumer relation (not from
    ``get_last_use_map``)."""
    dag = grouping.dag
    ranges: dict["Function", tuple[int, int]] = {}
    for stage in stages:
        birth = schedule.time_of_stage(stage)
        death = birth
        for consumer in dag.consumers_of(stage):
            if consumer in group:
                death = max(death, schedule.time_of_stage(consumer))
        ranges[stage] = (birth, death)
    return ranges


def _array_live_ranges(
    grouping: "GroupingResult",
    schedule: "PipelineSchedule",
    stages: Iterable["Function"],
) -> dict["Function", tuple[int, int]]:
    """Independent inter-group liveness at group granularity: a live-out
    is born at its group's time and dies when its last consumer group
    finishes (pipeline outputs never die)."""
    dag = grouping.dag
    horizon = len(grouping.groups)
    ranges: dict["Function", tuple[int, int]] = {}
    for stage in stages:
        birth = schedule.liveout_time(stage)
        death = birth
        for consumer in dag.consumers_of(stage):
            death = max(death, schedule.liveout_time(consumer))
        if dag.is_output(stage):
            death = horizon
        ranges[stage] = (birth, death)
    return ranges


def _check_disjoint_tenancy(
    tenants: dict["Function", tuple[int, int]],
    slot_of: dict["Function", int],
    *,
    what: str,
    pipeline: str | None,
    group: int | None,
) -> None:
    """No slot may host two tenants with overlapping live ranges; a
    successor's birth must come *strictly after* the predecessor's last
    use (Algorithm 3 releases strictly-earlier timestamps only)."""
    by_slot: dict[int, list["Function"]] = {}
    for stage, slot in slot_of.items():
        by_slot.setdefault(slot, []).append(stage)
    for slot, members in by_slot.items():
        members.sort(key=lambda s: (tenants[s][0], s.uid))
        for a, b in itertools.combinations(members, 2):
            birth_a, death_a = tenants[a]
            birth_b, _death_b = tenants[b]
            if birth_b <= death_a:
                raise StorageSoundnessError(
                    f"{what} slot remapped while previous tenant is "
                    "still live",
                    pipeline=pipeline,
                    group=group,
                    slot=slot,
                    tenant=a.name,
                    tenant_live=(birth_a, death_a),
                    intruder=b.name,
                    intruder_birth=birth_b,
                )


def verify_storage(
    grouping: "GroupingResult",
    schedule: "PipelineSchedule",
    storage: "StoragePlan",
    config: PolyMgConfig,
    *,
    pipeline: str | None = None,
) -> None:
    """Cross-check the storage plan against independently re-derived
    liveness, shape, and dtype requirements."""
    dag = grouping.dag
    bindings = dag.param_bindings

    # ----- intra-group scratchpads ------------------------------------
    for gi, group in enumerate(grouping.groups):
        splan = storage.scratch.get(gi)
        if splan is None:
            raise StorageSoundnessError(
                "group has no scratch plan", pipeline=pipeline, group=gi
            )
        internal = group.internal_stages()
        for stage in internal:
            if stage not in splan.buffer_of:
                raise StorageSoundnessError(
                    "internal stage has no scratchpad slot",
                    pipeline=pipeline,
                    group=gi,
                    stage=stage.name,
                )
            buf = splan.buffer_of[stage]
            if splan.buffer_dtypes.get(buf) != stage.dtype.name:
                raise StorageSoundnessError(
                    "scratchpad dtype mismatch",
                    pipeline=pipeline,
                    group=gi,
                    stage=stage.name,
                    slot=buf,
                    stage_dtype=stage.dtype.name,
                    slot_dtype=splan.buffer_dtypes.get(buf),
                )
            need = splan.stage_shapes.get(stage)
            have = splan.buffer_shapes.get(buf)
            if need is None or have is None or len(need) != len(have) or any(
                h < n for h, n in zip(have, need)
            ):
                raise StorageSoundnessError(
                    "scratchpad smaller than its tenant's footprint",
                    pipeline=pipeline,
                    group=gi,
                    stage=stage.name,
                    slot=buf,
                    needed=need,
                    allocated=have,
                )
        ranges = _scratch_live_ranges(grouping, schedule, internal, group)
        _check_disjoint_tenancy(
            ranges,
            {s: splan.buffer_of[s] for s in internal},
            what="scratchpad",
            pipeline=pipeline,
            group=gi,
        )

    # ----- inter-group full arrays ------------------------------------
    liveouts = [s for g in grouping.groups for s in g.live_outs()]
    for stage in liveouts:
        if stage not in storage.array_of:
            raise StorageSoundnessError(
                "live-out has no full array",
                pipeline=pipeline,
                stage=stage.name,
            )
        aid = storage.array_of[stage]
        need = stage.domain_box(bindings).shape()
        have = storage.array_shapes.get(aid)
        if have is None or len(have) != len(need) or any(
            h < n for h, n in zip(have, need)
        ):
            raise StorageSoundnessError(
                "full array does not cover a tenant's domain (ghost "
                "zone shrunk?)",
                pipeline=pipeline,
                stage=stage.name,
                array=aid,
                needed=need,
                allocated=have,
            )
        if storage.array_dtypes.get(aid) != stage.dtype.name:
            raise StorageSoundnessError(
                "full array dtype mismatch",
                pipeline=pipeline,
                stage=stage.name,
                array=aid,
                stage_dtype=stage.dtype.name,
                array_dtype=storage.array_dtypes.get(aid),
            )

    ranges = _array_live_ranges(grouping, schedule, liveouts)
    _check_disjoint_tenancy(
        ranges,
        {s: storage.array_of[s] for s in liveouts},
        what="full-array",
        pipeline=pipeline,
        group=None,
    )

    # pipeline outputs own their arrays exclusively
    for stage in liveouts:
        if not dag.is_output(stage):
            continue
        aid = storage.array_of[stage]
        for other in liveouts:
            if other is not stage and storage.array_of[other] == aid:
                raise StorageSoundnessError(
                    "pipeline output shares its array with another "
                    "live-out",
                    pipeline=pipeline,
                    stage=stage.name,
                    other=other.name,
                    array=aid,
                )


# ---------------------------------------------------------------------------
# (c) tile geometry
# ---------------------------------------------------------------------------


def _anchor_tile_grid(anchor_dom: Box, tile_shape) -> list[Box]:
    """The executor's tile decomposition, re-derived here so the checks
    stay independent of :class:`CompiledPipeline`."""
    per_dim: list[list[ConcreteInterval]] = []
    for iv, t in zip(anchor_dom.intervals, tile_shape):
        dim_tiles = []
        lo = iv.lb
        while lo <= iv.ub:
            hi = min(lo + t - 1, iv.ub)
            dim_tiles.append(ConcreteInterval(lo, hi))
            lo = hi + 1
        per_dim.append(dim_tiles)
    return [Box(combo) for combo in itertools.product(*per_dim)]


def verify_tiling(
    grouping: "GroupingResult",
    config: PolyMgConfig,
    *,
    level: str = "full",
    skip_groups: Iterable[int] = (),
    pipeline: str | None = None,
) -> None:
    """Prove the overlapped-tile decomposition covers every live-out.

    ``cheap``: the anchor-domain tile grid is gap- and overlap-free per
    dimension.  ``full``: additionally enumerate every tile's live-out
    regions into a coverage mask and require every domain point to be
    written at least once.
    """
    _check_level(level)
    if level == "off" or not config.tile:
        return
    skip = set(skip_groups)
    bindings = grouping.dag.param_bindings
    for gi, group in enumerate(grouping.groups):
        if gi in skip or group.size <= 1:
            continue
        anchor_dom = group.anchor.domain_box(bindings)
        tile_shape = config.tile_shape(group.anchor.ndim)
        tiles = _anchor_tile_grid(anchor_dom, tile_shape)

        # cheap: per-dimension partition of the anchor domain
        for d, dom_iv in enumerate(anchor_dom.intervals):
            cursor = dom_iv.lb
            for iv in sorted(
                {t.intervals[d] for t in tiles}, key=lambda i: i.lb
            ):
                if iv.lb != cursor:
                    raise TileCoverageError(
                        "anchor tile grid leaves a gap",
                        pipeline=pipeline,
                        group=gi,
                        dim=d,
                        expected_lb=cursor,
                        found_lb=iv.lb,
                    )
                cursor = iv.ub + 1
            if cursor != dom_iv.ub + 1:
                raise TileCoverageError(
                    "anchor tile grid stops short of the domain edge",
                    pipeline=pipeline,
                    group=gi,
                    dim=d,
                    covered_through=cursor - 1,
                    domain_ub=dom_iv.ub,
                )

        if level != "full":
            continue

        # full: exact live-out coverage by region enumeration
        live = group.live_outs()
        masks = {
            stage: np.zeros(stage.domain_box(bindings).shape(), bool)
            for stage in live
        }
        for tile in tiles:
            regions = group.tile_regions(tile)
            for stage in live:
                region = regions.get(stage)
                if region is None or region.is_empty():
                    continue
                dom = stage.domain_box(bindings)
                clamped = region.intersect(dom)
                if clamped.is_empty():
                    continue
                masks[stage][clamped.slices(origin=dom.lower())] = True
        for stage, mask in masks.items():
            if not mask.all():
                missing = int(mask.size - np.count_nonzero(mask))
                raise TileCoverageError(
                    "overlapped tiles do not cover a live-out's domain",
                    pipeline=pipeline,
                    group=gi,
                    stage=stage.name,
                    uncovered_points=missing,
                )


# ---------------------------------------------------------------------------
# combined entry point
# ---------------------------------------------------------------------------


def verify_compiled(
    compiled: "CompiledPipeline", level: str | None = None
) -> None:
    """Run every verifier against a compiled pipeline.

    ``level`` defaults to the pipeline's own
    ``config.verify_level`` (coerced to at least ``"cheap"`` so an
    explicit call always checks something).
    """
    if level is None:
        level = compiled.config.verify_level
        if level == "off":
            level = "cheap"
    _check_level(level)
    if level == "off":
        return
    name = compiled.dag.name
    verify_schedule(compiled.grouping, compiled.schedule, pipeline=name)
    verify_storage(
        compiled.grouping,
        compiled.schedule,
        compiled.storage,
        compiled.config,
        pipeline=name,
    )
    verify_tiling(
        compiled.grouping,
        compiled.config,
        level=level,
        skip_groups=compiled._diamond_groups,
        pipeline=name,
    )
