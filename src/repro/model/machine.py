"""Machine specification — the paper's evaluation platform (Table 1).

The reproduction substitutes an analytical model of the dual-socket
Intel Xeon E5-2690 v3 (Haswell) system for the physical machine the
paper measured on (see DESIGN.md).  The spec carries the published
hardware parameters plus a small set of calibration constants (streaming
bandwidths, synchronization latencies, allocation costs) whose values
are in the range commonly measured for this platform class.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = ["MachineSpec", "PAPER_MACHINE", "LAPTOP_MACHINE"]


@dataclass(frozen=True)
class MachineSpec:
    """Performance-relevant hardware parameters."""

    name: str
    cores: int
    sockets: int
    freq_hz: float
    #: effective double-precision flops per core-cycle for compiler
    #: vectorized stencil loops (AVX2: 4-wide x add/mul ports, below the
    #: 16/cycle FMA peak which stencils do not reach)
    flops_per_cycle: float
    #: single-thread streaming bandwidth (B/s)
    dram_bw_core: float
    #: saturated all-cores bandwidth (B/s)
    dram_bw_total: float
    l1_per_core: int
    l2_per_core: int
    l3_per_socket: int
    #: streaming bandwidth multiplier when the working set is L3-resident
    l3_bw_factor: float = 3.0
    #: OpenMP parallel-region launch overhead (s)
    parallel_region_s: float = 5e-6
    #: barrier latency scale (s); actual barrier = scale * log2(threads+1)
    barrier_scale_s: float = 1.5e-6
    #: malloc/mmap call overhead for a large allocation (s)
    alloc_base_s: float = 2e-6
    #: first-touch page-fault bandwidth per thread (B/s)
    page_touch_bw_core: float = 3.0e9
    #: cap on aggregate page-fault bandwidth (kernel zeroing saturates)
    page_touch_bw_total: float = 28e9
    #: pooled-allocation table update cost (s)
    pool_hit_s: float = 3e-7
    #: fraction of peak streaming bandwidth achieved by plain
    #: whole-array loop nests (prefetch-friendly, long rows)
    straight_stream_efficiency: float = 0.8
    #: fraction achieved inside overlapped tiles (short rows, scratchpad
    #: interleaving, prefetch disruption at tile boundaries)
    tiled_stream_efficiency: float = 0.65
    #: fraction achieved by diamond-tiled (skewed-bound) loops; in 2-D
    #: the (t, x) skew hits the only vectorizable dimension, while 3-D
    #: diamond tiles keep clean rectangular y/z inner loops — hence the
    #: dimension dependence (this is the 2-D/3-D asymmetry of the
    #: paper's Figure 11a discussion)
    diamond_stream_efficiency_2d: float = 0.30
    diamond_stream_efficiency_3d: float = 0.40
    #: streaming restart overhead at the end of every tile row,
    #: expressed in element-equivalents: a row of L contiguous elements
    #: streams at eff = L / (L + row_overhead_elems); inner tile rows in
    #: 3-D are short, so tiling gains less than in 2-D
    row_overhead_elems: float = 48.0
    #: bandwidth degradation per doubling of resident set beyond L3
    #: (TLB / page-locality pressure)
    tlb_slope: float = 0.015

    # -- derived -----------------------------------------------------------
    @property
    def l3_total(self) -> int:
        return self.l3_per_socket * self.sockets

    def peak_flops(self, threads: int) -> float:
        threads = self._clamp(threads)
        return threads * self.freq_hz * self.flops_per_cycle

    def dram_bw(self, threads: int) -> float:
        threads = self._clamp(threads)
        return min(threads * self.dram_bw_core, self.dram_bw_total)

    def effective_bw(
        self,
        threads: int,
        working_set: int,
        resident_bytes: int | None = None,
    ) -> float:
        """Streaming bandwidth for a working set of the given size,
        degraded by TLB pressure from the total resident footprint."""
        if working_set <= self.l3_total:
            bw = self.dram_bw(threads) * self.l3_bw_factor
        else:
            bw = self.dram_bw(threads)
        if resident_bytes and resident_bytes > self.l3_total:
            doublings = math.log2(resident_bytes / self.l3_total)
            bw /= 1.0 + self.tlb_slope * doublings
        return bw

    def barrier_s(self, threads: int) -> float:
        threads = self._clamp(threads)
        return self.barrier_scale_s * math.log2(threads + 1)

    def diamond_stream_efficiency(self, ndim: int) -> float:
        return (
            self.diamond_stream_efficiency_2d
            if ndim <= 2
            else self.diamond_stream_efficiency_3d
        )

    def row_efficiency(self, row_elems: float) -> float:
        """Streaming efficiency of loops whose contiguous innermost run
        is ``row_elems`` elements long."""
        if row_elems <= 0:
            return 1.0
        return row_elems / (row_elems + self.row_overhead_elems)

    def page_touch_bw(self, threads: int) -> float:
        threads = self._clamp(threads)
        return min(
            threads * self.page_touch_bw_core, self.page_touch_bw_total
        )

    def _clamp(self, threads: int) -> int:
        if threads < 1:
            raise ValueError("thread count must be >= 1")
        return min(threads, self.cores)

    def with_(self, **kwargs) -> "MachineSpec":
        return replace(self, **kwargs)


#: The paper's Table 1 system: 2-socket Xeon E5-2690 v3, 24 cores,
#: 2.6 GHz, L1 64 KB/core, L2 512 KB/core, L3 30 MB/socket, DDR4-2133.
PAPER_MACHINE = MachineSpec(
    name="2x Intel Xeon E5-2690 v3 (Haswell), 24 cores",
    cores=24,
    sockets=2,
    freq_hz=2.6e9,
    flops_per_cycle=8.0,
    dram_bw_core=14e9,
    dram_bw_total=112e9,
    l1_per_core=64 * 1024,
    l2_per_core=512 * 1024,
    l3_per_socket=30720 * 1024,
)

#: A single-core laptop-class spec used by wall-clock sanity checks.
LAPTOP_MACHINE = MachineSpec(
    name="generic 1-core laptop",
    cores=1,
    sockets=1,
    freq_hz=3.0e9,
    flops_per_cycle=8.0,
    dram_bw_core=20e9,
    dram_bw_total=20e9,
    l1_per_core=48 * 1024,
    l2_per_core=1024 * 1024,
    l3_per_socket=8 * 1024 * 1024,
)
