"""Analytic cost model over compiled schedules.

Evaluates a :class:`~repro.backend.executor.CompiledPipeline` — compiled
at *paper scale* (compilation never materializes arrays) — against a
:class:`~repro.model.machine.MachineSpec` with a roofline-plus-overheads
model:

for every group, time = max(compute, memory) + synchronization, where

* **compute** counts the flops of each stage's definition over its exact
  per-tile region volumes (overlapped-tile redundancy included, from the
  same geometry the executor uses),
* **memory** counts DRAM traffic: live-in footprints (halo redundancy
  included), live-out writes with write-allocate, and scratchpad spill
  beyond the per-core L2 (which the intra-group reuse pass shrinks),
  through a bandwidth degraded by total resident footprint (which the
  inter-group reuse pass shrinks) and boosted for L3-resident working
  sets,
* **synchronization** charges one parallel region + barrier per group
  (per stage when unfused), and the two-barriers-per-slab cost of
  diamond-tiled smoother chains,
* **allocation** charges malloc + first-touch page faults for fresh
  full-array allocations and a table update for pooled hits, using the
  storage plan's actual allocation counts.

The absolute times are a model; the *relativities* that the paper's
figures are built from (fusion removes intermediate traffic, storage
reuse removes spill and allocation, diamond vs overlapped crossover with
smoothing depth and dimensionality) all derive from real schedule
artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..ir.domain import Box
from ..lang.expr import count_flops
from ..pluto.diamond import diamond_stats
from ..pluto.executor import diamond_width_for
from .machine import MachineSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..backend.executor import CompiledPipeline
    from ..lang.function import Function
    from ..passes.groups import Group

__all__ = [
    "CostBreakdown",
    "GroupCost",
    "PipelineCostModel",
    "NATIVE_DISPATCH_OVERHEAD_S",
]

#: Per-invocation overhead of crossing the Python → shared-object
#: boundary on the native tiers: ctypes marshalling of the buffer
#: descriptors, the module lock, output allocation, and the Python-side
#: residual-norm bookkeeping between cycles.  Measured at a few tens of
#: microseconds on commodity hardware; the exact value matters less
#: than its *presence* — it is what makes the roofline predictor rank
#: the whole-solve driver (one crossing per ``driver_hook_cycles``
#: burst) above per-cycle native dispatch on small grids, where a cycle
#: itself costs comparably little.
NATIVE_DISPATCH_OVERHEAD_S = 5e-5


@dataclass
class CostBreakdown:
    compute_s: float = 0.0
    memory_s: float = 0.0
    sync_s: float = 0.0
    alloc_s: float = 0.0
    copy_s: float = 0.0

    def total(self) -> float:
        return (
            self.compute_s
            + self.memory_s
            + self.sync_s
            + self.alloc_s
            + self.copy_s
        )

    def add(self, other: "CostBreakdown") -> None:
        self.compute_s += other.compute_s
        self.memory_s += other.memory_s
        self.sync_s += other.sync_s
        self.alloc_s += other.alloc_s
        self.copy_s += other.copy_s


@dataclass
class GroupCost:
    name: str
    style: str  # "straight" | "tiled" | "diamond"
    flops: float
    traffic_bytes: float
    time_s: float
    sync_s: float


def _stage_flops_per_point(stage: "Function") -> float:
    exprs = stage.defn_exprs()
    if not exprs:
        return 0.0
    from ..lang.sampling import Interp

    if isinstance(stage, Interp):
        return sum(count_flops(e) for e in exprs) / len(exprs)
    return float(max(count_flops(e) for e in exprs))


class PipelineCostModel:
    """Cost evaluation of one compiled pipeline on one machine."""

    def __init__(
        self, compiled: "CompiledPipeline", machine: MachineSpec
    ) -> None:
        self.compiled = compiled
        self.machine = machine
        self.bindings = compiled.bindings
        self._fpp: dict["Function", float] = {}

    # ------------------------------------------------------------------
    def flops_per_point(self, stage: "Function") -> float:
        if stage not in self._fpp:
            self._fpp[stage] = _stage_flops_per_point(stage)
        return self._fpp[stage]

    def resident_bytes(self) -> int:
        storage = self.compiled.storage
        inputs = sum(
            g.domain_box(self.bindings).volume() * g.dtype.size_bytes
            for g in self.compiled.dag.inputs
        )
        return storage.full_array_bytes_with_reuse + inputs

    # ------------------------------------------------------------------
    # per-group costs
    # ------------------------------------------------------------------
    def _rep_tile(self, group: "Group") -> Box:
        dom = group.anchor.domain_box(self.bindings)
        shape = self.compiled.config.tile_shape(group.anchor.ndim)
        return Box.from_bounds(
            [
                (iv.lb, min(iv.ub, iv.lb + t - 1))
                for iv, t in zip(dom.intervals, shape)
            ]
        )

    def _tile_count(self, group: "Group") -> int:
        dom = group.anchor.domain_box(self.bindings)
        shape = self.compiled.config.tile_shape(group.anchor.ndim)
        n = 1
        for iv, t in zip(dom.intervals, shape):
            n *= -(-iv.size() // t)
        return n

    def _group_working_set(self, group: "Group") -> int:
        """Bytes of full arrays the group streams (live-ins from outside
        the group plus its live-outs)."""
        dag = self.compiled.dag
        seen: set[int] = set()
        total = 0
        for stage in group.stages:
            for producer in dag.producers_of(stage):
                if producer in group or producer.uid in seen:
                    continue
                seen.add(producer.uid)
                total += (
                    producer.domain_box(self.bindings).volume()
                    * producer.dtype.size_bytes
                )
        for out in group.live_outs():
            total += (
                out.domain_box(self.bindings).volume()
                * out.dtype.size_bytes
            )
        return total

    def _cost_straight(self, group: "Group", threads: int) -> GroupCost:
        m = self.machine
        dag = self.compiled.dag
        flops = 0.0
        traffic = 0.0
        sync = 0.0
        for stage in group.stages:
            dom = stage.domain_box(self.bindings)
            vol = dom.volume()
            flops += vol * self.flops_per_point(stage)
            for producer, acc in dag.accesses_of(stage).items():
                fp = acc.footprint(dom).intersect(
                    producer.domain_box(self.bindings)
                )
                traffic += fp.volume() * producer.dtype.size_bytes
            traffic += 2 * vol * stage.dtype.size_bytes  # write-allocate
            sync += m.parallel_region_s + m.barrier_s(threads)
        bw = (
            m.effective_bw(
                threads,
                self._group_working_set(group),
                self.resident_bytes(),
            )
            * m.straight_stream_efficiency
        )
        time = max(flops / m.peak_flops(threads), traffic / bw) + sync
        return GroupCost(
            group.anchor.name, "straight", flops, traffic, time, sync
        )

    def _cost_tiled(self, group: "Group", threads: int) -> GroupCost:
        m = self.machine
        dag = self.compiled.dag
        tile = self._rep_tile(group)
        n_tiles = self._tile_count(group)
        regions = group.tile_regions(tile)
        live = set(group.live_outs())

        flops = 0.0
        traffic = 0.0
        scratch_by_buffer: dict[int, int] = {}
        gi = self.compiled.grouping.groups.index(group)
        splan = self.compiled.storage.group_scratch(gi)

        # live-in reads from outside the group: one streamed footprint
        # per producer per tile (the tile's halo region stays cached
        # across all fused stages that read it), with the overlap-zone
        # redundancy across tiles included
        live_in_fp: dict["Function", Box] = {}
        for stage in group.stages:
            region = regions.get(stage)
            if region is None or region.is_empty():
                continue
            r_vol = region.volume()
            flops += r_vol * self.flops_per_point(stage) * n_tiles
            for producer, acc in dag.accesses_of(stage).items():
                if producer in group:
                    continue
                fp = acc.footprint(region).intersect(
                    producer.domain_box(self.bindings)
                )
                if producer in live_in_fp:
                    fp = fp.union_hull(live_in_fp[producer])
                live_in_fp[producer] = fp
            if stage in live:
                traffic += 2 * r_vol * stage.dtype.size_bytes * n_tiles
            else:
                bid = splan.buffer_of.get(stage)
                if bid is not None:
                    bytes_ = r_vol * stage.dtype.size_bytes
                    scratch_by_buffer[bid] = max(
                        scratch_by_buffer.get(bid, 0), bytes_
                    )

        for producer, fp in live_in_fp.items():
            traffic += fp.volume() * producer.dtype.size_bytes * n_tiles

        # Rolling-window spill: a fused stencil chain streams through
        # the tile along the outermost dimension, so the cache-resident
        # working set is ~3 planes per scratch buffer, not the whole
        # tile.  When that window exceeds L2 the overflow fraction of
        # all scratch traffic bounces through the socket L3 — this is
        # what makes deep fused chains (large halos -> large planes)
        # stop paying off, the depth crossover of Figure 11a.
        scratch_tile = sum(scratch_by_buffer.values())
        window = 0
        for stage in group.internal_stages():
            region = regions.get(stage)
            if region is None or region.is_empty():
                continue
            plane = stage.dtype.size_bytes
            for iv in region.intervals[1:]:
                plane *= iv.size()
            window += 3 * plane
        frac = max(0.0, 1.0 - m.l2_per_core / window) if window else 0.0
        spill_traffic = 2 * scratch_tile * frac * n_tiles

        eff_threads = max(1, min(threads, n_tiles))
        inner_row = tile.intervals[-1].size()
        bw = (
            m.effective_bw(
                eff_threads,
                self._group_working_set(group),
                self.resident_bytes(),
            )
            * m.tiled_stream_efficiency
            * m.row_efficiency(inner_row)
        )
        sync = m.parallel_region_s + m.barrier_s(threads)
        mem_s = traffic / bw + spill_traffic / (bw * m.l3_bw_factor)
        time = max(flops / m.peak_flops(eff_threads), mem_s) + sync
        return GroupCost(
            group.anchor.name,
            "tiled",
            flops,
            traffic + spill_traffic,
            time,
            sync,
        )

    def _cost_diamond(self, group: "Group", threads: int) -> GroupCost:
        m = self.machine
        first = group.stages[0]
        dom = first.domain_box(self.bindings)
        timesteps = group.size
        vol = dom.volume()
        width = diamond_width_for(dom.intervals[0].size(), timesteps)
        # diamond tiles must fit in cache like overlapped tiles do: two
        # time-parity buffers of (width x inner-tile) elements within L2
        # bound the usable width, and slab height is width/2 — deep
        # smoothing chains therefore need multiple slabs (and passes
        # over the grid) in 3-D, which is where overlapped tiling's
        # redundant compute trades against diamond's extra passes
        inner_shape = self.compiled.config.tile_shape(first.ndim)
        inner_elems = 1
        for t in inner_shape[1:]:
            inner_elems *= t
        itemsize0 = first.dtype.size_bytes
        max_width = max(
            4, m.l2_per_core // max(1, 2 * inner_elems * itemsize0)
        )
        width = min(width, max_width)
        stats = diamond_stats(timesteps, dom.intervals[0], width)

        flops = timesteps * vol * self.flops_per_point(first)
        slabs = max(1, stats.slabs)
        itemsize = first.dtype.size_bytes
        # per slab: stream u in, f in, u out (+ write allocate)
        traffic = slabs * vol * itemsize * 4.0
        # per-step halo traffic at tile faces: diamond tiles are sized to
        # fit cache (width along the diamond dim, the configured tile
        # sizes along the inner dims); every time step re-reads one halo
        # layer per face, so the surface-to-volume ratio — which grows
        # with dimensionality — erodes diamond's traffic advantage
        # (this is the 2-D-vs-3-D asymmetry of Figure 11a)
        inner = self.compiled.config.tile_shape(first.ndim)
        halo_frac = 2.0 / width + sum(2.0 / t for t in inner[1:])
        traffic += timesteps * vol * itemsize * halo_frac

        copy_traffic = 0.0
        if self.compiled.config.dtile_conservative_copies and group in [
            self.compiled.grouping.groups[i]
            for i in self.compiled._diamond_groups
        ]:
            copy_traffic = 4.0 * vol * itemsize  # in-copy + out-copy

        eff_threads = max(1, min(threads, stats.max_concurrency))
        bw = (
            m.effective_bw(
                eff_threads,
                self._group_working_set(group),
                self.resident_bytes(),
            )
            * m.diamond_stream_efficiency(first.ndim)
        )
        sync = stats.barriers * (
            m.parallel_region_s + m.barrier_s(threads)
        )
        time = (
            max(flops / m.peak_flops(eff_threads), traffic / bw)
            + copy_traffic / m.dram_bw(threads)
            + sync
        )
        cost = GroupCost(
            group.anchor.name,
            "diamond",
            flops,
            traffic + copy_traffic,
            time,
            sync,
        )
        return cost

    # ------------------------------------------------------------------
    # pipeline-level costs
    # ------------------------------------------------------------------
    def group_costs(self, threads: int) -> list[GroupCost]:
        out = []
        cfg = self.compiled.config
        for gi, group in enumerate(self.compiled.grouping.groups):
            if gi in self.compiled._diamond_groups:
                out.append(self._cost_diamond(group, threads))
            elif cfg.tile and group.size > 1:
                out.append(self._cost_tiled(group, threads))
            else:
                out.append(self._cost_straight(group, threads))
        return out

    def alloc_cost(self, threads: int, steady: bool) -> float:
        """Per-cycle allocation cost; ``steady`` = pool warm."""
        m = self.machine
        storage = self.compiled.storage
        cfg = self.compiled.config
        total = 0.0
        page_bw = m.page_touch_bw(threads)
        for aid, shape in storage.array_shapes.items():
            nbytes = 1
            for s in shape:
                nbytes *= s
            from ..lang.types import dtype_of

            nbytes *= dtype_of(storage.array_dtypes[aid]).size_bytes
            # Figure 8 allocates the live-out (the pipeline output W)
            # from the pool too; only *reuse* excludes inputs/outputs
            fresh = m.alloc_base_s + nbytes / page_bw
            if cfg.pooled_allocation:
                total += m.pool_hit_s if steady else fresh
            else:
                total += fresh
        return total

    def cycle_breakdown(
        self, threads: int, steady: bool = True
    ) -> CostBreakdown:
        m = self.machine
        bd = CostBreakdown()
        for cost in self.group_costs(threads):
            mem_flop = cost.time_s - cost.sync_s
            # attribute roofline time to its binding resource
            if cost.flops / m.peak_flops(threads) >= cost.traffic_bytes / max(
                m.dram_bw(threads), 1.0
            ):
                bd.compute_s += mem_flop
            else:
                bd.memory_s += mem_flop
            bd.sync_s += cost.sync_s
        bd.alloc_s += self.alloc_cost(threads, steady)
        return bd

    def cycle_time(self, threads: int, steady: bool = True) -> float:
        return self.cycle_breakdown(threads, steady).total()

    def run_time(self, threads: int, cycles: int) -> float:
        """Time for ``cycles`` pipeline invocations (first cycle pays
        cold allocation)."""
        if cycles <= 0:
            return 0.0
        first = self.cycle_time(threads, steady=False)
        if cycles == 1:
            return first
        return first + (cycles - 1) * self.cycle_time(threads, steady=True)
