"""Machine and cost model: the Table-1 Xeon spec and the analytic
schedule evaluator that regenerates the paper's figures at paper scale
(see DESIGN.md for the hardware-substitution rationale)."""

from .costs import CostBreakdown, GroupCost, PipelineCostModel
from .machine import LAPTOP_MACHINE, PAPER_MACHINE, MachineSpec

__all__ = [
    "CostBreakdown",
    "GroupCost",
    "PipelineCostModel",
    "MachineSpec",
    "PAPER_MACHINE",
    "LAPTOP_MACHINE",
]
