"""Figure 11a — smoother-only comparison, overlapped vs diamond tiling.

Regenerates the paper's Jacobi-smoother-only study on the 3-D class C
grid (512^3) with 4 and 10 smoothing steps: overlapped tiling with
local buffers (polymg-opt+, tuned) against Pluto-style diamond tiling.
Paper shape: overlapped slightly better at 4 steps, diamond better at
10 steps; in 2-D overlapped always wins.

Wall-clock: both executors run the same laptop-scale smoother chain and
are verified bit-equal.
"""

from __future__ import annotations

import io

import numpy as np

from conftest import write_result
from repro.bench import SMALL_TILES
from repro.model import PAPER_MACHINE, PipelineCostModel
from repro.multigrid.cycles import build_smoother_chain
from repro.tuning import autotune_model
from repro.variants import (
    handopt_pluto_model,
    polymg_dtile_opt_plus,
    polymg_opt_plus,
)

CASES = [
    (3, 512, 4),
    (3, 512, 10),
    (2, 8192, 4),
    (2, 8192, 10),
]


def _model_rows():
    rows = []
    for ndim, n, steps in CASES:
        pipe = build_smoother_chain(ndim, n, steps)
        tuned = autotune_model(
            pipe, polymg_opt_plus(), PAPER_MACHINE, threads=24, cycles=10
        )
        diamond = PipelineCostModel(
            pipe.compile(handopt_pluto_model()), PAPER_MACHINE
        ).run_time(24, 10)
        rows.append((ndim, n, steps, tuned.best.score, diamond))
    return rows


def test_fig11a_smoother_comparison(benchmark, rng):
    # wall-clock: overlapped vs diamond executors at laptop scale
    n, steps = 64, 4
    pipe = build_smoother_chain(2, n, steps)
    over = pipe.compile(polymg_opt_plus(tile_sizes=SMALL_TILES))
    dia = pipe.compile(polymg_dtile_opt_plus(tile_sizes=SMALL_TILES))
    f = np.zeros((n + 2, n + 2))
    f[1:-1, 1:-1] = rng.standard_normal((n, n))
    v = rng.standard_normal((n + 2, n + 2))
    inputs = pipe.make_inputs(v, f)
    benchmark(lambda: over.execute(inputs))
    assert np.array_equal(
        over.execute(inputs)[pipe.output.name],
        dia.execute(inputs)[pipe.output.name],
    )
    assert dia.stats.diamond_segments > 0

    rows = _model_rows()
    out = io.StringIO()
    out.write(
        "Figure 11a: smoother-only, overlapped (tuned opt+) vs diamond "
        "(Pluto), 10 sweeps of the chain (model)\n"
    )
    out.write(
        f"{'grid':>12s} {'steps':>6s} {'overlapped(s)':>14s} "
        f"{'diamond(s)':>11s} {'winner':>11s}\n"
    )
    winners = {}
    for ndim, n_, steps_, t_over, t_dia in rows:
        winner = "overlapped" if t_over < t_dia else "diamond"
        winners[(ndim, steps_)] = winner
        out.write(
            f"{f'{ndim}D {n_}':>12s} {steps_:6d} {t_over:14.3f} "
            f"{t_dia:11.3f} {winner:>11s}\n"
        )
    out.write(
        "paper: overlapped slightly better at 4 steps (3-D), diamond "
        "better at 10 steps; 2-D overlapped always better\n"
    )
    write_result("fig11a_smoother", out.getvalue())

    assert winners[(3, 4)] == "overlapped"
    assert winners[(3, 10)] == "diamond"
    assert winners[(2, 4)] == "overlapped"
    assert winners[(2, 10)] == "overlapped"
