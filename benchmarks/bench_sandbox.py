"""PR 8 benchmark: crash/hang isolation for the native tier.

Drives the sandboxed out-of-process native executor through three
scenarios and emits ``BENCH_PR8.json`` at the repository root:

* **overhead** — the same native pipeline executed in-process
  (``native_isolation="none"``) vs sandboxed, on a medium grid; the
  gate is **sandboxed p50 <= 1.30x in-process p50** per cycle;
* **chaos** — a :class:`repro.service.SolveService` soak where ~5% of
  requests are pinned (via the fault hook) to a native artifact
  compiled with an injected segfault/abort/spin; gates: **zero
  service deaths** (drain completes, every worker still standing),
  **zero lost requests**, **zero incorrect results**, at least one
  typed ``crash-isolated`` incident, and at least one circuit-breaker
  demotion fed by a sandbox crash;
* **quarantine** — a crashing artifact is executed
  ``REPRO_NATIVE_QUARANTINE_AFTER`` times; the store must latch its
  verdict and refuse to rebuild/reload it afterwards.

Without a C toolchain every scenario is skipped and the bench exits 0,
so it is safe on minimal hosts.  Run directly::

    PYTHONPATH=src python benchmarks/bench_sandbox.py           # full
    PYTHONPATH=src python benchmarks/bench_sandbox.py --small   # CI
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import sys
import tempfile
import time

import numpy as np

from repro.backend.native import discover_compiler
from repro.backend.sandbox import reset_sandbox_pool, sandbox_state
from repro.cache import native_artifact_store, quarantine_threshold
from repro.compiler import compile_pipeline
from repro.errors import AdmissionRejected, ReproError
from repro.multigrid.cycles import build_poisson_cycle
from repro.multigrid.kernels import norm_residual
from repro.multigrid.reference import MultigridOptions
from repro.service import (
    ServiceConfig,
    SolveRequest,
    SolveService,
    TenantPolicy,
)
from repro.variants import LADDER_ORDER, polymg_native

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

NATIVE_RUNG = LADDER_ORDER[0]
OPTS = MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)
# the overhead gate is defined over a realistic medium workload: the
# same V(4,4)/4-level cycle the service bench drives, where the fixed
# per-job round-trip (pipe + two context switches) amortizes over real
# kernel time instead of dominating a toy cycle
OVERHEAD_OPTS = MultigridOptions(
    cycle="V", n1=4, n2=4, n3=4, levels=4, omega=0.8
)
TILES = {2: (8, 16)}
OVERHEAD_GATE = 1.30
CHAOS_KINDS = ("segfault", "abort", "spin")


def _pipe(n, opts=OPTS):
    return build_poisson_cycle(2, n, opts)


def _inputs(pipe, n, seed=20170712):
    rng = np.random.default_rng(seed)
    shape = (n + 2, n + 2)
    return pipe.make_inputs(
        rng.standard_normal(shape), rng.standard_normal(shape)
    )


def _compile_native(pipe, **overrides):
    cfg = polymg_native(
        tile_sizes=dict(TILES), num_threads=1, **overrides
    )
    return compile_pipeline(
        pipe.output, pipe.params, cfg, name=pipe.name, cache=False
    )


# ---------------------------------------------------------------------------
# overhead: sandboxed vs in-process p50 per cycle
# ---------------------------------------------------------------------------


def _time_executes(compiled, pipe, inputs, reps):
    times = []
    for _ in range(2):  # warm: JIT join, worker spawn, shm growth
        compiled.execute(dict(inputs))
    for _ in range(reps):
        t0 = time.perf_counter()
        compiled.execute(dict(inputs))
        times.append(time.perf_counter() - t0)
    return float(np.percentile(np.asarray(times), 50))


def overhead_scenario(small: bool) -> dict:
    n = 64  # the gate is defined over medium grids; --small cuts reps
    reps = 10 if small else 30
    pipe = _pipe(n, OVERHEAD_OPTS)
    inputs = _inputs(pipe, n)

    inproc = _compile_native(pipe, native_isolation="none")
    if inproc.ensure_native() is None:
        return {"scenario": "overhead", "skipped": "native build failed"}
    sandboxed = _compile_native(pipe, native_isolation="sandbox")
    if sandboxed.ensure_native() is None:
        return {"scenario": "overhead", "skipped": "sandbox build failed"}

    p50_in = _time_executes(inproc, pipe, inputs, reps)
    p50_sb = _time_executes(sandboxed, pipe, inputs, reps)
    ratio = p50_sb / p50_in if p50_in > 0 else float("inf")
    return {
        "scenario": "overhead",
        "grid": f"2d-{n}",
        "reps": reps,
        "inprocess_p50_s": round(p50_in, 6),
        "sandboxed_p50_s": round(p50_sb, 6),
        "ratio": round(ratio, 3),
        "gate": OVERHEAD_GATE,
        "sandbox": sandbox_state(),
    }


# ---------------------------------------------------------------------------
# chaos: service soak with ~5% poisoned-artifact requests
# ---------------------------------------------------------------------------


def _verify_completed(tickets) -> int:
    """Re-verify every completed solve from scratch; returns the count
    of *incorrect* results (must be zero)."""
    bad = 0
    for ticket in tickets:
        if ticket.error is not None or not ticket.done():
            continue
        result = ticket.result(timeout=0)
        request = ticket.request
        h = 1.0 / (request.N + 1)
        check = norm_residual(result.u, request.f, h)
        reported = result.residual_norms[-1]
        if not np.isfinite(check) or abs(check - reported) > 1e-8 * max(
            1.0, reported
        ):
            bad += 1
    return bad


def _accounting(service, submitted, refused) -> dict:
    resolved = service.completed + service.failed + service.shed
    return {
        "submitted": submitted,
        "typed_refusals": refused,
        "completed": service.completed,
        "failed": service.failed,
        "shed": service.shed,
        "preempted": service.preempted,
        "lost": submitted - resolved - refused,
    }


def chaos_scenario(rng, small: bool, sink=None) -> dict:
    count = 60 if small else 160
    n = 32
    # ~5% of requests pinned to a poisoned artifact, kinds rotating
    schedule = {
        f"chaos-{i}": CHAOS_KINDS[j % len(CHAOS_KINDS)]
        for j, i in enumerate(range(8, count, 20))
    }

    def fault_hook(supervisor, request):
        kind = schedule.get(request.request_id)
        if kind is None:
            return
        supervisor.resilient.config_overrides["native_fault"] = kind
        try:
            # join the poisoned JIT build so the crash is armed before
            # the solve starts (instead of racing the background build)
            compiled = supervisor.resilient.compiled_for(NATIVE_RUNG)
            compiled.ensure_native()
        except (ReproError, ValueError, KeyError):
            pass  # demoted/quarantined right now: fine, it's chaos

    service = SolveService(
        ServiceConfig(
            workers=2,
            queue_capacity=count,
            incident_capacity=1024,
            config_overrides={
                "tile_sizes": dict(TILES), "num_threads": 1
            },
            default_tenant_policy=TenantPolicy(
                rate=None, max_concurrent=count
            ),
            fault_hook=fault_hook,
        )
    )
    pid_before = os.getpid()
    tickets = []
    refused = 0
    t0 = time.monotonic()
    for i in range(count):
        f = np.zeros((n + 2, n + 2))
        f[1:-1, 1:-1] = rng.standard_normal((n, n))
        request = SolveRequest(
            tenant=("alpha", "beta")[i % 2],
            ndim=2,
            N=n,
            f=f,
            opts=OPTS,
            max_cycles=4,
            request_id=f"chaos-{i}",
        )
        try:
            tickets.append(service.submit(request))
        except AdmissionRejected:
            refused += 1
    for ticket in tickets:
        ticket.wait(timeout=600)
    elapsed = time.monotonic() - t0
    incorrect = _verify_completed(tickets)
    accounting = _accounting(service, count, refused)
    health = service.healthz()
    crash_isolated = sum(
        1
        for r in service.log.records
        if r.kind == "fault" and r.action == "crash-isolated"
    )
    demotions = sum(
        1 for r in service.log.records if r.kind == "demote"
    )
    summary = service.drain(timeout=60)
    if sink is not None:
        sink.append(("chaos", service.log))
    return {
        "scenario": "chaos",
        "requests": count,
        "poisoned": len(schedule),
        "elapsed_s": round(elapsed, 3),
        "incorrect_solves": incorrect,
        "accounting": accounting,
        "crash_isolated_incidents": crash_isolated,
        "demotions": demotions,
        "sandbox": health["sandbox"],
        "workers_alive": health["workers"],
        "pid_stable": os.getpid() == pid_before,
        "drain": {"status": summary["status"]},
    }


# ---------------------------------------------------------------------------
# quarantine: N crashes latch the artifact's verdict for good
# ---------------------------------------------------------------------------


def quarantine_scenario() -> dict:
    n = 16  # distinct spec => distinct artifact key from the chaos run
    threshold = quarantine_threshold()
    pipe = _pipe(n)
    inputs = _inputs(pipe, n)
    crashes = 0
    for _ in range(threshold):
        compiled = _compile_native(
            pipe, native_isolation="sandbox", native_fault="segfault"
        )
        if compiled.ensure_native() is None:
            break  # already quarantined (or build failed): stop early
        compiled.execute(dict(inputs))  # crash -> contained -> fallback
        if compiled.consume_native_fault() is not None:
            crashes += 1
    fresh = _compile_native(
        pipe, native_isolation="sandbox", native_fault="segfault"
    )
    refused = fresh.ensure_native() is None
    pending = fresh.consume_native_fault()
    store = native_artifact_store()
    return {
        "scenario": "quarantine",
        "threshold": threshold,
        "crashes": crashes,
        "quarantined_keys": len(store.quarantined_keys()),
        "rebuild_refused": refused,
        "refusal_error": type(pending).__name__ if pending else None,
    }


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true")
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_PR8.json")
    )
    parser.add_argument(
        "--incident-log",
        default=None,
        help="also dump the chaos incident trail here",
    )
    args = parser.parse_args(argv)

    results = {"bench": "sandbox", "small": args.small}
    out = pathlib.Path(args.out)
    if discover_compiler() is None:
        results["skipped"] = "no C toolchain on PATH (cc/gcc/clang)"
        out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {out} (skipped: no toolchain)")
        return 0

    # scratch artifact store: the quarantine verdicts this bench plants
    # must never leak into the real on-disk cache
    scratch = tempfile.mkdtemp(prefix="bench-sandbox-")
    os.environ["REPRO_NATIVE_CACHE_DIR"] = scratch
    # bound injected spins: the watchdog hard-kills after 2s
    os.environ.setdefault("REPRO_SANDBOX_TIMEOUT", "2")
    os.environ.setdefault("REPRO_SANDBOX_WORKERS", "2")

    rng = np.random.default_rng(20170712)
    logs: list[tuple[str, object]] = []
    try:
        print("== overhead scenario ==")
        results["overhead"] = overhead_scenario(args.small)
        print(json.dumps(results["overhead"], indent=2))

        print("== chaos scenario ==")
        results["chaos"] = chaos_scenario(rng, args.small, logs)
        print(json.dumps(results["chaos"], indent=2))

        print("== quarantine scenario ==")
        results["quarantine"] = quarantine_scenario()
        print(json.dumps(results["quarantine"], indent=2))
    finally:
        reset_sandbox_pool()
        os.environ.pop("REPRO_NATIVE_CACHE_DIR", None)
        shutil.rmtree(scratch, ignore_errors=True)

    if args.incident_log:
        records = []
        for name, log in logs:
            ring = log.ring_stats()
            if ring["dropped"]:
                records.append(
                    {"scenario": name, "kind": "ring-stats", **ring}
                )
            records.extend(
                {"scenario": name, **rec} for rec in log.to_dicts()
            )
        path = pathlib.Path(args.incident_log)
        path.write_text(json.dumps(records, indent=2) + "\n")
        print(f"wrote {path} ({len(records)} records)")

    failures = []
    overhead = results["overhead"]
    if "skipped" in overhead:
        failures.append(f"overhead: {overhead['skipped']}")
    elif overhead["ratio"] > OVERHEAD_GATE:
        failures.append(
            f"overhead: sandboxed p50 {overhead['ratio']}x in-process "
            f"(gate {OVERHEAD_GATE}x)"
        )
    chaos = results["chaos"]
    if chaos["drain"]["status"] != "drained":
        failures.append("chaos: drain did not complete")
    if not chaos["pid_stable"]:
        failures.append("chaos: service process died")
    if chaos["accounting"]["lost"] != 0:
        failures.append("chaos: lost requests")
    if chaos["incorrect_solves"] != 0:
        failures.append("chaos: incorrect solves")
    if chaos["crash_isolated_incidents"] < 1:
        failures.append("chaos: no crash-isolated incidents")
    if chaos["demotions"] < 1:
        failures.append("chaos: no breaker demotions")
    quarantine = results["quarantine"]
    if quarantine["quarantined_keys"] < 1:
        failures.append("quarantine: verdict never latched")
    if not quarantine["rebuild_refused"]:
        failures.append("quarantine: artifact reloaded after verdict")

    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("sandbox bench gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
