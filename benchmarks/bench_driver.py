"""PR 9 benchmark: whole-solve native driver vs per-cycle native
dispatch.

Measures wall-clock *cycle throughput* for Poisson V-cycle workloads
executed two ways over the same JIT-compiled shared object:

* **per-cycle**: the PR-5 regime — one ``polymg_run`` call per
  multigrid cycle, iterate threading and the residual-norm convergence
  test done in Python/numpy between calls;
* **driver**: one ``polymg_drive`` call runs a ``driver_hook_cycles``
  burst of cycles with the convergence test in-kernel and the OpenMP
  team kept alive across cycles.

Both legs must produce bitwise-identical residual histories (the
driver replicates numpy's pairwise summation), so the speedup is pure
dispatch/orchestration overhead removed, not numerics changed.  Emits
``BENCH_PR9.json`` at the repository root; the headline number is the
geometric-mean cycle-throughput uplift of the driver over per-cycle
native at 1 and 4 threads, gated at >= 1.5x.

Run directly::

    PYTHONPATH=src python benchmarks/bench_driver.py            # full
    PYTHONPATH=src python benchmarks/bench_driver.py --small    # CI
    PYTHONPATH=src python benchmarks/bench_driver.py --check 1.3

``--check R`` exits non-zero if the geomean uplift at any swept thread
count is below ``R`` (the CI perf-smoke assertion).  On a machine
without a C toolchain the script reports the clean fallback (driver
bursts degrade to per-cycle execution) and ``--check`` is skipped.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.backend.native import discover_compiler
from repro.bench.workloads import SMALL_TILES, geomean
from repro.compiler import compile_pipeline
from repro.multigrid.cycles import build_poisson_cycle
from repro.multigrid.kernels import norm_residual
from repro.multigrid.reference import MultigridOptions
from repro.variants import polymg_driver, polymg_native

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

THREAD_COUNTS = (1, 4)
HOOK_CYCLES = 8
GATE_SPEEDUP = 1.5


def _case(ndim: int, n: int):
    pipe = build_poisson_cycle(
        ndim, n, MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)
    )
    rng = np.random.default_rng(20170712)
    shape = (n + 2,) * ndim
    f = np.zeros(shape)
    f[(slice(1, -1),) * ndim] = rng.standard_normal((n,) * ndim)
    return pipe, f


def cases(small: bool):
    if small:
        sizes = [("V-2D", 2, 16), ("V-2D", 2, 32), ("V-2D", 2, 64),
                 ("V-3D", 3, 16)]
    else:
        sizes = [("V-2D", 2, 16), ("V-2D", 2, 32), ("V-2D", 2, 64),
                 ("V-2D", 2, 128), ("V-3D", 3, 16), ("V-3D", 3, 32)]
    return [
        (f"{tag}-{n}", *_case(ndim, n)) for tag, ndim, n in sizes
    ]


def _compile(pipe, factory, threads: int):
    cfg = factory(
        tile_sizes=dict(SMALL_TILES),
        num_threads=threads,
        driver_hook_cycles=HOOK_CYCLES,
    )
    compiled = compile_pipeline(
        pipe.output, pipe.params, config=cfg, name=pipe.name, cache=False
    )
    from repro.backend.registry import TIERS

    TIERS.resolve(cfg.backend).ensure_ready(compiled)
    return compiled


def _percycle_leg(compiled, pipe, f, repeats: int):
    """Time HOOK_CYCLES cycles the per-cycle way: one execute per
    cycle, iterate threading and the residual norm in Python — exactly
    the solve loop's per-cycle work."""
    h = 1.0 / (f.shape[0] - 1)
    best, norms = float("inf"), []
    for _ in range(repeats):
        u = np.zeros_like(f)
        t0 = time.perf_counter()
        trial_norms = []
        for _c in range(HOOK_CYCLES):
            out = compiled.execute(pipe.make_inputs(u, f))
            u = out[pipe.output.name]
            trial_norms.append(float(norm_residual(u, f, h)))
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed / HOOK_CYCLES)
        norms = trial_norms
    return best, norms, u


def _driver_leg(compiled, pipe, f, repeats: int):
    """Time the same HOOK_CYCLES cycles as one driver burst."""
    spec = pipe.drive_spec()
    best, norms, u = float("inf"), None, None
    for _ in range(repeats):
        inputs = pipe.make_inputs(np.zeros_like(f), f)
        t0 = time.perf_counter()
        served = compiled.drive(
            inputs, max_cycles=HOOK_CYCLES, tol=0.0, spec=spec
        )
        elapsed = time.perf_counter() - t0
        if served is None or served.cycles != HOOK_CYCLES:
            return None, None, None  # driver unavailable: fell back
        best = min(best, elapsed / HOOK_CYCLES)
        norms = list(served.norms)
        u = served.outputs[pipe.output.name]
    return best, norms, u


def run(small: bool, repeats: int, threads_list=THREAD_COUNTS) -> dict:
    cc = discover_compiler()
    results: dict = {
        "benchmark": "bench_driver",
        "small": small,
        "repeats": repeats,
        "hook_cycles": HOOK_CYCLES,
        "compiler": cc,
        "tile_sizes": {str(k): list(v) for k, v in SMALL_TILES.items()},
        "workloads": {},
        "geomean": {},
        "gate": {
            "threads": list(threads_list),
            "required_speedup": GATE_SPEEDUP,
        },
    }
    workloads = cases(small)
    for threads in threads_list:
        uplifts = []
        for name, pipe, f in workloads:
            row = results["workloads"].setdefault(name, {})
            native = _compile(pipe, polymg_native, threads)
            driver = _compile(pipe, polymg_driver, threads)
            try:
                # warm-up both legs (pools, pages, OMP team spin-up)
                _percycle_leg(native, pipe, f, 1)
                _driver_leg(driver, pipe, f, 1)
                pc_time, pc_norms, pc_u = _percycle_leg(
                    native, pipe, f, repeats
                )
                dr_time, dr_norms, dr_u = _driver_leg(
                    driver, pipe, f, repeats
                )
            finally:
                native.close()
                driver.close()
            if dr_time is None:
                row[f"threads={threads}"] = {
                    "percycle_cycle_time_s": pc_time,
                    "driver": "fallback (no driver available)",
                }
                print(
                    f"{name:10s} threads={threads}  driver fell back "
                    "to per-cycle execution"
                )
                continue
            if dr_norms != pc_norms:
                raise AssertionError(
                    f"{name} threads={threads}: driver residual "
                    "history diverges from per-cycle native"
                )
            if not np.array_equal(dr_u, pc_u):
                raise AssertionError(
                    f"{name} threads={threads}: driver iterate "
                    "diverges from per-cycle native"
                )
            cell = {
                "percycle_cycle_time_s": pc_time,
                "driver_cycle_time_s": dr_time,
                "speedup": pc_time / dr_time,
                "norms_bitwise_identical": True,
                "iterate_bitwise_identical": True,
            }
            row[f"threads={threads}"] = cell
            uplifts.append(cell["speedup"])
            print(
                f"{name:10s} threads={threads}  "
                f"per-cycle {pc_time * 1e6:9.1f} us/cy  "
                f"driver {dr_time * 1e6:9.1f} us/cy  "
                f"uplift {cell['speedup']:5.2f}x"
            )
        if uplifts:
            results["geomean"][f"threads={threads}"] = {
                "speedup": geomean(uplifts)
            }
            print(
                f"geomean    threads={threads}  "
                f"uplift {geomean(uplifts):5.2f}x"
            )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--small", action="store_true",
        help="CI-sized grids (perf-smoke job)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timed bursts per cell (after one warm-up)",
    )
    parser.add_argument(
        "--check", type=float, default=None, metavar="RATIO",
        help="fail if the geomean uplift at any thread count is below "
        "RATIO (skipped without a toolchain)",
    )
    parser.add_argument(
        "--threads", type=int, nargs="*", default=list(THREAD_COUNTS),
        help="thread counts to sweep",
    )
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=REPO_ROOT / "BENCH_PR9.json",
        help="output JSON path",
    )
    args = parser.parse_args(argv)

    results = run(args.small, args.repeats, tuple(args.threads))
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check is not None:
        if discover_compiler() is None:
            print("check skipped: no C toolchain (clean fallback)")
            return 0
        failed = []
        for tkey, cell in results["geomean"].items():
            if cell["speedup"] < args.check:
                failed.append((tkey, cell["speedup"]))
        if not results["geomean"]:
            print("FAIL: no driver cells served", file=sys.stderr)
            return 1
        if failed:
            for tkey, s in failed:
                print(
                    f"FAIL: geomean uplift {s:.2f}x at {tkey} is below "
                    f"the {args.check:.2f}x gate",
                    file=sys.stderr,
                )
            return 1
        print(f"check passed: geomean uplift >= {args.check:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
