"""Figure 8 — generated code structure.

Emits the C/OpenMP code for a 2-D V-cycle pipeline and checks the
structural features the paper's Figure 8 shows: pooled live-out
allocation with user annotations, ``collapse(2)`` parallel tile loops,
constant-size scratchpads declared inside the tile loop with their user
lists, clamped per-stage bounds, ``#pragma ivdep`` inner loops, and
``pool_deallocate`` after last use.  When a C compiler is present the
emitted file is compiled as a smoke test.

Wall-clock: the code generator itself is benchmarked.
"""

from __future__ import annotations

import shutil
import subprocess
import tempfile

from conftest import write_result
from repro.backend.codegen_c import generate_c, generated_loc
from repro.bench import workload
from repro.variants import polymg_opt_plus


def test_fig8_generated_code(benchmark):
    w = workload("V-2D-4-4-4")
    pipe = w.pipeline("B")
    compiled = pipe.compile(
        polymg_opt_plus(tile_sizes={2: (32, 512)}, group_size_limit=6)
    )
    code = benchmark(lambda: generate_c(compiled))

    head = code[: code.index("/* group 3")] if "/* group 3" in code else code
    write_result(
        "fig8_codegen",
        "Figure 8: generated code (first groups shown), "
        f"{generated_loc(compiled)} non-blank lines total\n\n" + head,
    )

    # Figure 8 structural features
    assert "pool_allocate(sizeof(double)" in code
    assert "pool_deallocate(" in code
    assert "#pragma omp parallel for schedule(static) collapse(2)" in code
    assert "/* Scratchpads */" in code
    assert "/* users : [" in code
    assert "#pragma ivdep" in code
    assert "double _buf_" in code
    assert code.count("pool_deallocate") >= 3

    # optional compile smoke test
    cc = shutil.which("gcc") or shutil.which("cc")
    if cc:
        with tempfile.NamedTemporaryFile(
            "w", suffix=".c", delete=False
        ) as fh:
            fh.write(code)
            path = fh.name
        proc = subprocess.run(
            [cc, "-O1", "-fopenmp", "-c", path, "-o", path + ".o"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr[:2000]
