"""PR 10 benchmark: evolutionary cycle-structure search vs the stock
cycle.

For each workload the harness runs the reproducible-seed search
(:class:`repro.tuning.CycleSearch`), measured-re-ranks the Pareto
finalists through the real execution tiers, and times the winner
against the incumbent V(4,4)/omega=0.8 cycle under one shared
protocol: same right-hand side, same absolute residual bound, same
degradation ladder, best-of-repeats wall clock with JIT build time
charged (reported separately so a one-time cc run does not masquerade
as solver speed).

Emits ``BENCH_PR10.json`` at the repository root.  The headline number
is the geometric-mean measured time-to-solution uplift of the
discovered cycle over the baseline across all workloads, gated at
>= 1.3x, with at least one 2-D and one 3-D workload present.  The
winning genome and the search seed are recorded for exact replay::

    PYTHONPATH=src python benchmarks/bench_evolve.py            # full
    PYTHONPATH=src python benchmarks/bench_evolve.py --small    # CI
    PYTHONPATH=src python benchmarks/bench_evolve.py --check 1.3
    PYTHONPATH=src python benchmarks/bench_evolve.py --replay BENCH_PR10.json

``--replay`` re-runs each recorded search from its stored seed and
fails unless the same winning genome hash reappears.  ``--smoke`` is
the CI evolve-smoke mode: a tiny pinned-seed search run twice,
asserting identical winners and zero unquarantined failures, writing
the search log to ``--log-out``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.errors import TrialFailure
from repro.resilience.incidents import IncidentLog
from repro.tuning import (
    ConvergenceEvaluator,
    CycleSearch,
    EvolveSettings,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

GATE_SPEEDUP = 1.3
SEED = 20170613


def geomean(values):
    import math

    return math.exp(sum(math.log(v) for v in values) / len(values))


def workloads(small: bool):
    if small:
        return [("evolve-2D-32", 2, 32), ("evolve-3D-16", 3, 16)]
    return [("evolve-2D-64", 2, 64), ("evolve-3D-32", 3, 32)]


def settings_for(small: bool, seed: int) -> EvolveSettings:
    if small:
        return EvolveSettings(
            population=8,
            generations=3,
            seed=seed,
            pareto_finalists=3,
        )
    return EvolveSettings(
        population=14,
        generations=6,
        seed=seed,
        pareto_finalists=4,
    )


def run_workload(
    name: str,
    ndim: int,
    n: int,
    *,
    small: bool,
    seed: int,
    repeats: int,
) -> dict:
    log = IncidentLog()
    settings = settings_for(small, seed)
    search = CycleSearch(ndim, n, settings=settings, log=log)
    result = search.run()
    result = search.rerank_measured(result, repeats=repeats)

    baseline = search.baseline_genome()
    base_run = search.measure_genome(baseline, repeats=repeats)

    row: dict = {
        "ndim": ndim,
        "N": n,
        "seed": seed,
        "settings": {
            "population": settings.population,
            "generations": settings.generations,
            "pareto_finalists": settings.pareto_finalists,
        },
        "evaluations": result.evaluations,
        "memo_hits": result.memo_hits,
        "quarantined": len(result.failed),
        "baseline": {
            "genome": baseline.to_dict(),
            "label": baseline.spec.label(),
            "measured": base_run.to_dict(),
        },
        "finalists_measured": [m.to_dict() for m in result.measured],
        "history": result.history,
        "incident_kinds": log.kinds(),
    }
    if result.best_measured is None:
        row["error"] = "no finalist could be measured"
        print(f"{name}: no finalist could be measured")
        return row
    winner = result.best_measured
    speedup = winner.time_to_solution and (
        base_run.time_to_solution / winner.time_to_solution
    )
    row["winner"] = winner.to_dict()
    row["replay"] = {
        "seed": seed,
        "winner_hash": winner.genome.short_hash(),
        "command": (
            "PYTHONPATH=src python benchmarks/bench_evolve.py "
            f"--replay BENCH_PR10.json"
        ),
    }
    row["speedup"] = speedup
    print(
        f"{name:14s} baseline {base_run.time_to_solution * 1e3:8.2f} ms "
        f"({base_run.cycles} cycles)  winner "
        f"{winner.time_to_solution * 1e3:8.2f} ms ({winner.cycles} "
        f"cycles, {winner.genome.spec.label()})  uplift {speedup:5.2f}x"
    )
    return row


def run(small: bool, seed: int, repeats: int) -> dict:
    results: dict = {
        "benchmark": "bench_evolve",
        "small": small,
        "seed": seed,
        "repeats": repeats,
        "gate": {
            "required_speedup": GATE_SPEEDUP,
            "metric": "measured time-to-solution, baseline/winner",
        },
        "workloads": {},
    }
    uplifts = []
    for name, ndim, n in workloads(small):
        row = run_workload(
            name, ndim, n, small=small, seed=seed, repeats=repeats
        )
        results["workloads"][name] = row
        if "speedup" in row:
            uplifts.append(row["speedup"])
    if uplifts:
        results["geomean_speedup"] = geomean(uplifts)
        print(f"geomean uplift {results['geomean_speedup']:5.2f}x")
    return results


def replay(path: pathlib.Path) -> int:
    """Re-run every recorded search from its stored seed; fail unless
    the same winning genome hash reappears."""
    data = json.loads(path.read_text())
    small = data["small"]
    repeats = data["repeats"]
    failures = 0
    for name, row in data["workloads"].items():
        if "replay" not in row:
            continue
        fresh = run_workload(
            name,
            row["ndim"],
            row["N"],
            small=small,
            seed=row["replay"]["seed"],
            repeats=repeats,
        )
        want = row["replay"]["winner_hash"]
        got = fresh.get("replay", {}).get("winner_hash")
        ok = got == want
        print(f"replay {name}: want {want} got {got} -> "
              f"{'ok' if ok else 'MISMATCH'}")
        failures += 0 if ok else 1
    return 1 if failures else 0


def smoke(seed: int, log_out: pathlib.Path | None) -> int:
    """CI evolve-smoke: tiny pinned-seed search, run twice — the
    winners must match and every failure must be a quarantined
    TrialFailure (the process itself never faults)."""
    settings = EvolveSettings(
        population=6, generations=2, seed=seed, pareto_finalists=2
    )
    runs = []
    for attempt in range(2):
        log = IncidentLog()
        search = CycleSearch(
            2,
            32,
            settings=settings,
            log=log,
            evaluator=ConvergenceEvaluator(2, probe_cycles=5),
        )
        result = search.run()
        assert all(
            isinstance(f, TrialFailure) for f in result.failed
        ), "a candidate failure escaped quarantine"
        assert log.count("evolve-quarantine") == len(result.failed)
        runs.append(
            {
                "attempt": attempt,
                "winner_hash": result.best.genome.short_hash(),
                "winner": result.best.genome.to_dict(),
                "evaluations": result.evaluations,
                "memo_hits": result.memo_hits,
                "quarantined": len(result.failed),
                "history": result.history,
                "incidents": log.to_dicts(),
            }
        )
        print(
            f"smoke attempt {attempt}: winner "
            f"{runs[-1]['winner_hash']} "
            f"({result.evaluations} evals, "
            f"{len(result.failed)} quarantined)"
        )
    identical = runs[0]["winner_hash"] == runs[1]["winner_hash"]
    if log_out is not None:
        log_out.write_text(
            json.dumps(
                {"seed": seed, "identical": identical, "runs": runs},
                indent=2,
            )
            + "\n"
        )
        print(f"wrote {log_out}")
    if not identical:
        print(
            "FAIL: same seed produced different winners",
            file=sys.stderr,
        )
        return 1
    print("smoke passed: identical winners, all failures quarantined")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--small", action="store_true",
        help="CI-sized grids and a smaller search budget",
    )
    parser.add_argument(
        "--seed", type=int, default=SEED, help="search seed"
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed solves per measurement (best-of)",
    )
    parser.add_argument(
        "--check", type=float, default=None, metavar="RATIO",
        help="fail if the geomean measured uplift is below RATIO",
    )
    parser.add_argument(
        "--replay", type=pathlib.Path, default=None, metavar="JSON",
        help="re-run the searches recorded in JSON and verify the "
        "same winning genomes reappear",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI evolve-smoke: tiny search twice, winners must match",
    )
    parser.add_argument(
        "--log-out", type=pathlib.Path,
        default=REPO_ROOT / "evolve_smoke_log.json",
        help="search-log artifact path (smoke mode)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=REPO_ROOT / "BENCH_PR10.json",
        help="output JSON path",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return smoke(args.seed, args.log_out)
    if args.replay is not None:
        return replay(args.replay)

    results = run(args.small, args.seed, args.repeats)
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check is not None:
        geo = results.get("geomean_speedup")
        dims = {
            row["ndim"]
            for row in results["workloads"].values()
            if "speedup" in row
        }
        if geo is None or not {2, 3} <= dims:
            print(
                "FAIL: need measured wins on at least one 2-D and one "
                "3-D workload",
                file=sys.stderr,
            )
            return 1
        if geo < args.check:
            print(
                f"FAIL: geomean uplift {geo:.2f}x is below the "
                f"{args.check:.2f}x gate",
                file=sys.stderr,
            )
            return 1
        print(f"check passed: geomean uplift {geo:.2f}x >= "
              f"{args.check:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
