"""Figure 10e — NAS MG.

Regenerates the comparison of ``polymg-opt+`` against the reference NAS
MG implementation (modeled as hand-optimized straight execution with
pooled, reused storage — the NPB reference's structure).  Paper: 32%
improvement at class C.

Wall-clock: laptop-scale NAS MG cycle, compiled pipeline vs the plain
numpy solver, verified bit-equal.
"""

from __future__ import annotations

import io

import numpy as np

from conftest import write_result
from repro.bench.workloads import NAS_WORKLOADS, include_class_c
from repro.model import PAPER_MACHINE, PipelineCostModel
from repro.multigrid.nas_mg import NasMgSolver, build_nas_mg_cycle, nas_rhs
from repro.tuning import autotune_model
from repro.variants import handopt_model, polymg_naive, polymg_opt_plus


def _nas_model_row(cls: str):
    n, iters, levels = NAS_WORKLOADS[cls]
    pipe = build_nas_mg_cycle(n, levels=levels)
    naive_t = PipelineCostModel(
        pipe.compile(polymg_naive()), PAPER_MACHINE
    ).run_time(24, iters)
    # the NPB reference: hand-optimized per-stage loops, preallocated
    # reused arrays (its hand-tuned inner loop is reflected by straight
    # streaming at full efficiency)
    ref_t = PipelineCostModel(
        pipe.compile(handopt_model()), PAPER_MACHINE
    ).run_time(24, iters)
    tuned = autotune_model(
        pipe, polymg_opt_plus(), PAPER_MACHINE, threads=24, cycles=iters
    )
    return cls, naive_t, ref_t, tuned.best.score


def test_fig10e_nas_mg(benchmark, rng):
    # wall-clock + correctness at laptop scale
    n, iters, levels = NAS_WORKLOADS["laptop"]
    solver = NasMgSolver(n, levels=levels)
    v = nas_rhs(n)
    u0 = np.zeros_like(v)
    pipe = build_nas_mg_cycle(n, levels=levels)
    compiled = pipe.compile(polymg_opt_plus(tile_sizes={3: (8, 8, 16)}))
    inputs = pipe.make_inputs(u0, v)
    benchmark(lambda: compiled.execute(inputs))
    assert np.array_equal(
        compiled.execute(inputs)[pipe.output.name], solver.mg3p(u0, v)
    )

    classes = ("B", "C") if include_class_c() else ("B",)
    out = io.StringIO()
    out.write("Figure 10e: NAS MG (model @ paper scale, 24 cores)\n")
    out.write(
        f"{'class':>6s} {'naive(s)':>10s} {'reference(s)':>13s} "
        f"{'polymg-opt+(s)':>15s} {'opt+ vs ref':>12s}\n"
    )
    improvements = {}
    for cls in classes:
        cls, naive_t, ref_t, opt_t = _nas_model_row(cls)
        improvements[cls] = ref_t / opt_t
        out.write(
            f"{cls:>6s} {naive_t:10.2f} {ref_t:13.2f} {opt_t:15.2f} "
            f"{ref_t / opt_t:11.2f}x\n"
        )
    out.write(
        "paper: polymg-opt+ is 32% faster than the reference NAS MG at "
        "class C\n"
    )
    write_result("fig10e_nas_mg", out.getvalue())

    # shape: opt+ at least matches the reference everywhere and beats
    # it at class C (paper: +32% at class C; our model: ~+10%)
    for cls, imp in improvements.items():
        assert imp >= 0.95, cls
    if "C" in improvements:
        assert improvements["C"] > 1.05
