"""Shared fixtures for the benchmark harness."""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

RESULTS = pathlib.Path(__file__).parent / "results"
RESULTS.mkdir(exist_ok=True)


def write_result(name: str, text: str) -> None:
    """Persist a regenerated table/figure next to the benchmarks and
    echo it (EXPERIMENTS.md references these files)."""
    (RESULTS / f"{name}.txt").write_text(text)
    print(text)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(20170712)
