"""PR 7 benchmark: same-spec request coalescing through the batched tier.

Drives :class:`repro.service.SolveService` over two traffic shapes and
emits ``BENCH_PR7.json`` at the repository root:

* **same-spec** — every tenant requests the same pipeline
  specification (the coalescing sweet spot: one plan, many right-hand
  sides).  Measured with coalescing on (``batch_max``) and off
  (``batch_max=1``); the headline gate is **>= 1.5x requests/second**
  with coalescing on, with every solve's final residual re-verified
  from scratch and the on/off iterates bitwise identical.
* **mixed** — interleaved distinct specs (different smoothing
  settings), where coalescing rarely applies.  The gate is **no p99
  latency regression** (<= ``--p99-budget``x of the batching-off p99),
  proving the coalescing probe is free when traffic does not batch.

The ladder is pinned to planned numpy rungs so timings are
deterministic and toolchain-independent (batched execution walks the
planned kernel tapes regardless; see
``ResilientPipeline.attempt_batch``).

Run directly::

    PYTHONPATH=src python benchmarks/bench_batched.py            # full
    PYTHONPATH=src python benchmarks/bench_batched.py --small    # CI
    PYTHONPATH=src python benchmarks/bench_batched.py --small --check
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.multigrid.kernels import norm_residual
from repro.multigrid.reference import MultigridOptions
from repro.service import (
    ServiceConfig,
    SolveRequest,
    SolveService,
    TenantPolicy,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

LADDER = ("polymg-opt+", "polymg-naive")
TENANTS = ("alpha", "beta", "gamma")
#: the mixed scenario cycles through these distinct specifications
MIXED_OPTS = (
    MultigridOptions(cycle="V", n1=4, n2=4, n3=4, levels=3),
    MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3),
    MultigridOptions(cycle="W", n1=2, n2=2, n3=2, levels=3),
    MultigridOptions(cycle="V", n1=6, n2=0, n3=6, levels=3),
)
SAME_OPTS = MIXED_OPTS[0]


def _overrides(small: bool):
    return {"tile_sizes": {2: (8, 16) if small else (16, 64)}}


def _requests(rng, n, count, opts_of, max_cycles):
    requests = []
    for i in range(count):
        f = np.zeros((n + 2, n + 2))
        f[1:-1, 1:-1] = rng.standard_normal((n, n))
        requests.append(
            SolveRequest(
                tenant=TENANTS[i % len(TENANTS)],
                ndim=2,
                N=n,
                f=f,
                opts=opts_of(i),
                max_cycles=max_cycles,
            )
        )
    return requests


def _service(small: bool, count: int, batch_max: int) -> SolveService:
    return SolveService(
        ServiceConfig(
            workers=2,
            queue_capacity=count,
            config_overrides=_overrides(small),
            ladder_variants=LADDER,
            batch_max=batch_max,
            default_tenant_policy=TenantPolicy(
                rate=None, max_concurrent=count
            ),
        )
    )


def _verify_completed(tickets) -> int:
    """Re-verify every completed solve from scratch; returns the count
    of *incorrect* results (must be zero)."""
    bad = 0
    for ticket in tickets:
        if ticket.error is not None or not ticket.done():
            continue
        result = ticket.result(timeout=0)
        request = ticket.request
        h = 1.0 / (request.N + 1)
        check = norm_residual(result.u, request.f, h)
        reported = result.residual_norms[-1]
        if not np.isfinite(check) or abs(check - reported) > 1e-8 * max(
            1.0, reported
        ):
            bad += 1
    return bad


def _p99(tickets) -> float:
    lat = [t.latency() for t in tickets if t.latency() is not None]
    return float(np.percentile(np.asarray(lat), 99)) if lat else 0.0


def _drive(service, requests) -> tuple[list, float]:
    t0 = time.monotonic()
    tickets = [service.submit(r) for r in requests]
    for ticket in tickets:
        ticket.wait(timeout=600)
    return tickets, time.monotonic() - t0


def _run_shape(rng_seed, small, count, opts_of, batch_max, max_cycles):
    rng = np.random.default_rng(rng_seed)
    service = _service(small, count, batch_max)
    requests = _requests(
        rng, 32 if small else 64, count, opts_of, max_cycles
    )
    tickets, elapsed = _drive(service, requests)
    incorrect = _verify_completed(tickets)
    stats = {
        "elapsed_s": round(elapsed, 3),
        "requests_per_s": round(len(requests) / elapsed, 2),
        "p99_s": round(_p99(tickets), 4),
        "completed": service.completed,
        "coalesced": service.coalesced,
        "incorrect_solves": incorrect,
    }
    results = [
        t.result(timeout=0) if t.error is None else None for t in tickets
    ]
    service.drain(timeout=30)
    return stats, results


def same_spec_scenario(small: bool) -> dict:
    count = 24 if small else 64
    on, res_on = _run_shape(
        7, small, count, lambda i: SAME_OPTS, batch_max=4, max_cycles=6
    )
    off, res_off = _run_shape(
        7, small, count, lambda i: SAME_OPTS, batch_max=1, max_cycles=6
    )
    bitwise = all(
        a is not None
        and b is not None
        and np.array_equal(a.u, b.u)
        for a, b in zip(res_on, res_off)
    )
    uplift = (
        on["requests_per_s"] / off["requests_per_s"]
        if off["requests_per_s"]
        else 0.0
    )
    return {
        "scenario": "same-spec",
        "requests": count,
        "batching_on": on,
        "batching_off": off,
        "rps_uplift": round(uplift, 2),
        "bitwise_identical": bitwise,
    }


def mixed_scenario(small: bool) -> dict:
    count = 24 if small else 64
    opts_of = lambda i: MIXED_OPTS[i % len(MIXED_OPTS)]  # noqa: E731
    on, _ = _run_shape(
        11, small, count, opts_of, batch_max=4, max_cycles=6
    )
    off, _ = _run_shape(
        11, small, count, opts_of, batch_max=1, max_cycles=6
    )
    ratio = on["p99_s"] / off["p99_s"] if off["p99_s"] else 1.0
    return {
        "scenario": "mixed",
        "requests": count,
        "batching_on": on,
        "batching_off": off,
        "p99_ratio": round(ratio, 3),
    }


def run(small: bool) -> dict:
    return {
        "benchmark": "bench_batched",
        "small": small,
        "ladder": list(LADDER),
        "same_spec": same_spec_scenario(small),
        "mixed": mixed_scenario(small),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--small", action="store_true", help="CI sizes")
    ap.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless the gates hold",
    )
    ap.add_argument(
        "--min-uplift",
        type=float,
        default=1.5,
        help="required same-spec requests/second uplift",
    )
    ap.add_argument(
        "--p99-budget",
        type=float,
        default=1.25,
        help="allowed mixed-traffic p99 ratio (on/off)",
    )
    args = ap.parse_args(argv)

    results = run(args.small)
    out = REPO_ROOT / "BENCH_PR7.json"
    out.write_text(json.dumps(results, indent=2) + "\n")

    same = results["same_spec"]
    mixed = results["mixed"]
    print(f"wrote {out}")
    print(
        f"same-spec: {same['batching_off']['requests_per_s']} -> "
        f"{same['batching_on']['requests_per_s']} req/s "
        f"({same['rps_uplift']}x), bitwise="
        f"{same['bitwise_identical']}, coalesced="
        f"{same['batching_on']['coalesced']}"
    )
    print(
        f"mixed:     p99 {mixed['batching_off']['p99_s']}s -> "
        f"{mixed['batching_on']['p99_s']}s "
        f"(ratio {mixed['p99_ratio']})"
    )

    failures = []
    if same["rps_uplift"] < args.min_uplift:
        failures.append(
            f"same-spec uplift {same['rps_uplift']}x < "
            f"{args.min_uplift}x"
        )
    if not same["bitwise_identical"]:
        failures.append("same-spec results not bitwise identical")
    if mixed["p99_ratio"] > args.p99_budget:
        failures.append(
            f"mixed p99 ratio {mixed['p99_ratio']} > {args.p99_budget}"
        )
    for shape in (same, mixed):
        for side in ("batching_on", "batching_off"):
            if shape[side]["incorrect_solves"]:
                failures.append(f"{shape['scenario']}/{side}: bad solves")
    if failures:
        for f in failures:
            print(f"GATE FAILED: {f}", file=sys.stderr)
        return 1 if args.check else 0
    print("all gates hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
