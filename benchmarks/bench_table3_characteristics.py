"""Table 3 — benchmark characteristics.

Regenerates: DAG stage counts (as specified), generated-code line
counts (from our C emitter), and polymg-naive execution times for 1 and
24 threads, classes B and C (machine model at paper scale).  Paper
values are printed alongside.

The wall-clock component benchmarks one laptop-scale naive cycle per
row family (2-D, 3-D) so the harness also times real execution.
"""

from __future__ import annotations

import io

import numpy as np

from conftest import write_result
from repro.backend.codegen_c import generated_loc
from repro.bench import POISSON_WORKLOADS
from repro.model import PAPER_MACHINE, PipelineCostModel
from repro.bench.workloads import NAS_WORKLOADS
from repro.multigrid.nas_mg import build_nas_mg_cycle
from repro.variants import polymg_naive, polymg_opt, polymg_opt_plus

# paper Table 3: name -> (stages, gen_loc_opt, gen_loc_opt+, naive B 1thr,
# naive B 24thr, naive C 1thr, naive C 24thr)
PAPER_TABLE3 = {
    "V-2D-4-4-4": (40, 2324, 2496, 51.36, 9.61, 141.43, 25.8),
    "V-2D-10-0-0": (42, 2155, 2059, 60.11, 11.41, 169.74, 30.96),
    "W-2D-4-4-4": (100, 6156, 6768, 95.39, 13.19, 268.15, 37.19),
    "W-2D-10-0-0": (98, 4306, 4711, 78.23, 14.75, 241.14, 44.79),
    "V-3D-4-4-4": (40, 4889, 4457, 20.89, 4.1, 67.35, 15.05),
    "V-3D-10-0-0": (42, 4593, 4179, 24.21, 5.3, 78.15, 18.09),
    "W-3D-4-4-4": (100, 12184, 11535, 40.69, 6.16, 132.95, 17.74),
    "W-3D-10-0-0": (98, 9237, 7897, 42.18, 6.79, 133.44, 21.26),
    "NAS-MG": (34, 2010, 2013, 6.72, 0.95, 60.34, 7.84),
}


def _table3_rows():
    rows = []
    for w in POISSON_WORKLOADS:
        pipe_b = w.pipeline("B")
        paper = PAPER_TABLE3[w.name]
        naive_b = pipe_b.compile(polymg_naive())
        model = PipelineCostModel(naive_b, PAPER_MACHINE)
        iters_b = w.iters["B"]
        t1_b = model.run_time(1, iters_b)
        t24_b = model.run_time(24, iters_b)
        pipe_c = w.pipeline("C")
        model_c = PipelineCostModel(
            pipe_c.compile(polymg_naive()), PAPER_MACHINE
        )
        iters_c = w.iters["C"]
        t1_c = model_c.run_time(1, iters_c)
        t24_c = model_c.run_time(24, iters_c)
        loc_opt = generated_loc(pipe_b.compile(polymg_opt()))
        loc_optp = generated_loc(pipe_b.compile(polymg_opt_plus()))
        rows.append(
            (
                w.name,
                pipe_b.stage_count_,
                paper[0],
                loc_opt,
                paper[1],
                loc_optp,
                paper[2],
                t1_b,
                paper[3],
                t24_b,
                paper[4],
                t1_c,
                paper[5],
                t24_c,
                paper[6],
            )
        )
    # NAS MG row
    n_b, iters_b, levels_b = NAS_WORKLOADS["B"]
    nas = build_nas_mg_cycle(n_b, levels=levels_b)
    naive = nas.compile(polymg_naive())
    model = PipelineCostModel(naive, PAPER_MACHINE)
    paper = PAPER_TABLE3["NAS-MG"]
    n_c, iters_c, levels_c = NAS_WORKLOADS["C"]
    nas_c = build_nas_mg_cycle(n_c, levels=levels_c)
    model_c = PipelineCostModel(nas_c.compile(polymg_naive()), PAPER_MACHINE)
    rows.append(
        (
            "NAS-MG",
            nas.stage_count_,
            paper[0],
            generated_loc(nas.compile(polymg_opt())),
            paper[1],
            generated_loc(nas.compile(polymg_opt_plus())),
            paper[2],
            model.run_time(1, iters_b),
            paper[3],
            model.run_time(24, iters_b),
            paper[4],
            model_c.run_time(1, iters_c),
            paper[5],
            model_c.run_time(24, iters_c),
            paper[6],
        )
    )
    return rows


def test_table3_characteristics(benchmark, rng):
    # wall-clock component: one laptop-scale naive 2-D cycle
    w = POISSON_WORKLOADS[0]
    n = w.size["laptop"]
    pipe = w.pipeline("laptop")
    compiled = pipe.compile(polymg_naive())
    f = np.zeros((n + 2, n + 2))
    f[1:-1, 1:-1] = rng.standard_normal((n, n))
    inputs = pipe.make_inputs(np.zeros_like(f), f)
    benchmark(lambda: compiled.execute(inputs))

    rows = _table3_rows()
    out = io.StringIO()
    out.write(
        "Table 3: benchmark characteristics "
        "(ours vs paper; times = polymg-naive, model @ paper scale)\n"
    )
    header = (
        f"{'benchmark':13s} {'stages':>6s} {'(ppr)':>5s} "
        f"{'locO':>6s} {'(ppr)':>6s} {'locO+':>6s} {'(ppr)':>6s} "
        f"{'B1':>7s} {'(ppr)':>7s} {'B24':>6s} {'(ppr)':>6s} "
        f"{'C1':>7s} {'(ppr)':>7s} {'C24':>6s} {'(ppr)':>6s}\n"
    )
    out.write(header)
    for r in rows:
        out.write(
            f"{r[0]:13s} {r[1]:6d} {r[2]:5d} {r[3]:6d} {r[4]:6d} "
            f"{r[5]:6d} {r[6]:6d} {r[7]:7.1f} {r[8]:7.2f} {r[9]:6.1f} "
            f"{r[10]:6.2f} {r[11]:7.1f} {r[12]:7.2f} {r[13]:6.1f} "
            f"{r[14]:6.2f}\n"
        )
    write_result("table3_characteristics", out.getvalue())

    by_name = {r[0]: r for r in rows}
    # stage counts match the paper exactly for the Poisson benchmarks
    for w in POISSON_WORKLOADS:
        assert by_name[w.name][1] == PAPER_TABLE3[w.name][0]
    # naive times are the right order of magnitude (within 3x of paper)
    for r in rows[:-1]:
        for ours, paper in ((r[7], r[8]), (r[9], r[10]), (r[11], r[12]), (r[13], r[14])):
            assert paper / 3 < ours < paper * 3, r[0]
    # generated code is nontrivial and scales with pipeline complexity
    assert by_name["W-2D-4-4-4"][3] > by_name["V-2D-4-4-4"][3]
