"""Figure 6 / Figure 7 — grouping and storage mapping report.

Regenerates the fused-group structure and storage coloring of the best
2D-V-4-4-4 configuration: group membership and operator kinds,
scratchpad vs live-out classification, buffer coloring from the
intra-group reuse pass, and tiled/untiled status.  Paper shape: around
ten groups, sizes between one and six, smoothing steps fused with
restrict or interpolation (cross-level fusion), and scratchpad reuse
within groups (Figure 7's two-buffer chain coloring).
"""

from __future__ import annotations

import io

import numpy as np

from conftest import write_result
from repro.bench import SMALL_TILES, workload
from repro.model import PAPER_MACHINE
from repro.tuning import autotune_model
from repro.variants import polymg_opt_plus


def test_fig6_grouping_report(benchmark, rng):
    w = workload("V-2D-4-4-4")
    pipe = w.pipeline("B")
    tuned = autotune_model(
        pipe, polymg_opt_plus(), PAPER_MACHINE, threads=24, cycles=10
    )
    cfg = tuned.best_config(polymg_opt_plus(), 2)
    compiled = pipe.compile(cfg)
    report = compiled.artifact_summary()

    # wall-clock: executing the tuned schedule at laptop scale
    lap = w.pipeline("laptop")
    n = w.size["laptop"]
    lap_compiled = lap.compile(polymg_opt_plus(tile_sizes=SMALL_TILES))
    f = np.zeros((n + 2, n + 2))
    f[1:-1, 1:-1] = rng.standard_normal((n, n))
    inputs = lap.make_inputs(np.zeros_like(f), f)
    benchmark(lambda: lap_compiled.execute(inputs))

    out = io.StringIO()
    out.write(
        "Figure 6: grouping and storage mapping, best 2D-V-4-4-4 "
        f"(tile {tuned.best.tile_shape}, limit {tuned.best.group_limit})\n"
    )
    out.write(
        f"groups: {report['group_count']}  full arrays: "
        f"{report['full_arrays']} (one-to-one would use "
        f"{report['full_arrays_without_reuse']})\n\n"
    )
    splans = compiled.storage.scratch
    for gi, g in enumerate(report["groups"]):
        members = ", ".join(
            f"{s}[{k}]" for s, k in zip(g["stages"], g["kinds"])
        )
        out.write(
            f"group {gi}: {'tiled' if g['tiled'] else 'untiled'} "
            f"{members}\n"
        )
        out.write(
            f"  live-outs: {g['live_outs']}  scratch stages: "
            f"{g['scratch_stages']} -> {g['scratch_buffers']} buffers\n"
        )
        colors = splans[gi].buffer_of
        if colors:
            coloring = ", ".join(
                f"{s.name}:buf{b}" for s, b in colors.items()
            )
            out.write(f"  coloring: {coloring}\n")
    write_result("fig6_grouping", out.getvalue())

    # paper shape assertions
    sizes = [len(g["stages"]) for g in report["groups"]]
    assert 6 <= report["group_count"] <= 16  # paper: ten groups
    assert max(sizes) <= tuned.best.group_limit
    kinds_by_group = [set(g["kinds"]) for g in report["groups"]]
    # smoothing fused with restrict and/or interpolation somewhere
    assert any(
        "smooth" in k and ("restrict" in k or "interp" in k or "defect" in k)
        for k in kinds_by_group
    )
    # intra-group reuse colors fewer buffers than stages (Figure 7)
    assert any(
        g["scratch_buffers"] < g["scratch_stages"]
        for g in report["groups"]
        if g["scratch_stages"] >= 3
    )
    # storage reuse never inflates the full-array count; on the V-cycle
    # at large group limits every live-out is still live at its class
    # peers' definition points, so the interesting reuse shows on the
    # W-cycle (many repeated per-level live-outs)
    assert report["full_arrays"] <= report["full_arrays_without_reuse"]
    w_pipe = workload("W-2D-4-4-4").pipeline("B")
    w_report = w_pipe.compile(
        polymg_opt_plus(tile_sizes={2: (32, 256)}, group_size_limit=6)
    ).artifact_summary()
    assert w_report["full_arrays"] < w_report["full_arrays_without_reuse"]
