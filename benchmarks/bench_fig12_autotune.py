"""Figure 12 — auto-tuning configurations.

Regenerates the execution times of all 80 2-D tuning configurations
(tile sizes x grouping limits) for the class C 2D-V-10-0-0 benchmark,
for both polymg-opt and polymg-opt+.  Paper shape: polymg-opt+ performs
at least as well as polymg-opt at *every* configuration, and a
repetitive pattern appears across tile-size blocks of constant group
size.

Wall-clock: a measured mini-autotune at laptop scale exercises the
wall-clock tuning path.
"""

from __future__ import annotations

import io

import numpy as np

from conftest import write_result
from repro.bench import workload
from repro.bench.workloads import full_tuning
from repro.model import PAPER_MACHINE, PipelineCostModel
from repro.cache import cache_enabled
from repro.tuning import (
    autotune_measured,
    autotune_model,
    config_space,
    tile_space,
)
from repro.variants import polymg_opt, polymg_opt_plus


def _sweep(pipe, base, iters):
    points = []
    for cfg, tiles, limit in config_space(base, pipe.ndim):
        t = PipelineCostModel(
            pipe.compile(cfg), PAPER_MACHINE
        ).run_time(24, iters)
        points.append((limit, tiles, t))
    return points


def test_fig12_autotuning(benchmark, rng):
    # wall-clock: measured autotune over a tiny space at laptop scale
    w = workload("V-2D-10-0-0")
    n = w.size["laptop"]
    pipe = w.pipeline("laptop")
    f = np.zeros((n + 2, n + 2))
    f[1:-1, 1:-1] = rng.standard_normal((n, n))

    def factory():
        return pipe.make_inputs(np.zeros_like(f), f)

    def tune_once():
        base = polymg_opt_plus(
            tile_sizes={2: (16, 64)}, group_size_limit=4
        )
        compiled = pipe.compile(base)
        inputs = factory()
        compiled.execute(inputs)

    benchmark(tune_once)

    # model sweep at paper scale (class C per the paper's Figure 12)
    cls = "C" if full_tuning() else "B"
    pipe_paper = w.pipeline(cls)
    iters = w.iters[cls]
    pts_opt = _sweep(pipe_paper, polymg_opt(), iters)
    pts_optp = _sweep(pipe_paper, polymg_opt_plus(), iters)

    out = io.StringIO()
    out.write(
        f"Figure 12: autotuning configurations, 2D-V-10-0-0 class {cls} "
        "(model); columns: group-limit, tile, opt(s), opt+(s)\n"
    )
    for (l1, t1, a), (l2, t2, b) in zip(pts_opt, pts_optp):
        assert (l1, t1) == (l2, t2)
        out.write(f"  limit={l1:<3d} tile={str(t1):12s} {a:7.2f} {b:7.2f}\n")
    best_opt = min(p[2] for p in pts_opt)
    best_optp = min(p[2] for p in pts_optp)
    out.write(
        f"best: opt {best_opt:.2f}s, opt+ {best_optp:.2f}s "
        f"({best_opt / best_optp:.2f}x)\n"
    )

    # compile-time vs model-eval split: the autotuner walks the same
    # space the sweep above already compiled, so every trial's compile
    # is a cache hit and the compile column collapses to lookups
    res = autotune_model(
        pipe_paper, polymg_opt_plus(), PAPER_MACHINE, threads=24,
        cycles=iters,
    )
    out.write(
        f"autotune split: compile {res.compile_time_total:.3f}s "
        f"(cache hits {res.cache_hit_count}/{len(res.points)}), "
        f"model-eval {res.execute_time_total:.3f}s\n"
    )
    if cache_enabled():
        assert res.cache_hit_count == len(res.points)
    write_result("fig12_autotune", out.getvalue())

    # paper: the opt+ variant always performs at least as well as the
    # opt one for the same configuration
    for (_, _, a), (_, _, b) in zip(pts_opt, pts_optp):
        assert b <= a * 1.0001

    # repetitive pattern: configurations with the same tile size behave
    # similarly across group-size blocks (correlation of the per-tile
    # time profile between adjacent group-limit blocks)
    n_tiles = len(tile_space(2))
    blocks = [
        [t for (_, _, t) in pts_optp[i * n_tiles : (i + 1) * n_tiles]]
        for i in range(len(pts_optp) // n_tiles)
    ]
    for a, b in zip(blocks[-2], blocks[-1]):
        assert abs(a - b) / a < 0.5  # same-tile configs track each other
