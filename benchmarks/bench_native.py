"""PR 5 benchmark: native C/OpenMP JIT backend vs the planned numpy
backend.

Measures wall-clock cycle time for the laptop-scale tiled workloads —
2-D Poisson V-cycle, 3-D Poisson V-cycle, and NAS MG — executing the
same compiled pipeline through the native JIT backend
(:mod:`repro.backend.native`) and the PR-4 planned numpy backend, at
``num_threads`` 1/2/4/8, and emits ``BENCH_PR5.json`` at the
repository root.  The headline number is the geometric-mean speedup of
native over planned execution per thread count; the acceptance gate is
native >= 1.5x at threads=4 on the 2-D V-cycle and NAS MG rows.

Run directly::

    PYTHONPATH=src python benchmarks/bench_native.py            # full
    PYTHONPATH=src python benchmarks/bench_native.py --small    # CI
    PYTHONPATH=src python benchmarks/bench_native.py --check 1.10

``--small`` shrinks the grids for the CI perf-smoke job; ``--check R``
exits non-zero if native execution is slower than planned by more than
the given ratio on any workload (the CI perf-smoke assertion).  Every
native cell is numerically cross-checked against its planned twin
before it is timed.  On a machine without a C toolchain the native
cells fall back to planned execution; the JSON records the fallback
incidents and ``--check`` still passes (fallback == planned speed).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.backend.native import discover_compiler
from repro.bench.workloads import SMALL_TILES, geomean
from repro.compiler import compile_pipeline
from repro.multigrid.cycles import build_poisson_cycle
from repro.multigrid.nas_mg import build_nas_mg_cycle
from repro.multigrid.reference import MultigridOptions
from repro.variants import polymg_native, polymg_opt_plus

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

THREAD_COUNTS = (1, 2, 4, 8)

#: the acceptance gate: native must be at least this much faster than
#: planned at threads=4 on these workloads (skipped when no toolchain)
GATE_THREADS = 4
GATE_WORKLOADS = ("V-2D-4-4-4", "NAS-MG")
GATE_SPEEDUP = 1.5


def _poisson_case(ndim: int, n: int):
    pipe = build_poisson_cycle(
        ndim, n, MultigridOptions(cycle="V", n1=4, n2=4, n3=4, levels=4)
    )
    rng = np.random.default_rng(20170712)
    shape = (n + 2,) * ndim
    inputs = pipe.make_inputs(
        rng.standard_normal(shape), rng.standard_normal(shape)
    )
    return pipe, inputs


def _nas_case(n: int):
    pipe = build_nas_mg_cycle(n)
    rng = np.random.default_rng(20170712)
    shape = (n + 2,) * 3
    inputs = pipe.make_inputs(
        rng.standard_normal(shape), rng.standard_normal(shape)
    )
    return pipe, inputs


def cases(small: bool):
    if small:
        return [
            ("V-2D-4-4-4", *_poisson_case(2, 64)),
            ("V-3D-4-4-4", *_poisson_case(3, 16)),
            ("NAS-MG", *_nas_case(16)),
        ]
    return [
        ("V-2D-4-4-4", *_poisson_case(2, 256)),
        ("V-3D-4-4-4", *_poisson_case(3, 32)),
        ("NAS-MG", *_nas_case(32)),
    ]


def _config(native: bool, threads: int):
    factory = polymg_native if native else polymg_opt_plus
    return factory(tile_sizes=dict(SMALL_TILES), num_threads=threads)


def time_case(pipe, inputs, config, cycles: int) -> tuple[dict, dict]:
    """Time one cell; returns (row, outputs-of-last-execute)."""
    compiled = compile_pipeline(
        pipe.output, pipe.params, config=config, name=pipe.name,
        cache=False,
    )
    try:
        from repro.backend.registry import TIERS

        # charge JIT-style builds to warm-up, not to the timed cycles
        TIERS.resolve(config.backend).ensure_ready(compiled)
        t0 = time.perf_counter()
        out = compiled.execute(dict(inputs))  # warm-up: pools, arenas
        warmup = time.perf_counter() - t0
        times = []
        for _ in range(cycles):
            t0 = time.perf_counter()
            out = compiled.execute(dict(inputs))
            times.append(time.perf_counter() - t0)
        stats = compiled.stats
        row = {
            "cycle_time_s": min(times),
            "mean_cycle_time_s": sum(times) / len(times),
            "warmup_s": warmup,
            "native_executions": stats.native_executions,
            "native_compile_time_s": stats.native_compile_time_s,
            "native_cache_hits": stats.native_cache_hits,
            "native_fallbacks": stats.native_fallbacks,
            "incidents": [
                dict(rec)
                for rec in compiled.report.incidents
                if rec.get("kind") == "native-fallback"
            ],
        }
        return row, out
    finally:
        compiled.close()


def run(small: bool, cycles: int, threads_list=THREAD_COUNTS) -> dict:
    cc = discover_compiler()
    results: dict = {
        "benchmark": "bench_native",
        "small": small,
        "cycles_timed": cycles,
        "compiler": cc,
        "tile_sizes": {str(k): list(v) for k, v in SMALL_TILES.items()},
        "workloads": {},
        "geomean": {},
        "gate": {
            "threads": GATE_THREADS,
            "workloads": list(GATE_WORKLOADS),
            "required_speedup": GATE_SPEEDUP,
        },
    }
    workloads = cases(small)
    for threads in threads_list:
        speedups = []
        native_times = []
        planned_times = []
        for name, pipe, inputs in workloads:
            row = results["workloads"].setdefault(name, {})
            cell: dict = {}
            baseline = None
            for native in (False, True):
                label = "native" if native else "planned"
                cell[label], out = time_case(
                    pipe, inputs, _config(native, threads), cycles
                )
                result = out[pipe.output.name]
                if baseline is None:
                    baseline = result
                else:
                    # numerical cross-check: native twin vs planned twin
                    if not np.allclose(
                        result, baseline, rtol=1e-9, atol=1e-11
                    ):
                        raise AssertionError(
                            f"{name} threads={threads}: native output "
                            "diverges from planned"
                        )
            pl = cell["planned"]["cycle_time_s"]
            nat = cell["native"]["cycle_time_s"]
            cell["speedup"] = pl / nat
            row[f"threads={threads}"] = cell
            speedups.append(pl / nat)
            native_times.append(nat)
            planned_times.append(pl)
            print(
                f"{name:12s} threads={threads}  planned {pl * 1e3:8.1f} ms"
                f"  native {nat * 1e3:8.1f} ms  speedup {pl / nat:5.2f}x"
            )
        results["geomean"][f"threads={threads}"] = {
            "planned_cycle_time_s": geomean(planned_times),
            "native_cycle_time_s": geomean(native_times),
            "speedup": geomean(speedups),
        }
        print(
            f"geomean      threads={threads}  "
            f"speedup {geomean(speedups):5.2f}x"
        )
    return results


def gate_status(results: dict) -> list[str]:
    """The acceptance-criteria rows (informational when no toolchain)."""
    lines = []
    for name in GATE_WORKLOADS:
        cell = results["workloads"][name].get(f"threads={GATE_THREADS}")
        if cell is None:
            continue
        ok = cell["speedup"] >= GATE_SPEEDUP
        lines.append(
            f"gate {name} threads={GATE_THREADS}: "
            f"{cell['speedup']:.2f}x "
            f"({'PASS' if ok else 'below'} {GATE_SPEEDUP:.1f}x)"
        )
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--small", action="store_true",
        help="CI-sized grids (perf-smoke job)",
    )
    parser.add_argument(
        "--cycles", type=int, default=3,
        help="timed cycles per cell (after one warm-up)",
    )
    parser.add_argument(
        "--check", type=float, default=None, metavar="RATIO",
        help="fail if native > planned * RATIO on any workload",
    )
    parser.add_argument(
        "--threads", type=int, nargs="*", default=list(THREAD_COUNTS),
        help="thread counts to sweep",
    )
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=REPO_ROOT / "BENCH_PR5.json",
        help="output JSON path",
    )
    args = parser.parse_args(argv)

    results = run(args.small, args.cycles, tuple(args.threads))
    for line in gate_status(results):
        print(line)
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check is not None:
        failed = []
        for name, row in results["workloads"].items():
            for tkey, cell in row.items():
                if cell["speedup"] < 1.0 / args.check:
                    failed.append((name, tkey, cell["speedup"]))
        if failed:
            for name, tkey, s in failed:
                print(
                    f"FAIL: {name} {tkey}: native is {1 / s:.2f}x slower "
                    f"than planned (allowed {args.check:.2f}x)",
                    file=sys.stderr,
                )
            return 1
        print(f"check passed: native <= planned x {args.check:.2f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
