"""Figure 11b — storage-optimization breakdown.

Regenerates the speedup breakdown over polymg-naive for the V-10-0-0
benchmarks (2-D and 3-D, best opt+ configurations): (a) intra-group
scratchpad reuse only, (b) plus pooled allocation, (c) plus inter-group
array reuse.  Paper shape: each addition helps; pooled allocation
captures most inter-group reuse benefit even when the latter is off.

Wall-clock: pool statistics of a real laptop-scale run demonstrate the
same effect (pool hits replace fresh allocations across cycles).
"""

from __future__ import annotations

import io

import numpy as np

from conftest import write_result
from repro.bench import SMALL_TILES, workload
from repro.model import PAPER_MACHINE, PipelineCostModel
from repro.variants import polymg_naive, polymg_opt, polymg_opt_plus

STEPS = [
    ("intra", dict(intra_group_reuse=True)),
    (
        "intra+pool",
        dict(intra_group_reuse=True, pooled_allocation=True),
    ),
    (
        "intra+pool+inter",
        dict(
            intra_group_reuse=True,
            pooled_allocation=True,
            inter_group_reuse=True,
        ),
    ),
]


def _breakdown(name: str):
    w = workload(name)
    pipe = w.pipeline("B")
    iters = w.iters["B"]
    naive = PipelineCostModel(
        pipe.compile(polymg_naive()), PAPER_MACHINE
    ).run_time(24, iters)
    rows = []
    for label, extra in STEPS:
        cfg = polymg_opt(**extra)
        t = PipelineCostModel(
            pipe.compile(cfg), PAPER_MACHINE
        ).run_time(24, iters)
        rows.append((label, naive / t))
    return rows


def test_fig11b_storage_breakdown(benchmark, rng):
    # wall-clock: pooled allocator reuse across cycles, measured
    w = workload("V-2D-10-0-0")
    n = w.size["laptop"]
    pipe = w.pipeline("laptop")
    compiled = pipe.compile(polymg_opt_plus(tile_sizes=SMALL_TILES))
    f = np.zeros((n + 2, n + 2))
    f[1:-1, 1:-1] = rng.standard_normal((n, n))
    inputs = pipe.make_inputs(np.zeros_like(f), f)
    benchmark(lambda: compiled.execute(inputs))
    stats = compiled.allocator.stats
    assert stats.pool_hits > 0  # steady-state cycles reuse the pool

    out = io.StringIO()
    out.write(
        "Figure 11b: storage-optimization speedup breakdown over "
        "polymg-naive, V-10-0-0 (model @ class B, 24 cores)\n"
    )
    results = {}
    for name in ("V-2D-10-0-0", "V-3D-10-0-0"):
        rows = _breakdown(name)
        results[name] = rows
        out.write(f"\n{name}:\n")
        for label, sp in rows:
            bar = "#" * int(round(sp * 10))
            out.write(f"  {label:18s} {sp:5.2f}x  {bar}\n")
    write_result("fig11b_storage_breakdown", out.getvalue())

    for name, rows in results.items():
        speeds = [sp for _, sp in rows]
        # each storage optimization adds performance (monotone bars)
        assert speeds[0] < speeds[1] <= speeds[2] * 1.0001, name
        # pooled allocation captures most of the inter-group benefit
        # even when inter-group codegen is off (paper's observation)
        assert speeds[1] > 0.9 * speeds[2], name
