"""PR 6 benchmark: the multi-tenant solve service under load.

Drives :class:`repro.service.SolveService` through three scenarios and
emits ``BENCH_PR6.json`` at the repository root:

* **steady** — mixed 2-D/3-D traffic from three tenants at a
  sustainable rate: requests/second and p50/p99 admission-to-resolution
  latency;
* **overload** — the same traffic submitted at ~2x what the fleet
  budget admits, against a small queue: the graded responses engage
  (defer / degrade / shed by priority class) and the headline
  assertions are **zero lost requests** (submitted == resolved +
  typed-refused, exactly), **zero incorrect solves** (every completed
  iterate's residual re-verified from scratch), and a bounded p99 for
  what was admitted;
* **soak** (``--soak-seconds N``) — N seconds of mixed traffic with
  the PR-1 transient fault injector armed at random, service-level
  retryable faults raised at random, and a worker killed mid-run;
  asserts no deadlock (drain completes), no lost requests, a bounded
  incident log, and a clean final health snapshot.

Run directly::

    PYTHONPATH=src python benchmarks/bench_service.py           # full
    PYTHONPATH=src python benchmarks/bench_service.py --small   # CI
    PYTHONPATH=src python benchmarks/bench_service.py --small --soak-seconds 60
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.errors import (
    AdmissionRejected,
    NumericalDivergenceError,
    ReproError,
)
from repro.multigrid.kernels import norm_residual
from repro.multigrid.reference import MultigridOptions
from repro.service import (
    ServiceConfig,
    SolveRequest,
    SolveService,
    TenantPolicy,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

OPTS = MultigridOptions(cycle="V", n1=4, n2=4, n3=4, levels=4, omega=0.8)
# planned numpy rungs: deterministic, toolchain-independent timing
LADDER = ("polymg-opt+", "polymg-opt", "polymg-naive")
TENANTS = ("alpha", "beta", "gamma")
PRIORITY_MIX = ("high", "normal", "normal", "normal", "low", "low")


def _grid_sizes(small: bool):
    # every size divisible by 2**(levels-1) = 8 (coarsening chain)
    return {2: 32 if small else 64, 3: 16 if small else 32}


def _overrides(small: bool):
    if small:
        return {"tile_sizes": {2: (8, 16), 3: (4, 4, 8)}}
    return {}


def _make_requests(rng, small: bool, count: int, max_cycles=8):
    sizes = _grid_sizes(small)
    requests = []
    for i in range(count):
        ndim = 2 if i % 3 else 3  # 2:1 mix of 2-D and 3-D
        n = sizes[ndim]
        f = np.zeros((n + 2,) * ndim)
        f[(slice(1, -1),) * ndim] = rng.standard_normal((n,) * ndim)
        requests.append(
            SolveRequest(
                tenant=TENANTS[i % len(TENANTS)],
                ndim=ndim,
                N=n,
                f=f,
                opts=OPTS,
                priority=PRIORITY_MIX[i % len(PRIORITY_MIX)],
                max_cycles=max_cycles,
            )
        )
    return requests


def _verify_completed(tickets) -> int:
    """Re-verify every completed solve from scratch; returns the count
    of *incorrect* results (must be zero)."""
    bad = 0
    for ticket in tickets:
        if ticket.error is not None or not ticket.done():
            continue
        result = ticket.result(timeout=0)
        request = ticket.request
        h = 1.0 / (request.N + 1)
        check = norm_residual(result.u, request.f, h)
        reported = result.residual_norms[-1]
        if not np.isfinite(check) or abs(check - reported) > 1e-8 * max(
            1.0, reported
        ):
            bad += 1
    return bad


def _latency_stats(tickets) -> dict:
    lat = sorted(
        t.latency() for t in tickets if t.latency() is not None
    )
    if not lat:
        return {"count": 0}
    arr = np.asarray(lat)
    return {
        "count": len(lat),
        "p50_s": round(float(np.percentile(arr, 50)), 4),
        "p99_s": round(float(np.percentile(arr, 99)), 4),
        "max_s": round(float(arr.max()), 4),
    }


def _accounting(service, submitted, refused) -> dict:
    resolved = (
        service.completed + service.failed + service.shed
    )
    return {
        "submitted": submitted,
        "typed_refusals": refused,
        "completed": service.completed,
        "failed": service.failed,
        "shed": service.shed,
        "preempted": service.preempted,
        "resolved_plus_refused": resolved + refused,
        "lost": submitted - resolved - refused,
    }


def steady_scenario(rng, small: bool, sink=None) -> dict:
    count = 24 if small else 96
    service = SolveService(
        ServiceConfig(
            workers=4,
            queue_capacity=count,
            config_overrides=_overrides(small),
            ladder_variants=LADDER,
            default_tenant_policy=TenantPolicy(
                rate=None, max_concurrent=count
            ),
        )
    )
    requests = _make_requests(rng, small, count)
    t0 = time.monotonic()
    tickets = [service.submit(r) for r in requests]
    for ticket in tickets:
        ticket.wait(timeout=600)
    elapsed = time.monotonic() - t0
    incorrect = _verify_completed(tickets)
    summary = service.drain(timeout=30)
    if sink is not None:
        sink.append(("steady", service.log))
    return {
        "scenario": "steady",
        "requests": count,
        "elapsed_s": round(elapsed, 3),
        "requests_per_s": round(count / elapsed, 2),
        "latency": _latency_stats(tickets),
        "incorrect_solves": incorrect,
        "accounting": _accounting(service, count, 0),
        "drain": {"status": summary["status"]},
    }


def overload_scenario(rng, small: bool, sink=None) -> dict:
    count = 48 if small else 160
    sizes = _grid_sizes(small)
    # budget sized so roughly half the burst fits: the graded levels
    # must engage during the run
    per_request = 6 * 8 * (sizes[2] + 2) ** 2
    service = SolveService(
        ServiceConfig(
            workers=2,
            queue_capacity=max(4, count // 8),
            config_overrides=_overrides(small),
            ladder_variants=LADDER,
            max_fleet_bytes=int(per_request * count * 0.3),
            default_tenant_policy=TenantPolicy(
                rate=None, max_concurrent=count
            ),
        )
    )
    requests = _make_requests(rng, small, count)
    tickets = []
    refusals: dict[str, int] = {}
    t0 = time.monotonic()
    for request in requests:
        try:
            tickets.append(service.submit(request))
        except AdmissionRejected as err:
            reason = err.context.get("reason", type(err).__name__)
            refusals[reason] = refusals.get(reason, 0) + 1
    for ticket in tickets:
        ticket.wait(timeout=600)
    elapsed = time.monotonic() - t0
    incorrect = _verify_completed(tickets)
    refused = sum(refusals.values())
    accounting = _accounting(service, count, refused)
    health = service.healthz()
    summary = service.drain(timeout=30)
    if sink is not None:
        sink.append(("overload", service.log))
    return {
        "scenario": "overload",
        "requests": count,
        "admitted": len(tickets),
        "refusals_by_reason": refusals,
        "elapsed_s": round(elapsed, 3),
        "latency_admitted": _latency_stats(tickets),
        "incorrect_solves": incorrect,
        "accounting": accounting,
        "peak_utilization": health["budget"]["peak_utilization"],
        "overload_incidents": sum(
            1 for r in service.log.records if r.kind == "overload"
        ),
        "drain": {"status": summary["status"]},
    }


def soak_scenario(rng, small: bool, seconds: float, sink=None) -> dict:
    from repro.verify.faults import inject_transient_nan_poison

    chaos = np.random.default_rng(20170712)

    def fault_hook(supervisor, request):
        roll = chaos.random()
        if roll < 0.05:
            # service-level transient: exercises retry-with-backoff
            raise NumericalDivergenceError("soak: injected transient")
        if roll < 0.10:
            # pipeline-level transient: exercises checkpoint restore
            # and the degradation ladder underneath the service
            try:
                compiled = supervisor.resilient.compiled_for(
                    supervisor.ladder.active()
                )
                inject_transient_nan_poison(
                    compiled,
                    invocation=compiled.stats.executions + 2,
                )
            except (ReproError, ValueError):
                pass  # rung not injectable right now: fine, it's chaos

    service = SolveService(
        ServiceConfig(
            workers=3,
            queue_capacity=16,
            incident_capacity=512,
            config_overrides=_overrides(small),
            ladder_variants=LADDER,
            default_tenant_policy=TenantPolicy(
                rate=None, max_concurrent=64
            ),
            fault_hook=fault_hook,
        )
    )
    tickets = []
    refused = 0
    kills = 0
    deadline = time.monotonic() + seconds
    next_kill = time.monotonic() + seconds / 3
    i = 0
    while time.monotonic() < deadline:
        for request in _make_requests(rng, small, 6, max_cycles=6):
            try:
                tickets.append(service.submit(request))
            except AdmissionRejected:
                refused += 1
        if time.monotonic() >= next_kill:
            service.kill_worker()
            kills += 1
            next_kill += max(5.0, seconds / 3)
        # pace: wait for the oldest unresolved ticket
        for ticket in tickets[-12:]:
            ticket.wait(timeout=120)
        i += 1
    for ticket in tickets:
        assert ticket.wait(timeout=600), "soak: unresolved ticket"
    incorrect = _verify_completed(tickets)
    accounting = _accounting(service, len(tickets) + refused, refused)
    ring = service.log.ring_stats()
    summary = service.drain(timeout=60)
    assert summary["status"] == "drained", "soak: drain did not complete"
    assert accounting["lost"] == 0, "soak: lost requests"
    assert incorrect == 0, "soak: incorrect solves"
    assert ring["retained"] <= 512, "soak: incident log unbounded"
    if sink is not None:
        sink.append(("soak", service.log))
    return {
        "scenario": "soak",
        "seconds": seconds,
        "rounds": i,
        "worker_kills": kills,
        "latency": _latency_stats(tickets),
        "incorrect_solves": incorrect,
        "accounting": accounting,
        "incident_ring": ring,
        "retries": sum(
            1 for r in service.log.records if r.kind == "retry"
        ),
        "drain": {"status": summary["status"]},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true")
    parser.add_argument("--soak-seconds", type=float, default=0.0)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_PR6.json")
    )
    parser.add_argument(
        "--incident-log",
        default=None,
        help="also dump the soak/overload incident trail here",
    )
    args = parser.parse_args(argv)

    rng = np.random.default_rng(20170712)
    results = {"bench": "service", "small": args.small}
    logs: list[tuple[str, object]] = []

    print("== steady scenario ==")
    results["steady"] = steady_scenario(rng, args.small, logs)
    print(json.dumps(results["steady"], indent=2))

    print("== overload scenario ==")
    results["overload"] = overload_scenario(rng, args.small, logs)
    print(json.dumps(results["overload"], indent=2))

    if args.soak_seconds > 0:
        print(f"== soak scenario ({args.soak_seconds:.0f}s) ==")
        results["soak"] = soak_scenario(
            rng, args.small, args.soak_seconds, logs
        )
        print(json.dumps(results["soak"], indent=2))

    if args.incident_log:
        # one combined trail, each record tagged with its scenario; a
        # ring that dropped records leads with its drop accounting so
        # the artifact is self-describing (same shape the chaos CI
        # dump_incident_log produces)
        records = []
        for name, log in logs:
            ring = log.ring_stats()
            if ring["dropped"]:
                records.append(
                    {"scenario": name, "kind": "ring-stats", **ring}
                )
            records.extend(
                {"scenario": name, **rec} for rec in log.to_dicts()
            )
        path = pathlib.Path(args.incident_log)
        path.write_text(json.dumps(records, indent=2) + "\n")
        print(f"wrote {path} ({len(records)} records)")

    # the hard gates: nothing lost, nothing wrong, overload was graded
    failures = []
    for name in ("steady", "overload", "soak"):
        if name not in results:
            continue
        scenario = results[name]
        if scenario["accounting"]["lost"] != 0:
            failures.append(f"{name}: lost requests")
        if scenario["incorrect_solves"] != 0:
            failures.append(f"{name}: incorrect solves")
    if results["overload"]["refusals_by_reason"]:
        lat = results["overload"]["latency_admitted"]
        if lat.get("p99_s", 0) > 600:
            failures.append("overload: unbounded p99")

    out = pathlib.Path(args.out)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("service bench gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
