"""Figure 9 — 2-D benchmark performance.

Regenerates the speedups over ``polymg-naive`` on 24 cores for every
2-D benchmark and class: handopt, handopt+pluto, polymg-opt,
polymg-opt+, polymg-dtile-opt+ (machine model at paper scale, tunable
variants autotuned).  Shape assertions encode the paper's findings:
``opt+`` beats everything in 2-D — including handopt+pluto — and the
storage optimizations (opt+ vs opt) always help.

Wall-clock: one laptop-scale run of naive vs opt+ verifying the
executor path end to end.
"""

from __future__ import annotations

import io

import numpy as np

from conftest import write_result
from repro.bench import (
    POISSON_WORKLOADS,
    SMALL_TILES,
    VARIANT_ORDER,
    cached_speedups,
)
from repro.bench.workloads import include_class_c
from repro.variants import polymg_naive, polymg_opt_plus

WORKLOADS_2D = [w for w in POISSON_WORKLOADS if w.ndim == 2]


def _rows():
    rows = []
    classes = ("B", "C") if include_class_c() else ("B",)
    for w in WORKLOADS_2D:
        for cls in classes:
            sp = cached_speedups(w.name, cls)
            rows.append((f"{w.name}/{cls}", sp))
    return rows


def test_fig9_2d_speedups(benchmark, rng):
    w = WORKLOADS_2D[0]
    n = w.size["laptop"]
    pipe = w.pipeline("laptop")
    opt_plus = pipe.compile(polymg_opt_plus(tile_sizes=SMALL_TILES))
    f = np.zeros((n + 2, n + 2))
    f[1:-1, 1:-1] = rng.standard_normal((n, n))
    inputs = pipe.make_inputs(np.zeros_like(f), f)
    benchmark(lambda: opt_plus.execute(inputs))
    # executor cross-check at laptop scale
    naive = pipe.compile(polymg_naive())
    assert np.array_equal(
        opt_plus.execute(inputs)[pipe.output.name],
        naive.execute(inputs)[pipe.output.name],
    )

    rows = _rows()
    out = io.StringIO()
    out.write(
        "Figure 9: 2-D speedups over polymg-naive @ 24 cores "
        "(model, tuned)\n"
    )
    out.write(f"{'benchmark':18s}" + "".join(f"{v:>20s}" for v in VARIANT_ORDER) + "\n")
    for name, sp in rows:
        out.write(
            f"{name:18s}"
            + "".join(f"{sp[v]:20.2f}" for v in VARIANT_ORDER)
            + "\n"
        )
    write_result("fig9_2d_speedups", out.getvalue())

    for name, sp in rows:
        # paper: in 2-D polymg-opt+ always wins, incl. over handopt+pluto
        for other in VARIANT_ORDER:
            if other != "polymg-opt+":
                assert sp["polymg-opt+"] >= sp[other], (name, other)
        # storage optimizations always help
        assert sp["polymg-opt+"] > sp["polymg-opt"], name
        # everything beats straightforward parallelization
        for v in VARIANT_ORDER:
            assert sp[v] > 1.0, (name, v)

    # scaling (paper section 4.2, W-2D-10-0-0 class C example: naive
    # scales only ~5.4x to 24 cores while tuned opt+ delivers ~33x over
    # *sequential* naive)
    from repro.model import PAPER_MACHINE, PipelineCostModel
    from repro.variants import polymg_opt_plus as optp

    w = next(w for w in WORKLOADS_2D if w.name == "W-2D-10-0-0")
    cls = "C" if include_class_c() else "B"
    pipe = w.pipeline(cls)
    iters = w.iters[cls]
    naive_model = PipelineCostModel(
        pipe.compile(polymg_naive()), PAPER_MACHINE
    )
    optp_model = PipelineCostModel(
        pipe.compile(optp(tile_sizes={2: (32, 256)})), PAPER_MACHINE
    )
    seq = naive_model.run_time(1, iters)
    out2 = io.StringIO()
    out2.write(
        f"Figure 9 scaling: {w.name} class {cls}, speedup over "
        "sequential polymg-naive (model)\n"
    )
    out2.write(f"{'threads':>8s} {'naive':>8s} {'opt+':>8s}\n")
    naive_scaling = {}
    optp_scaling = {}
    for p in (1, 2, 4, 8, 16, 24):
        naive_scaling[p] = seq / naive_model.run_time(p, iters)
        optp_scaling[p] = seq / optp_model.run_time(p, iters)
        out2.write(
            f"{p:8d} {naive_scaling[p]:8.2f} {optp_scaling[p]:8.2f}\n"
        )
    write_result("fig9_scaling", out2.getvalue())
    # paper shape: naive saturates well below the core count; opt+'s
    # total speedup over sequential naive is several times larger
    assert naive_scaling[24] < 12
    assert optp_scaling[24] > 2.5 * naive_scaling[24]
    assert all(
        optp_scaling[a] <= optp_scaling[b] * 1.001
        for a, b in ((1, 2), (2, 4), (4, 8), (8, 16), (16, 24))
    )
