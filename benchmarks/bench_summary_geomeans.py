"""Section 4.2 improvement summary — geometric means.

Regenerates the paper's headline numbers: polymg-opt+ mean improvement
over polymg-naive (paper: 3.2x overall, 4.73x 2-D, 2.18x 3-D), over
polymg-opt (1.31x), and over handopt+pluto (1.23x overall, 1.67x 2-D).
"""

from __future__ import annotations

import io

import numpy as np

from conftest import write_result
from repro.bench import (
    POISSON_WORKLOADS,
    SMALL_TILES,
    cached_speedups,
    geomean,
)
from repro.variants import polymg_opt_plus

PAPER = {
    "opt+/naive": 3.2,
    "opt+/naive 2D": 4.73,
    "opt+/naive 3D": 2.18,
    "opt+/opt": 1.31,
    "opt+/handopt+pluto": 1.23,
    "opt+/handopt+pluto 2D": 1.67,
}


def test_summary_geomeans(benchmark, rng):
    w = POISSON_WORKLOADS[0]
    n = w.size["laptop"]
    pipe = w.pipeline("laptop")
    compiled = pipe.compile(polymg_opt_plus(tile_sizes=SMALL_TILES))
    f = np.zeros((n + 2, n + 2))
    f[1:-1, 1:-1] = rng.standard_normal((n, n))
    inputs = pipe.make_inputs(np.zeros_like(f), f)
    benchmark(lambda: compiled.execute(inputs))

    sps = {w_.name: cached_speedups(w_.name, "B") for w_ in POISSON_WORKLOADS}
    all_names = [w_.name for w_ in POISSON_WORKLOADS]
    names_2d = [w_.name for w_ in POISSON_WORKLOADS if w_.ndim == 2]
    names_3d = [w_.name for w_ in POISSON_WORKLOADS if w_.ndim == 3]

    ours = {
        "opt+/naive": geomean(sps[n_]["polymg-opt+"] for n_ in all_names),
        "opt+/naive 2D": geomean(
            sps[n_]["polymg-opt+"] for n_ in names_2d
        ),
        "opt+/naive 3D": geomean(
            sps[n_]["polymg-opt+"] for n_ in names_3d
        ),
        "opt+/opt": geomean(
            sps[n_]["polymg-opt+"] / sps[n_]["polymg-opt"]
            for n_ in all_names
        ),
        "opt+/handopt+pluto": geomean(
            sps[n_]["polymg-opt+"] / sps[n_]["handopt+pluto"]
            for n_ in all_names
        ),
        "opt+/handopt+pluto 2D": geomean(
            sps[n_]["polymg-opt+"] / sps[n_]["handopt+pluto"]
            for n_ in names_2d
        ),
    }

    out = io.StringIO()
    out.write("Section 4.2 summary: geometric-mean improvements\n")
    out.write(f"{'metric':24s} {'ours':>8s} {'paper':>8s}\n")
    for key in PAPER:
        out.write(f"{key:24s} {ours[key]:8.2f} {PAPER[key]:8.2f}\n")
    write_result("summary_geomeans", out.getvalue())

    # headline shapes: storage optimizations pay off everywhere; 2-D
    # gains exceed 3-D gains; opt+ matches or beats the strongest
    # hand-optimized baseline overall
    assert ours["opt+/naive"] > 2.0
    assert ours["opt+/naive 2D"] > ours["opt+/naive 3D"]
    assert ours["opt+/opt"] > 1.0
    assert ours["opt+/handopt+pluto"] >= 1.0
    assert ours["opt+/handopt+pluto 2D"] > 1.3
    # magnitudes within ~75% of the paper's reported means
    for key in PAPER:
        assert abs(ours[key] - PAPER[key]) / PAPER[key] < 0.75, key
