"""Section 4.2 improvement summary — geometric means.

Regenerates the paper's headline numbers: polymg-opt+ mean improvement
over polymg-naive (paper: 3.2x overall, 4.73x 2-D, 2.18x 3-D), over
polymg-opt (1.31x), and over handopt+pluto (1.23x overall, 1.67x 2-D).

Also rolls the per-PR bench artifacts (``BENCH_PR6.json`` ..
``BENCH_PR10.json`` at the repository root) into one cross-PR summary
table, so the headline of every systems PR — service throughput,
batching uplift, sandbox overhead, driver cycle-throughput uplift,
cycle-search time-to-solution uplift — is re-asserted from its
recorded JSON whenever the bench suite runs.
Missing artifacts are reported and skipped, never a failure: the
rollup documents what this checkout has measured.
"""

from __future__ import annotations

import io
import json
import pathlib

import numpy as np

from conftest import write_result
from repro.bench import (
    POISSON_WORKLOADS,
    SMALL_TILES,
    cached_speedups,
    geomean,
)
from repro.variants import polymg_opt_plus

PAPER = {
    "opt+/naive": 3.2,
    "opt+/naive 2D": 4.73,
    "opt+/naive 3D": 2.18,
    "opt+/opt": 1.31,
    "opt+/handopt+pluto": 1.23,
    "opt+/handopt+pluto 2D": 1.67,
}


def test_summary_geomeans(benchmark, rng):
    w = POISSON_WORKLOADS[0]
    n = w.size["laptop"]
    pipe = w.pipeline("laptop")
    compiled = pipe.compile(polymg_opt_plus(tile_sizes=SMALL_TILES))
    f = np.zeros((n + 2, n + 2))
    f[1:-1, 1:-1] = rng.standard_normal((n, n))
    inputs = pipe.make_inputs(np.zeros_like(f), f)
    benchmark(lambda: compiled.execute(inputs))

    sps = {w_.name: cached_speedups(w_.name, "B") for w_ in POISSON_WORKLOADS}
    all_names = [w_.name for w_ in POISSON_WORKLOADS]
    names_2d = [w_.name for w_ in POISSON_WORKLOADS if w_.ndim == 2]
    names_3d = [w_.name for w_ in POISSON_WORKLOADS if w_.ndim == 3]

    ours = {
        "opt+/naive": geomean(sps[n_]["polymg-opt+"] for n_ in all_names),
        "opt+/naive 2D": geomean(
            sps[n_]["polymg-opt+"] for n_ in names_2d
        ),
        "opt+/naive 3D": geomean(
            sps[n_]["polymg-opt+"] for n_ in names_3d
        ),
        "opt+/opt": geomean(
            sps[n_]["polymg-opt+"] / sps[n_]["polymg-opt"]
            for n_ in all_names
        ),
        "opt+/handopt+pluto": geomean(
            sps[n_]["polymg-opt+"] / sps[n_]["handopt+pluto"]
            for n_ in all_names
        ),
        "opt+/handopt+pluto 2D": geomean(
            sps[n_]["polymg-opt+"] / sps[n_]["handopt+pluto"]
            for n_ in names_2d
        ),
    }

    out = io.StringIO()
    out.write("Section 4.2 summary: geometric-mean improvements\n")
    out.write(f"{'metric':24s} {'ours':>8s} {'paper':>8s}\n")
    for key in PAPER:
        out.write(f"{key:24s} {ours[key]:8.2f} {PAPER[key]:8.2f}\n")
    write_result("summary_geomeans", out.getvalue())

    # headline shapes: storage optimizations pay off everywhere; 2-D
    # gains exceed 3-D gains; opt+ matches or beats the strongest
    # hand-optimized baseline overall
    assert ours["opt+/naive"] > 2.0
    assert ours["opt+/naive 2D"] > ours["opt+/naive 3D"]
    assert ours["opt+/opt"] > 1.0
    assert ours["opt+/handopt+pluto"] >= 1.0
    assert ours["opt+/handopt+pluto 2D"] > 1.3
    # magnitudes within ~75% of the paper's reported means
    for key in PAPER:
        assert abs(ours[key] - PAPER[key]) / PAPER[key] < 0.75, key


# ---------------------------------------------------------------------------
# cross-PR bench rollup
# ---------------------------------------------------------------------------

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _bench_json(name: str) -> dict | None:
    path = REPO_ROOT / name
    if not path.exists():
        return None
    return json.loads(path.read_text())


def test_cross_pr_bench_rollup():
    """One table over every recorded systems-PR headline.

    Each row re-asserts the weak shape of its PR's gate from the JSON
    artifact: the solve service lost no requests, same-spec batching
    actually coalesced and stayed bitwise, the sandbox overhead held
    under its gate, and the whole-solve driver beat per-cycle native
    at every swept thread count with bitwise-identical numerics."""
    rows: list[tuple[str, str]] = []

    pr6 = _bench_json("BENCH_PR6.json")
    if pr6 is not None:
        steady = pr6["steady"]
        rows.append((
            "PR6 service steady state",
            f"{steady['requests_per_s']:.2f} req/s, "
            f"p99 {steady['latency']['p99_s']:.2f} s",
        ))
        assert steady["accounting"]["lost"] == 0
        assert steady["incorrect_solves"] == 0

    pr7 = _bench_json("BENCH_PR7.json")
    if pr7 is not None:
        same = pr7["same_spec"]
        rows.append((
            "PR7 same-spec batching",
            f"{same['rps_uplift']:.2f}x rps uplift, "
            f"bitwise={same['bitwise_identical']}",
        ))
        assert same["rps_uplift"] > 1.0
        assert same["bitwise_identical"] is True
        assert same["batching_on"]["coalesced"] == same["requests"]

    pr8 = _bench_json("BENCH_PR8.json")
    if pr8 is not None:
        overhead = pr8["overhead"]
        rows.append((
            "PR8 sandbox overhead",
            f"{overhead['ratio']:.2f}x (gate {overhead['gate']:.2f}x)",
        ))
        assert overhead["ratio"] <= overhead["gate"]
        assert pr8["chaos"]["incorrect_solves"] == 0

    pr9 = _bench_json("BENCH_PR9.json")
    if pr9 is not None:
        for tkey, cell in sorted(pr9["geomean"].items()):
            rows.append((
                f"PR9 driver uplift ({tkey})",
                f"{cell['speedup']:.2f}x geomean cycle throughput",
            ))
            assert cell["speedup"] > 1.0
        for workload in pr9["workloads"].values():
            for cell in workload.values():
                if "speedup" in cell:
                    assert cell["norms_bitwise_identical"] is True
                    assert cell["iterate_bitwise_identical"] is True

    pr10 = _bench_json("BENCH_PR10.json")
    if pr10 is not None:
        geo = pr10.get("geomean_speedup")
        if geo is not None:
            rows.append((
                "PR10 cycle search uplift",
                f"{geo:.2f}x geomean measured time-to-solution",
            ))
            assert geo > 1.0
        for wname, row in pr10["workloads"].items():
            if "speedup" not in row:
                continue
            winner = row["winner"]
            rows.append((
                f"PR10 {wname}",
                f"{row['speedup']:.2f}x, winner {winner['label']} "
                f"(seed {row['replay']['seed']}, "
                f"genome {row['replay']['winner_hash']})",
            ))
            # the winner reached the same residual bound in fewer
            # wall-clock seconds; its replay coordinates are recorded
            assert row["speedup"] > 1.0
            assert row["replay"]["winner_hash"] == (
                winner["genome"]["hash"]
            )
            # quarantine accounting is present (may be zero)
            assert "quarantined" in row

    out = io.StringIO()
    out.write("Cross-PR bench rollup (recorded artifacts)\n")
    for label, value in rows:
        out.write(f"{label:32s} {value}\n")
    missing = [
        name
        for name in (
            "BENCH_PR6.json", "BENCH_PR7.json",
            "BENCH_PR8.json", "BENCH_PR9.json",
            "BENCH_PR10.json",
        )
        if _bench_json(name) is None
    ]
    if missing:
        out.write(f"not measured on this checkout: {', '.join(missing)}\n")
    write_result("bench_rollup", out.getvalue())
    assert rows, "no bench artifacts recorded on this checkout"
