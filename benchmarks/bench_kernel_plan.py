"""PR 4 benchmark: ahead-of-time kernel plans vs the tree-walking
interpreter.

Measures wall-clock cycle time for the laptop-scale tiled workloads —
2-D Poisson V-cycle, 3-D Poisson V-cycle, and NAS MG — with the kernel
planner on and off, at ``num_threads`` 1 and 4, and emits
``BENCH_PR4.json`` at the repository root (the first datapoint of the
BENCH_* perf trajectory).  The headline number is the geometric-mean
speedup of planned over unplanned execution per thread count.

Run directly::

    PYTHONPATH=src python benchmarks/bench_kernel_plan.py            # full
    PYTHONPATH=src python benchmarks/bench_kernel_plan.py --small    # CI
    PYTHONPATH=src python benchmarks/bench_kernel_plan.py --check 1.10

``--small`` shrinks the grids for the CI perf-smoke job; ``--check R``
exits non-zero if planned execution is slower than unplanned by more
than the given ratio on any workload (plan-overhead regression guard).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.bench.workloads import SMALL_TILES, geomean
from repro.compiler import compile_pipeline
from repro.config import PolyMgConfig
from repro.multigrid.cycles import build_poisson_cycle
from repro.multigrid.nas_mg import build_nas_mg_cycle
from repro.multigrid.reference import MultigridOptions

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

THREAD_COUNTS = (1, 4)


def _poisson_case(ndim: int, n: int):
    pipe = build_poisson_cycle(
        ndim, n, MultigridOptions(cycle="V", n1=4, n2=4, n3=4, levels=4)
    )
    rng = np.random.default_rng(20170712)
    shape = (n + 2,) * ndim
    inputs = pipe.make_inputs(
        rng.standard_normal(shape), rng.standard_normal(shape)
    )
    return pipe, inputs


def _nas_case(n: int):
    pipe = build_nas_mg_cycle(n)
    rng = np.random.default_rng(20170712)
    shape = (n + 2,) * 3
    inputs = pipe.make_inputs(
        rng.standard_normal(shape), rng.standard_normal(shape)
    )
    return pipe, inputs


def cases(small: bool):
    if small:
        return [
            ("V-2D-4-4-4", *_poisson_case(2, 64)),
            ("V-3D-4-4-4", *_poisson_case(3, 16)),
            ("NAS-MG", *_nas_case(16)),
        ]
    return [
        ("V-2D-4-4-4", *_poisson_case(2, 256)),
        ("V-3D-4-4-4", *_poisson_case(3, 32)),
        ("NAS-MG", *_nas_case(32)),
    ]


def time_case(pipe, inputs, config, cycles: int) -> dict:
    compiled = compile_pipeline(
        pipe.output, pipe.params, config=config, name=pipe.name,
        cache=False,
    )
    try:
        t0 = time.perf_counter()
        compiled.execute(dict(inputs))  # warm-up: pools, arenas, caches
        warmup = time.perf_counter() - t0
        times = []
        for _ in range(cycles):
            t0 = time.perf_counter()
            compiled.execute(dict(inputs))
            times.append(time.perf_counter() - t0)
        return {
            "cycle_time_s": min(times),
            "mean_cycle_time_s": sum(times) / len(times),
            "warmup_s": warmup,
            "plan_time_s": compiled.stats.plan_time_s,
            "temp_bytes_peak": compiled.stats.temp_bytes_peak,
            "pool_reuse_count": compiled.stats.pool_reuse_count,
            "planned": compiled._kernel_plan is not None,
        }
    finally:
        compiled.close()


def run(small: bool, cycles: int) -> dict:
    results: dict = {
        "benchmark": "bench_kernel_plan",
        "small": small,
        "cycles_timed": cycles,
        "tile_sizes": {str(k): list(v) for k, v in SMALL_TILES.items()},
        "workloads": {},
        "geomean": {},
    }
    workloads = cases(small)
    for threads in THREAD_COUNTS:
        speedups = []
        planned_times = []
        unplanned_times = []
        for name, pipe, inputs in workloads:
            row = results["workloads"].setdefault(name, {})
            cell: dict = {}
            for planned in (False, True):
                config = PolyMgConfig(
                    tile_sizes=dict(SMALL_TILES),
                    num_threads=threads,
                    kernel_plan=planned,
                )
                label = "planned" if planned else "unplanned"
                cell[label] = time_case(pipe, inputs, config, cycles)
            up = cell["unplanned"]["cycle_time_s"]
            pl = cell["planned"]["cycle_time_s"]
            cell["speedup"] = up / pl
            row[f"threads={threads}"] = cell
            speedups.append(up / pl)
            planned_times.append(pl)
            unplanned_times.append(up)
            print(
                f"{name:12s} threads={threads}  unplanned {up * 1e3:8.1f} ms"
                f"  planned {pl * 1e3:8.1f} ms  speedup {up / pl:5.2f}x"
            )
        results["geomean"][f"threads={threads}"] = {
            "unplanned_cycle_time_s": geomean(unplanned_times),
            "planned_cycle_time_s": geomean(planned_times),
            "speedup": geomean(speedups),
        }
        print(
            f"geomean      threads={threads}  "
            f"speedup {geomean(speedups):5.2f}x"
        )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--small", action="store_true",
        help="CI-sized grids (perf-smoke job)",
    )
    parser.add_argument(
        "--cycles", type=int, default=3,
        help="timed cycles per cell (after one warm-up)",
    )
    parser.add_argument(
        "--check", type=float, default=None, metavar="RATIO",
        help="fail if planned > unplanned * RATIO on any workload",
    )
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=REPO_ROOT / "BENCH_PR4.json",
        help="output JSON path",
    )
    args = parser.parse_args(argv)

    results = run(args.small, args.cycles)
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check is not None:
        failed = []
        for name, row in results["workloads"].items():
            for tkey, cell in row.items():
                if cell["speedup"] < 1.0 / args.check:
                    failed.append((name, tkey, cell["speedup"]))
        if failed:
            for name, tkey, s in failed:
                print(
                    f"FAIL: {name} {tkey}: planned is {1 / s:.2f}x slower "
                    f"than unplanned (allowed {args.check:.2f}x)",
                    file=sys.stderr,
                )
            return 1
        print(f"check passed: planned <= unplanned x {args.check:.2f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
