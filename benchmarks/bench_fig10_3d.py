"""Figure 10 (a-d) — 3-D benchmark performance.

Same layout as Figure 9 for the 3-D benchmarks.  Shape assertions
encode the paper's 3-D findings: gains are smaller than in 2-D
(overlapped-tile redundancy grows with dimensionality), ``opt+`` still
always beats ``opt``, but ``handopt+pluto`` wins the 10-0-0 cases.
"""

from __future__ import annotations

import io

import numpy as np

from conftest import write_result
from repro.bench import (
    POISSON_WORKLOADS,
    SMALL_TILES,
    VARIANT_ORDER,
    cached_speedups,
    geomean,
)
from repro.bench.workloads import include_class_c
from repro.variants import polymg_naive, polymg_opt_plus

WORKLOADS_3D = [w for w in POISSON_WORKLOADS if w.ndim == 3]


def _rows():
    rows = []
    classes = ("B", "C") if include_class_c() else ("B",)
    for w in WORKLOADS_3D:
        for cls in classes:
            rows.append((w, cls, cached_speedups(w.name, cls)))
    return rows


def test_fig10_3d_speedups(benchmark, rng):
    w = WORKLOADS_3D[0]
    n = w.size["laptop"]
    pipe = w.pipeline("laptop")
    opt_plus = pipe.compile(polymg_opt_plus(tile_sizes=SMALL_TILES))
    f = np.zeros((n + 2,) * 3)
    f[1:-1, 1:-1, 1:-1] = rng.standard_normal((n,) * 3)
    inputs = pipe.make_inputs(np.zeros_like(f), f)
    benchmark(lambda: opt_plus.execute(inputs))
    naive = pipe.compile(polymg_naive())
    assert np.array_equal(
        opt_plus.execute(inputs)[pipe.output.name],
        naive.execute(inputs)[pipe.output.name],
    )

    rows = _rows()
    out = io.StringIO()
    out.write(
        "Figure 10: 3-D speedups over polymg-naive @ 24 cores "
        "(model, tuned)\n"
    )
    out.write(f"{'benchmark':18s}" + "".join(f"{v:>20s}" for v in VARIANT_ORDER) + "\n")
    for w_, cls, sp in rows:
        out.write(
            f"{w_.name + '/' + cls:18s}"
            + "".join(f"{sp[v]:20.2f}" for v in VARIANT_ORDER)
            + "\n"
        )
    write_result("fig10_3d_speedups", out.getvalue())

    for w_, cls, sp in rows:
        assert sp["polymg-opt+"] > sp["polymg-opt"], w_.name
        if w_.smoothing == (10, 0, 0):
            # paper: opt+ cannot outperform handopt+pluto in 3-D
            # 10-0-0.  Reproduced at class B; at class C our fully
            # tuned opt+ edges ahead by a few percent (EXPERIMENTS.md)
            if cls == "B":
                assert sp["handopt+pluto"] > sp["polymg-opt+"], w_.name
            else:
                assert (
                    sp["handopt+pluto"] > 0.85 * sp["polymg-opt+"]
                ), w_.name
            # dtile-opt+ closes in on opt+ when smoothing is deep in
            # 3-D (the paper reports it overtaking at 3D-W-10-0-0; in
            # this reproduction it reaches ~0.8x — see EXPERIMENTS.md)
            assert (
                sp["polymg-dtile-opt+"] >= 0.70 * sp["polymg-opt+"]
            ), w_.name
        # dtile-opt+ never beats handopt+pluto (conservative copies)
        assert sp["polymg-dtile-opt+"] < sp["handopt+pluto"], w_.name

    # 3-D gains are smaller than 2-D gains (cross-figure comparison)
    sp3d = geomean(sp["polymg-opt+"] for _, _, sp in rows)
    sp2d = geomean(
        cached_speedups(w.name, "B")["polymg-opt+"]
        for w in POISSON_WORKLOADS
        if w.ndim == 2
    )
    assert sp2d > sp3d
