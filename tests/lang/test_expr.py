"""Tests for the DSL expression AST."""

from fractions import Fraction

import pytest

from repro.ir.affine import aff
from repro.lang.expr import (
    BinOp,
    Call,
    Case,
    Condition,
    Const,
    IndexExpr,
    Maximum,
    Minimum,
    Ref,
    Select,
    UnOp,
    VarExpr,
    collect_refs,
    count_flops,
    map_refs,
    walk,
    wrap_expr,
)
from repro.lang.function import Grid
from repro.lang.parameters import Parameter, Variable
from repro.lang.types import Double, Int


@pytest.fixture
def xy():
    return Variable("x"), Variable("y")


@pytest.fixture
def grid():
    n = Parameter(Int, "N")
    return Grid(Double, "G", [n + 2, n + 2])


class TestIndexExpr:
    def test_var_arithmetic(self, xy):
        x, y = xy
        ix = x + 1
        assert isinstance(ix, IndexExpr)
        assert ix.coeff_of(x) == 1
        assert ix.const == aff(1)

    def test_combined(self, xy):
        x, y = xy
        ix = 2 * x - 3
        assert ix.coeff_of(x) == 2
        assert ix.const == aff(-3)

    def test_mixed_vars_detected(self, xy):
        x, y = xy
        ix = (x + 0) + (y + 0)
        assert ix.single_variable() is None
        assert set(ix.variables()) == {x, y}

    def test_substitute(self, xy):
        x, y = xy
        ix = (2 * x + 1).substitute({x: IndexExpr.of_var(y) + 5})
        assert ix.coeff_of(y) == 2
        assert ix.const == aff(11)

    def test_fractional_coeff(self, xy):
        x, _ = xy
        ix = x * Fraction(1, 2)
        assert not ix.is_integral()

    def test_param_const(self, xy):
        x, _ = xy
        n = Parameter(Int, "N")
        ix = x + n
        assert ix.const == aff("N")


class TestExprConstruction:
    def test_operators_build_tree(self, grid, xy):
        x, y = xy
        e = grid(x, y) * 2 + 1 - grid(x + 1, y) / 4
        kinds = [type(n).__name__ for n in walk(e)]
        assert "BinOp" in kinds and "Ref" in kinds and "Const" in kinds

    def test_neg(self, grid, xy):
        x, y = xy
        e = -grid(x, y)
        assert isinstance(e, UnOp)

    def test_wrap_rejects_junk(self):
        with pytest.raises(TypeError):
            wrap_expr(object())

    def test_ref_arity_checked(self, grid, xy):
        x, _ = xy
        with pytest.raises(ValueError):
            grid(x)

    def test_call_validation(self, grid, xy):
        x, y = xy
        Call("sqrt", grid(x, y))
        with pytest.raises(ValueError):
            Call("frobnicate", grid(x, y))

    def test_min_max_select(self, grid, xy):
        x, y = xy
        cond = (x >= 1) & (x <= 4)
        s = Select(cond, Minimum(grid(x, y), 0.0), Maximum(grid(x, y), 1.0))
        assert len(list(walk(s))) >= 5


class TestConditions:
    def test_atom_normalization(self, xy):
        x, _ = xy
        c = x < 5
        (lhs, op, rhs), = c.atoms
        assert op == "<=" and rhs.const == aff(4)

    def test_conjunction(self, xy):
        x, y = xy
        c = (x >= 1) & (y <= 7)
        assert len(c.atoms) == 2

    def test_constraint_bounds(self, xy):
        x, y = xy
        c = (x >= 1) & (x <= 6) & (y.equals(3))
        bounds = c.constraint_bounds({})
        assert bounds[x] == (1, 6)
        assert bounds[y] == (3, 3)

    def test_constraint_bounds_parametric(self, xy):
        x, _ = xy
        n = Parameter(Int, "N")
        c = x <= n
        assert c.constraint_bounds({"N": 9})[x] == (float("-inf"), 9)

    def test_non_box_condition_rejected(self, xy):
        x, y = xy
        c = Condition.atom((x + 0) + (y + 0), "<=", 3)
        with pytest.raises(ValueError):
            c.constraint_bounds({})


class TestTreeUtilities:
    def test_collect_refs(self, grid, xy):
        x, y = xy
        e = grid(x, y) + grid(x + 1, y) * grid(x, y + 1)
        assert len(collect_refs(e)) == 3

    def test_map_refs_substitutes(self, grid, xy):
        x, y = xy
        n = Parameter(Int, "N")
        other = Grid(Double, "H", [n + 2, n + 2])
        e = grid(x, y) + 2 * grid(x + 1, y)
        e2 = map_refs(e, lambda r: r.with_func(other))
        assert all(r.func is other for r in collect_refs(e2))
        # original untouched
        assert all(r.func is grid for r in collect_refs(e))

    def test_map_refs_preserves_structure(self, grid, xy):
        x, y = xy
        e = Select((x >= 1), Call("sqrt", grid(x, y)), Minimum(1.0, 2.0))
        e2 = map_refs(e, lambda r: r)
        assert repr(e2) == repr(e)

    def test_count_flops(self, grid, xy):
        x, y = xy
        assert count_flops(grid(x, y) + grid(x + 1, y)) == 1
        assert count_flops(grid(x, y) * 2 + 1) == 2
        assert count_flops(Call("sqrt", grid(x, y))) == 10

    def test_case_repr(self, grid, xy):
        x, y = xy
        c = Case((x >= 1), grid(x, y))
        assert "Case" in repr(c)
