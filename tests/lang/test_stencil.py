"""Tests for the Stencil and TStencil constructs."""

import pytest

from repro.ir.dag import PipelineDAG
from repro.lang.expr import Case, collect_refs
from repro.lang.function import Grid
from repro.lang.parameters import Interval, Parameter, Variable
from repro.lang.stencil import Stencil, TStencil, stencil_weights_shape
from repro.lang.types import Double, Int


@pytest.fixture
def env():
    n = Parameter(Int, "N")
    y, x = Variable("y"), Variable("x")
    g = Grid(Double, "G", [n + 2, n + 2])
    f = Grid(Double, "F", [n + 2, n + 2])
    ext = Interval(Int, 0, n + 1)
    return n, y, x, g, f, ext


class TestStencilExpansion:
    def test_weight_shape_padding(self):
        assert stencil_weights_shape([1, 2, 1], 2) == (1, 3)
        assert stencil_weights_shape([[1], [1]], 2) == (2, 1)
        assert stencil_weights_shape([1], 2) == (1, 1)
        assert stencil_weights_shape([[0, 1], [2, 3]], 2) == (2, 2)

    def test_too_deep_rejected(self, env):
        n, y, x, g, f, ext = env
        with pytest.raises(ValueError):
            Stencil(g, (y, x), [[[1]]])

    def test_laplacian_offsets(self, env):
        n, y, x, g, f, ext = env
        e = Stencil(g, (y, x), [[0, -1, 0], [-1, 4, -1], [0, -1, 0]])
        refs = collect_refs(e)
        assert len(refs) == 5  # zeros skipped
        offsets = set()
        for r in refs:
            oy = int(r.indices[0].const.constant_value())
            ox = int(r.indices[1].const.constant_value())
            offsets.add((oy, ox))
        assert offsets == {(0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)}

    def test_custom_origin(self, env):
        n, y, x, g, f, ext = env
        e = Stencil(g, (y, x), [1, 1], origin=(0, 0))
        refs = collect_refs(e)
        offs = sorted(
            int(r.indices[1].const.constant_value()) for r in refs
        )
        assert offs == [0, 1]

    def test_factor_applied(self, env):
        n, y, x, g, f, ext = env
        e = Stencil(g, (y, x), [[2]], 0.25)
        assert "0.25" in repr(e)

    def test_all_zero_weights(self, env):
        n, y, x, g, f, ext = env
        e = Stencil(g, (y, x), [[0]])
        assert collect_refs(e) == []

    def test_rank_mismatch_rejected(self, env):
        n, y, x, g, f, ext = env
        with pytest.raises(ValueError):
            Stencil(g, (y,), [[1]])


class TestTStencil:
    def _make(self, env, steps):
        n, y, x, g, f, ext = env
        w = TStencil(
            ([y, x], [ext, ext]), Double, steps, evolving=g, name="S"
        )
        interior = (y >= 1) & (y <= n) & (x >= 1) & (x <= n)
        w.defn = [
            Case(
                interior,
                g(y, x)
                - 0.25
                * (
                    Stencil(
                        g, (y, x), [[0, -1, 0], [-1, 4, -1], [0, -1, 0]]
                    )
                    - f(y, x)
                ),
            ),
            g(y, x),
        ]
        return w

    def test_expansion_count(self, env):
        w = self._make(env, 4)
        assert len(w.steps) == 4
        assert [s.name for s in w.steps] == [f"S.t{i}" for i in range(1, 5)]

    def test_chaining(self, env):
        n, y, x, g, f, ext = env
        w = self._make(env, 3)
        # step 1 reads the evolving grid; step 2 reads step 1
        assert g in w.steps[0].producers()
        assert w.steps[0] in w.steps[1].producers()
        assert g not in w.steps[1].producers()
        # non-evolving producer is untouched
        assert f in w.steps[1].producers()

    def test_indexing(self, env):
        n, y, x, g, f, ext = env
        w = self._make(env, 2)
        assert w[0] is g
        assert w[1] is w.steps[0]
        assert w.last is w.steps[1]
        with pytest.raises(IndexError):
            w[3]

    def test_zero_steps_passthrough(self, env):
        n, y, x, g, f, ext = env
        w = TStencil(([y, x], [ext, ext]), Double, 0, evolving=g)
        w.defn = [g(y, x)]
        assert w.last is g

    def test_step_metadata(self, env):
        w = self._make(env, 2)
        for i, s in enumerate(w.steps, start=1):
            assert s.stage_kind() == "smooth"
            assert s.time_index == i
            assert s.tstencil is w

    def test_dag_contains_all_steps(self, env):
        w = self._make(env, 5)
        dag = PipelineDAG([w.last], params={"N": 8})
        assert dag.stage_count() == 5

    def test_invalid_steps(self, env):
        n, y, x, g, f, ext = env
        with pytest.raises(ValueError):
            TStencil(([y, x], [ext, ext]), Double, -1, evolving=g)
        with pytest.raises(ValueError):
            TStencil(([y, x], [ext, ext]), Double, 1.5, evolving=g)
