"""Tests for Function/Grid and access-summary analysis."""

import pytest

from repro.ir.domain import Box
from repro.lang.expr import Case
from repro.lang.function import Function, Grid
from repro.lang.parameters import Interval, Parameter, Variable
from repro.lang.types import Double, Int


@pytest.fixture
def env():
    n = Parameter(Int, "N")
    y, x = Variable("y"), Variable("x")
    g = Grid(Double, "G", [n + 2, n + 2])
    ext = Interval(Int, 0, n + 1)
    return n, y, x, g, ext


class TestFunctionBasics:
    def test_grid_is_input(self, env):
        *_, g, _ = env
        assert g.is_input
        assert g.ndim == 2
        with pytest.raises(ValueError):
            g.defn = [1.0]

    def test_domain_binding(self, env):
        n, y, x, g, ext = env
        f = Function(([y, x], [ext, ext]), Double, "f")
        box = f.domain_box({"N": 6})
        assert box.shape() == (8, 8)

    def test_defn_required(self, env):
        n, y, x, g, ext = env
        f = Function(([y, x], [ext, ext]), Double, "f")
        assert not f.has_defn
        with pytest.raises(ValueError):
            f.defn

    def test_self_reference_rejected(self, env):
        n, y, x, g, ext = env
        f = Function(([y, x], [ext, ext]), Double, "f")
        with pytest.raises(ValueError):
            f.defn = [f(y, x)]

    def test_wrong_arity_ref_rejected(self, env):
        n, y, x, g, ext = env
        f = Function(([y], [ext]), Double, "f")
        g1 = Grid(Double, "g1", [n + 2])
        f2 = Function(([y, x], [ext, ext]), Double, "f2")
        with pytest.raises(ValueError):
            f2.defn = [Case((y >= 1), g1(y, x))]

    def test_varspec_mismatch(self, env):
        n, y, x, g, ext = env
        with pytest.raises(ValueError):
            Function(([y, x], [ext]), Double)

    def test_identity_semantics(self, env):
        n, y, x, g, ext = env
        f1 = Function(([y, x], [ext, ext]), Double, "same")
        f2 = Function(([y, x], [ext, ext]), Double, "same")
        assert f1 != f2
        assert f1 == f1
        assert len({f1, f2}) == 2


class TestAccessAnalysis:
    def test_pointwise(self, env):
        n, y, x, g, ext = env
        f = Function(([y, x], [ext, ext]), Double, "f")
        f.defn = [g(y, x) * 2]
        acc = f.accesses()[g]
        assert acc.scaling() == ((1, 1), (1, 1))
        assert acc.max_halo() == 0

    def test_stencil_window(self, env):
        n, y, x, g, ext = env
        f = Function(([y, x], [ext, ext]), Double, "f")
        f.defn = [g(y - 1, x) + g(y + 1, x) + g(y, x - 2)]
        acc = f.accesses()[g]
        fp = acc.footprint(Box.from_bounds([(4, 6), (4, 6)]))
        assert fp == Box.from_bounds([(3, 7), (2, 6)])
        assert acc.max_halo() == 2

    def test_transposed_access(self, env):
        n, y, x, g, ext = env
        f = Function(([y, x], [ext, ext]), Double, "t")
        f.defn = [g(x, y)]
        acc = f.accesses()[g]
        fp = acc.footprint(Box.from_bounds([(0, 1), (5, 9)]))
        assert fp == Box.from_bounds([(5, 9), (0, 1)])

    def test_constant_subscript(self, env):
        n, y, x, g, ext = env
        f = Function(([y, x], [ext, ext]), Double, "edge")
        f.defn = [g(0, x)]
        acc = f.accesses()[g]
        fp = acc.footprint(Box.from_bounds([(3, 5), (2, 8)]))
        assert fp == Box.from_bounds([(0, 0), (2, 8)])

    def test_mixed_var_subscript_rejected(self, env):
        n, y, x, g, ext = env
        f = Function(([y, x], [ext, ext]), Double, "bad")
        f.defn = [g((y + 0) + (x + 0), x)]
        with pytest.raises(ValueError):
            f.accesses()

    def test_foreign_variable_rejected(self, env):
        n, y, x, g, ext = env
        z = Variable("z")
        f = Function(([y, x], [ext, ext]), Double, "bad2")
        f.defn = [g(z, x)]
        with pytest.raises(ValueError):
            f.accesses()

    def test_case_pieces_unioned(self, env):
        n, y, x, g, ext = env
        f = Function(([y, x], [ext, ext]), Double, "pw")
        f.defn = [
            Case((y >= 1) & (y <= n), g(y - 1, x)),
            g(y + 1, x),
        ]
        acc = f.accesses()[g]
        assert acc.dims[0].rng.omin == -1
        assert acc.dims[0].rng.omax == 1

    def test_producers_deduped(self, env):
        n, y, x, g, ext = env
        f = Function(([y, x], [ext, ext]), Double, "p")
        f.defn = [g(y, x) + g(y + 1, x)]
        assert f.producers() == [g]

    def test_stage_kind_attribute(self, env):
        n, y, x, g, ext = env
        f = Function(([y, x], [ext, ext]), Double, "k")
        assert f.stage_kind() == "pointwise"
        f.kind = "defect"
        assert f.stage_kind() == "defect"
