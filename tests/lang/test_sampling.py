"""Tests for the Restrict and Interp sampling constructs."""

import pytest

from repro.ir.domain import Box
from repro.lang.expr import collect_refs
from repro.lang.function import Grid
from repro.lang.parameters import Interval, Parameter, Variable
from repro.lang.sampling import Interp, Restrict
from repro.lang.stencil import Stencil
from repro.lang.types import Double, Int


@pytest.fixture
def env():
    n = Parameter(Int, "N")
    y, x = Variable("y"), Variable("x")
    fine = Grid(Double, "fine", [n + 2, n + 2])
    ext_c = Interval(Int, 1, n / 2)
    return n, y, x, fine, ext_c


class TestRestrict:
    def test_subscripts_scaled(self, env):
        n, y, x, fine, ext_c = env
        r = Restrict(([y, x], [ext_c, ext_c]), Double, "R")
        r.defn = [
            Stencil(fine, (y, x), [[1, 2, 1], [2, 4, 2], [1, 2, 1]], 1 / 16)
        ]
        for ref in collect_refs(r.defn_exprs()[0]):
            for ix in ref.indices:
                var = ix.single_variable()
                assert ix.coeff_of(var) == 2

    def test_footprint(self, env):
        n, y, x, fine, ext_c = env
        r = Restrict(([y, x], [ext_c, ext_c]), Double, "R")
        r.defn = [
            Stencil(fine, (y, x), [[1, 2, 1], [2, 4, 2], [1, 2, 1]], 1 / 16)
        ]
        acc = r.accesses()[fine]
        fp = acc.footprint(Box.from_bounds([(1, 4), (2, 3)]))
        assert fp == Box.from_bounds([(1, 9), (3, 7)])

    def test_sampling_factor(self, env):
        n, y, x, fine, ext_c = env
        r = Restrict(([y, x], [ext_c, ext_c]), Double, "R")
        assert r.SAMPLING_FACTOR == 2
        assert r.stage_kind() == "restrict"


class TestInterp:
    def _make(self, env):
        n, y, x, fine, ext_c = env
        coarse = Grid(Double, "coarse", [n / 2 + 2, n / 2 + 2])
        ext_f = Interval(Int, 1, n)
        p = Interp(([y, x], [ext_f, ext_f]), Double, "P")
        expr = [{}, {}]
        o = (0, 0)
        expr[0][0] = Stencil(coarse, (y, x), [1], origin=o)
        expr[0][1] = Stencil(coarse, (y, x), [1, 1], origin=o) * 0.5
        expr[1][0] = Stencil(coarse, (y, x), [[1], [1]], origin=o) * 0.5
        expr[1][1] = (
            Stencil(coarse, (y, x), [[1, 1], [1, 1]], origin=o) * 0.25
        )
        p.defn = [expr]
        return p, coarse

    def test_parity_table_complete(self, env):
        p, _ = self._make(env)
        assert set(p.parity_cases) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_missing_parity_rejected(self, env):
        n, y, x, fine, ext_c = env
        p = Interp(([y, x], [ext_c, ext_c]), Double, "Q")
        with pytest.raises(ValueError):
            p.defn = [[{0: 1.0}]]

    def test_refs_per_parity(self, env):
        p, coarse = self._make(env)
        assert len(collect_refs(p.parity_cases[(0, 0)])) == 1
        assert len(collect_refs(p.parity_cases[(1, 1)])) == 4

    def test_access_footprint_covers_reads(self, env):
        p, coarse = self._make(env)
        acc = p.accesses()[coarse]
        fine_box = Box.from_bounds([(1, 8), (1, 8)])
        fp = acc.footprint(fine_box)
        # every parity read q = (x - r)//2 + off must land inside fp
        for xval in range(1, 9):
            for r in (0, 1):
                if (xval - r) % 2:
                    continue
                q = (xval - r) // 2
                for off in (0, 1):
                    if r == 0 and off == 1:
                        continue
                    assert fp.intervals[0].contains(q + off)

    def test_non_unit_interp_subscript_rejected(self, env):
        n, y, x, fine, ext_c = env
        coarse = Grid(Double, "c2", [n + 2, n + 2])
        p = Interp(([y, x], [ext_c, ext_c]), Double, "Q2")
        table = [
            {0: coarse(2 * y, x), 1: coarse(y, x)},
            {0: coarse(y, x), 1: coarse(y, x)},
        ]
        p.defn = [table]
        with pytest.raises(ValueError):
            p.accesses()

    def test_stage_kind(self, env):
        p, _ = self._make(env)
        assert p.stage_kind() == "interp"
