"""Tests for the analytic cost model over compiled schedules.

These test the *relativities* the paper's figures depend on — fusion
reduces traffic, storage reuse reduces spill and allocation, thread and
problem-size scaling behave — not absolute seconds.
"""

import pytest

from repro.model import PAPER_MACHINE, PipelineCostModel
from repro.multigrid import MultigridOptions, build_poisson_cycle
from repro.multigrid.cycles import build_smoother_chain
from repro.variants import (
    handopt_model,
    handopt_pluto_model,
    polymg_naive,
    polymg_opt,
    polymg_opt_plus,
)


@pytest.fixture(scope="module")
def pipe2d():
    opts = MultigridOptions(cycle="V", n1=4, n2=4, n3=4, levels=4)
    return build_poisson_cycle(2, 8192, opts)


def model_for(pipe, cfg):
    return PipelineCostModel(pipe.compile(cfg), PAPER_MACHINE)


class TestRooflineBasics:
    def test_positive_costs(self, pipe2d):
        m = model_for(pipe2d, polymg_opt_plus())
        bd = m.cycle_breakdown(24)
        assert bd.total() > 0
        assert bd.memory_s > 0 or bd.compute_s > 0

    def test_thread_scaling(self, pipe2d):
        m = model_for(pipe2d, polymg_naive())
        t1 = m.run_time(1, 10)
        t24 = m.run_time(24, 10)
        assert 3 < t1 / t24 < 24  # sublinear (bandwidth saturates)

    def test_more_cycles_cost_more(self, pipe2d):
        m = model_for(pipe2d, polymg_opt_plus())
        assert m.run_time(24, 20) > m.run_time(24, 10)
        assert m.run_time(24, 0) == 0.0

    def test_first_cycle_pays_allocation(self, pipe2d):
        m = model_for(pipe2d, polymg_opt_plus())
        cold = m.cycle_time(24, steady=False)
        warm = m.cycle_time(24, steady=True)
        assert cold > warm

    def test_group_costs_cover_all_groups(self, pipe2d):
        compiled = pipe2d.compile(polymg_opt_plus())
        m = PipelineCostModel(compiled, PAPER_MACHINE)
        costs = m.group_costs(24)
        assert len(costs) == len(compiled.grouping.groups)
        assert all(c.time_s > 0 for c in costs)


class TestOptimizationRelativities:
    def test_fusion_reduces_traffic(self, pipe2d):
        naive = model_for(pipe2d, polymg_naive())
        fused = model_for(pipe2d, polymg_opt_plus())
        t_naive = sum(c.traffic_bytes for c in naive.group_costs(24))
        t_fused = sum(c.traffic_bytes for c in fused.group_costs(24))
        assert t_fused < 0.6 * t_naive

    def test_storage_opts_never_hurt(self, pipe2d):
        opt = model_for(pipe2d, polymg_opt()).run_time(24, 10)
        optp = model_for(pipe2d, polymg_opt_plus()).run_time(24, 10)
        assert optp < opt

    def test_pool_removes_steady_state_allocation(self, pipe2d):
        pooled = model_for(pipe2d, polymg_opt_plus())
        direct = model_for(pipe2d, polymg_opt())
        assert pooled.alloc_cost(24, steady=True) < 0.1 * direct.alloc_cost(
            24, steady=True
        )

    def test_baseline_ordering(self, pipe2d):
        naive = model_for(pipe2d, polymg_naive()).run_time(24, 10)
        hand = model_for(pipe2d, handopt_model()).run_time(24, 10)
        pluto = model_for(pipe2d, handopt_pluto_model()).run_time(24, 10)
        assert hand < naive
        assert pluto <= hand * 1.05  # diamond never loses much

    def test_redundancy_grows_with_dim(self):
        opts = MultigridOptions(cycle="V", n1=4, n2=4, n3=4, levels=4)
        p2 = build_poisson_cycle(2, 8192, opts)
        p3 = build_poisson_cycle(3, 256, opts)
        cfg = polymg_opt_plus()
        g2 = next(
            g
            for g in p2.compile(cfg).grouping.groups
            if g.size > 1
        )
        g3 = next(
            g
            for g in p3.compile(cfg).grouping.groups
            if g.size > 1
        )
        assert g3.redundancy(cfg.tile_shape(3)) > g2.redundancy(
            cfg.tile_shape(2)
        )


class TestSmootherCrossover:
    """The Figure 11a shape, as a unit test of the model."""

    def smoother_times(self, ndim, n, steps):
        pipe = build_smoother_chain(ndim, n, steps)
        over = model_for(
            pipe,
            polymg_opt_plus(
                tile_sizes={2: (64, 512), 3: (32, 32, 128)},
                group_size_limit=8,
            ),
        ).run_time(24, 10)
        dia = model_for(pipe, handopt_pluto_model()).run_time(24, 10)
        return over, dia

    def test_3d_crossover(self):
        over4, dia4 = self.smoother_times(3, 512, 4)
        over10, dia10 = self.smoother_times(3, 512, 10)
        assert over4 < dia4  # overlapped wins shallow
        assert dia10 < over10  # diamond wins deep

    def test_2d_overlapped_always(self):
        for steps in (4, 10):
            over, dia = self.smoother_times(2, 8192, steps)
            assert over < dia, steps
