"""The cost model as a search oracle (PR 10).

The evolutionary search trusts ``PipelineCostModel.cycle_time`` as its
fitness predictor, so the model must behave like an oracle: exactly
deterministic call-to-call, strictly increasing in grid size at a
fixed configuration, and finite/positive over the entire tuning
configuration space.
"""

from __future__ import annotations

import math

from repro.model import PAPER_MACHINE
from repro.model.costs import PipelineCostModel
from repro.multigrid import MultigridOptions, build_poisson_cycle
from repro.tuning import config_space
from repro.variants import polymg_opt_plus

OPTS = MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)


def _model(ndim: int, n: int, cfg=None):
    pipe = build_poisson_cycle(ndim, n, OPTS)
    compiled = pipe.compile(
        cfg if cfg is not None else polymg_opt_plus()
    )
    return PipelineCostModel(compiled, PAPER_MACHINE)


class TestDeterminism:
    def test_cycle_time_is_bitwise_deterministic(self):
        model = _model(2, 64)
        first = model.cycle_time(4)
        assert all(model.cycle_time(4) == first for _ in range(5))
        # and across independently built models of the same problem
        again = _model(2, 64)
        assert again.cycle_time(4) == first

    def test_run_time_scales_from_cycle_time(self):
        model = _model(2, 64)
        one = model.run_time(4, cycles=1)
        ten = model.run_time(4, cycles=10)
        assert ten > one > 0.0


class TestGridSizeMonotonicity:
    def test_strictly_increasing_in_grid_size_2d(self):
        times = [_model(2, n).cycle_time(4) for n in (32, 64, 128, 256)]
        assert all(b > a for a, b in zip(times, times[1:])), times

    def test_strictly_increasing_in_grid_size_3d(self):
        times = [_model(3, n).cycle_time(4) for n in (16, 32, 64)]
        assert all(b > a for a, b in zip(times, times[1:])), times


class TestFiniteOverConfigSpace:
    def test_finite_positive_over_whole_2d_space(self):
        pipe = build_poisson_cycle(2, 64, OPTS)
        base = polymg_opt_plus()
        seen = 0
        for cfg, tiles, limit in config_space(base, 2):
            model = PipelineCostModel(
                pipe.compile(cfg), PAPER_MACHINE
            )
            for threads in (1, 4, 24):
                t = model.cycle_time(threads)
                assert math.isfinite(t) and t > 0.0, (
                    tiles,
                    limit,
                    threads,
                    t,
                )
            seen += 1
        assert seen == 80  # the paper's full 2-D space

    def test_finite_positive_over_whole_3d_space(self):
        pipe = build_poisson_cycle(3, 16, OPTS)
        base = polymg_opt_plus()
        seen = 0
        for cfg, tiles, limit in config_space(base, 3):
            model = PipelineCostModel(
                pipe.compile(cfg), PAPER_MACHINE
            )
            t = model.cycle_time(8)
            assert math.isfinite(t) and t > 0.0, (tiles, limit, t)
            seen += 1
        assert seen == 135  # the paper's full 3-D space
