"""Tests for the machine specification."""

import pytest

from repro.model.machine import LAPTOP_MACHINE, PAPER_MACHINE


class TestPaperSpec:
    def test_table1_parameters(self):
        m = PAPER_MACHINE
        assert m.cores == 24
        assert m.sockets == 2
        assert m.freq_hz == 2.6e9
        assert m.l1_per_core == 64 * 1024
        assert m.l2_per_core == 512 * 1024
        assert m.l3_per_socket == 30720 * 1024

    def test_peak_scales_with_threads(self):
        assert PAPER_MACHINE.peak_flops(24) == 24 * PAPER_MACHINE.peak_flops(1)

    def test_thread_clamp(self):
        assert PAPER_MACHINE.peak_flops(48) == PAPER_MACHINE.peak_flops(24)
        with pytest.raises(ValueError):
            PAPER_MACHINE.dram_bw(0)

    def test_bandwidth_saturates(self):
        m = PAPER_MACHINE
        assert m.dram_bw(1) == m.dram_bw_core
        assert m.dram_bw(24) == m.dram_bw_total
        assert m.dram_bw(24) < 24 * m.dram_bw_core


class TestEffectiveBandwidth:
    def test_l3_resident_boost(self):
        m = PAPER_MACHINE
        small = m.effective_bw(24, m.l3_total // 2)
        big = m.effective_bw(24, m.l3_total * 4)
        assert small == pytest.approx(big * m.l3_bw_factor, rel=0.01)

    def test_tlb_degradation_monotone(self):
        m = PAPER_MACHINE
        ws = m.l3_total * 4
        bws = [
            m.effective_bw(24, ws, resident)
            for resident in (m.l3_total, m.l3_total * 8, m.l3_total * 64)
        ]
        assert bws[0] >= bws[1] >= bws[2]

    def test_row_efficiency(self):
        m = PAPER_MACHINE
        assert m.row_efficiency(10_000) > 0.99
        assert m.row_efficiency(64) < m.row_efficiency(512)
        assert m.row_efficiency(0) == 1.0

    def test_diamond_efficiency_dimension(self):
        m = PAPER_MACHINE
        assert m.diamond_stream_efficiency(2) < m.diamond_stream_efficiency(3)

    def test_barrier_grows_with_threads(self):
        m = PAPER_MACHINE
        assert m.barrier_s(24) > m.barrier_s(2)

    def test_with_override(self):
        m = PAPER_MACHINE.with_(cores=12)
        assert m.cores == 12 and PAPER_MACHINE.cores == 24

    def test_laptop_is_single_core(self):
        assert LAPTOP_MACHINE.cores == 1
